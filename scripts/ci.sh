#!/usr/bin/env bash
# Full CI gate: build, tests, formatting, lints. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

# Auto-dumped post-mortems from earlier local runs must never end up in a
# commit: the default dump name is trace-id-suffixed (and gitignored), but
# clear any legacy fixed-name dump too.
rm -f scwsc-flight.jsonl scwsc-*-flight.jsonl
# ... and fail hard if one was ever force-added past the gitignore (the
# trace-id suffix means every stray has a fresh name, so match the shape,
# not a fixed list).
if git ls-files | grep -E '(^|/)scwsc-([0-9a-f]+-)?flight\.jsonl$|-flight\.jsonl$'; then
  echo "committed flight-recorder dump(s) found (see above); git rm them"
  exit 1
fi

cargo build --release
cargo test -q
cargo fmt --check
cargo clippy --workspace -- -D warnings

# Performance-snapshot smoke: one quick rep of the full workload registry,
# then the counter-exact diff against the committed baseline (wall-clock is
# too noisy to gate on in CI; counters are deterministic). DESIGN.md §10.
# Recorded serial so the baseline comparison is independent of the parallel
# layer.
SCWSC_THREADS=1 cargo run --release -q -p scwsc-bench --bin scwsc_bench -- \
  record --quick --label ci --out target/BENCH_ci.json
cargo run --release -q -p scwsc-bench --bin scwsc_bench -- \
  diff BENCH_seed.json target/BENCH_ci.json --counters-only

# Parallel determinism gate: the same smoke suite on 4 worker threads must
# reproduce the serial deterministic counters exactly (DESIGN.md §11) —
# this is the end-to-end check that chunked scans, speculative budget
# guessing, and telemetry replay leave the event stream bit-identical.
SCWSC_THREADS=4 cargo run --release -q -p scwsc-bench --bin scwsc_bench -- \
  record --quick --suite smoke --label ci-t4 --out target/BENCH_ci_t4.json
SCWSC_THREADS=1 cargo run --release -q -p scwsc-bench --bin scwsc_bench -- \
  record --quick --suite smoke --label ci-t1 --out target/BENCH_ci_t1.json
cargo run --release -q -p scwsc-bench --bin scwsc_bench -- \
  diff target/BENCH_ci_t1.json target/BENCH_ci_t4.json --counters-only

# Pruned-scan A/B gate (DESIGN.md §15): with the sketch-pruned scan
# forced off, the smoke suite must reproduce the pruned run's exact
# counters — pruning may only change *how* benefits are counted, never
# what any solver does. The scan_* advisory counters are note-level in
# the diff by design (they measure the pruning itself).
SCWSC_PRUNE=0 SCWSC_THREADS=1 cargo run --release -q -p scwsc-bench --bin scwsc_bench -- \
  record --quick --suite smoke --label ci-noprune --out target/BENCH_ci_noprune.json
cargo run --release -q -p scwsc-bench --bin scwsc_bench -- \
  diff target/BENCH_ci_t1.json target/BENCH_ci_noprune.json --counters-only

# Resilience gate (DESIGN.md §12). First the full test suite with the
# deterministic fault injector compiled in, including the snapshot test
# that keeps the retry/speculation counters out of the exact-diff set.
cargo test -q --workspace --features fault-inject
cargo test -q -p scwsc-bench \
  resilience_counters_stay_out_of_the_exact_diff_set

# Then two end-to-end smokes of the scwsc_solve degradation ladder on a
# 4-thread pool: a one-shot injected guess panic must be contained and
# retried to a complete solve (exit 0), and a tick-budget expiry must
# degrade with a certificate the binary itself re-verifies (exit 5).
cargo build --release -q -p scwsc-bench --features fault-inject
solve=target/release/scwsc_solve
# (stderr holds the contained panic's backtrace — expected noise)
SCWSC_THREADS=4 "$solve" --rows 2000 --k 6 --coverage 0.4 \
  --algorithm cmc --fault panicguess@1 > /dev/null 2> target/ci_fault.err
SCWSC_THREADS=4 "$solve" --rows 2000 --k 6 --coverage 0.4 \
  --algorithm cmc --max-ticks 10 > /dev/null 2> target/ci_degraded.err \
  && { echo "expected deadline degradation"; exit 1; } || code=$?
[ "$code" -eq 5 ] || { echo "expected exit 5, got $code"; exit 1; }
grep -q "certificate verified" target/ci_degraded.err \
  || { echo "missing certificate verification"; exit 1; }

# Flight-recorder smoke (DESIGN.md §13): a persistent injected fault must
# fail structured (exit 1) AND leave a line-oriented JSON flight dump —
# header with the latched trace id, events, trailing causal tree — for
# the post-mortem.
SCWSC_THREADS=4 "$solve" --rows 2000 --k 6 --coverage 0.4 \
  --algorithm cmc --fault failguess@1 --flight-dump target/ci_flight.jsonl \
  > /dev/null 2>> target/ci_fault.err \
  && { echo "expected fault exit"; exit 1; } || code=$?
[ "$code" -eq 1 ] || { echo "expected exit 1, got $code"; exit 1; }
python3 - target/ci_flight.jsonl <<'EOF'
import json, sys
lines = open(sys.argv[1]).read().splitlines()
assert len(lines) >= 2, "dump needs a header and a causal tree"
header = json.loads(lines[0])
assert header["flight"] == "scwsc" and header["version"] == 1, header
assert header["trace_id"] != "0000000000000000", "trace id latched"
for line in lines[1:]:
    json.loads(line)  # every line is one JSON object
assert "causal_tree" in json.loads(lines[-1]), "dump ends with the tree"
EOF

# Liveness-watchdog smoke (DESIGN.md §16): a fault-injected mid-solve
# stall (400 ms sleep at tick 5) must be caught by a 100 ms watchdog,
# which records a stall_detected event and auto-dumps the flight
# recording at that moment — while the solve itself still completes.
SCWSC_THREADS=1 "$solve" --rows 2000 --k 5 --fault stall@5:400 --watchdog 100 \
  --flight-dump target/ci_watchdog_flight.jsonl > /dev/null 2> target/ci_watchdog.err
grep -q "watchdog: 1 stall(s) detected" target/ci_watchdog.err \
  || { echo "watchdog missed the injected stall"; cat target/ci_watchdog.err; exit 1; }
grep -q '"kind": *"stall_detected"\|stall_detected' target/ci_watchdog_flight.jsonl.stall \
  || { echo "stall dump lacks the stall_detected event"; exit 1; }

# Soak smoke (DESIGN.md §16): five iterations of the smoke suite through
# the windowed-telemetry loop must hold every continuous-operation
# invariant — monotone counters, stable windowed quantiles, zero leaked
# allocator bytes, zero stalls — and leave a parsable JSONL timeline.
bench=target/release/scwsc_bench
SCWSC_THREADS=1 "$bench" soak --iters 5 --suite smoke \
  --timeline target/ci_soak_timeline.jsonl > target/ci_soak.out 2> /dev/null
grep -q "soak ok:.*0 stalls" target/ci_soak.out \
  || { echo "soak smoke failed"; cat target/ci_soak.out; exit 1; }
python3 - target/ci_soak_timeline.jsonl <<'EOF'
import json, sys
lines = open(sys.argv[1]).read().splitlines()
assert len(lines) == 5, f"expected 5 timeline lines, got {len(lines)}"
for i, line in enumerate(lines):
    row = json.loads(line)
    assert row["iter"] == i + 1 and row["stalls"] == 0, row
EOF

# Serving gate (DESIGN.md §17): boot scwsc_serve on a fixture instance,
# burst it with the serve-load reference client, and require the serving
# contract end to end — zero dropped requests, every degraded answer
# certificate-verified, every rejection carrying retry_after_ms — then a
# clean SIGTERM drain that flushes the Prometheus exposition.
cargo build --release -q -p scwsc-serve --features fault-inject
serve=target/release/scwsc_serve
SCWSC_THREADS=2 "$serve" --rows 2000 --seed 7 --addr 127.0.0.1:0 \
  --base-ticks 20000 --metrics-prom target/ci_serve.prom \
  2> target/ci_serve.err &
serve_pid=$!
for _ in $(seq 100); do
  grep -q "listening on" target/ci_serve.err 2>/dev/null && break
  sleep 0.1
done
port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' target/ci_serve.err)
[ -n "$port" ] || { echo "scwsc_serve failed to boot"; cat target/ci_serve.err; exit 1; }
"$bench" serve-load --addr "127.0.0.1:$port" --connections 4 --requests 32 \
  --distinct 8 --max-ticks 30000 --retries 3 --timeout-ms 60000 --expect-clean \
  > target/ci_serve_load.out \
  || { echo "serve-load contract violated"; cat target/ci_serve_load.out; exit 1; }
grep -q "contract: OK" target/ci_serve_load.out \
  || { echo "serve-load summary incomplete"; cat target/ci_serve_load.out; exit 1; }
kill -TERM "$serve_pid"
wait "$serve_pid" \
  || { echo "scwsc_serve SIGTERM drain failed"; cat target/ci_serve.err; exit 1; }
grep -q "drained —.*clean=true" target/ci_serve.err \
  || { echo "drain summary missing"; cat target/ci_serve.err; exit 1; }
grep -q "scwsc_window_solves" target/ci_serve.prom \
  || { echo "drain did not flush windowed metrics"; exit 1; }

# Service-fault smoke: a deterministically injected mid-request disconnect
# (the server severs request 3's connection before writing the response)
# must cost exactly that one in-flight answer — the client reconnects, the
# remaining requests complete, and the server still drains cleanly with
# the severed write accounted.
SCWSC_THREADS=1 "$serve" --rows 1000 --seed 7 --addr 127.0.0.1:0 \
  --fault disconnect@3 2> target/ci_serve_fault.err &
serve_pid=$!
for _ in $(seq 100); do
  grep -q "listening on" target/ci_serve_fault.err 2>/dev/null && break
  sleep 0.1
done
port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' target/ci_serve_fault.err)
[ -n "$port" ] || { echo "faulted scwsc_serve failed to boot"; exit 1; }
"$bench" serve-load --addr "127.0.0.1:$port" --connections 1 --requests 6 \
  --distinct 6 --max-ticks 30000 --timeout-ms 10000 > target/ci_serve_fault.out
grep -q "6 sent, 5 answered, 1 dropped" target/ci_serve_fault.out \
  || { echo "disconnect fault not isolated to one request"; cat target/ci_serve_fault.out; exit 1; }
kill -TERM "$serve_pid"
wait "$serve_pid" \
  || { echo "faulted scwsc_serve drain failed"; cat target/ci_serve_fault.err; exit 1; }
grep -q "failed writes 1" target/ci_serve_fault.err \
  || { echo "severed write not accounted"; cat target/ci_serve_fault.err; exit 1; }

# SCWSC_DEADLINE_MS smoke: the environment variable supplies the default
# wall-clock deadline (an explicit --deadline-ms always wins). A zero
# budget from the environment must degrade with a verified certificate
# (exit 5) exactly like the flag; the flag then overrides it back to an
# unhurried complete solve.
SCWSC_DEADLINE_MS=0 "$solve" --rows 2000 --k 6 --coverage 0.4 \
  --algorithm cmc > /dev/null 2> target/ci_env_deadline.err \
  && { echo "expected env-deadline degradation"; exit 1; } || code=$?
[ "$code" -eq 5 ] || { echo "expected exit 5, got $code"; exit 1; }
grep -q "certificate verified" target/ci_env_deadline.err \
  || { echo "env deadline missing certificate verification"; exit 1; }
SCWSC_DEADLINE_MS=0 "$solve" --rows 2000 --k 6 --coverage 0.4 \
  --algorithm cmc --deadline-ms 600000 > /dev/null 2>&1 \
  || { echo "--deadline-ms must override SCWSC_DEADLINE_MS"; exit 1; }

# Perf-trend gate (DESIGN.md §16): the committed BENCH_*.json history must
# load chronologically and no workload's latest median may regress >10%
# against its best-ever median.
"$bench" trend --gate > target/ci_trend.out \
  || { echo "trend gate flagged a regression"; cat target/ci_trend.out; exit 1; }
grep -q "median runtime" target/ci_trend.out \
  || { echo "trend output incomplete"; cat target/ci_trend.out; exit 1; }

# Regression-attribution golden (DESIGN.md §13): hand-perturb one span's
# total time in the quick snapshot; `diff --attribute` must name exactly
# that span as the top self-time mover.
python3 - target/BENCH_ci.json target/ci_perturbed.json <<'EOF'
import json, sys
snap = json.load(open(sys.argv[1]))
snap["workloads"][0]["spans"]["total_secs"] += 1000.0
json.dump(snap, open(sys.argv[2], "w"))
EOF
cargo run --release -q -p scwsc-bench --bin scwsc_bench -- \
  diff target/BENCH_ci.json target/ci_perturbed.json \
  --counters-only --attribute --top 3 > target/ci_attr.out
grep -A1 "span self-time movers" target/ci_attr.out | tail -1 \
  | grep -q '+1000\.0000s.*total' \
  || { echo "perturbed span is not the top mover"; cat target/ci_attr.out; exit 1; }

# Decision-audit golden smoke (DESIGN.md §14): --explain must narrate the
# ledger (winner, runners-up, margins, prices) and end with a certified
# quality line whose lower bound the binary derived from its own prices.
"$solve" --rows 300 --seed 7 --k 5 --coverage 0.5 --algorithm cmc \
  --explain 3 > target/ci_explain.out 2> /dev/null
for marker in "== decision audit ==" "runner-up" "margin" "charged " \
  "certified quality:" "LB "; do
  grep -q "$marker" target/ci_explain.out \
    || { echo "--explain output missing '$marker'"; cat target/ci_explain.out; exit 1; }
done

# Audit replay parity (DESIGN.md §14): the decision ledger is part of the
# deterministic event stream, so a 4-thread solve must write a
# byte-identical --audit-jsonl to the serial one.
SCWSC_THREADS=1 "$solve" --rows 1000 --seed 11 --k 6 --coverage 0.5 \
  --algorithm cmc --audit-jsonl target/ci_audit_t1.jsonl > /dev/null 2>&1
SCWSC_THREADS=4 "$solve" --rows 1000 --seed 11 --k 6 --coverage 0.5 \
  --algorithm cmc --audit-jsonl target/ci_audit_t4.jsonl > /dev/null 2>&1
cmp target/ci_audit_t1.jsonl target/ci_audit_t4.jsonl \
  || { echo "audit ledger differs across thread counts"; exit 1; }
# ... and across the prune toggle (DESIGN.md §15): skipped counts must
# never reach the ledger, so SCWSC_PRUNE=0 writes the same bytes.
SCWSC_PRUNE=0 SCWSC_THREADS=1 "$solve" --rows 1000 --seed 11 --k 6 --coverage 0.5 \
  --algorithm cmc --audit-jsonl target/ci_audit_noprune.jsonl > /dev/null 2>&1
cmp target/ci_audit_t1.jsonl target/ci_audit_noprune.jsonl \
  || { echo "audit ledger differs across prune toggle"; exit 1; }

# Quality-regression gate (DESIGN.md §14): the committed schema-2 baseline
# carries certified greedy cost and lower bound per workload; the fresh
# quick recording must not regress either (checked even --counters-only).
cargo run --release -q -p scwsc-bench --bin scwsc_bench -- \
  diff BENCH_pr8.json target/BENCH_ci.json --counters-only

# flight-to-chrome smoke: the post-mortem dump from the resilience gate
# must convert to a loadable Chrome tracing JSON with real events.
cargo run --release -q -p scwsc-bench --bin scwsc_bench -- \
  flight-to-chrome target/ci_flight.jsonl target/ci_flight.chrome.json
python3 - target/ci_flight.chrome.json <<'EOF'
import json, sys
trace = json.load(open(sys.argv[1]))
events = trace["traceEvents"]
assert any(e["ph"] == "X" for e in events), "no duration spans"
assert any(e["ph"] == "i" for e in events), "no instant events"
assert any(e["ph"] == "M" for e in events), "no process names"
EOF
