#!/usr/bin/env bash
# Full CI gate: build, tests, formatting, lints. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

# Auto-dumped post-mortems from earlier local runs must never end up in a
# commit: the default dump name is trace-id-suffixed (and gitignored), but
# clear any legacy fixed-name dump too.
rm -f scwsc-flight.jsonl scwsc-*-flight.jsonl

cargo build --release
cargo test -q
cargo fmt --check
cargo clippy --workspace -- -D warnings

# Performance-snapshot smoke: one quick rep of the full workload registry,
# then the counter-exact diff against the committed baseline (wall-clock is
# too noisy to gate on in CI; counters are deterministic). DESIGN.md §10.
# Recorded serial so the baseline comparison is independent of the parallel
# layer.
SCWSC_THREADS=1 cargo run --release -q -p scwsc-bench --bin scwsc_bench -- \
  record --quick --label ci --out target/BENCH_ci.json
cargo run --release -q -p scwsc-bench --bin scwsc_bench -- \
  diff BENCH_seed.json target/BENCH_ci.json --counters-only

# Parallel determinism gate: the same smoke suite on 4 worker threads must
# reproduce the serial deterministic counters exactly (DESIGN.md §11) —
# this is the end-to-end check that chunked scans, speculative budget
# guessing, and telemetry replay leave the event stream bit-identical.
SCWSC_THREADS=4 cargo run --release -q -p scwsc-bench --bin scwsc_bench -- \
  record --quick --suite smoke --label ci-t4 --out target/BENCH_ci_t4.json
SCWSC_THREADS=1 cargo run --release -q -p scwsc-bench --bin scwsc_bench -- \
  record --quick --suite smoke --label ci-t1 --out target/BENCH_ci_t1.json
cargo run --release -q -p scwsc-bench --bin scwsc_bench -- \
  diff target/BENCH_ci_t1.json target/BENCH_ci_t4.json --counters-only

# Pruned-scan A/B gate (DESIGN.md §15): with the sketch-pruned scan
# forced off, the smoke suite must reproduce the pruned run's exact
# counters — pruning may only change *how* benefits are counted, never
# what any solver does. The scan_* advisory counters are note-level in
# the diff by design (they measure the pruning itself).
SCWSC_PRUNE=0 SCWSC_THREADS=1 cargo run --release -q -p scwsc-bench --bin scwsc_bench -- \
  record --quick --suite smoke --label ci-noprune --out target/BENCH_ci_noprune.json
cargo run --release -q -p scwsc-bench --bin scwsc_bench -- \
  diff target/BENCH_ci_t1.json target/BENCH_ci_noprune.json --counters-only

# Resilience gate (DESIGN.md §12). First the full test suite with the
# deterministic fault injector compiled in, including the snapshot test
# that keeps the retry/speculation counters out of the exact-diff set.
cargo test -q --workspace --features fault-inject
cargo test -q -p scwsc-bench \
  resilience_counters_stay_out_of_the_exact_diff_set

# Then two end-to-end smokes of the scwsc_solve degradation ladder on a
# 4-thread pool: a one-shot injected guess panic must be contained and
# retried to a complete solve (exit 0), and a tick-budget expiry must
# degrade with a certificate the binary itself re-verifies (exit 5).
cargo build --release -q -p scwsc-bench --features fault-inject
solve=target/release/scwsc_solve
# (stderr holds the contained panic's backtrace — expected noise)
SCWSC_THREADS=4 "$solve" --rows 2000 --k 6 --coverage 0.4 \
  --algorithm cmc --fault panicguess@1 > /dev/null 2> target/ci_fault.err
SCWSC_THREADS=4 "$solve" --rows 2000 --k 6 --coverage 0.4 \
  --algorithm cmc --max-ticks 10 > /dev/null 2> target/ci_degraded.err \
  && { echo "expected deadline degradation"; exit 1; } || code=$?
[ "$code" -eq 5 ] || { echo "expected exit 5, got $code"; exit 1; }
grep -q "certificate verified" target/ci_degraded.err \
  || { echo "missing certificate verification"; exit 1; }

# Flight-recorder smoke (DESIGN.md §13): a persistent injected fault must
# fail structured (exit 1) AND leave a line-oriented JSON flight dump —
# header with the latched trace id, events, trailing causal tree — for
# the post-mortem.
SCWSC_THREADS=4 "$solve" --rows 2000 --k 6 --coverage 0.4 \
  --algorithm cmc --fault failguess@1 --flight-dump target/ci_flight.jsonl \
  > /dev/null 2>> target/ci_fault.err \
  && { echo "expected fault exit"; exit 1; } || code=$?
[ "$code" -eq 1 ] || { echo "expected exit 1, got $code"; exit 1; }
python3 - target/ci_flight.jsonl <<'EOF'
import json, sys
lines = open(sys.argv[1]).read().splitlines()
assert len(lines) >= 2, "dump needs a header and a causal tree"
header = json.loads(lines[0])
assert header["flight"] == "scwsc" and header["version"] == 1, header
assert header["trace_id"] != "0000000000000000", "trace id latched"
for line in lines[1:]:
    json.loads(line)  # every line is one JSON object
assert "causal_tree" in json.loads(lines[-1]), "dump ends with the tree"
EOF

# Liveness-watchdog smoke (DESIGN.md §16): a fault-injected mid-solve
# stall (400 ms sleep at tick 5) must be caught by a 100 ms watchdog,
# which records a stall_detected event and auto-dumps the flight
# recording at that moment — while the solve itself still completes.
SCWSC_THREADS=1 "$solve" --rows 2000 --k 5 --fault stall@5:400 --watchdog 100 \
  --flight-dump target/ci_watchdog_flight.jsonl > /dev/null 2> target/ci_watchdog.err
grep -q "watchdog: 1 stall(s) detected" target/ci_watchdog.err \
  || { echo "watchdog missed the injected stall"; cat target/ci_watchdog.err; exit 1; }
grep -q '"kind": *"stall_detected"\|stall_detected' target/ci_watchdog_flight.jsonl.stall \
  || { echo "stall dump lacks the stall_detected event"; exit 1; }

# Soak smoke (DESIGN.md §16): five iterations of the smoke suite through
# the windowed-telemetry loop must hold every continuous-operation
# invariant — monotone counters, stable windowed quantiles, zero leaked
# allocator bytes, zero stalls — and leave a parsable JSONL timeline.
bench=target/release/scwsc_bench
SCWSC_THREADS=1 "$bench" soak --iters 5 --suite smoke \
  --timeline target/ci_soak_timeline.jsonl > target/ci_soak.out 2> /dev/null
grep -q "soak ok:.*0 stalls" target/ci_soak.out \
  || { echo "soak smoke failed"; cat target/ci_soak.out; exit 1; }
python3 - target/ci_soak_timeline.jsonl <<'EOF'
import json, sys
lines = open(sys.argv[1]).read().splitlines()
assert len(lines) == 5, f"expected 5 timeline lines, got {len(lines)}"
for i, line in enumerate(lines):
    row = json.loads(line)
    assert row["iter"] == i + 1 and row["stalls"] == 0, row
EOF

# Perf-trend gate (DESIGN.md §16): the committed BENCH_*.json history must
# load chronologically and no workload's latest median may regress >10%
# against its best-ever median.
"$bench" trend --gate > target/ci_trend.out \
  || { echo "trend gate flagged a regression"; cat target/ci_trend.out; exit 1; }
grep -q "median runtime" target/ci_trend.out \
  || { echo "trend output incomplete"; cat target/ci_trend.out; exit 1; }

# Regression-attribution golden (DESIGN.md §13): hand-perturb one span's
# total time in the quick snapshot; `diff --attribute` must name exactly
# that span as the top self-time mover.
python3 - target/BENCH_ci.json target/ci_perturbed.json <<'EOF'
import json, sys
snap = json.load(open(sys.argv[1]))
snap["workloads"][0]["spans"]["total_secs"] += 1000.0
json.dump(snap, open(sys.argv[2], "w"))
EOF
cargo run --release -q -p scwsc-bench --bin scwsc_bench -- \
  diff target/BENCH_ci.json target/ci_perturbed.json \
  --counters-only --attribute --top 3 > target/ci_attr.out
grep -A1 "span self-time movers" target/ci_attr.out | tail -1 \
  | grep -q '+1000\.0000s.*total' \
  || { echo "perturbed span is not the top mover"; cat target/ci_attr.out; exit 1; }

# Decision-audit golden smoke (DESIGN.md §14): --explain must narrate the
# ledger (winner, runners-up, margins, prices) and end with a certified
# quality line whose lower bound the binary derived from its own prices.
"$solve" --rows 300 --seed 7 --k 5 --coverage 0.5 --algorithm cmc \
  --explain 3 > target/ci_explain.out 2> /dev/null
for marker in "== decision audit ==" "runner-up" "margin" "charged " \
  "certified quality:" "LB "; do
  grep -q "$marker" target/ci_explain.out \
    || { echo "--explain output missing '$marker'"; cat target/ci_explain.out; exit 1; }
done

# Audit replay parity (DESIGN.md §14): the decision ledger is part of the
# deterministic event stream, so a 4-thread solve must write a
# byte-identical --audit-jsonl to the serial one.
SCWSC_THREADS=1 "$solve" --rows 1000 --seed 11 --k 6 --coverage 0.5 \
  --algorithm cmc --audit-jsonl target/ci_audit_t1.jsonl > /dev/null 2>&1
SCWSC_THREADS=4 "$solve" --rows 1000 --seed 11 --k 6 --coverage 0.5 \
  --algorithm cmc --audit-jsonl target/ci_audit_t4.jsonl > /dev/null 2>&1
cmp target/ci_audit_t1.jsonl target/ci_audit_t4.jsonl \
  || { echo "audit ledger differs across thread counts"; exit 1; }
# ... and across the prune toggle (DESIGN.md §15): skipped counts must
# never reach the ledger, so SCWSC_PRUNE=0 writes the same bytes.
SCWSC_PRUNE=0 SCWSC_THREADS=1 "$solve" --rows 1000 --seed 11 --k 6 --coverage 0.5 \
  --algorithm cmc --audit-jsonl target/ci_audit_noprune.jsonl > /dev/null 2>&1
cmp target/ci_audit_t1.jsonl target/ci_audit_noprune.jsonl \
  || { echo "audit ledger differs across prune toggle"; exit 1; }

# Quality-regression gate (DESIGN.md §14): the committed schema-2 baseline
# carries certified greedy cost and lower bound per workload; the fresh
# quick recording must not regress either (checked even --counters-only).
cargo run --release -q -p scwsc-bench --bin scwsc_bench -- \
  diff BENCH_pr8.json target/BENCH_ci.json --counters-only

# flight-to-chrome smoke: the post-mortem dump from the resilience gate
# must convert to a loadable Chrome tracing JSON with real events.
cargo run --release -q -p scwsc-bench --bin scwsc_bench -- \
  flight-to-chrome target/ci_flight.jsonl target/ci_flight.chrome.json
python3 - target/ci_flight.chrome.json <<'EOF'
import json, sys
trace = json.load(open(sys.argv[1]))
events = trace["traceEvents"]
assert any(e["ph"] == "X" for e in events), "no duration spans"
assert any(e["ph"] == "i" for e in events), "no instant events"
assert any(e["ph"] == "M" for e in events), "no process names"
EOF
