#!/usr/bin/env bash
# Full CI gate: build, tests, formatting, lints. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo fmt --check
cargo clippy --workspace -- -D warnings

# Performance-snapshot smoke: one quick rep of the full workload registry,
# then the counter-exact diff against the committed baseline (wall-clock is
# too noisy to gate on in CI; counters are deterministic). DESIGN.md §10.
# Recorded serial so the baseline comparison is independent of the parallel
# layer.
SCWSC_THREADS=1 cargo run --release -q -p scwsc-bench --bin scwsc_bench -- \
  record --quick --label ci --out target/BENCH_ci.json
cargo run --release -q -p scwsc-bench --bin scwsc_bench -- \
  diff BENCH_seed.json target/BENCH_ci.json --counters-only

# Parallel determinism gate: the same smoke suite on 4 worker threads must
# reproduce the serial deterministic counters exactly (DESIGN.md §11) —
# this is the end-to-end check that chunked scans, speculative budget
# guessing, and telemetry replay leave the event stream bit-identical.
SCWSC_THREADS=4 cargo run --release -q -p scwsc-bench --bin scwsc_bench -- \
  record --quick --suite smoke --label ci-t4 --out target/BENCH_ci_t4.json
SCWSC_THREADS=1 cargo run --release -q -p scwsc-bench --bin scwsc_bench -- \
  record --quick --suite smoke --label ci-t1 --out target/BENCH_ci_t1.json
cargo run --release -q -p scwsc-bench --bin scwsc_bench -- \
  diff target/BENCH_ci_t1.json target/BENCH_ci_t4.json --counters-only

# Resilience gate (DESIGN.md §12). First the full test suite with the
# deterministic fault injector compiled in, including the snapshot test
# that keeps the retry/speculation counters out of the exact-diff set.
cargo test -q --workspace --features fault-inject
cargo test -q -p scwsc-bench \
  resilience_counters_stay_out_of_the_exact_diff_set

# Then two end-to-end smokes of the scwsc_solve degradation ladder on a
# 4-thread pool: a one-shot injected guess panic must be contained and
# retried to a complete solve (exit 0), and a tick-budget expiry must
# degrade with a certificate the binary itself re-verifies (exit 5).
cargo build --release -q -p scwsc-bench --features fault-inject
solve=target/release/scwsc_solve
# (stderr holds the contained panic's backtrace — expected noise)
SCWSC_THREADS=4 "$solve" --rows 2000 --k 6 --coverage 0.4 \
  --algorithm cmc --fault panicguess@1 > /dev/null 2> target/ci_fault.err
SCWSC_THREADS=4 "$solve" --rows 2000 --k 6 --coverage 0.4 \
  --algorithm cmc --max-ticks 10 > /dev/null 2> target/ci_degraded.err \
  && { echo "expected deadline degradation"; exit 1; } || code=$?
[ "$code" -eq 5 ] || { echo "expected exit 5, got $code"; exit 1; }
grep -q "certificate verified" target/ci_degraded.err \
  || { echo "missing certificate verification"; exit 1; }
