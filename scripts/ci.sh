#!/usr/bin/env bash
# Full CI gate: build, tests, formatting, lints. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo fmt --check
cargo clippy --workspace -- -D warnings

# Performance-snapshot smoke: one quick rep of the full workload registry,
# then the counter-exact diff against the committed baseline (wall-clock is
# too noisy to gate on in CI; counters are deterministic). DESIGN.md §10.
# Recorded serial so the baseline comparison is independent of the parallel
# layer.
SCWSC_THREADS=1 cargo run --release -q -p scwsc-bench --bin scwsc_bench -- \
  record --quick --label ci --out target/BENCH_ci.json
cargo run --release -q -p scwsc-bench --bin scwsc_bench -- \
  diff BENCH_seed.json target/BENCH_ci.json --counters-only

# Parallel determinism gate: the same smoke suite on 4 worker threads must
# reproduce the serial deterministic counters exactly (DESIGN.md §11) —
# this is the end-to-end check that chunked scans, speculative budget
# guessing, and telemetry replay leave the event stream bit-identical.
SCWSC_THREADS=4 cargo run --release -q -p scwsc-bench --bin scwsc_bench -- \
  record --quick --suite smoke --label ci-t4 --out target/BENCH_ci_t4.json
SCWSC_THREADS=1 cargo run --release -q -p scwsc-bench --bin scwsc_bench -- \
  record --quick --suite smoke --label ci-t1 --out target/BENCH_ci_t1.json
cargo run --release -q -p scwsc-bench --bin scwsc_bench -- \
  diff target/BENCH_ci_t1.json target/BENCH_ci_t4.json --counters-only
