#!/usr/bin/env bash
# Full CI gate: build, tests, formatting, lints. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo fmt --check
cargo clippy --workspace -- -D warnings

# Performance-snapshot smoke: one quick rep of the full workload registry,
# then the counter-exact diff against the committed baseline (wall-clock is
# too noisy to gate on in CI; counters are deterministic). DESIGN.md §10.
cargo run --release -q -p scwsc-bench --bin scwsc_bench -- \
  record --quick --label ci --out target/BENCH_ci.json
cargo run --release -q -p scwsc-bench --bin scwsc_bench -- \
  diff BENCH_seed.json target/BENCH_ci.json --counters-only
