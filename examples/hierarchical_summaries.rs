//! Hierarchical patterns — the §II extension ("attribute tree hierarchies
//! or numerical ranges") implemented in `scwsc_patterns::hierarchy`.
//!
//! Scenario: sales transactions with a `Region` attribute organized into a
//! geography tree and a numeric `amount` measure binned into dyadic
//! ranges. The task: choose at most 4 segments to audit, covering ≥60% of
//! transactions while minimizing the total transaction value audited
//! (`CostFn::Sum`). Region-level patterns like `{Region=WestCoast, …}` cover
//! several leaf locations with a single (cheap) set — strictly more
//! options than the flat pattern cube.
//!
//! Run with: `cargo run --release --example hierarchical_summaries`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scwsc::patterns::hierarchy::{bin_numeric, hier_cwsc, HierarchicalSpace, Hierarchy};
use scwsc::prelude::*;

fn main() {
    // ---- Build a transactions table ------------------------------------
    let cities = [
        ("Seattle", "WestCoast"),
        ("Portland", "WestCoast"),
        ("SanFrancisco", "WestCoast"),
        ("Boston", "EastCoast"),
        ("NewYork", "EastCoast"),
        ("Miami", "EastCoast"),
        ("Chicago", "Midwest"),
        ("Detroit", "Midwest"),
    ];
    let products = ["laptop", "phone", "tablet", "monitor"];
    let mut rng = StdRng::seed_from_u64(11);
    let mut amounts: Vec<f64> = Vec::new();
    let mut rows: Vec<(usize, usize)> = Vec::new();
    for _ in 0..4_000 {
        let city = rng.gen_range(0..cities.len());
        let product = rng.gen_range(0..products.len());
        // Regional price levels: the west coast runs pricier.
        let base = match cities[city].1 {
            "WestCoast" => 900.0,
            "EastCoast" => 600.0,
            _ => 300.0,
        };
        amounts.push(base + rng.gen_range(0.0..400.0) + product as f64 * 50.0);
        rows.push((city, product));
    }
    // Bin the amount into 8 dyadic ranges and use the bin as a *pattern
    // attribute* (the paper's "numerical ranges"); the raw amount remains
    // the measure.
    let (bins, amount_hierarchy) = bin_numeric(&amounts, 8);

    let mut builder = Table::builder(&["City", "Product", "AmountBin"], "amount");
    for (i, &(city, product)) in rows.iter().enumerate() {
        builder
            .push_row(&[cities[city].0, products[product], &bins[i]], amounts[i])
            .unwrap();
    }
    let table = builder.build();

    // ---- Attach hierarchies --------------------------------------------
    let city_names: Vec<&str> = table.dictionary(0).iter().map(|(_, v)| v).collect();
    let mut geo = Hierarchy::flat(&city_names);
    for region in ["WestCoast", "EastCoast", "Midwest"] {
        let members: Vec<&str> = cities
            .iter()
            .filter(|(_, r)| *r == region)
            .map(|(c, _)| *c)
            .collect();
        geo.add_group(region, &members).unwrap();
    }
    let product_names: Vec<&str> = table.dictionary(1).iter().map(|(_, v)| v).collect();
    // Align the amount hierarchy's leaves with the dictionary order.
    let bin_names: Vec<&str> = table.dictionary(2).iter().map(|(_, v)| v).collect();
    let mut amount_h = Hierarchy::flat(&bin_names);
    // Rebuild the dyadic groups over the dictionary-ordered leaves.
    let _ = amount_hierarchy; // grouping below follows the same dyadic idea
    let mut level: Vec<String> = bin_names.iter().map(|s| (*s).to_owned()).collect();
    while level.len() > 2 {
        let mut next = Vec::new();
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                let name = format!("{}∪{}", pair[0], pair[1]);
                amount_h
                    .add_group(&name, &[&pair[0], &pair[1]])
                    .expect("fresh nodes");
                next.push(name);
            } else {
                next.push(pair[0].clone());
            }
        }
        level = next;
    }

    let space = HierarchicalSpace::new(
        &table,
        vec![geo, Hierarchy::flat(&product_names), amount_h],
        CostFn::Sum,
    );

    // ---- Summarize -------------------------------------------------------
    let (k, coverage) = (4, 0.6);
    let summary = hier_cwsc(&space, k, coverage, &mut Stats::new()).expect("feasible");
    println!(
        "hierarchical summary: {} patterns, weight {:.0}, covering {}/{}",
        summary.size(),
        summary.total_cost,
        summary.covered,
        table.num_rows()
    );
    for p in &summary.patterns {
        let n = space.benefit(p).len();
        println!("    {:55} ({n:4} transactions)", space.display(p));
    }

    // Compare with the flat pattern cube: hierarchies only add options, so
    // the hierarchical optimum is never worse.
    let flat_space = PatternSpace::new(&table, CostFn::Sum);
    let flat = opt_cwsc(&flat_space, k, coverage, &mut Stats::new()).expect("feasible");
    println!(
        "\nflat summary for comparison: {} patterns, weight {:.0}",
        flat.size(),
        flat.total_cost
    );
    assert!(summary.covered >= coverage_target(table.num_rows(), coverage));
    assert!(summary.size() <= k);
    assert!(
        summary.total_cost <= flat.total_cost,
        "hierarchies add options, never remove them"
    );
}
