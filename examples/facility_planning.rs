//! Facility planning over an arbitrary (non-patterned) set system.
//!
//! The introduction's motivating scenario: a city must pick at most `k`
//! hospital sites so that a desired fraction of the population lives near
//! one, minimizing total construction cost. Each candidate site is a set
//! (the neighbourhoods within its service radius) weighted by its
//! construction cost — size-constrained weighted set cover over a plain
//! `SetSystem`, no patterns involved.
//!
//! Run with: `cargo run --release --example facility_planning`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scwsc::prelude::*;

/// A synthetic city: neighbourhoods on a grid, candidate sites at random
/// positions with radius-dependent reach and land-price-dependent cost.
fn build_city(neighbourhoods: usize, sites: usize, seed: u64) -> (SetSystem, Vec<(f64, f64, f64)>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let positions: Vec<(f64, f64)> = (0..neighbourhoods)
        .map(|_| (rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)))
        .collect();
    let mut builder = SetSystem::builder(neighbourhoods);
    let mut site_info = Vec::with_capacity(sites + 1);
    for _ in 0..sites {
        let (x, y): (f64, f64) = (rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0));
        let radius: f64 = rng.gen_range(1.0..3.0);
        // Land near the centre (5,5) is pricier; bigger reach costs more.
        let centrality = 10.0 - ((x - 5.0).powi(2) + (y - 5.0).powi(2)).sqrt();
        let cost = 50.0 + 15.0 * centrality.max(0.0) + 40.0 * radius;
        let covered: Vec<u32> = positions
            .iter()
            .enumerate()
            .filter(|(_, &(px, py))| ((px - x).powi(2) + (py - y).powi(2)).sqrt() <= radius)
            .map(|(i, _)| i as u32)
            .collect();
        builder.add_set(covered, cost);
        site_info.push((x, y, cost));
    }
    // A "regional mega-hospital" reaching everyone, at enormous cost —
    // Definition 1's universe set, so a feasible plan always exists.
    builder.add_universe_set(5_000.0);
    site_info.push((5.0, 5.0, 5_000.0));
    (
        builder.build().expect("generated sites are valid"),
        site_info,
    )
}

fn main() {
    let (system, site_info) = build_city(500, 120, 42);
    let (k, coverage) = (6, 0.7);
    println!(
        "city: {} neighbourhoods, {} candidate sites (+1 mega-hospital fallback)",
        system.num_elements(),
        system.num_sets() - 1
    );
    println!(
        "plan: at most {k} facilities covering ≥{:.0}% of neighbourhoods\n",
        coverage * 100.0
    );

    // CWSC: at most k sites.
    let plan = cwsc(&system, k, coverage, &mut Stats::new()).expect("mega-hospital fallback");
    println!(
        "CWSC plan: {} sites, construction cost {:.0}, covering {}/{}",
        plan.size(),
        plan.total_cost(),
        plan.covered(),
        system.num_elements()
    );
    for &site in plan.sets() {
        let (x, y, cost) = site_info[site as usize];
        println!(
            "    site #{site:3} at ({x:4.1}, {y:4.1})  cost {cost:7.0}  reaches {:3} neighbourhoods",
            system.set(site).benefit()
        );
    }
    let req = Requirements::new(&system, k, coverage);
    assert!(verify(&system, &plan, req).is_valid());

    // CMC with provable bounds: ≤ (1+ε)k sites, cost within O(log k / ε).
    let params = CmcParams {
        discount_coverage: false,
        ..CmcParams::epsilon(k, coverage, 1.0, 0.5)
    };
    let guarded = cmc(&system, &params, &mut Stats::new()).expect("feasible");
    println!(
        "\nCMC plan (ε=0.5): {} sites, cost {:.0}, covering {}",
        guarded.solution.size(),
        guarded.solution.total_cost(),
        guarded.solution.covered()
    );
    assert!(guarded.solution.size() <= (1.5 * k as f64) as usize);

    // What prior art would do instead (Section III):
    let unbounded = greedy_weighted_set_cover(&system, coverage, &mut Stats::new()).unwrap();
    println!(
        "\nweighted set cover ignores the size bound: {} sites (cost {:.0})",
        unbounded.size(),
        unbounded.total_cost()
    );
    let cost_blind = greedy_max_coverage(&system, k, &mut Stats::new());
    println!(
        "max coverage ignores cost: {} sites covering {} but costing {:.0}",
        cost_blind.size(),
        cost_blind.covered(),
        cost_blind.total_cost()
    );

    // On a problem this small the exact optimum is computable:
    let optimal = exact_optimal(&system, k, coverage).expect("feasible");
    println!(
        "\nexact optimum: cost {:.0} — CWSC is within {:.1}% of it",
        optimal.total_cost(),
        100.0 * (plan.total_cost().value() / optimal.total_cost().value() - 1.0)
    );
    assert!(optimal.total_cost() <= plan.total_cost());
}
