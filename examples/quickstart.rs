//! Quickstart: the paper's running example, end to end.
//!
//! Reproduces every number the introduction and Section V derive from the
//! Table I entities data set:
//!
//! * partial weighted set cover at ŝ = 9/16 → 7 patterns, total cost 24;
//! * size-constrained optimum (k = 2) → {P6, P16}, total cost 27;
//! * cheapest two sets ignoring coverage → covers only 3/16;
//! * CWSC's greedy answer → {P16, P3}, total cost 28;
//! * CMC's budget-guessing walkthrough.
//!
//! Run with: `cargo run --release --example quickstart`

use scwsc::data::{entities_table, table2_pattern};
use scwsc::prelude::*;

fn main() {
    let table = entities_table();
    let space = PatternSpace::new(&table, CostFn::Max);
    let coverage = 9.0 / 16.0;
    println!(
        "Table I: {} entities over attributes {:?} with measure {:?}\n",
        table.num_rows(),
        table.attr_names(),
        table.measure_name()
    );

    // The full pattern collection (Table II) as a weighted set system.
    let m = enumerate_all(&table, CostFn::Max);
    println!("Table II: {} candidate patterns\n", m.num_patterns());

    // 1. Partial weighted set cover: cheapest, but 7 patterns.
    let wsc = greedy_weighted_set_cover(&m.system, coverage, &mut Stats::new())
        .expect("the all-ALL pattern guarantees feasibility");
    println!(
        "weighted set cover (no size bound): {} patterns, cost {}",
        wsc.size(),
        wsc.total_cost()
    );
    for p in m.solution_patterns(&wsc) {
        println!("    {}", p.display(&table));
    }

    // 2. The size-constrained optimum for k = 2: {P6, P16} at cost 27.
    let opt = exact_optimal(&m.system, 2, coverage).expect("feasible");
    println!(
        "\nsize-constrained optimum (k=2): cost {} covering {}/16",
        opt.total_cost(),
        opt.covered()
    );
    for p in m.solution_patterns(&opt) {
        println!("    {}", p.display(&table));
    }
    assert_eq!(opt.total_cost().value(), 27.0);

    // 3. Cheapest two sets with no coverage requirement cover almost nothing.
    let cheap2 = exact_optimal(&m.system, 2, 3.0 / 16.0).expect("feasible");
    println!(
        "\ncheapest 2 patterns (coverage requirement dropped to 3/16): cost {} covering {}/16",
        cheap2.total_cost(),
        cheap2.covered()
    );

    // 4. CWSC: at most k patterns, greedy, no cost guarantee — in practice
    //    one unit above the optimum here.
    let cwsc_sol = opt_cwsc(&space, 2, coverage, &mut Stats::new()).expect("feasible");
    println!("\nCWSC (k=2): {}", cwsc_sol.display(&space));
    assert_eq!(cwsc_sol.total_cost, 28.0);
    let p16 = table2_pattern(&table, 16).expect("P16 exists");
    assert_eq!(cwsc_sol.patterns[0], p16, "first pick is P16 {{B, ALL}}");

    // 5. CMC: guesses the optimal budget, geometric cost levels.
    let mut stats = Stats::new();
    let params = CmcParams {
        discount_coverage: false, // aim at the same 9/16 as CWSC
        ..CmcParams::classic(2, coverage, 1.0)
    };
    let cmc_sol = opt_cmc(&space, &params, &mut stats).expect("feasible");
    println!(
        "CMC  (k=2): {} (after {} budget guesses)",
        cmc_sol.display(&space),
        stats.budget_guesses
    );
    assert!(cmc_sol.covered >= 9);
    assert!(cmc_sol.size() <= 5 * 2, "Theorem 4 size bound");

    println!("\nAll of the paper's worked-example numbers check out.");
}
