//! Summarizing a network trace with a handful of patterns.
//!
//! The paper's experimental workload: TCP connection records with five
//! pattern attributes and the session length as the measure. The task —
//! "describe at least 40% of the traffic with at most 8 patterns, keeping
//! the summary's weight low" — is exactly size-constrained weighted set
//! cover; patterns like `{protocol=proto0, endstate=state2, *}` are the
//! human-readable summary.
//!
//! Run with: `cargo run --release --example network_summarization`

use scwsc::data::lbl::LblConfig;
use scwsc::prelude::*;

fn main() {
    let config = LblConfig {
        rows: 60_000,
        ..LblConfig::scaled(60_000)
    };
    let table = config.generate();
    println!(
        "synthetic LBL-like trace: {} connections, attributes {:?}",
        table.num_rows(),
        table.attr_names()
    );

    let space = PatternSpace::new(&table, CostFn::Max);
    let (k, coverage) = (8, 0.4);

    let mut stats = Stats::new();
    let summary = opt_cwsc(&space, k, coverage, &mut stats).expect("all-ALL pattern exists");
    println!(
        "\nCWSC summary (k={k}, coverage≥{:.0}%): {} patterns, weight {:.2}, covering {} rows",
        coverage * 100.0,
        summary.size(),
        summary.total_cost,
        summary.covered,
    );
    for p in &summary.patterns {
        let rows = space.benefit(p);
        println!(
            "    {:60} covers {:6} connections, weight {:9.2}",
            p.display(&table),
            rows.len(),
            space.cost(&rows)
        );
    }
    println!(
        "(considered {} of the pattern cube while building it)",
        stats.considered
    );

    // Compare against CMC on the same task.
    let params = CmcParams {
        discount_coverage: false,
        ..CmcParams::epsilon(k, coverage, 1.0, 1.0)
    };
    let cmc_summary = opt_cmc(&space, &params, &mut Stats::new()).expect("feasible");
    println!(
        "\nCMC summary: {} patterns, weight {:.2}, covering {} rows",
        cmc_summary.size(),
        cmc_summary.total_cost,
        cmc_summary.covered
    );

    // And against the cost-blind max-coverage heuristic (Section VI-C):
    // it reaches the coverage with one giant expensive pattern.
    let m = enumerate_all(&table, CostFn::Max);
    let blind = greedy_partial_max_coverage(&m.system, coverage, &mut Stats::new()).unwrap();
    println!(
        "cost-blind max coverage: {} pattern(s), weight {:.2} ({}x CWSC)",
        blind.size(),
        blind.total_cost(),
        (blind.total_cost().value() / summary.total_cost).round()
    );

    summary.verify(&space);
    assert!(summary.size() <= k);
    assert!(summary.covered >= coverage_target(table.num_rows(), coverage));
}
