//! The paper's future-work section (§VII), implemented: incremental
//! maintenance of a cover under arriving elements, and sets with multiple
//! weights per set.
//!
//! Scenario: a marketing team maintains a portfolio of at most `k`
//! campaigns that must always reach 60% of the customers seen so far;
//! customers stream in. Separately, each campaign carries two weights —
//! money cost and staff hours — and the team wants the trade-off frontier.
//!
//! Run with: `cargo run --release --example streaming_and_multiweight`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scwsc::sets::incremental::IncrementalCover;
use scwsc::sets::multiweight::{pareto_sweep, MultiWeightSystem};

fn main() {
    // ---- Part 1: incremental maintenance -------------------------------
    // 8 campaigns with fixed costs; campaign 7 is the "everyone" channel
    // (say, a TV spot) so a feasible portfolio always exists.
    let costs = [20.0, 25.0, 30.0, 18.0, 40.0, 35.0, 22.0, 400.0];
    let mut maintainer = IncrementalCover::new(&costs, 3, 0.55).expect("valid costs");

    let mut rng = StdRng::seed_from_u64(2026);
    let mut resolves_log = Vec::new();
    for customer in 0..2_000u32 {
        // Each customer is reachable by a few random campaigns plus the
        // universal channel.
        let mut reachable = vec![7u32];
        for c in 0..7u32 {
            if rng.gen_bool(0.35) {
                reachable.push(c);
            }
        }
        let resolved = maintainer.push_element(&reachable).expect("feasible");
        if resolved {
            resolves_log.push(customer);
        }
    }
    println!(
        "after 2000 arrivals: portfolio {:?} costing {:.0}, covering {}/{} (target {})",
        maintainer.solution(),
        maintainer.solution_cost(),
        maintainer.covered(),
        maintainer.num_elements(),
        maintainer.target()
    );
    println!(
        "re-solved only {} times (lazy maintenance); first few at arrivals {:?}",
        maintainer.resolves(),
        &resolves_log[..resolves_log.len().min(5)]
    );
    assert!(maintainer.covered() >= maintainer.target());
    assert!(maintainer.solution().len() <= 3);

    // ---- Part 2: multi-weight sets --------------------------------------
    // The same campaigns, now weighted by (money, staff-hours) — cheap
    // campaigns tend to be labour-hungry and vice versa.
    let snapshot = maintainer.snapshot();
    let mut mw = MultiWeightSystem::new(snapshot.num_elements(), 2);
    for (id, set) in snapshot.iter() {
        let money = costs[id as usize];
        let hours = 120.0 - 0.25 * money; // inverse correlation
        mw.add_set(set.members().iter().copied(), vec![money, hours])
            .expect("valid weights");
    }
    let lambdas: Vec<Vec<f64>> = (0..=10)
        .map(|i| {
            let w = f64::from(i) / 10.0;
            vec![w, 1.0 - w]
        })
        .collect();
    let frontier = pareto_sweep(&mw, 3, 0.55, &lambdas).expect("feasible");
    println!(
        "\nmoney/staff-hour trade-off frontier ({} points):",
        frontier.len()
    );
    for point in &frontier {
        println!(
            "    λ=({:.1},{:.1}) -> campaigns {:?}: money {:7.0}, staff-hours {:7.0}",
            point.lambda[0],
            point.lambda[1],
            point.solution.sets(),
            point.weights[0],
            point.weights[1]
        );
    }
    assert!(!frontier.is_empty());
}
