//! Attribute tree hierarchies — the §II extension the paper leaves open
//! ("Attribute tree hierarchies or numerical ranges may be used as well,
//! but are not considered in this paper").
//!
//! A [`Hierarchy`] organizes one attribute's active domain into a tree:
//! leaves are the dictionary's values, internal nodes are named groupings
//! (e.g. `West/Northwest/Southwest → "WestCoast"`), and the implicit root
//! is `ALL`. Patterns may then use internal nodes as values, covering
//! every record whose leaf value descends from the node. Benefit stays
//! anti-monotone along the enriched lattice, so the same candidate-pruning
//! ideas apply; [`HierarchicalSpace`] exposes the enriched
//! root/children/benefit operations and [`hier_cwsc`] runs the Figure 3
//! algorithm over them.
//!
//! Numeric attributes are handled by binning (see [`bin_numeric`]) plus a
//! dyadic range hierarchy over the bins, which realizes the paper's
//! "numerical ranges" remark.

use crate::cost_fn::CostFn;
use crate::dictionary::ValueId;
use crate::opt_cmc::opt_cmc_in;
use crate::opt_cwsc::opt_cwsc_in;
use crate::pattern::Pattern;
use crate::pattern_solution::PatternSolution;
use crate::space::LatticeSpace;
use crate::table::{RowId, Table};
use scwsc_core::algorithms::cmc::CmcParams;
use scwsc_core::telemetry::Observer;
#[cfg(test)]
use scwsc_core::BitSet;
use scwsc_core::{coverage_target, SolveError};

/// Node id within a [`Hierarchy`]. Ids `0..num_leaves` are the attribute's
/// dictionary value ids; higher ids are internal nodes.
pub type NodeId = u32;

/// A tree over one attribute's active domain.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    names: Vec<String>,
    parent: Vec<Option<NodeId>>,
    children: Vec<Vec<NodeId>>,
    num_leaves: usize,
}

/// Errors raised while building a [`Hierarchy`].
#[derive(Debug, Clone, PartialEq)]
pub enum HierarchyError {
    /// A group referenced an unknown member node.
    UnknownMember(String),
    /// A node was assigned two parents.
    AlreadyGrouped(String),
}

impl std::fmt::Display for HierarchyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HierarchyError::UnknownMember(name) => write!(f, "unknown member {name:?}"),
            HierarchyError::AlreadyGrouped(name) => {
                write!(f, "{name:?} already belongs to a group")
            }
        }
    }
}

impl std::error::Error for HierarchyError {}

impl Hierarchy {
    /// The trivial hierarchy: every leaf sits directly under `ALL`
    /// (equivalent to the paper's flat pattern semantics).
    pub fn flat(leaf_names: &[&str]) -> Hierarchy {
        Hierarchy {
            names: leaf_names.iter().map(|s| (*s).to_owned()).collect(),
            parent: vec![None; leaf_names.len()],
            children: vec![Vec::new(); leaf_names.len()],
            num_leaves: leaf_names.len(),
        }
    }

    /// Adds an internal node grouping existing nodes (leaves or earlier
    /// groups). Members must not already have a parent.
    pub fn add_group(&mut self, name: &str, members: &[&str]) -> Result<NodeId, HierarchyError> {
        let id = self.names.len() as NodeId;
        let mut member_ids = Vec::with_capacity(members.len());
        for m in members {
            let mid = self
                .names
                .iter()
                .position(|n| n == m)
                .ok_or_else(|| HierarchyError::UnknownMember((*m).to_owned()))?
                as NodeId;
            if self.parent[mid as usize].is_some() {
                return Err(HierarchyError::AlreadyGrouped((*m).to_owned()));
            }
            member_ids.push(mid);
        }
        self.names.push(name.to_owned());
        self.parent.push(None);
        self.children.push(member_ids.clone());
        for mid in member_ids {
            self.parent[mid as usize] = Some(id);
        }
        Ok(id)
    }

    /// Number of leaves (= the attribute's active-domain size).
    pub fn num_leaves(&self) -> usize {
        self.num_leaves
    }

    /// Total number of nodes (leaves + groups).
    pub fn num_nodes(&self) -> usize {
        self.names.len()
    }

    /// The display name of a node.
    pub fn name(&self, node: NodeId) -> &str {
        &self.names[node as usize]
    }

    /// Direct children of a node (empty for leaves).
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.children[node as usize]
    }

    /// Parent of a node (`None` for nodes directly under `ALL`).
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.parent[node as usize]
    }

    /// Nodes directly under the implicit `ALL` root.
    pub fn top_nodes(&self) -> Vec<NodeId> {
        (0..self.num_nodes() as NodeId)
            .filter(|&n| self.parent[n as usize].is_none())
            .collect()
    }

    /// Whether `leaf` descends from (or equals) `node`.
    pub fn descends(&self, leaf: ValueId, node: NodeId) -> bool {
        let mut cur = Some(leaf);
        while let Some(c) = cur {
            if c == node {
                return true;
            }
            cur = self.parent[c as usize];
        }
        false
    }

    /// The ancestor of `leaf` that is a **direct child** of `node`, i.e.
    /// the bucket `leaf` falls into when specializing `node` one level.
    /// `node == None` means the `ALL` root. Returns `None` when `leaf`
    /// does not descend through `node`.
    pub fn child_toward(&self, leaf: ValueId, node: Option<NodeId>) -> Option<NodeId> {
        let mut cur = leaf;
        loop {
            match (self.parent[cur as usize], node) {
                (p, Some(target)) if p == Some(target) => return Some(cur),
                (None, None) => return Some(cur),
                (Some(p), _) => cur = p,
                (None, Some(_)) => return None,
            }
        }
    }
}

/// Bins a numeric column into `bins` equi-width buckets, returning the
/// per-row bin labels and a dyadic range [`Hierarchy`] over them — the
/// paper's "numerical ranges" as patterns.
///
/// # Panics
/// Panics if `bins == 0` or the values are empty/non-finite.
pub fn bin_numeric(values: &[f64], bins: usize) -> (Vec<String>, Hierarchy) {
    assert!(bins > 0, "need at least one bin");
    assert!(!values.is_empty(), "need at least one value");
    assert!(
        values.iter().all(|v| v.is_finite()),
        "values must be finite"
    );
    let (min, max) = values
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    let width = ((max - min) / bins as f64).max(f64::MIN_POSITIVE);
    let labels: Vec<String> = (0..bins)
        .map(|i| {
            format!(
                "[{:.3},{:.3})",
                min + i as f64 * width,
                min + (i + 1) as f64 * width
            )
        })
        .collect();
    let per_row: Vec<String> = values
        .iter()
        .map(|&v| {
            let bin = (((v - min) / width) as usize).min(bins - 1);
            labels[bin].clone()
        })
        .collect();
    // Dyadic merge: pair adjacent nodes level by level.
    let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
    let mut h = Hierarchy::flat(&refs);
    let mut level: Vec<(NodeId, String)> = labels
        .iter()
        .enumerate()
        .map(|(i, l)| (i as NodeId, l.clone()))
        .collect();
    while level.len() > 2 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                let name = format!("{}∪{}", pair[0].1, pair[1].1);
                let id = h
                    .add_group(&name, &[&pair[0].1, &pair[1].1])
                    .expect("freshly built nodes are ungrouped");
                next.push((id, name));
            } else {
                next.push(pair[0].clone());
            }
        }
        level = next;
    }
    (per_row, h)
}

/// A pattern space enriched with per-attribute hierarchies. Pattern values
/// are [`NodeId`]s (leaves or internal nodes); `None` is still `ALL`.
pub struct HierarchicalSpace<'a> {
    table: &'a Table,
    hierarchies: Vec<Hierarchy>,
    cost_fn: CostFn,
}

impl<'a> HierarchicalSpace<'a> {
    /// Wraps a table with one hierarchy per attribute.
    ///
    /// # Panics
    /// Panics if the hierarchy count or leaf counts do not match the
    /// table's attributes/dictionaries.
    pub fn new(table: &'a Table, hierarchies: Vec<Hierarchy>, cost_fn: CostFn) -> Self {
        assert_eq!(
            hierarchies.len(),
            table.num_attrs(),
            "one hierarchy per attribute"
        );
        for (attr, h) in hierarchies.iter().enumerate() {
            assert_eq!(
                h.num_leaves(),
                table.dictionary(attr).len(),
                "hierarchy leaves must match attribute {attr}'s domain"
            );
        }
        HierarchicalSpace {
            table,
            hierarchies,
            cost_fn,
        }
    }

    /// Flat hierarchies everywhere: behaves exactly like [`PatternSpace`].
    ///
    /// [`PatternSpace`]: crate::space::PatternSpace
    pub fn flat(table: &'a Table, cost_fn: CostFn) -> Self {
        let hierarchies = (0..table.num_attrs())
            .map(|a| {
                let names: Vec<&str> = table.dictionary(a).iter().map(|(_, v)| v).collect();
                Hierarchy::flat(&names)
            })
            .collect();
        HierarchicalSpace::new(table, hierarchies, cost_fn)
    }

    /// The underlying table.
    pub fn table(&self) -> &'a Table {
        self.table
    }

    /// The hierarchy of attribute `attr`.
    pub fn hierarchy(&self, attr: usize) -> &Hierarchy {
        &self.hierarchies[attr]
    }

    /// The all-wildcards pattern.
    pub fn root(&self) -> Pattern {
        Pattern::all_wildcards(self.table.num_attrs())
    }

    /// Whether `row` matches `pattern` (leaf values descend from every
    /// non-wildcard node).
    pub fn matches(&self, pattern: &Pattern, row: RowId) -> bool {
        pattern.values().iter().enumerate().all(|(attr, v)| {
            v.is_none_or(|node| self.hierarchies[attr].descends(self.table.value(row, attr), node))
        })
    }

    /// `Ben(p)` by table scan (hierarchical postings are materialized by
    /// the solver via bucketing, so a scan here is only used for roots,
    /// verification, and tests).
    pub fn benefit(&self, pattern: &Pattern) -> Vec<RowId> {
        (0..self.table.num_rows() as RowId)
            .filter(|&r| self.matches(pattern, r))
            .collect()
    }

    /// `Cost(p)` over its benefit rows.
    pub fn cost(&self, rows: &[RowId]) -> f64 {
        self.cost_fn.evaluate(self.table, rows)
    }

    /// The non-empty children of `pattern`: each `ALL` specializes to the
    /// hierarchy's top nodes, each internal node to its children, and
    /// leaves do not specialize. Children are bucketed from the parent's
    /// rows, so each comes with its exact benefit set.
    pub fn children_with_rows(
        &self,
        pattern: &Pattern,
        parent_rows: &[RowId],
    ) -> Vec<(Pattern, Vec<RowId>)> {
        let mut out = Vec::new();
        for attr in 0..pattern.num_attrs() {
            let h = &self.hierarchies[attr];
            let current = pattern.get(attr);
            if let Some(node) = current {
                if h.children(node).is_empty() {
                    continue; // leaf: fully specialized
                }
            }
            let mut buckets: crate::fxhash::FxHashMap<NodeId, Vec<RowId>> =
                crate::fxhash::FxHashMap::default();
            for &row in parent_rows {
                let leaf = self.table.value(row, attr);
                if let Some(child) = h.child_toward(leaf, current) {
                    buckets.entry(child).or_default().push(row);
                }
            }
            let mut nodes: Vec<NodeId> = buckets.keys().copied().collect();
            nodes.sort_unstable();
            for node in nodes {
                let rows = buckets.remove(&node).expect("key from map");
                let mut vals = pattern.values().to_vec();
                vals[attr] = Some(node);
                out.push((Pattern::new(vals), rows));
            }
        }
        out
    }

    /// The parents of a pattern in the enriched lattice: each non-`ALL`
    /// node generalizes to its hierarchy parent (or `ALL` for top nodes).
    pub fn parents(&self, pattern: &Pattern) -> Vec<Pattern> {
        let mut out = Vec::new();
        for (attr, v) in pattern.values().iter().enumerate() {
            if let Some(node) = v {
                let mut vals = pattern.values().to_vec();
                vals[attr] = self.hierarchies[attr].parent(*node);
                out.push(Pattern::new(vals));
            }
        }
        out
    }

    /// Renders a pattern with hierarchy node names.
    pub fn display(&self, pattern: &Pattern) -> String {
        let parts: Vec<String> = pattern
            .values()
            .iter()
            .enumerate()
            .map(|(attr, v)| {
                let name = match v {
                    Some(node) => self.hierarchies[attr].name(*node),
                    None => "ALL",
                };
                format!("{}={}", self.table.attr_names()[attr], name)
            })
            .collect();
        format!("{{{}}}", parts.join(", "))
    }
}

/// Materializes every non-empty pattern of the *hierarchical* lattice —
/// the unoptimized path for hierarchy-enriched spaces, used by the
/// differential tests (each record contributes one pattern per combination
/// of its values' ancestor chains, `ALL` included).
pub fn enumerate_hierarchical(
    space: &HierarchicalSpace<'_>,
) -> crate::enumerate::MaterializedPatterns {
    use crate::fxhash::FxHashMap;
    let table = space.table();
    let j = table.num_attrs();
    let mut ben: FxHashMap<Pattern, Vec<RowId>> = FxHashMap::default();
    // Per attribute, per leaf: the generalization chain (leaf, ancestors…, ALL).
    let chains: Vec<Vec<Vec<Option<NodeId>>>> = (0..j)
        .map(|attr| {
            let h = space.hierarchy(attr);
            (0..h.num_leaves() as NodeId)
                .map(|leaf| {
                    let mut chain: Vec<Option<NodeId>> = Vec::new();
                    let mut cur = Some(leaf);
                    while let Some(c) = cur {
                        chain.push(Some(c));
                        cur = h.parent(c);
                    }
                    chain.push(None); // ALL
                    chain
                })
                .collect()
        })
        .collect();
    let mut stack: Vec<Option<NodeId>> = vec![None; j];
    for row in 0..table.num_rows() as RowId {
        // Cartesian product over per-attribute chains, recursively.
        fn recurse(
            attr: usize,
            j: usize,
            row: RowId,
            table: &Table,
            chains: &[Vec<Vec<Option<NodeId>>>],
            stack: &mut Vec<Option<NodeId>>,
            ben: &mut crate::fxhash::FxHashMap<Pattern, Vec<RowId>>,
        ) {
            if attr == j {
                ben.entry(Pattern::new(stack.clone()))
                    .or_default()
                    .push(row);
                return;
            }
            let leaf = table.value(row, attr);
            for &node in &chains[attr][leaf as usize] {
                stack[attr] = node;
                recurse(attr + 1, j, row, table, chains, stack, ben);
            }
        }
        recurse(0, j, row, table, &chains, &mut stack, &mut ben);
    }
    ben.entry(Pattern::all_wildcards(j)).or_default();
    let mut patterns: Vec<Pattern> = ben.keys().cloned().collect();
    patterns.sort_unstable();
    let mut builder = scwsc_core::SetSystem::builder(table.num_rows());
    for p in &patterns {
        let rows = &ben[p];
        builder.add_set(rows.iter().copied(), space.cost(rows));
    }
    let system = builder
        .build()
        .expect("row ids in range, costs finite by construction");
    crate::enumerate::MaterializedPatterns { patterns, system }
}

impl LatticeSpace for HierarchicalSpace<'_> {
    fn table(&self) -> &Table {
        self.table
    }

    fn root(&self) -> Pattern {
        HierarchicalSpace::root(self)
    }

    fn cost(&self, rows: &[RowId]) -> f64 {
        HierarchicalSpace::cost(self, rows)
    }

    fn children_with_rows(
        &self,
        pattern: &Pattern,
        parent_rows: &[RowId],
    ) -> Vec<(Pattern, Vec<RowId>)> {
        HierarchicalSpace::children_with_rows(self, pattern, parent_rows)
    }

    fn parents(&self, pattern: &Pattern) -> Vec<Pattern> {
        HierarchicalSpace::parents(self, pattern)
    }

    fn num_parents(&self, pattern: &Pattern) -> usize {
        // One parent per non-wildcard attribute (step it up one
        // hierarchy level, which may be the wildcard root).
        pattern.specificity()
    }

    fn benefit(&self, pattern: &Pattern) -> Vec<RowId> {
        HierarchicalSpace::benefit(self, pattern)
    }
}

/// Figure 3's optimized CWSC over a hierarchical space: at most `k`
/// (possibly hierarchical) patterns covering `⌈coverage_fraction·n⌉`
/// records. Same algorithm as [`crate::opt_cwsc::opt_cwsc`], with lattice
/// navigation delegated to the hierarchies.
pub fn hier_cwsc<O: Observer + ?Sized>(
    space: &HierarchicalSpace<'_>,
    k: usize,
    coverage_fraction: f64,
    obs: &mut O,
) -> Result<PatternSolution, SolveError> {
    if k == 0 {
        return Err(SolveError::ZeroSizeBound);
    }
    let target = coverage_target(space.table().num_rows(), coverage_fraction);
    opt_cwsc_in(space, k, target, obs)
}

/// Figure 4's optimized CMC over a hierarchical space — same guarantees as
/// [`crate::opt_cmc::opt_cmc`], with region/range nodes available as sets.
pub fn hier_cmc<O: Observer + ?Sized>(
    space: &HierarchicalSpace<'_>,
    params: &CmcParams,
    obs: &mut O,
) -> Result<PatternSolution, SolveError> {
    opt_cmc_in(space, params, obs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opt_cwsc::opt_cwsc;
    use crate::space::PatternSpace;
    use scwsc_core::Stats;

    /// Entities-like table with a regional structure over Location.
    fn table() -> Table {
        let mut b = Table::builder(&["Type", "Location"], "Cost");
        for (t, l, c) in [
            ("A", "West", 10.0),
            ("A", "Northwest", 20.0),
            ("B", "Southwest", 24.0),
            ("B", "East", 7.0),
            ("A", "Northeast", 32.0),
            ("B", "Southeast", 3.0),
            ("A", "West", 5.0),
            ("B", "Northwest", 4.0),
        ] {
            b.push_row(&[t, l], c).unwrap();
        }
        b.build()
    }

    fn location_hierarchy(t: &Table) -> Hierarchy {
        let names: Vec<&str> = t.dictionary(1).iter().map(|(_, v)| v).collect();
        let mut h = Hierarchy::flat(&names);
        h.add_group("WestCoast", &["West", "Northwest", "Southwest"])
            .unwrap();
        h.add_group("EastCoast", &["East", "Northeast", "Southeast"])
            .unwrap();
        h
    }

    fn space(t: &Table) -> HierarchicalSpace<'_> {
        let type_names: Vec<&str> = t.dictionary(0).iter().map(|(_, v)| v).collect();
        HierarchicalSpace::new(
            t,
            vec![Hierarchy::flat(&type_names), location_hierarchy(t)],
            CostFn::Max,
        )
    }

    #[test]
    fn hierarchy_structure() {
        let t = table();
        let h = location_hierarchy(&t);
        assert_eq!(h.num_leaves(), 6);
        assert_eq!(h.num_nodes(), 8);
        let west_coast = 6;
        assert_eq!(h.name(west_coast), "WestCoast");
        assert_eq!(h.children(west_coast).len(), 3);
        assert_eq!(h.top_nodes(), vec![6, 7]);
        let west = t.dictionary(1).lookup("West").unwrap();
        assert!(h.descends(west, west_coast));
        assert!(!h.descends(west, 7));
        assert!(h.descends(west, west));
    }

    #[test]
    fn add_group_validation() {
        let mut h = Hierarchy::flat(&["a", "b"]);
        assert!(matches!(
            h.add_group("g", &["zzz"]),
            Err(HierarchyError::UnknownMember(_))
        ));
        h.add_group("g", &["a"]).unwrap();
        assert!(matches!(
            h.add_group("g2", &["a"]),
            Err(HierarchyError::AlreadyGrouped(_))
        ));
    }

    #[test]
    fn child_toward_buckets_correctly() {
        let t = table();
        let h = location_hierarchy(&t);
        let west = t.dictionary(1).lookup("West").unwrap();
        // Under ALL, West buckets into WestCoast (node 6).
        assert_eq!(h.child_toward(west, None), Some(6));
        // Under WestCoast, West buckets into itself (a leaf child).
        assert_eq!(h.child_toward(west, Some(6)), Some(west));
        // West does not descend through EastCoast.
        assert_eq!(h.child_toward(west, Some(7)), None);
    }

    #[test]
    fn hierarchical_pattern_matches_region() {
        let t = table();
        let sp = space(&t);
        let p = Pattern::new(vec![None, Some(6)]); // {ALL, WestCoast}
        let rows = sp.benefit(&p);
        // West(0), Northwest(1), Southwest(2), West(6), Northwest(7)
        assert_eq!(rows, vec![0, 1, 2, 6, 7]);
        assert_eq!(sp.cost(&rows), 24.0);
        assert!(sp.display(&p).contains("Location=WestCoast"));
    }

    #[test]
    fn children_expand_hierarchy_levels() {
        let t = table();
        let sp = space(&t);
        let root = sp.root();
        let rows = sp.benefit(&root);
        let children = sp.children_with_rows(&root, &rows);
        // Type: A, B; Location: WestCoast, EastCoast (top nodes only).
        let names: Vec<String> = children.iter().map(|(p, _)| sp.display(p)).collect();
        assert!(names.iter().any(|n| n.contains("WestCoast")), "{names:?}");
        assert!(names.iter().any(|n| n.contains("EastCoast")), "{names:?}");
        assert!(
            !names.iter().any(|n| n.contains("Location=West,")),
            "leaves appear only below their region: {names:?}"
        );
        // Expanding {ALL, WestCoast} yields the region's leaves.
        let (wc, wc_rows) = children
            .iter()
            .find(|(p, _)| sp.display(p).contains("WestCoast"))
            .unwrap();
        let grand = sp.children_with_rows(wc, wc_rows);
        assert!(grand
            .iter()
            .any(|(p, _)| sp.display(p).contains("Location=West}")));
    }

    #[test]
    fn parents_climb_the_hierarchy() {
        let t = table();
        let sp = space(&t);
        let west = t.dictionary(1).lookup("West").unwrap();
        let p = Pattern::new(vec![None, Some(west)]);
        let parents = sp.parents(&p);
        assert_eq!(parents.len(), 1);
        assert_eq!(parents[0], Pattern::new(vec![None, Some(6)])); // WestCoast
        let q = Pattern::new(vec![None, Some(6)]);
        assert_eq!(sp.parents(&q), vec![Pattern::all_wildcards(2)]);
    }

    #[test]
    fn hier_cwsc_can_use_region_patterns() {
        let t = table();
        let sp = space(&t);
        let sol = hier_cwsc(&sp, 2, 0.6, &mut Stats::new()).unwrap();
        assert!(sol.size() <= 2);
        assert!(sol.covered >= 5);
        // Recompute coverage/cost independently.
        let mut covered = BitSet::new(t.num_rows());
        let mut cost = 0.0;
        for p in &sol.patterns {
            let rows = sp.benefit(p);
            cost += sp.cost(&rows);
            for r in rows {
                covered.insert(r as usize);
            }
        }
        assert_eq!(covered.count_ones(), sol.covered);
        assert!((cost - sol.total_cost).abs() < 1e-9);
    }

    #[test]
    fn flat_hierarchy_matches_plain_pattern_space() {
        let t = table();
        let flat = HierarchicalSpace::flat(&t, CostFn::Max);
        let plain = PatternSpace::new(&t, CostFn::Max);
        for (k, s) in [(2usize, 0.5f64), (3, 0.8), (1, 1.0)] {
            let a = hier_cwsc(&flat, k, s, &mut Stats::new());
            let b = opt_cwsc(&plain, k, s, &mut Stats::new());
            match (a, b) {
                (Ok(x), Ok(y)) => {
                    assert_eq!(x.patterns, y.patterns, "k={k} s={s}");
                    assert_eq!(x.covered, y.covered);
                }
                (Err(x), Err(y)) => assert_eq!(x, y),
                (x, y) => panic!("flat {x:?} vs plain {y:?}"),
            }
        }
    }

    #[test]
    fn region_patterns_can_beat_flat_cost() {
        // A region pattern covers several leaves with one (cheap) set; the
        // flat space would need the expensive type-level pattern instead.
        let t = table();
        let sp = space(&t);
        let hier = hier_cwsc(&sp, 1, 0.6, &mut Stats::new()).unwrap();
        let plain_sp = PatternSpace::new(&t, CostFn::Max);
        let flat = opt_cwsc(&plain_sp, 1, 0.6, &mut Stats::new()).unwrap();
        assert!(
            hier.total_cost <= flat.total_cost,
            "hierarchy adds options, never removes them: {} vs {}",
            hier.total_cost,
            flat.total_cost
        );
    }

    #[test]
    fn hierarchical_enumeration_contains_region_patterns() {
        let t = table();
        let sp = space(&t);
        let m = enumerate_hierarchical(&sp);
        assert!(m.system.has_universe_set());
        // {ALL, WestCoast} must exist with the scan's benefit set.
        let wc = Pattern::new(vec![None, Some(6)]);
        let id = m.id_of(&wc).expect("region pattern materialized");
        assert_eq!(
            m.system.members(id).to_vec(),
            sp.benefit(&wc),
            "enumerated rows must match the scan"
        );
        // Every enumerated pattern's rows match a scan.
        for (i, p) in m.patterns.iter().enumerate() {
            assert_eq!(m.system.members(i as u32).to_vec(), sp.benefit(p));
        }
        // More patterns than the flat cube (regions add options).
        let flat = crate::enumerate::enumerate_all(&t, CostFn::Max);
        assert!(m.num_patterns() > flat.num_patterns());
    }

    #[test]
    fn hier_cwsc_matches_unoptimized_over_hierarchical_cube() {
        use scwsc_core::algorithms::cwsc;
        let t = table();
        let sp = space(&t);
        let m = enumerate_hierarchical(&sp);
        for (k, s) in [(1usize, 0.5f64), (2, 0.6), (3, 0.9), (2, 1.0)] {
            let opt = hier_cwsc(&sp, k, s, &mut Stats::new());
            let unopt = cwsc(&m.system, k, s, &mut Stats::new());
            match (opt, unopt) {
                (Ok(o), Ok(u)) => {
                    let u_patterns: Vec<&Pattern> = m.solution_patterns(&u);
                    assert_eq!(
                        o.patterns.iter().collect::<Vec<_>>(),
                        u_patterns,
                        "k={k} s={s}"
                    );
                    assert_eq!(o.covered, u.covered());
                }
                (Err(a), Err(b)) => assert_eq!(a, b),
                (a, b) => panic!("k={k} s={s}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn hier_cmc_meets_bounds_and_verifies() {
        let t = table();
        let sp = space(&t);
        let params = CmcParams {
            discount_coverage: false,
            ..CmcParams::classic(2, 0.6, 1.0)
        };
        let sol = hier_cmc(&sp, &params, &mut Stats::new()).unwrap();
        assert!(sol.size() <= 10, "5k bound");
        assert!(sol.covered >= 5);
        // Independent recomputation over the hierarchical space.
        let mut covered = BitSet::new(t.num_rows());
        let mut cost = 0.0;
        for p in &sol.patterns {
            let rows = sp.benefit(p);
            cost += sp.cost(&rows);
            for r in rows {
                covered.insert(r as usize);
            }
        }
        assert_eq!(covered.count_ones(), sol.covered);
        assert!((cost - sol.total_cost).abs() < 1e-9);
    }

    #[test]
    fn hier_cmc_flat_matches_plain_opt_cmc() {
        let t = table();
        let flat = HierarchicalSpace::flat(&t, CostFn::Max);
        let plain = PatternSpace::new(&t, CostFn::Max);
        let params = CmcParams::classic(2, 0.7, 1.0);
        let a = hier_cmc(&flat, &params, &mut Stats::new()).unwrap();
        let b = crate::opt_cmc::opt_cmc(&plain, &params, &mut Stats::new()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn bin_numeric_builds_dyadic_ranges() {
        let values = [1.0, 2.0, 3.5, 9.9, 5.0, 7.2, 0.0, 10.0];
        let (labels, h) = bin_numeric(&values, 8);
        assert_eq!(labels.len(), values.len());
        assert_eq!(h.num_leaves(), 8);
        assert!(h.num_nodes() > 8, "internal range nodes exist");
        // Every leaf reaches a top node.
        for leaf in 0..8u32 {
            assert!(h.child_toward(leaf, None).is_some());
        }
        // Top level has exactly two nodes (the dyadic halves).
        assert_eq!(h.top_nodes().len(), 2);
    }

    #[test]
    #[should_panic(expected = "hierarchy leaves")]
    fn leaf_count_mismatch_panics() {
        let t = table();
        let bad = Hierarchy::flat(&["only-one"]);
        let type_names: Vec<&str> = t.dictionary(0).iter().map(|(_, v)| v).collect();
        HierarchicalSpace::new(&t, vec![Hierarchy::flat(&type_names), bad], CostFn::Max);
    }
}
