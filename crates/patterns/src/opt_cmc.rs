//! Optimized Cheap Max Coverage for patterned sets — Figure 4.
//!
//! The general CMC (Fig. 1) scans every set per budget guess. The
//! optimized version walks the lattice top-down instead: the candidate set
//! `C` starts with the all-wildcards pattern; the globally largest
//! marginal-benefit candidate is popped, and is either *selected* (if its
//! cost level under the current budget `B` still has quota, lines 21–29)
//! or *visited* (line 31) — and only visited patterns have their children
//! expanded, each child entering `C` once all of its parents have been
//! visited (lines 32–35). Children of selected patterns never need
//! expansion: their benefit sets are already fully covered.
//!
//! Unlike optimized CWSC, this is *not* step-identical to Fig. 1 — the
//! paper's Fig. 4 picks the global benefit argmax across levels rather
//! than exhausting levels in order (see DESIGN.md §3) — but it carries the
//! same Theorem 4/5 guarantees, which is what the tests check.
//!
//! Implementation note: Fig. 4 recomputes `Cost(m)` and `Ben(m)` afresh on
//! every budget guess. Benefit sets and costs do not depend on the budget,
//! so this implementation materializes each pattern once and reuses it
//! across guesses — the walk, selections, and the per-guess "patterns
//! considered" count (Fig. 6's metric) are exactly those of the
//! pseudocode, only the redundant recomputation is gone.

use crate::fxhash::FxHashMap;
use crate::pattern::Pattern;
use crate::pattern_solution::PatternSolution;
use crate::space::{LatticeSpace, PatternSpace};
use crate::table::RowId;
use scwsc_core::algorithms::cmc::{CmcParams, Levels};
use scwsc_core::engine::{
    panic_message, Certificate, Deadline, DegradeReason, Degraded, EngineError, SolveOutcome,
};
use scwsc_core::parallel::prune_from_env;
use scwsc_core::telemetry::{
    audit, pack_k_target, EventLog, Observer, PhaseSpan, PruneReason, ThreadLocalTelemetry,
    TraceId, PHASE_GUESS, PHASE_SCAN, PHASE_TOTAL,
};
use scwsc_core::{coverage_target, BitSet, SolveError, ThreadPool};
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Minimum row-list length before a stale-pop recount fans out over the
/// pool; below this the chunking overhead exceeds the count itself.
const PAR_RECOUNT_MIN: usize = 4096;
/// Minimum number of newly eligible children before their benefit
/// recounts fan out over the pool.
const PAR_CHILDREN_MIN: usize = 4;
/// Maximum heap-entry staleness (in selections) served by the epoch-delta
/// refresh; older entries fall back to a full blocked recount. Each delta
/// round costs one `O(n/64)` intersection, so past a few rounds the full
/// difference count is cheaper.
const DELTA_MAX_ROUNDS: usize = 4;

/// Runs the optimized CMC (Fig. 4) over a pattern space.
///
/// Parameters mirror [`scwsc_core::algorithms::cmc()`]: the schedule bounds
/// the solution size (`5k` classic, `(1+ε)k` for the ε-schedule) and the
/// coverage target is `(1−1/e)·ŝ·n` unless `params.discount_coverage` is
/// unset.
///
/// Each pattern examination (Fig. 4 lines 12 and 35), the Figure 6 metric,
/// is reported to `obs` as a `benefit_computed` event; budget guesses
/// arrive as `guess_started` events. Passing `&mut Stats` keeps the legacy
/// counters.
pub fn opt_cmc<O: Observer + ?Sized>(
    space: &PatternSpace<'_>,
    params: &CmcParams,
    obs: &mut O,
) -> Result<PatternSolution, SolveError> {
    opt_cmc_in(space, params, obs)
}

/// The Figure 4 algorithm over any [`LatticeSpace`] — the flat pattern
/// cube or the hierarchy-enriched lattice of
/// [`crate::hierarchy::HierarchicalSpace`].
pub fn opt_cmc_in<S: LatticeSpace, O: Observer + ?Sized>(
    space: &S,
    params: &CmcParams,
    obs: &mut O,
) -> Result<PatternSolution, SolveError> {
    solve(space, params, None, obs)
}

/// [`opt_cmc`] with the benefit recounts run on a thread pool.
///
/// The lattice walk itself stays single-threaded — the heap pop order
/// *is* the algorithm and every step mutates the shared lattice cache —
/// so the observer event stream, the walk, and the solution are identical
/// to [`opt_cmc`] for any thread count. The pool accelerates the two pure
/// fan-outs inside a step: stale-pop recounts over long row lists, and
/// the benefit scoring of a visit's newly eligible children. There is no
/// cross-budget speculation here (each guess reuses the previous guess's
/// lattice materializations). A serial pool delegates outright.
pub fn opt_cmc_on<O: Observer + ?Sized>(
    space: &PatternSpace<'_>,
    params: &CmcParams,
    pool: &ThreadPool,
    obs: &mut O,
) -> Result<PatternSolution, SolveError> {
    opt_cmc_in_on(space, params, pool, obs)
}

/// [`opt_cmc_in`] with the benefit recounts run on a thread pool; see
/// [`opt_cmc_on`].
pub fn opt_cmc_in_on<S: LatticeSpace, O: Observer + ?Sized>(
    space: &S,
    params: &CmcParams,
    pool: &ThreadPool,
    obs: &mut O,
) -> Result<PatternSolution, SolveError> {
    let pool = if pool.is_serial() { None } else { Some(pool) };
    solve(space, params, pool, obs)
}

/// [`opt_cmc`] under a [`Deadline`]: the resilience-engine entry point
/// (DESIGN.md §12). See [`opt_cmc_in_within`].
pub fn opt_cmc_within<O: Observer + ?Sized>(
    space: &PatternSpace<'_>,
    params: &CmcParams,
    pool: &ThreadPool,
    deadline: &Deadline,
    obs: &mut O,
) -> Result<SolveOutcome<PatternSolution>, EngineError> {
    opt_cmc_in_within(space, params, pool, deadline, obs)
}

/// [`opt_cmc_in_on`] under a [`Deadline`], over any [`LatticeSpace`].
///
/// One work tick is consumed per heap pop. On expiry the patterns
/// selected so far in the in-flight budget guess return as
/// [`SolveOutcome::Degraded`] with a [`Certificate`] (including which
/// level quotas were exhausted) that
/// [`verify_certificate_in`](crate::pattern_solution::verify_certificate_in)
/// re-checks.
///
/// Panic isolation: each budget guess runs under `catch_unwind` with its
/// telemetry in a private [`EventLog`] (replayed only on completion); a
/// panicked guess is retried once (counted by the `guesses_retried`
/// telemetry event — safe because the lattice cache is append-only and
/// budget-independent) and a second panic surfaces as
/// [`EngineError::Panicked`]. There is no cross-guess speculation here,
/// and the lattice walk is single-threaded (the pool only accelerates
/// benefit recounts, which do not tick), so outcome classification and
/// tick streams are identical for any thread count.
pub fn opt_cmc_in_within<S: LatticeSpace, O: Observer + ?Sized>(
    space: &S,
    params: &CmcParams,
    pool: &ThreadPool,
    deadline: &Deadline,
    obs: &mut O,
) -> Result<SolveOutcome<PatternSolution>, EngineError> {
    if params.k == 0 {
        return Err(SolveError::ZeroSizeBound.into());
    }
    assert!(
        params.budget_growth > 0.0,
        "budget growth factor b must be positive"
    );
    let n = space.num_rows();
    let fraction = if params.discount_coverage {
        params.coverage_fraction * scwsc_core::algorithms::CMC_COVERAGE_DISCOUNT
    } else {
        params.coverage_fraction
    };
    let target = coverage_target(n, fraction);
    if target == 0 {
        return Ok(SolveOutcome::Complete(PatternSolution {
            patterns: Vec::new(),
            covered: 0,
            total_cost: 0.0,
        }));
    }
    let pool = if pool.is_serial() { None } else { Some(pool) };
    obs.trace_started(
        TraceId::mint("opt_cmc", n as u64, pack_k_target(params.k, target)),
        "opt_cmc",
    );
    let span = PhaseSpan::enter(obs, PHASE_TOTAL);
    let result = guess_loop_within(space, params, target, pool, deadline, obs);
    span.exit(obs);
    result
}

/// The budget-doubling loop with per-guess panic containment and deadline
/// checkpoints; the deadline-aware twin of [`guess_loop`].
fn guess_loop_within<S: LatticeSpace, O: Observer + ?Sized>(
    space: &S,
    params: &CmcParams,
    target: usize,
    pool: Option<&ThreadPool>,
    deadline: &Deadline,
    obs: &mut O,
) -> Result<SolveOutcome<PatternSolution>, EngineError> {
    let mut measures: Vec<f64> = space.table().measures().to_vec();
    measures.sort_unstable_by(f64::total_cmp);
    let seed: f64 = measures.iter().take(params.k).sum();
    let total_weight: f64 = measures.iter().sum();
    let mut budget = if seed > 0.0 {
        seed
    } else {
        measures.iter().copied().find(|&m| m > 0.0).unwrap_or(1.0)
    };

    let mut lattice = Lattice::new(space);
    let mut queue = BucketQueue::new();
    let mut guess_index = 0u64;

    loop {
        guess_index += 1;
        let attempt = |log: &mut EventLog,
                       lattice: &mut Lattice<'_, S>,
                       queue: &mut BucketQueue|
         -> GuessResult {
            log.guess_started(Some(budget));
            let guess_span = PhaseSpan::enter(log, PHASE_GUESS);
            deadline.fault_guess(guess_index);
            let found = run_guess(lattice, queue, params, budget, target, pool, deadline, log);
            guess_span.exit(log);
            found
        };
        let mut log = EventLog::new();
        let found = match catch_unwind(AssertUnwindSafe(|| {
            attempt(&mut log, &mut lattice, &mut queue)
        })) {
            Ok(found) => {
                log.replay(obs);
                found
            }
            Err(_) => {
                // Retry once: the lattice cache is append-only and
                // budget-independent, so a half-extended cache only means
                // fewer first-materialization events on the rerun.
                obs.guess_retried();
                let mut retry_log = EventLog::new();
                match catch_unwind(AssertUnwindSafe(|| {
                    attempt(&mut retry_log, &mut lattice, &mut queue)
                })) {
                    Ok(found) => {
                        retry_log.replay(obs);
                        found
                    }
                    Err(payload) => {
                        return Err(EngineError::Panicked(panic_message(payload.as_ref())))
                    }
                }
            }
        };
        match found {
            GuessResult::Found(solution) => return Ok(SolveOutcome::Complete(solution)),
            GuessResult::Expired {
                partial,
                quotas_exhausted,
                reason,
            } => {
                obs.degrade_decided(reason.as_str(), partial.covered as u64, target as u64);
                let certificate = Certificate {
                    sets_used: partial.size(),
                    covered: partial.covered,
                    target,
                    total_cost: partial.total_cost,
                    quotas_exhausted,
                    ticks: deadline.ticks(),
                    reason,
                };
                return Ok(SolveOutcome::Degraded(Degraded {
                    partial,
                    certificate,
                }));
            }
            GuessResult::NotFound => {}
        }
        if budget > lattice.root_cost() && budget > total_weight {
            return Err(SolveError::BudgetExhausted.into());
        }
        budget *= 1.0 + params.budget_growth;
    }
}

fn solve<S: LatticeSpace, O: Observer + ?Sized>(
    space: &S,
    params: &CmcParams,
    pool: Option<&ThreadPool>,
    obs: &mut O,
) -> Result<PatternSolution, SolveError> {
    if params.k == 0 {
        return Err(SolveError::ZeroSizeBound);
    }
    assert!(
        params.budget_growth > 0.0,
        "budget growth factor b must be positive"
    );
    let n = space.num_rows();
    let fraction = if params.discount_coverage {
        params.coverage_fraction * scwsc_core::algorithms::CMC_COVERAGE_DISCOUNT
    } else {
        params.coverage_fraction
    };
    let target = coverage_target(n, fraction);
    if target == 0 {
        return Ok(PatternSolution {
            patterns: Vec::new(),
            covered: 0,
            total_cost: 0.0,
        });
    }
    obs.trace_started(
        TraceId::mint("opt_cmc", n as u64, pack_k_target(params.k, target)),
        "opt_cmc",
    );
    let span = PhaseSpan::enter(obs, PHASE_TOTAL);
    let result = guess_loop(space, params, target, pool, obs);
    span.exit(obs);
    result
}

/// The budget-doubling loop (Fig. 4 lines 01–07 and 36–37).
fn guess_loop<S: LatticeSpace, O: Observer + ?Sized>(
    space: &S,
    params: &CmcParams,
    target: usize,
    pool: Option<&ThreadPool>,
    obs: &mut O,
) -> Result<PatternSolution, SolveError> {
    // Line 01: "B = cost of the k cheapest patterns". Knowing the true k
    // cheapest patterns would itself require enumeration, so we seed with
    // the sum of the k smallest single-record weights — a lower bound for
    // monotone cost functions, costing at most O(log_{1+b}) extra guesses
    // (DESIGN.md §3).
    let mut measures: Vec<f64> = space.table().measures().to_vec();
    measures.sort_unstable_by(f64::total_cmp);
    let seed: f64 = measures.iter().take(params.k).sum();
    let total_weight: f64 = measures.iter().sum();
    let mut budget = if seed > 0.0 {
        seed
    } else {
        measures.iter().copied().find(|&m| m > 0.0).unwrap_or(1.0)
    };

    let mut lattice = Lattice::new(space);
    let mut queue = BucketQueue::new();

    loop {
        obs.guess_started(Some(budget));
        // Spans stay at guess granularity here: the body's unit of work is
        // a single heap pop, far too hot to bracket with clock reads.
        let guess_span = PhaseSpan::enter(obs, PHASE_GUESS);
        let found = run_guess(
            &mut lattice,
            &mut queue,
            params,
            budget,
            target,
            pool,
            &Deadline::unbounded(),
            obs,
        );
        guess_span.exit(obs);
        match found {
            GuessResult::Found(solution) => return Ok(solution),
            GuessResult::NotFound => {}
            GuessResult::Expired { .. } => unreachable!("unbounded deadline cannot expire"),
        }
        // Line 37: stop once even a budget admitting every pattern failed.
        // The all-wildcards pattern is the most expensive one under any
        // lattice-monotone cost function, and a budget above the total
        // weight is a universal upper bound otherwise.
        if budget > lattice.root_cost() && budget > total_weight {
            return Err(SolveError::BudgetExhausted);
        }
        budget *= 1.0 + params.budget_growth; // line 36
    }
}

/// Pattern materializations shared across budget guesses: benefit sets,
/// costs, and child links do not depend on the budget or on coverage.
struct Lattice<'a, S: LatticeSpace> {
    space: &'a S,
    patterns: Vec<Pattern>,
    /// All row lists back to back; `rows[id]` spans into this arena.
    /// A pattern's row list is written once at materialization and never
    /// resized, so one backing allocation replaces a `Vec` per pattern —
    /// the dominant allocator traffic of the lattice build (and of its
    /// drop).
    row_arena: Vec<RowId>,
    /// `(offset, len)` of each pattern's row list in `row_arena`.
    rows: Vec<(u32, u32)>,
    /// Row bitmask per pattern, for blocked-popcount recounts. Lazy:
    /// only the (few) patterns the pruned refresh actually kernels over
    /// — popped stale entries with long row lists — pay the `O(num_rows)`
    /// bits; most materialized patterns are scored once from their row
    /// list and never need one.
    masks: Vec<Option<BitSet>>,
    costs: Vec<f64>,
    /// Number of parents (= specificity): used for the pending-parents
    /// gating that implements line 33 without per-check hashing.
    num_parents: Vec<u8>,
    /// Child-id lists back to back, same once-written story as rows.
    child_arena: Vec<u32>,
    /// children[id] = Some((offset, len)) into `child_arena` once expanded.
    children: Vec<Option<(u32, u32)>>,
    by_pattern: Dedup,
    /// Expansion scratch: the walk reads the parent's rows while new
    /// children extend `row_arena` (which may reallocate), so the
    /// parent's span is copied out here first. Reused across expansions.
    parent_scratch: Vec<RowId>,
    /// Expansion scratch for the child-id list under construction.
    kids_scratch: Vec<u32>,
}

/// Pattern-to-id dedup map. When the space's value domain packs into a
/// `u64` ([`LatticeSpace::packed_key_bits`]), keys are single integers
/// — one `u64` hash per child visit instead of hashing a boxed
/// option-slice, on the hottest lookup of the lattice build.
enum Dedup {
    Packed {
        /// `shifts[attr]` = bit offset of that attribute's field in the
        /// key, so a child key is `parent_key | (value + 1) << shift` —
        /// one OR on the hottest lookup of the lattice build.
        shifts: Vec<u32>,
        map: FxHashMap<u64, u32>,
    },
    General(FxHashMap<Pattern, u32>),
}

impl Dedup {
    fn new<S: LatticeSpace>(space: &S) -> Dedup {
        match space.packed_key_bits() {
            Some(bits) => {
                // Field of attr `i` sits above the fields of all later
                // attributes (the fold order `key() `used before).
                let mut shifts = vec![0u32; bits.len()];
                let mut acc = 0;
                for i in (0..bits.len()).rev() {
                    shifts[i] = acc;
                    acc += bits[i];
                }
                Dedup::Packed {
                    shifts,
                    map: FxHashMap::default(),
                }
            }
            None => Dedup::General(FxHashMap::default()),
        }
    }

    fn key(shifts: &[u32], pattern: &Pattern) -> u64 {
        shifts
            .iter()
            .zip(pattern.values())
            .map(|(&shift, v)| v.map_or(0, |x| (x as u64 + 1) << shift))
            .fold(0, |key, field| key | field)
    }

    /// The packed key of `pattern`, when packed keys are in use.
    /// Computed once per expansion; children derive theirs from it.
    fn full_key(&self, pattern: &Pattern) -> Option<u64> {
        match self {
            Dedup::Packed { shifts, .. } => Some(Self::key(shifts, pattern)),
            Dedup::General(_) => None,
        }
    }

    fn insert(&mut self, pattern: &Pattern, id: u32) {
        match self {
            Dedup::Packed { shifts, map } => {
                map.insert(Self::key(shifts, pattern), id);
            }
            Dedup::General(map) => {
                map.insert(pattern.clone(), id);
            }
        }
    }

    /// Lookup of the child reached from `parent_key` by setting `attr`
    /// to `value`; `child` backs the non-packed fallback.
    fn get_child(
        &self,
        parent_key: Option<u64>,
        attr: usize,
        value: u32,
        child: &Pattern,
    ) -> Option<u32> {
        match self {
            Dedup::Packed { shifts, map } => {
                let key = parent_key.expect("packed dedup always has a parent key")
                    | ((value as u64 + 1) << shifts[attr]);
                map.get(&key).copied()
            }
            Dedup::General(map) => map.get(child).copied(),
        }
    }

    fn insert_child(
        &mut self,
        parent_key: Option<u64>,
        attr: usize,
        value: u32,
        child: &Pattern,
        id: u32,
    ) {
        match self {
            Dedup::Packed { shifts, map } => {
                let key = parent_key.expect("packed dedup always has a parent key")
                    | ((value as u64 + 1) << shifts[attr]);
                map.insert(key, id);
            }
            Dedup::General(map) => {
                map.insert(child.clone(), id);
            }
        }
    }
}

impl<'a, S: LatticeSpace> Lattice<'a, S> {
    fn new(space: &'a S) -> Self {
        let root = space.root();
        let root_rows = space.root_rows();
        let root_cost = space.cost(&root_rows);
        let mut by_pattern = Dedup::new(space);
        by_pattern.insert(&root, 0u32);
        Lattice {
            space,
            num_parents: vec![0],
            patterns: vec![root],
            rows: vec![(0, root_rows.len() as u32)],
            row_arena: root_rows,
            masks: vec![None],
            costs: vec![root_cost],
            child_arena: Vec::new(),
            children: vec![None],
            by_pattern,
            parent_scratch: Vec::new(),
            kids_scratch: Vec::new(),
        }
    }

    /// The row list of pattern `id`.
    #[inline]
    fn rows_of(&self, id: u32) -> &[RowId] {
        let (off, len) = self.rows[id as usize];
        &self.row_arena[off as usize..off as usize + len as usize]
    }

    /// The cached child ids of pattern `id`, if expanded.
    #[inline]
    fn children_of(&self, id: u32) -> Option<&[u32]> {
        self.children[id as usize]
            .map(|(off, len)| &self.child_arena[off as usize..off as usize + len as usize])
    }

    fn mask_of(n: usize, rows: &[RowId]) -> BitSet {
        let mut mask = BitSet::new(n);
        for &r in rows {
            mask.insert(r as usize);
        }
        mask
    }

    /// Row lists shorter than this recount faster through the postings
    /// loop: the blocked kernel always touches ~`num_rows / 64` words,
    /// so it only wins once the list holds a couple of rows per word.
    fn kernel_min_rows(&self) -> usize {
        self.space.num_rows().div_ceil(32)
    }

    /// The row mask of `id`, materialized on first use.
    fn mask(&mut self, id: u32) -> &BitSet {
        if self.masks[id as usize].is_none() {
            let mask = Self::mask_of(self.space.num_rows(), self.rows_of(id));
            self.masks[id as usize] = Some(mask);
        }
        self.masks[id as usize].as_ref().expect("just filled")
    }

    fn root_cost(&self) -> f64 {
        self.costs[0]
    }

    /// Materializes `id`'s non-empty children on first use. After this
    /// returns, `children[id]` is `Some`; callers borrow the cached id
    /// slice directly instead of cloning it per visit (every guess
    /// re-walks the lattice, so the clone was a per-pop allocation).
    ///
    /// Children are visited through [`LatticeSpace::for_each_child`], so
    /// pattern and row storage is allocated only for children seen for
    /// the first time — in a diamond lattice most children are already
    /// cached under another parent.
    fn ensure_children(&mut self, id: u32) {
        if self.children[id as usize].is_some() {
            return;
        }
        let space = self.space;
        // Copy the parent's pattern and rows out for the walk: the child
        // pushes below may reallocate the backing storage.
        let parent = self.patterns[id as usize].clone();
        let mut parent_rows = std::mem::take(&mut self.parent_scratch);
        parent_rows.clear();
        parent_rows.extend_from_slice(self.rows_of(id));
        let parent_key = self.by_pattern.full_key(&parent);
        let mut kids = std::mem::take(&mut self.kids_scratch);
        kids.clear();
        space.for_each_child(
            &parent,
            &parent_rows,
            &mut |attr, value, child, child_rows| {
                let child_id = match self.by_pattern.get_child(parent_key, attr, value, child) {
                    Some(cid) => cid,
                    None => {
                        let cid = self.patterns.len() as u32;
                        self.by_pattern
                            .insert_child(parent_key, attr, value, child, cid);
                        self.num_parents.push(space.num_parents(child) as u8);
                        self.patterns.push(child.clone());
                        self.costs.push(space.cost(child_rows));
                        self.masks.push(None);
                        let off = u32::try_from(self.row_arena.len()).expect("row arena fits u32");
                        self.row_arena.extend_from_slice(child_rows);
                        self.rows.push((off, child_rows.len() as u32));
                        self.children.push(None);
                        cid
                    }
                };
                kids.push(child_id);
            },
        );
        let off = u32::try_from(self.child_arena.len()).expect("child arena fits u32");
        self.child_arena.extend_from_slice(&kids);
        self.children[id as usize] = Some((off, kids.len() as u32));
        self.kids_scratch = kids;
        self.parent_scratch = parent_rows;
    }
}

/// Counts rows of `rows` not yet in `covered`, fanning out over the pool
/// for long row lists (sum-reduction, exact for any chunking).
fn recount(rows: &[RowId], covered: &BitSet, pool: Option<&ThreadPool>) -> usize {
    if let Some(pool) = pool {
        if rows.len() >= PAR_RECOUNT_MIN {
            return pool
                .par_chunks_reduce(
                    rows.len(),
                    |_, range| {
                        Some(
                            rows[range]
                                .iter()
                                .filter(|&&r| !covered.contains(r as usize))
                                .count(),
                        )
                    },
                    |a, b| a + b,
                )
                .unwrap_or(0);
        }
    }
    rows.iter()
        .filter(|&&r| !covered.contains(r as usize))
        .count()
}

/// How one budget guess (Fig. 4 lines 08–35) ended.
enum GuessResult {
    Found(PatternSolution),
    NotFound,
    Expired {
        partial: PatternSolution,
        quotas_exhausted: Vec<usize>,
        reason: DegradeReason,
    },
}

/// One budget guess (Fig. 4 lines 08–35). Consumes one `deadline` work
/// tick per heap pop; under an unbounded deadline (the classic path) the
/// checkpoint can never fail.
#[allow(clippy::too_many_arguments)]
fn run_guess<S: LatticeSpace, O: Observer + ?Sized>(
    lattice: &mut Lattice<'_, S>,
    heap: &mut BucketQueue,
    params: &CmcParams,
    budget: f64,
    target: usize,
    pool: Option<&ThreadPool>,
    deadline: &Deadline,
    obs: &mut O,
) -> GuessResult {
    let n = lattice.space.num_rows();
    let levels = Levels::build(params.schedule, budget, params.k);
    // Report the complete level schedule up front: even if the guess ends
    // early, observers see every (level, quota) pair Fig. 4 line 05 built.
    for level in 0..levels.len() {
        obs.level_entered(level, levels.quota(level));
    }
    let mut counts = vec![0usize; levels.len()]; // lines 15-16
    let mut selected_total = 0usize;
    let max_selections = levels.max_selections();

    let mut covered = BitSet::new(n);
    // Pruned-refresh state: each selection appends the newly covered rows
    // as a mask, so a heap entry computed `epoch - entry.epoch` selections
    // ago refreshes by subtracting exact per-selection intersection counts
    // (the newly sets are disjoint) instead of recounting from scratch.
    let prune = prune_from_env();
    let mut epoch = 0usize;
    let mut newly_masks: Vec<BitSet> = Vec::new();
    // Per-guess per-pattern state, keyed by lattice id (lazily grown).
    let len = lattice.patterns.len();
    let mut in_c = vec![false; len];
    let mut visited = vec![false; len];
    let mut selected = vec![false; len];
    // pending[id] = parents of id not yet visited this guess; line 33's
    // "all parents of m are in V" is exactly pending[id] == 0, reached by
    // decrementing when each parent is visited (no hashing per check).
    let mut pending: Vec<u8> = lattice.num_parents[..len].to_vec();

    // Lines 11-13: C = {all-wildcards}.
    in_c[0] = true;
    obs.benefit_computed(1);

    // Max-queue on (mben, cheaper first, older first), with lazy
    // revalidation: marginal benefits only decrease, so a stale entry is
    // an upper bound and the first fresh pop is the true argmax (line 18).
    // Reset up front so a previous guess that returned early (or
    // panicked under fault injection) cannot leak entries into this one.
    heap.reset(lattice.rows_of(0).len());
    heap.push(HeapEntry {
        mben: lattice.rows_of(0).len(),
        cost_bits: lattice.costs[0].to_bits(),
        id: 0,
        epoch: 0,
    });

    let mut solution = PatternSolution {
        patterns: Vec::new(),
        covered: 0,
        total_cost: 0.0,
    };
    let mut rem = target; // line 14
                          // Expansion scratch, reused across pops: thousands of patterns are
                          // visited per guess, and a fresh Vec pair per visit is pure
                          // allocator traffic.
    let mut eligible: Vec<u32> = Vec::new();
    let mut mbens: Vec<usize> = Vec::new();

    while let Some(entry) = heap.pop() {
        if let Err(reason) = deadline.checkpoint() {
            let quotas_exhausted = (0..levels.len())
                .filter(|&l| counts[l] == levels.quota(l))
                .collect();
            return GuessResult::Expired {
                partial: solution,
                quotas_exhausted,
                reason,
            };
        }
        // line 17's ΣΣ guard: once every level quota is full no further
        // selection can happen.
        if selected_total >= max_selections {
            break;
        }
        let id = entry.id as usize;
        if !in_c[id] {
            obs.heap_stale_pop();
            continue; // stale duplicate of a removed candidate
        }
        let current = if !prune {
            recount(lattice.rows_of(entry.id), &covered, pool)
        } else if entry.epoch == epoch {
            // Coverage only grows at selections, so an entry pushed this
            // epoch is provably current — skip the recount outright.
            obs.scan_pruned(1);
            entry.mben
        } else if lattice.rows_of(entry.id).len() < lattice.kernel_min_rows() {
            // Short row list: the postings recount beats every
            // mask-based path, and no mask is ever materialized.
            obs.bound_refreshed(1);
            recount(lattice.rows_of(entry.id), &covered, None)
        } else if epoch - entry.epoch <= DELTA_MAX_ROUNDS {
            // Exact delta: the per-selection newly sets are disjoint, so
            // the entry's stale count minus its overlap with each newer
            // selection is the fresh count — no full recount needed.
            let stale = entry.mben;
            let mask = lattice.mask(entry.id);
            let overlap: usize = newly_masks[entry.epoch..epoch]
                .iter()
                .map(|nm| mask.intersection_count(nm))
                .sum();
            obs.scan_pruned(1);
            stale - overlap
        } else {
            obs.bound_refreshed(1);
            lattice.mask(entry.id).difference_count(&covered)
        };
        debug_assert_eq!(
            current,
            recount(lattice.rows_of(entry.id), &covered, None),
            "pruned refresh is exact"
        );
        if current == 0 {
            in_c[id] = false; // lines 28-29 analogue
            obs.candidate_pruned(PruneReason::Exhausted);
            continue;
        }
        if current != entry.mben {
            obs.heap_stale_pop();
            heap.push(HeapEntry {
                mben: current,
                cost_bits: entry.cost_bits,
                id: entry.id,
                epoch,
            });
            continue;
        }

        // Line 19: q leaves C.
        in_c[id] = false;
        let q_cost = lattice.costs[id];
        let level = levels.level_of(q_cost); // line 20

        let selectable = level.is_some_and(|l| counts[l] < levels.quota(l));
        if selectable {
            // Audit the pick before mutating: runners-up are the next heap
            // entries still in C. Their stored scores may be stale upper
            // bounds (lazy revalidation), i.e. optimistic — the ledger
            // notes the heap's view, which is deterministic because the
            // heap order is total and the pop/re-push cycle below restores
            // the heap exactly.
            let mut popped: Vec<HeapEntry> = Vec::with_capacity(audit::RUNNERS_UP);
            while popped.len() < audit::RUNNERS_UP {
                let Some(e) = heap.pop() else { break };
                popped.push(e);
            }
            let runners: Vec<audit::AuditCandidate> = popped
                .iter()
                .filter(|e| in_c[e.id as usize])
                .map(|e| audit::AuditCandidate {
                    id: e.id as u64,
                    benefit: e.mben as u64,
                    weight: lattice.costs[e.id as usize],
                })
                .collect();
            for e in popped {
                heap.push(e);
            }
            let winner = audit::AuditCandidate {
                id: entry.id as u64,
                benefit: current as u64,
                weight: q_cost,
            };
            obs.round_decided(audit::ORDER_BENEFIT, &winner, &runners);
            let newly: Vec<u32> = lattice
                .rows_of(entry.id)
                .iter()
                .copied()
                .filter(|&r| !covered.contains(r as usize))
                .collect();
            debug_assert_eq!(newly.len(), current, "fresh recount priced exactly");
            obs.price_charged(entry.id as u64, &newly, q_cost);

            // Lines 21-25: select q.
            let l = level.expect("selectable implies a level");
            counts[l] += 1;
            selected_total += 1;
            selected[id] = true;
            solution.patterns.push(lattice.patterns[id].clone());
            solution.total_cost += q_cost;
            obs.set_selected(entry.id as u64, current as u64, q_cost);
            for &r in lattice.rows_of(entry.id) {
                covered.insert(r as usize);
            }
            if prune {
                let mut nm = BitSet::new(n);
                for &r in &newly {
                    nm.insert(r as usize);
                }
                newly_masks.push(nm);
                epoch += 1;
            }
            solution.covered = covered.count_ones();
            rem = rem.saturating_sub(current);
            if rem == 0 {
                return GuessResult::Found(solution);
            }
            // Lines 26-29 happen lazily at pop time via the recount above.
        } else {
            // Lines 30-35: visit q and expand its children.
            visited[id] = true;
            if lattice.children_of(entry.id).is_none() {
                // First materialization: children_with_rows partitions q's
                // row list once per wildcard attribute.
                let wildcards = lattice.patterns[id]
                    .values()
                    .iter()
                    .filter(|v| v.is_none())
                    .count();
                obs.posting_scanned((lattice.rows_of(entry.id).len() * wildcards) as u64);
            }
            lattice.ensure_children(entry.id);
            eligible.clear();
            for &child_id in lattice
                .children_of(entry.id)
                .expect("ensure_children just ran")
            {
                let cid = child_id as usize;
                if pending.len() <= cid {
                    // Newly materialized: extend per-guess state.
                    in_c.resize(cid + 1, false);
                    visited.resize(cid + 1, false);
                    selected.resize(cid + 1, false);
                    let from = pending.len();
                    pending.extend_from_slice(&lattice.num_parents[from..=cid]);
                }
                if in_c[cid] || visited[cid] || selected[cid] {
                    continue;
                }
                // Line 33: "all parents of m are in V" — the decrement
                // for this visit of q; zero pending means every parent
                // has been visited.
                pending[cid] = pending[cid].saturating_sub(1);
                if pending[cid] != 0 {
                    continue;
                }
                eligible.push(child_id);
            }
            // Line 35: compute Cost(m) and MBen(m) for each eligible
            // child — served from the lattice cache, the benefit recounts
            // fanned out over the pool. Each worker chunk brackets its
            // recounts in a `scan` span recorded into a telemetry shard,
            // replayed here so the spans nest under the open guess span;
            // counter events fire in child order below, identical to
            // scoring inline.
            mbens.clear();
            match pool {
                Some(pool) if eligible.len() >= PAR_CHILDREN_MIN => {
                    let spans = &lattice.rows;
                    let arena = &lattice.row_arena;
                    let covered = &covered;
                    let per_chunk = eligible.len().div_ceil(pool.threads());
                    let chunks: Vec<(usize, &[u32])> =
                        eligible.chunks(per_chunk).enumerate().collect();
                    let tls = ThreadLocalTelemetry::new(chunks.len());
                    let scored = pool.par_map(&chunks, |&(idx, chunk)| {
                        let mut shard = tls.shard(idx);
                        let span = PhaseSpan::enter(&mut *shard, PHASE_SCAN);
                        let mbens: Vec<usize> = chunk
                            .iter()
                            .map(|&cid| {
                                let (off, len) = spans[cid as usize];
                                arena[off as usize..off as usize + len as usize]
                                    .iter()
                                    .filter(|&&r| !covered.contains(r as usize))
                                    .count()
                            })
                            .collect();
                        span.exit(&mut *shard);
                        mbens
                    });
                    tls.replay(obs);
                    mbens.extend(scored.into_iter().flatten());
                }
                _ => mbens.extend(
                    eligible
                        .iter()
                        .map(|&cid| recount(lattice.rows_of(cid), &covered, pool)),
                ),
            };
            for (&child_id, &child_mben) in eligible.iter().zip(&mbens) {
                let cid = child_id as usize;
                // One "considered" event per guess, matching what Fig. 4
                // would compute.
                obs.benefit_computed(1);
                if child_mben == 0 {
                    // Never enters C, so its descendants stay gated behind
                    // an unvisited parent: the whole subtree is skipped.
                    obs.subtree_pruned(PruneReason::Exhausted);
                    continue; // would be dropped by lines 28-29 immediately
                }
                in_c[cid] = true;
                heap.push(HeapEntry {
                    mben: child_mben,
                    cost_bits: lattice.costs[cid].to_bits(),
                    id: child_id,
                    epoch,
                });
            }
        }
    }
    GuessResult::NotFound
}

/// Deterministic bucket priority queue over [`HeapEntry`], keyed by the
/// integer marginal benefit (bounded by `n`). Pop order is exactly the
/// binary heap's total order — (mben desc, cost asc, id asc): within
/// one guess a pattern enters the candidate set once and every re-push
/// carries a strictly smaller benefit, so two live entries for one id
/// never share a bucket and the `(cost, id)` min-heaps per bucket
/// complete the order. Both queue ends are near-O(1): the max cursor
/// only descends (the root starts at bucket `n`, re-pushes and child
/// pushes never exceed the popping bucket), and the per-bucket heaps
/// stay tiny compared to one global heap over every candidate. Reused
/// across guesses so bucket capacity amortizes.
struct BucketQueue {
    /// buckets[mben] = min-heap of `(cost_bits, id, epoch)`.
    buckets: Vec<BinaryHeap<std::cmp::Reverse<(u64, u32, usize)>>>,
    /// Highest possibly non-empty bucket.
    max: usize,
    len: usize,
}

impl BucketQueue {
    fn new() -> BucketQueue {
        BucketQueue {
            buckets: Vec::new(),
            max: 0,
            len: 0,
        }
    }

    /// Empties the queue and guarantees buckets `0..=max_mben` exist.
    fn reset(&mut self, max_mben: usize) {
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        if self.buckets.len() <= max_mben {
            self.buckets.resize_with(max_mben + 1, BinaryHeap::new);
        }
        self.max = 0;
        self.len = 0;
    }

    fn push(&mut self, entry: HeapEntry) {
        self.max = self.max.max(entry.mben);
        self.len += 1;
        self.buckets[entry.mben].push(std::cmp::Reverse((entry.cost_bits, entry.id, entry.epoch)));
    }

    fn pop(&mut self) -> Option<HeapEntry> {
        if self.len == 0 {
            return None;
        }
        while self.buckets[self.max].is_empty() {
            self.max -= 1;
        }
        let std::cmp::Reverse((cost_bits, id, epoch)) = self.buckets[self.max]
            .pop()
            .expect("bucket at the max cursor is non-empty");
        self.len -= 1;
        Some(HeapEntry {
            mben: self.max,
            cost_bits,
            id,
            epoch,
        })
    }
}

/// Heap entry: candidate keyed by (mben desc, cost asc, id asc).
///
/// Ids are assigned in first-materialization order, which is itself
/// deterministic (children are expanded in (attribute, value) order), so
/// runs are reproducible.
struct HeapEntry {
    mben: usize,
    /// `f64::to_bits` of a non-negative cost orders like the number.
    cost_bits: u64,
    id: u32,
    /// Selection count when `mben` was computed. NOT part of the ordering
    /// — it only lets the pruned refresh subtract the exact per-selection
    /// coverage deltas instead of recounting from scratch.
    epoch: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.mben
            .cmp(&other.mben)
            .then_with(|| other.cost_bits.cmp(&self.cost_bits))
            .then_with(|| other.id.cmp(&self.id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost_fn::CostFn;
    use crate::enumerate::enumerate_all;
    use crate::table::Table;
    use scwsc_core::algorithms::{cmc, CMC_COVERAGE_DISCOUNT};
    use scwsc_core::Stats;

    fn entities() -> Table {
        let mut b = Table::builder(&["Type", "Location"], "Cost");
        for (t, l, c) in [
            ("A", "West", 10.0),
            ("A", "Northeast", 32.0),
            ("B", "South", 2.0),
            ("A", "North", 4.0),
            ("B", "East", 7.0),
            ("A", "Northwest", 20.0),
            ("B", "West", 4.0),
            ("B", "Southwest", 24.0),
            ("A", "Southwest", 4.0),
            ("B", "Northwest", 4.0),
            ("A", "North", 3.0),
            ("B", "Northeast", 3.0),
            ("B", "South", 1.0),
            ("B", "North", 20.0),
            ("A", "East", 3.0),
            ("A", "South", 96.0),
        ] {
            b.push_row(&[t, l], c).unwrap();
        }
        b.build()
    }

    #[test]
    fn meets_coverage_and_size_bounds() {
        let t = entities();
        let sp = PatternSpace::new(&t, CostFn::Max);
        for (k, s) in [(2usize, 9.0 / 16.0), (3, 0.5), (2, 1.0), (5, 0.8)] {
            let params = CmcParams::classic(k, s, 1.0);
            let sol = opt_cmc(&sp, &params, &mut Stats::new()).unwrap();
            let target = coverage_target(16, s * CMC_COVERAGE_DISCOUNT);
            assert!(
                sol.covered >= target,
                "k={k} s={s}: {} < {target}",
                sol.covered
            );
            assert!(sol.size() <= 5 * k, "k={k}: {} sets", sol.size());
            sol.verify(&sp);
        }
    }

    #[test]
    fn epsilon_variant_bounds_size() {
        let t = entities();
        let sp = PatternSpace::new(&t, CostFn::Max);
        for &eps in &[0.5, 1.0, 2.0] {
            let params = CmcParams::epsilon(4, 0.9, 1.0, eps);
            let sol = opt_cmc(&sp, &params, &mut Stats::new()).unwrap();
            let bound = ((1.0 + eps) * 4.0).floor() as usize;
            assert!(sol.size() <= bound.max(4), "eps={eps}: {}", sol.size());
        }
    }

    /// The Figure 6 effect needs a data set big enough for pruning to
    /// matter; the 16-record example is too small (the walkthrough itself
    /// touches most of Table II's patterns).
    #[test]
    fn considers_fewer_patterns_than_unoptimized_at_scale() {
        let t = crate::test_util::skewed_table(600, 4, 7);
        let sp = PatternSpace::new(&t, CostFn::Max);
        let mut opt_stats = Stats::new();
        let params = CmcParams::classic(10, 0.3, 1.0);
        let sol = opt_cmc(&sp, &params, &mut opt_stats).unwrap();
        sol.verify(&sp);
        let m = enumerate_all(&t, CostFn::Max);
        let mut unopt_stats = Stats::new();
        let _ = cmc(&m.system, &params, &mut unopt_stats).unwrap();
        assert!(
            opt_stats.considered < unopt_stats.considered,
            "optimized {} >= unoptimized {}",
            opt_stats.considered,
            unopt_stats.considered
        );
    }

    #[test]
    fn cost_within_theorem4_factor_of_unoptimized() {
        // Both satisfy Theorem 4, so both costs are within
        // (1+b)(2⌈log k⌉+1) of optimal; sanity-check they're in the same
        // ballpark rather than equal (different traversal orders).
        let t = entities();
        let sp = PatternSpace::new(&t, CostFn::Max);
        let params = CmcParams::classic(2, 9.0 / 16.0, 1.0);
        let opt = opt_cmc(&sp, &params, &mut Stats::new()).unwrap();
        let m = enumerate_all(&t, CostFn::Max);
        let unopt = cmc(&m.system, &params, &mut Stats::new()).unwrap();
        let bound = 2.0 * (2.0 * (2f64).log2().ceil() + 1.0);
        assert!(opt.total_cost <= bound * unopt.solution.total_cost().value() + 1e-9);
        assert!(unopt.solution.total_cost().value() <= bound * opt.total_cost + 1e-9);
    }

    #[test]
    fn zero_k_rejected_and_zero_target_empty() {
        let t = entities();
        let sp = PatternSpace::new(&t, CostFn::Max);
        assert_eq!(
            opt_cmc(&sp, &CmcParams::classic(0, 0.5, 1.0), &mut Stats::new()),
            Err(SolveError::ZeroSizeBound)
        );
        let sol = opt_cmc(&sp, &CmcParams::classic(2, 0.0, 1.0), &mut Stats::new()).unwrap();
        assert_eq!(sol.size(), 0);
    }

    #[test]
    fn budget_guesses_increase_with_tight_instances() {
        let t = entities();
        let sp = PatternSpace::new(&t, CostFn::Max);
        let mut stats = Stats::new();
        let params = CmcParams::classic(2, 1.0, 1.0);
        let _ = opt_cmc(&sp, &params, &mut stats).unwrap();
        assert!(stats.budget_guesses >= 2, "seed budget is tiny by design");
    }

    #[test]
    fn works_with_mean_cost_function() {
        // Mean is not lattice-monotone; the exhaustion bound still holds
        // because budgets also grow past the total weight.
        let t = entities();
        let sp = PatternSpace::new(&t, CostFn::Mean);
        let params = CmcParams::classic(3, 0.6, 1.0);
        let sol = opt_cmc(&sp, &params, &mut Stats::new()).unwrap();
        assert!(sol.covered >= coverage_target(16, 0.6 * CMC_COVERAGE_DISCOUNT));
        sol.verify(&sp);
    }

    #[test]
    fn deterministic_across_runs() {
        let t = crate::test_util::skewed_table(300, 3, 5);
        let sp = PatternSpace::new(&t, CostFn::Max);
        let params = CmcParams::classic(5, 0.4, 1.0);
        let a = opt_cmc(&sp, &params, &mut Stats::new()).unwrap();
        let b = opt_cmc(&sp, &params, &mut Stats::new()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_recounts_match_serial_exactly() {
        use scwsc_core::{MetricsRecorder, ThreadPool, Threads};
        let t = crate::test_util::skewed_table(600, 4, 7);
        let sp = PatternSpace::new(&t, CostFn::Max);
        let params = CmcParams::classic(8, 0.4, 1.0);
        let mut sm = MetricsRecorder::new();
        let serial = opt_cmc(&sp, &params, &mut sm).unwrap();
        for threads in [2, 4] {
            let pool = ThreadPool::new(Threads::new(threads));
            let mut pm = MetricsRecorder::new();
            let par = opt_cmc_on(&sp, &params, &pool, &mut pm).unwrap();
            assert_eq!(par, serial, "threads={threads}");
            assert_eq!(pm.guesses, sm.guesses, "threads={threads}");
            assert_eq!(pm.selections, sm.selections, "threads={threads}");
            assert_eq!(
                pm.benefits_computed, sm.benefits_computed,
                "threads={threads}"
            );
            assert_eq!(pm.subtrees_pruned, sm.subtrees_pruned, "threads={threads}");
            assert_eq!(pm.heap_stale_pops, sm.heap_stale_pops, "threads={threads}");
            assert_eq!(
                pm.marginal_benefit_hist, sm.marginal_benefit_hist,
                "threads={threads}"
            );
        }
    }

    mod within {
        use super::*;
        use crate::pattern_solution::verify_certificate_in;
        use scwsc_core::engine::{Deadline, DegradeReason, SolveOutcome};
        use scwsc_core::{MetricsRecorder, ThreadPool, Threads};

        #[test]
        fn unbounded_deadline_matches_plain_opt_cmc() {
            let t = entities();
            let sp = PatternSpace::new(&t, CostFn::Max);
            let params = CmcParams::classic(2, 9.0 / 16.0, 1.0);
            let plain = opt_cmc(&sp, &params, &mut Stats::new()).unwrap();
            for threads in [1, 4] {
                let pool = ThreadPool::new(Threads::new(threads));
                let out = opt_cmc_within(
                    &sp,
                    &params,
                    &pool,
                    &Deadline::unbounded(),
                    &mut MetricsRecorder::new(),
                )
                .unwrap();
                assert_eq!(out.expect_complete("unbounded"), plain);
            }
        }

        #[test]
        fn tick_budget_degrades_identically_across_thread_counts() {
            let t = entities();
            let sp = PatternSpace::new(&t, CostFn::Max);
            let params = CmcParams::classic(2, 1.0, 1.0);
            for budget in [0u64, 3, 10, 25] {
                let run = |threads: usize| {
                    let pool = ThreadPool::new(Threads::new(threads));
                    let deadline = Deadline::unbounded().with_tick_budget(budget);
                    let out =
                        opt_cmc_within(&sp, &params, &pool, &deadline, &mut MetricsRecorder::new())
                            .unwrap();
                    (out, deadline.ticks())
                };
                let serial = run(1);
                assert_eq!(serial, run(4), "budget {budget}");
                if let SolveOutcome::Degraded(d) = serial.0 {
                    assert_eq!(d.certificate.reason, DegradeReason::TickBudget);
                    let check = verify_certificate_in(&sp, &d.partial, &d.certificate);
                    assert!(check.is_valid(), "budget {budget}: {check:?}");
                }
            }
        }

        #[test]
        fn zero_tick_budget_degrades_empty() {
            let t = entities();
            let sp = PatternSpace::new(&t, CostFn::Max);
            let params = CmcParams::classic(3, 0.8, 1.0);
            let pool = ThreadPool::new(Threads::serial());
            let deadline = Deadline::unbounded().with_tick_budget(0);
            let out = opt_cmc_within(&sp, &params, &pool, &deadline, &mut MetricsRecorder::new())
                .unwrap();
            let SolveOutcome::Degraded(d) = out else {
                panic!("zero ticks must degrade");
            };
            assert_eq!(d.partial.size(), 0);
            assert!(verify_certificate_in(&sp, &d.partial, &d.certificate).is_valid());
        }
    }

    #[cfg(feature = "fault-inject")]
    mod within_faults {
        use super::*;
        use crate::pattern_solution::verify_certificate_in;
        use scwsc_core::engine::{Deadline, EngineError, FaultPlan, SolveOutcome};
        use scwsc_core::{MetricsRecorder, ThreadPool, Threads};

        #[test]
        fn one_shot_guess_panic_is_retried_to_completion() {
            let t = entities();
            let sp = PatternSpace::new(&t, CostFn::Max);
            let params = CmcParams::classic(2, 9.0 / 16.0, 1.0);
            let clean = opt_cmc(&sp, &params, &mut Stats::new()).unwrap();
            let pool = ThreadPool::new(Threads::serial());
            let deadline =
                Deadline::unbounded().with_fault_plan(FaultPlan::new().panic_guess_once(1));
            let mut m = MetricsRecorder::new();
            let out = opt_cmc_within(&sp, &params, &pool, &deadline, &mut m).unwrap();
            assert_eq!(out.expect_complete("retry completes"), clean);
            assert_eq!(m.guesses_retried, 1);
        }

        #[test]
        fn persistent_guess_fault_is_a_structured_error() {
            let t = entities();
            let sp = PatternSpace::new(&t, CostFn::Max);
            let params = CmcParams::classic(2, 0.5, 1.0);
            let pool = ThreadPool::new(Threads::serial());
            let deadline = Deadline::unbounded().with_fault_plan(FaultPlan::new().fail_guess(1));
            let err = opt_cmc_within(&sp, &params, &pool, &deadline, &mut MetricsRecorder::new())
                .unwrap_err();
            assert!(matches!(err, EngineError::Panicked(_)));
        }

        #[test]
        fn panic_at_tick_degrades_cleanly() {
            // cancel_at_tick (not panic) exercises the cancel path end to end.
            let t = entities();
            let sp = PatternSpace::new(&t, CostFn::Max);
            let params = CmcParams::classic(2, 1.0, 1.0);
            let pool = ThreadPool::new(Threads::serial());
            let deadline =
                Deadline::unbounded().with_fault_plan(FaultPlan::new().cancel_at_tick(4));
            let out = opt_cmc_within(&sp, &params, &pool, &deadline, &mut MetricsRecorder::new())
                .unwrap();
            let SolveOutcome::Degraded(d) = out else {
                panic!("cancel at tick 4 must degrade");
            };
            assert!(verify_certificate_in(&sp, &d.partial, &d.certificate).is_valid());
        }
    }
}
