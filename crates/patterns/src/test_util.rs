//! Deterministic synthetic tables for tests and property tests.
//!
//! Kept in the library (rather than `#[cfg(test)]`) so integration tests
//! and the property-test suite can reuse it; it is `doc(hidden)` because
//! real workload generation lives in `scwsc-data`.

#![doc(hidden)]

use crate::table::Table;

/// Tiny deterministic PRNG (xorshift64*), so tests need no external seed
/// plumbing.
#[derive(Debug, Clone)]
pub struct XorShift(u64);

impl XorShift {
    /// Seeds the generator; zero seeds are fixed up.
    pub fn new(seed: u64) -> XorShift {
        XorShift(seed.max(1))
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `0..bound`.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }

    /// Skewed value in `0..bound`: low ids are much more likely
    /// (quadratic skew, a cheap stand-in for a Zipf-like head).
    pub fn skewed_below(&mut self, bound: u64) -> u64 {
        let b = bound.max(1);
        let u = self.below(b * b);
        // sqrt of a uniform draw concentrates near the top of 0..b;
        // mirror it so id 0 is the heavy head.
        (b - 1) - ((u as f64).sqrt() as u64).min(b - 1)
    }
}

/// A deterministic table with `rows` records over `attrs` attributes whose
/// active domains have `cardinality` skewed values each; measures are
/// integer-ish and heavy-tailed.
pub fn skewed_table(rows: usize, attrs: usize, cardinality: u64) -> Table {
    let names: Vec<String> = (0..attrs).map(|a| format!("attr{a}")).collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let mut b = Table::builder(&name_refs, "measure");
    let mut rng = XorShift::new(0x5eed + rows as u64 * 31 + attrs as u64);
    let mut vals: Vec<String> = Vec::with_capacity(attrs);
    for _ in 0..rows {
        vals.clear();
        for a in 0..attrs {
            // Correlate later attributes slightly with the first one so
            // multi-attribute patterns have meaningful benefit sets.
            let base = rng.skewed_below(cardinality);
            let v = if a > 0 && rng.below(4) == 0 { 0 } else { base };
            vals.push(format!("v{v}"));
        }
        let refs: Vec<&str> = vals.iter().map(String::as_str).collect();
        let measure = 1.0 + rng.below(100) as f64 + if rng.below(20) == 0 { 400.0 } else { 0.0 };
        b.push_row(&refs, measure)
            .expect("generated rows are valid");
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let a = skewed_table(50, 3, 5);
        let b = skewed_table(50, 3, 5);
        assert_eq!(a, b);
        assert_eq!(a.num_rows(), 50);
        assert_eq!(a.num_attrs(), 3);
    }

    #[test]
    fn skew_produces_head_heavy_domains() {
        let mut rng = XorShift::new(7);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.skewed_below(8) as usize] += 1;
        }
        assert!(
            counts[0] > counts[7] * 2,
            "head value should dominate: {counts:?}"
        );
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = XorShift::new(3);
        for _ in 0..1000 {
            assert!(rng.below(13) < 13);
        }
        assert_eq!(rng.below(1), 0);
    }
}
