//! Solutions expressed as patterns (rather than opaque set ids), plus an
//! independent verifier that re-derives coverage and cost from the table.

use crate::pattern::Pattern;
use crate::space::{LatticeSpace, PatternSpace};
use scwsc_core::engine::Certificate;
use scwsc_core::solution::CertificateCheck;
use scwsc_core::BitSet;

/// A sub-collection of patterns chosen by an optimized algorithm, in
/// selection order.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PatternSolution {
    /// Chosen patterns, in selection order.
    pub patterns: Vec<Pattern>,
    /// Number of records covered by their union.
    pub covered: usize,
    /// Sum of pattern weights.
    pub total_cost: f64,
}

impl PatternSolution {
    /// Number of chosen patterns.
    pub fn size(&self) -> usize {
        self.patterns.len()
    }

    /// Recomputes coverage and cost from the space's index and checks the
    /// cached totals, returning the recomputed `(covered, total_cost)`.
    ///
    /// # Panics
    /// Panics when the cached totals disagree with the recomputation —
    /// that is an algorithm bug, not a user error.
    pub fn verify(&self, space: &PatternSpace<'_>) -> (usize, f64) {
        self.verify_in(space)
    }

    /// [`PatternSolution::verify`] over any [`LatticeSpace`] (including
    /// hierarchical ones).
    pub fn verify_in<S: LatticeSpace>(&self, space: &S) -> (usize, f64) {
        let mut covered = BitSet::new(space.num_rows());
        let mut total_cost = 0.0;
        for p in &self.patterns {
            let rows = space.benefit(p);
            total_cost += space.cost(&rows);
            for r in rows {
                covered.insert(r as usize);
            }
        }
        let covered = covered.count_ones();
        assert_eq!(covered, self.covered, "cached coverage is wrong");
        assert!(
            (total_cost - self.total_cost).abs() <= 1e-9 * total_cost.abs().max(1.0),
            "cached cost {} != recomputed {}",
            self.total_cost,
            total_cost
        );
        (covered, total_cost)
    }

    /// Human-readable rendering of the chosen patterns.
    pub fn display(&self, space: &PatternSpace<'_>) -> String {
        let pats: Vec<String> = self
            .patterns
            .iter()
            .map(|p| p.display(space.table()))
            .collect();
        format!(
            "{} patterns, cost {}, covering {}: [{}]",
            self.size(),
            self.total_cost,
            self.covered,
            pats.join(", ")
        )
    }
}

/// Independently re-checks a [`Certificate`] produced by a degraded
/// patterned solve: recomputes the partial solution's coverage and cost
/// from the space's index and compares them to the solver's claims — the
/// non-panicking, degraded counterpart of [`PatternSolution::verify_in`]
/// (and the pattern-space analogue of
/// [`scwsc_core::solution::verify_certificate`]).
pub fn verify_certificate_in<S: LatticeSpace>(
    space: &S,
    partial: &PatternSolution,
    cert: &Certificate,
) -> CertificateCheck {
    let mut covered = BitSet::new(space.num_rows());
    let mut total_cost = 0.0;
    for p in &partial.patterns {
        let rows = space.benefit(p);
        total_cost += space.cost(&rows);
        for r in rows {
            covered.insert(r as usize);
        }
    }
    let covered = covered.count_ones();
    // Costs are re-accumulated in selection order, but lattice caching may
    // reassociate the sum, so compare with a relative tolerance.
    let cost_ok = (cert.total_cost - total_cost).abs() <= 1e-9 * total_cost.abs().max(1.0);
    let quotas_sorted = cert.quotas_exhausted.windows(2).all(|w| w[0] < w[1]);
    CertificateCheck {
        recomputed_covered: covered,
        recomputed_cost: total_cost,
        claims_consistent: cert.sets_used == partial.size()
            && cert.covered == covered
            && partial.covered == covered
            && cost_ok
            && quotas_sorted,
        target_unmet: cert.covered < cert.target,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost_fn::CostFn;
    use crate::table::Table;

    fn table() -> Table {
        let mut b = Table::builder(&["X"], "m");
        b.push_row(&["a"], 3.0).unwrap();
        b.push_row(&["b"], 5.0).unwrap();
        b.push_row(&["a"], 1.0).unwrap();
        b.build()
    }

    #[test]
    fn verify_accepts_consistent_solution() {
        let t = table();
        let sp = PatternSpace::new(&t, CostFn::Max);
        let a = t.dictionary(0).lookup("a").unwrap();
        let sol = PatternSolution {
            patterns: vec![Pattern::new(vec![Some(a)])],
            covered: 2,
            total_cost: 3.0,
        };
        assert_eq!(sol.verify(&sp), (2, 3.0));
        assert_eq!(sol.size(), 1);
    }

    #[test]
    #[should_panic(expected = "cached coverage")]
    fn verify_rejects_wrong_coverage() {
        let t = table();
        let sp = PatternSpace::new(&t, CostFn::Max);
        let sol = PatternSolution {
            patterns: vec![Pattern::all_wildcards(1)],
            covered: 1,
            total_cost: 5.0,
        };
        sol.verify(&sp);
    }

    #[test]
    fn display_shows_patterns() {
        let t = table();
        let sp = PatternSpace::new(&t, CostFn::Max);
        let sol = PatternSolution {
            patterns: vec![Pattern::all_wildcards(1)],
            covered: 3,
            total_cost: 5.0,
        };
        let text = sol.display(&sp);
        assert!(text.contains("{X=ALL}"), "{text}");
        assert!(text.contains("covering 3"), "{text}");
    }

    #[test]
    fn verify_certificate_in_checks_claims() {
        use scwsc_core::engine::{Certificate, DegradeReason};
        let t = table();
        let sp = PatternSpace::new(&t, CostFn::Max);
        let a = t.dictionary(0).lookup("a").unwrap();
        let sol = PatternSolution {
            patterns: vec![Pattern::new(vec![Some(a)])],
            covered: 2,
            total_cost: 3.0,
        };
        let mut cert = Certificate {
            sets_used: 1,
            covered: 2,
            target: 3,
            total_cost: 3.0,
            quotas_exhausted: Vec::new(),
            ticks: 4,
            reason: DegradeReason::TickBudget,
        };
        assert!(verify_certificate_in(&sp, &sol, &cert).is_valid());
        cert.covered = 3; // inflated claim also claims target met
        let check = verify_certificate_in(&sp, &sol, &cert);
        assert!(!check.claims_consistent);
        assert!(!check.is_valid());
    }
}
