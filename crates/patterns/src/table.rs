//! Columnar relational table for the patterned-set special case.
//!
//! Section II's input: records with `j` categorical *pattern attributes*
//! `D_1..D_j` plus a numeric *measure attribute* used to weigh patterns.
//! Storage is columnar with dictionary-encoded values, which makes pattern
//! matching, benefit-set bucketing, and the attribute projections of
//! Figure 7 cheap.

use crate::dictionary::{Dictionary, ValueId};
use std::fmt;

/// Row index within a [`Table`].
pub type RowId = u32;

/// A dictionary-encoded columnar table: `j` pattern attributes + measure.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Table {
    attr_names: Vec<String>,
    dicts: Vec<Dictionary>,
    /// columns[attr][row] = value id
    columns: Vec<Vec<ValueId>>,
    measure_name: String,
    measure: Vec<f64>,
}

/// Errors raised while building or manipulating a [`Table`].
#[derive(Debug, Clone, PartialEq)]
pub enum TableError {
    /// A row had the wrong number of attribute values.
    WrongArity {
        /// Values supplied.
        got: usize,
        /// Attributes expected.
        expected: usize,
    },
    /// A measure value was NaN, infinite, or negative (measures feed
    /// pattern weights, which Definition 1 requires to be non-negative).
    InvalidMeasure(f64),
    /// A projection referenced an unknown attribute index.
    UnknownAttribute(usize),
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::WrongArity { got, expected } => {
                write!(f, "row has {got} values, expected {expected}")
            }
            TableError::InvalidMeasure(m) => {
                write!(f, "measure value {m} must be finite and non-negative")
            }
            TableError::UnknownAttribute(a) => write!(f, "unknown attribute index {a}"),
        }
    }
}

impl std::error::Error for TableError {}

/// Incremental [`Table`] constructor.
#[derive(Debug, Clone)]
pub struct TableBuilder {
    table: Table,
}

impl TableBuilder {
    /// Starts a table with the given pattern-attribute and measure names.
    pub fn new(attr_names: &[&str], measure_name: &str) -> TableBuilder {
        TableBuilder {
            table: Table {
                attr_names: attr_names.iter().map(|s| (*s).to_owned()).collect(),
                dicts: vec![Dictionary::new(); attr_names.len()],
                columns: vec![Vec::new(); attr_names.len()],
                measure_name: measure_name.to_owned(),
                measure: Vec::new(),
            },
        }
    }

    /// Appends one record. `values` must have one entry per attribute.
    pub fn push_row(&mut self, values: &[&str], measure: f64) -> Result<&mut Self, TableError> {
        let t = &mut self.table;
        if values.len() != t.attr_names.len() {
            return Err(TableError::WrongArity {
                got: values.len(),
                expected: t.attr_names.len(),
            });
        }
        if !measure.is_finite() || measure < 0.0 {
            return Err(TableError::InvalidMeasure(measure));
        }
        for (attr, &v) in values.iter().enumerate() {
            let id = t.dicts[attr].intern(v);
            t.columns[attr].push(id);
        }
        t.measure.push(measure);
        Ok(self)
    }

    /// Finalizes the table.
    pub fn build(self) -> Table {
        self.table
    }
}

impl Table {
    /// Starts building a table.
    pub fn builder(attr_names: &[&str], measure_name: &str) -> TableBuilder {
        TableBuilder::new(attr_names, measure_name)
    }

    /// Number of records `n = |T|`.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.measure.len()
    }

    /// Number of pattern attributes `j`.
    #[inline]
    pub fn num_attrs(&self) -> usize {
        self.attr_names.len()
    }

    /// Attribute names in order.
    pub fn attr_names(&self) -> &[String] {
        &self.attr_names
    }

    /// Name of the measure attribute.
    pub fn measure_name(&self) -> &str {
        &self.measure_name
    }

    /// The dictionary of attribute `attr`.
    pub fn dictionary(&self, attr: usize) -> &Dictionary {
        &self.dicts[attr]
    }

    /// Value id at `(row, attr)`.
    #[inline]
    pub fn value(&self, row: RowId, attr: usize) -> ValueId {
        self.columns[attr][row as usize]
    }

    /// The full column of attribute `attr`.
    #[inline]
    pub fn column(&self, attr: usize) -> &[ValueId] {
        &self.columns[attr]
    }

    /// Measure value of `row`.
    #[inline]
    pub fn measure(&self, row: RowId) -> f64 {
        self.measure[row as usize]
    }

    /// All measure values.
    #[inline]
    pub fn measures(&self) -> &[f64] {
        &self.measure
    }

    /// Replaces the measure column (used by the §VI-B weight
    /// perturbations).
    ///
    /// # Panics
    /// Panics if the length differs from the row count or a value is not
    /// finite and non-negative.
    pub fn set_measures(&mut self, measures: Vec<f64>) {
        assert_eq!(measures.len(), self.num_rows(), "measure column length");
        assert!(
            measures.iter().all(|m| m.is_finite() && *m >= 0.0),
            "measures must be finite and non-negative"
        );
        self.measure = measures;
    }

    /// Resolves `(row, attr)` to its category string.
    pub fn value_str(&self, row: RowId, attr: usize) -> &str {
        self.dicts[attr].resolve(self.value(row, attr))
    }

    /// Keeps only the attributes in `attrs` (order preserved as given) —
    /// the Figure 7 "remove one pattern attribute at a time" experiment.
    pub fn project(&self, attrs: &[usize]) -> Result<Table, TableError> {
        if let Some(&bad) = attrs.iter().find(|&&a| a >= self.num_attrs()) {
            return Err(TableError::UnknownAttribute(bad));
        }
        Ok(Table {
            attr_names: attrs.iter().map(|&a| self.attr_names[a].clone()).collect(),
            dicts: attrs.iter().map(|&a| self.dicts[a].clone()).collect(),
            columns: attrs.iter().map(|&a| self.columns[a].clone()).collect(),
            measure_name: self.measure_name.clone(),
            measure: self.measure.clone(),
        })
    }

    /// Keeps only the rows in `rows` (in the order given) — the Figure 5/6
    /// "random sample of the data set" experiments.
    pub fn select_rows(&self, rows: &[RowId]) -> Table {
        Table {
            attr_names: self.attr_names.clone(),
            dicts: self.dicts.clone(),
            columns: self
                .columns
                .iter()
                .map(|col| rows.iter().map(|&r| col[r as usize]).collect())
                .collect(),
            measure_name: self.measure_name.clone(),
            measure: rows.iter().map(|&r| self.measure[r as usize]).collect(),
        }
    }

    /// Convenience: the first `n` rows.
    pub fn head(&self, n: usize) -> Table {
        let rows: Vec<RowId> = (0..self.num_rows().min(n) as RowId).collect();
        self.select_rows(&rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut b = Table::builder(&["Type", "Location"], "Cost");
        b.push_row(&["A", "West"], 10.0).unwrap();
        b.push_row(&["A", "Northeast"], 32.0).unwrap();
        b.push_row(&["B", "South"], 2.0).unwrap();
        b.push_row(&["B", "West"], 4.0).unwrap();
        b.build()
    }

    #[test]
    fn basic_shape() {
        let t = table();
        assert_eq!(t.num_rows(), 4);
        assert_eq!(t.num_attrs(), 2);
        assert_eq!(t.attr_names(), &["Type".to_owned(), "Location".to_owned()]);
        assert_eq!(t.measure_name(), "Cost");
    }

    #[test]
    fn dictionary_encoding_shares_ids() {
        let t = table();
        assert_eq!(t.value(0, 0), t.value(1, 0), "both 'A'");
        assert_eq!(t.value(0, 1), t.value(3, 1), "both 'West'");
        assert_ne!(t.value(0, 0), t.value(2, 0));
        assert_eq!(t.value_str(2, 1), "South");
        assert_eq!(t.dictionary(0).len(), 2);
        assert_eq!(t.dictionary(1).len(), 3);
    }

    #[test]
    fn measures() {
        let t = table();
        assert_eq!(t.measure(2), 2.0);
        assert_eq!(t.measures(), &[10.0, 32.0, 2.0, 4.0]);
    }

    #[test]
    fn set_measures_replaces() {
        let mut t = table();
        t.set_measures(vec![1.0, 1.0, 1.0, 1.0]);
        assert_eq!(t.measure(0), 1.0);
    }

    #[test]
    #[should_panic(expected = "measure column length")]
    fn set_measures_length_checked() {
        table().set_measures(vec![1.0]);
    }

    #[test]
    fn wrong_arity_rejected() {
        let mut b = Table::builder(&["A", "B"], "m");
        assert_eq!(
            b.push_row(&["x"], 1.0).unwrap_err(),
            TableError::WrongArity {
                got: 1,
                expected: 2
            }
        );
    }

    #[test]
    fn invalid_measure_rejected() {
        let mut b = Table::builder(&["A"], "m");
        assert!(matches!(
            b.push_row(&["x"], f64::NAN).unwrap_err(),
            TableError::InvalidMeasure(_)
        ));
        assert!(matches!(
            b.push_row(&["x"], -1.0).unwrap_err(),
            TableError::InvalidMeasure(_)
        ));
        assert!(b.push_row(&["x"], 0.0).is_ok());
    }

    #[test]
    fn project_keeps_selected_attributes() {
        let t = table();
        let p = t.project(&[1]).unwrap();
        assert_eq!(p.num_attrs(), 1);
        assert_eq!(p.attr_names(), &["Location".to_owned()]);
        assert_eq!(p.num_rows(), 4);
        assert_eq!(p.value_str(0, 0), "West");
        assert!(t.project(&[5]).is_err());
    }

    #[test]
    fn select_rows_and_head() {
        let t = table();
        let s = t.select_rows(&[2, 0]);
        assert_eq!(s.num_rows(), 2);
        assert_eq!(s.value_str(0, 0), "B");
        assert_eq!(s.measure(1), 10.0);
        let h = t.head(3);
        assert_eq!(h.num_rows(), 3);
        assert_eq!(t.head(99).num_rows(), 4);
    }

    #[test]
    fn empty_table() {
        let t = Table::builder(&["X"], "m").build();
        assert_eq!(t.num_rows(), 0);
        assert_eq!(t.head(5).num_rows(), 0);
    }
}
