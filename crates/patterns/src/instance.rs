//! The pattern-table [`Solver`] implementation for the serving layer
//! (DESIGN.md §17).
//!
//! A [`PatternInstance`] owns a [`Table`] and builds its
//! [`InvertedIndex`] exactly once; each query then gets a throwaway
//! [`PatternSpace`] — same table, same shared index, the query's own
//! cost function — via [`PatternSpace::with_index`]. That keeps the
//! per-request cost at O(1) setup instead of an O(rows·attrs) re-index,
//! which is the whole point of loading the instance once behind `Arc`.

use crate::cost_fn::CostFn;
use crate::index::InvertedIndex;
use crate::opt_cmc::opt_cmc_within;
use crate::opt_cwsc::opt_cwsc_within;
use crate::pattern_solution::{verify_certificate_in, PatternSolution};
use crate::space::PatternSpace;
use crate::table::Table;
use scwsc_core::set_system::coverage_target;
use scwsc_core::solver::{Algorithm, Answer, CostModel, Query, Solver};
use scwsc_core::telemetry::Observer;
use scwsc_core::{Deadline, Degraded, EngineError, SolveOutcome, ThreadPool};
use std::sync::Arc;

/// An immutable pattern-table instance handle: table + index built once,
/// served concurrently. See the module docs.
pub struct PatternInstance {
    table: Table,
    index: Arc<InvertedIndex>,
}

impl PatternInstance {
    /// Indexes `table` once and wraps it for serving.
    pub fn new(table: Table) -> PatternInstance {
        let index = Arc::new(InvertedIndex::build(&table));
        PatternInstance { table, index }
    }

    /// The underlying table.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// A per-query view sharing this instance's index.
    pub fn space(&self, cost: CostModel) -> PatternSpace<'_> {
        PatternSpace::with_index(&self.table, Arc::clone(&self.index), map_cost(cost))
    }
}

/// Maps the instance-independent cost name onto the pattern weight
/// functions. `LpNorm` is deliberately unreachable from the wire — it
/// takes a float parameter the canonicalized cache key has no stable
/// spelling for.
fn map_cost(cost: CostModel) -> CostFn {
    match cost {
        CostModel::Max => CostFn::Max,
        CostModel::Sum => CostFn::Sum,
        CostModel::Mean => CostFn::Mean,
        CostModel::Count => CostFn::Count,
    }
}

impl Solver for PatternInstance {
    fn describe(&self) -> String {
        format!(
            "pattern table: {} rows, {} attributes",
            self.table.num_rows(),
            self.table.num_attrs()
        )
    }

    fn elements(&self) -> usize {
        self.table.num_rows()
    }

    fn solve(
        &self,
        query: &Query,
        pool: &ThreadPool,
        deadline: &Deadline,
        obs: &mut dyn Observer,
    ) -> Result<SolveOutcome<Answer>, EngineError> {
        let space = self.space(query.cost);
        let to_answer = |solution: &PatternSolution, target: usize| Answer {
            size: solution.size(),
            covered: solution.covered,
            target,
            total_cost: solution.total_cost,
            labels: solution
                .patterns
                .iter()
                .map(|p| p.display(&self.table))
                .collect(),
            certified: None,
        };
        let (outcome, target) = match query.algorithm {
            Algorithm::Cwsc => (
                opt_cwsc_within(&space, query.k, query.coverage, deadline, obs)?,
                coverage_target(self.table.num_rows(), query.coverage),
            ),
            Algorithm::Cmc => {
                let params = query.cmc_params();
                (
                    opt_cmc_within(&space, &params, pool, deadline, obs)?,
                    params.coverage_target(self.table.num_rows()),
                )
            }
        };
        Ok(match outcome {
            SolveOutcome::Complete(s) => SolveOutcome::Complete(to_answer(&s, target)),
            SolveOutcome::Degraded(d) => {
                let check = verify_certificate_in(&space, &d.partial, &d.certificate);
                let mut answer = to_answer(&d.partial, d.certificate.target);
                answer.certified = Some(check.is_valid());
                SolveOutcome::Degraded(Degraded {
                    partial: answer,
                    certificate: d.certificate,
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scwsc_core::telemetry::NoopObserver;
    use scwsc_core::Threads;

    fn instance() -> PatternInstance {
        let mut b = Table::builder(&["Type", "Location"], "Cost");
        b.push_row(&["A", "West"], 10.0).unwrap();
        b.push_row(&["B", "South"], 2.0).unwrap();
        b.push_row(&["B", "West"], 4.0).unwrap();
        b.push_row(&["A", "South"], 1.0).unwrap();
        PatternInstance::new(b.build())
    }

    #[test]
    fn serves_both_algorithms_from_one_index() {
        let inst = instance();
        let pool = ThreadPool::new(Threads::serial());
        for query in [Query::cwsc(2, 1.0), Query::cmc(2, 0.5)] {
            let outcome = inst
                .solve(&query, &pool, &Deadline::unbounded(), &mut NoopObserver)
                .unwrap();
            assert!(outcome.is_complete(), "{query:?}");
            let answer = outcome.value();
            assert_eq!(answer.labels.len(), answer.size);
            assert!(answer.covered >= answer.target.min(1));
        }
    }

    #[test]
    fn degraded_pattern_solve_carries_verified_certificate() {
        let inst = instance();
        let pool = ThreadPool::new(Threads::serial());
        let deadline = Deadline::unbounded().with_tick_budget(0);
        let outcome = inst
            .solve(&Query::cmc(2, 1.0), &pool, &deadline, &mut NoopObserver)
            .unwrap();
        assert!(outcome.is_degraded());
        assert_eq!(outcome.value().certified, Some(true));
    }

    #[test]
    fn per_query_spaces_share_the_index() {
        let inst = instance();
        let a = inst.space(CostModel::Max);
        let b = inst.space(CostModel::Count);
        assert!(Arc::ptr_eq(&a.index_handle(), &b.index_handle()));
        assert_ne!(a.cost_fn(), b.cost_fn());
    }
}
