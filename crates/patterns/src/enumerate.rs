//! Full-cube pattern enumeration — the *unoptimized* path.
//!
//! The general algorithms of Section V expect the whole set collection up
//! front; for patterned sets that means materializing every pattern with a
//! non-empty benefit set (all `2^j` generalizations of every record). This
//! is exactly what the paper's unoptimized CMC/CWSC baselines do and what
//! Figures 5–6 show blowing up — the optimized algorithms in
//! [`crate::opt_cwsc()`]/[`crate::opt_cmc()`] exist to avoid it.

use crate::cost_fn::CostFn;
use crate::fxhash::FxHashMap;
use crate::pattern::Pattern;
use crate::table::{RowId, Table};
use scwsc_core::{SetSystem, Solution};

/// Practical cap on `2^j` enumeration.
const MAX_ATTRS: usize = 16;

/// Every non-empty pattern of a table, materialized as a [`SetSystem`].
///
/// Pattern `i` of [`MaterializedPatterns::patterns`] is set id `i` of
/// [`MaterializedPatterns::system`]; patterns are sorted so ids are stable
/// across runs (and so the core algorithms' id-order tie-breaking matches
/// the optimized algorithms' pattern-order tie-breaking).
#[derive(Debug, Clone)]
pub struct MaterializedPatterns {
    /// All non-empty patterns, sorted.
    pub patterns: Vec<Pattern>,
    /// The corresponding weighted set system over row ids.
    pub system: SetSystem,
}

impl MaterializedPatterns {
    /// Resolves a solution's set ids back to patterns.
    pub fn solution_patterns(&self, solution: &Solution) -> Vec<&Pattern> {
        solution
            .sets()
            .iter()
            .map(|&id| &self.patterns[id as usize])
            .collect()
    }

    /// Number of materialized patterns.
    pub fn num_patterns(&self) -> usize {
        self.patterns.len()
    }

    /// Finds the set id of a pattern, if it is non-empty.
    pub fn id_of(&self, pattern: &Pattern) -> Option<u32> {
        self.patterns.binary_search(pattern).ok().map(|i| i as u32)
    }
}

/// Materializes every pattern with at least one matching record, plus the
/// all-wildcards pattern (so Definition 1's universe-set requirement holds
/// even for an empty table), weighing each with `cost_fn`.
///
/// # Panics
/// Panics if the table has more than 16 pattern attributes (the `2^j`
/// blow-up is the point of the optimized algorithms; 16 is far beyond the
/// paper's 5-attribute workload).
pub fn enumerate_all(table: &Table, cost_fn: CostFn) -> MaterializedPatterns {
    let j = table.num_attrs();
    assert!(
        j <= MAX_ATTRS,
        "full-cube enumeration over {j} attributes would create 2^{j} patterns per record"
    );
    let masks = 1u32 << j;
    let mut ben: FxHashMap<Pattern, Vec<RowId>> = FxHashMap::default();
    let mut scratch: Vec<Option<u32>> = vec![None; j];
    for row in 0..table.num_rows() as RowId {
        for mask in 0..masks {
            for (attr, slot) in scratch.iter_mut().enumerate() {
                *slot = (mask >> attr & 1 == 1).then(|| table.value(row, attr));
            }
            ben.entry(Pattern::new(scratch.clone()))
                .or_default()
                .push(row);
        }
    }
    // Records contribute each generalization once, so row lists are sorted
    // and duplicate-free by construction; the root may be missing only for
    // an empty table.
    ben.entry(Pattern::all_wildcards(j)).or_default();

    let mut patterns: Vec<Pattern> = ben.keys().cloned().collect();
    patterns.sort_unstable();
    let mut builder = SetSystem::builder(table.num_rows());
    for p in &patterns {
        let rows = &ben[p];
        builder.add_set(rows.iter().copied(), cost_fn.evaluate(table, rows));
    }
    let system = builder
        .build()
        .expect("row ids are in range and costs are finite by construction");
    MaterializedPatterns { patterns, system }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scwsc_core::{algorithms, Stats};

    /// 3 rows over 2 attributes with 2 distinct values each.
    fn table() -> Table {
        let mut b = Table::builder(&["Type", "Location"], "Cost");
        b.push_row(&["A", "West"], 10.0).unwrap();
        b.push_row(&["B", "South"], 2.0).unwrap();
        b.push_row(&["B", "West"], 4.0).unwrap();
        b.build()
    }

    #[test]
    fn enumerates_exactly_the_nonempty_patterns() {
        let t = table();
        let m = enumerate_all(&t, CostFn::Max);
        // patterns: root; A*, B*; *West, *South; AW, BS, BW  -> 8
        assert_eq!(m.num_patterns(), 8);
        assert!(m.system.has_universe_set());
        // A/South does not occur
        let a = t.dictionary(0).lookup("A").unwrap();
        let south = t.dictionary(1).lookup("South").unwrap();
        assert!(m.id_of(&Pattern::new(vec![Some(a), Some(south)])).is_none());
    }

    #[test]
    fn benefits_and_costs_match_definitions() {
        let t = table();
        let m = enumerate_all(&t, CostFn::Max);
        let b = t.dictionary(0).lookup("B").unwrap();
        let id = m.id_of(&Pattern::new(vec![Some(b), None])).unwrap();
        assert_eq!(m.system.members(id), &[1, 2]);
        assert_eq!(m.system.cost(id).value(), 4.0);
        let root_id = m.id_of(&Pattern::all_wildcards(2)).unwrap();
        assert_eq!(m.system.members(root_id).len(), 3);
        assert_eq!(m.system.cost(root_id).value(), 10.0);
    }

    #[test]
    fn empty_table_still_has_root() {
        let t = Table::builder(&["X", "Y"], "m").build();
        let m = enumerate_all(&t, CostFn::Max);
        assert_eq!(m.num_patterns(), 1);
        assert!(m.patterns[0].is_root());
        assert_eq!(m.system.cost(0).value(), 0.0);
    }

    #[test]
    fn ids_are_sorted_pattern_order() {
        let m = enumerate_all(&table(), CostFn::Max);
        for w in m.patterns.windows(2) {
            assert!(w[0] < w[1]);
        }
        for (i, p) in m.patterns.iter().enumerate() {
            assert_eq!(m.id_of(p), Some(i as u32));
        }
    }

    #[test]
    fn unoptimized_cwsc_runs_on_materialization() {
        let t = table();
        let m = enumerate_all(&t, CostFn::Max);
        let sol = algorithms::cwsc(&m.system, 2, 1.0, &mut Stats::new()).unwrap();
        assert_eq!(sol.covered(), 3);
        assert!(sol.size() <= 2);
        let pats = m.solution_patterns(&sol);
        assert_eq!(pats.len(), sol.size());
    }

    #[test]
    fn duplicate_rows_share_patterns() {
        let mut b = Table::builder(&["X"], "m");
        b.push_row(&["a"], 1.0).unwrap();
        b.push_row(&["a"], 2.0).unwrap();
        let t = b.build();
        let m = enumerate_all(&t, CostFn::Max);
        // root and {a}
        assert_eq!(m.num_patterns(), 2);
        let a = t.dictionary(0).lookup("a").unwrap();
        let id = m.id_of(&Pattern::new(vec![Some(a)])).unwrap();
        assert_eq!(m.system.members(id), &[0, 1]);
        assert_eq!(m.system.cost(id).value(), 2.0);
    }

    #[test]
    #[should_panic(expected = "full-cube")]
    fn too_many_attributes_rejected() {
        let names: Vec<String> = (0..17).map(|i| format!("a{i}")).collect();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let t = Table::builder(&name_refs, "m").build();
        enumerate_all(&t, CostFn::Max);
    }
}
