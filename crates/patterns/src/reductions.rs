//! The paper's reduction constructions (Section IV), reified as code.
//!
//! These are not needed to *run* the algorithms — they exist so the
//! complexity analysis is executable: tests use them as oracles (vertex
//! covers of a tripartite graph ↔ pattern covers of the Lemma 1 data set;
//! arbitrary set systems ↔ patterned systems under Theorem 3's
//! approximation-preserving mapping).

use crate::pattern::Pattern;
use crate::table::{Table, TableError};
use scwsc_core::{SetSystem, SolveError};

/// A tripartite graph with vertex parts `A`, `B`, `C` (sizes given) and
/// edges between different parts.
#[derive(Debug, Clone)]
pub struct TripartiteGraph {
    /// Sizes of the three vertex parts.
    pub part_sizes: [usize; 3],
    /// Edges as `((part, index), (part, index))` with `part ∈ {0,1,2}`.
    pub edges: Vec<((usize, usize), (usize, usize))>,
}

/// Errors from the reduction constructions.
#[derive(Debug, Clone, PartialEq)]
pub enum ReductionError {
    /// An edge endpoint referenced a vertex outside its part.
    BadVertex {
        /// Part index (0, 1, or 2).
        part: usize,
        /// Vertex index within the part.
        index: usize,
    },
    /// An edge connected two vertices of the same part (not tripartite).
    SamePartEdge(usize),
    /// Table construction failed.
    Table(TableError),
}

impl std::fmt::Display for ReductionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReductionError::BadVertex { part, index } => {
                write!(f, "vertex {index} out of range for part {part}")
            }
            ReductionError::SamePartEdge(p) => {
                write!(f, "edge inside part {p}: graph is not tripartite")
            }
            ReductionError::Table(e) => write!(f, "table construction failed: {e}"),
        }
    }
}

impl std::error::Error for ReductionError {}

/// Output of the Lemma 1 construction.
#[derive(Debug, Clone)]
pub struct Lemma1Instance {
    /// The constructed data set: one record per edge plus `(x, y, z | W)`.
    pub table: Table,
    /// The cost threshold `τ` (every edge record's measure).
    pub tau: f64,
    /// The blocking weight `W > τ` of the extra record.
    pub big_w: f64,
    /// Required coverage fraction `m/(m+1)`.
    pub coverage_fraction: f64,
}

/// Builds the Lemma 1 data set from a tripartite graph: pattern attributes
/// `D1, D2, D3` with `dom(D1) = A ∪ {x}` etc.; each edge becomes a record
/// with the third attribute filled by the fresh vertex, measure `τ`; one
/// final record `(x, y, z | W)`; coverage `m/(m+1)`. Under the `Max` cost
/// function, a smallest pattern cover of the required fraction has exactly
/// the size of a minimum vertex cover of the graph.
pub fn lemma1_instance(
    graph: &TripartiteGraph,
    tau: f64,
    big_w: f64,
) -> Result<Lemma1Instance, ReductionError> {
    assert!(big_w > tau, "construction requires W > τ");
    for (e, &((pa, ia), (pb, ib))) in graph.edges.iter().enumerate() {
        for &(p, i) in &[(pa, ia), (pb, ib)] {
            if p > 2 {
                return Err(ReductionError::BadVertex { part: p, index: i });
            }
            if i >= graph.part_sizes[p] {
                return Err(ReductionError::BadVertex { part: p, index: i });
            }
        }
        if pa == pb {
            return Err(ReductionError::SamePartEdge(e));
        }
    }

    let name = |part: usize, i: usize| -> String {
        match part {
            0 => format!("a{i}"),
            1 => format!("b{i}"),
            _ => format!("c{i}"),
        }
    };
    let fresh = ["x", "y", "z"];

    let mut b = Table::builder(&["D1", "D2", "D3"], "M");
    for &((pa, ia), (pb, ib)) in &graph.edges {
        // Normalize so the pair is ordered by part.
        let (first, second) = if pa < pb {
            ((pa, ia), (pb, ib))
        } else {
            ((pb, ib), (pa, ia))
        };
        let mut vals = [
            fresh[0].to_owned(),
            fresh[1].to_owned(),
            fresh[2].to_owned(),
        ];
        vals[first.0] = name(first.0, first.1);
        vals[second.0] = name(second.0, second.1);
        let refs: Vec<&str> = vals.iter().map(String::as_str).collect();
        b.push_row(&refs, tau).map_err(ReductionError::Table)?;
    }
    let refs: Vec<&str> = fresh.to_vec();
    b.push_row(&refs, big_w).map_err(ReductionError::Table)?;
    let m = graph.edges.len();
    Ok(Lemma1Instance {
        table: b.build(),
        tau,
        big_w,
        coverage_fraction: m as f64 / (m + 1) as f64,
    })
}

impl Lemma1Instance {
    /// The single-vertex pattern `(v, ALL, ALL)` / `(ALL, v, ALL)` /
    /// `(ALL, ALL, v)` for a graph vertex, if it appears in the data.
    pub fn vertex_pattern(&self, part: usize, index: usize) -> Option<Pattern> {
        let name = match part {
            0 => format!("a{index}"),
            1 => format!("b{index}"),
            2 => format!("c{index}"),
            _ => return None,
        };
        let id = self.table.dictionary(part).lookup(&name)?;
        let mut vals = vec![None, None, None];
        vals[part] = Some(id);
        Some(Pattern::new(vals))
    }
}

/// Theorem 3's approximation-preserving mapping of an arbitrary set system
/// to a patterned one: `n` pattern attributes over `{0, 1}`; element `i`
/// becomes the record that is 1 in attribute `i` and 0 elsewhere; set
/// `S = {i1..il}` becomes the pattern with `ALL` in attributes `i1..il`
/// and 0 elsewhere, keeping its weight.
///
/// Returns the table plus, per original set, its pattern. (The paper gives
/// the *other* patterns infinite weight so they are never chosen; rather
/// than materialize infinitely many patterns, callers solve over exactly
/// the returned patterns — the same restriction.)
pub fn set_system_to_patterns(system: &SetSystem) -> Result<(Table, Vec<Pattern>), SolveError> {
    let n = system.num_elements();
    let attr_names: Vec<String> = (0..n).map(|i| format!("e{i}")).collect();
    let attr_refs: Vec<&str> = attr_names.iter().map(String::as_str).collect();
    let mut b = Table::builder(&attr_refs, "M");
    for i in 0..n {
        let vals: Vec<&str> = (0..n).map(|j| if i == j { "1" } else { "0" }).collect();
        b.push_row(&vals, 0.0)
            .expect("construction rows are well-formed");
    }
    let table = b.build();
    let mut patterns = Vec::with_capacity(system.num_sets());
    for (_, set) in system.iter() {
        // Default every attribute to the constant 0; members become ALL.
        // (With n ≥ 2 every attribute's active domain contains "0"; for
        // the degenerate n ≤ 1 case the lookup may fail, in which case the
        // pattern pins the only record's value.)
        let mut vals: Vec<Option<u32>> = (0..n)
            .map(|attr| table.dictionary(attr).lookup("0").or(Some(0)))
            .collect();
        for &e in set.members() {
            vals[e as usize] = None;
        }
        patterns.push(Pattern::new(vals));
    }
    Ok((table, patterns))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost_fn::CostFn;
    use crate::index::InvertedIndex;
    use crate::space::PatternSpace;
    use scwsc_core::BitSet;

    /// Triangle-ish tripartite graph: a0-b0, b0-c0, a0-c0 (minimum vertex
    /// cover has size 2) plus a pendant edge a1-b0.
    fn graph() -> TripartiteGraph {
        TripartiteGraph {
            part_sizes: [2, 1, 1],
            edges: vec![
                ((0, 0), (1, 0)),
                ((1, 0), (2, 0)),
                ((0, 0), (2, 0)),
                ((0, 1), (1, 0)),
            ],
        }
    }

    #[test]
    fn construction_shape() {
        let inst = lemma1_instance(&graph(), 1.0, 10.0).unwrap();
        assert_eq!(inst.table.num_rows(), 5, "m + 1 records");
        assert_eq!(inst.table.num_attrs(), 3);
        assert_eq!(inst.coverage_fraction, 4.0 / 5.0);
        // The blocking record carries weight W.
        assert_eq!(inst.table.measure(4), 10.0);
    }

    #[test]
    fn vertex_cover_yields_pattern_cover_of_cost_tau() {
        let inst = lemma1_instance(&graph(), 1.0, 10.0).unwrap();
        let sp = PatternSpace::new(&inst.table, CostFn::Max);
        // {b0, a0} is a vertex cover (covers all 4 edges).
        let cover = [
            inst.vertex_pattern(1, 0).unwrap(),
            inst.vertex_pattern(0, 0).unwrap(),
        ];
        let mut covered = BitSet::new(5);
        for p in &cover {
            let rows = sp.benefit(p);
            assert_eq!(sp.cost(&rows), 1.0, "vertex patterns cost τ");
            for r in rows {
                covered.insert(r as usize);
            }
        }
        assert!(covered.count_ones() >= 4, "covers m of m+1 records");
        assert!(!covered.contains(4), "the (x,y,z|W) record stays uncovered");
    }

    #[test]
    fn non_vertex_cover_misses_edges() {
        let inst = lemma1_instance(&graph(), 1.0, 10.0).unwrap();
        let sp = PatternSpace::new(&inst.table, CostFn::Max);
        // {a0} alone covers only its incident edges (2 of 4... a0-b0,
        // a0-c0), not b0-c0 or a1-b0.
        let rows = sp.benefit(&inst.vertex_pattern(0, 0).unwrap());
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn blocking_patterns_cost_w() {
        let inst = lemma1_instance(&graph(), 1.0, 10.0).unwrap();
        let sp = PatternSpace::new(&inst.table, CostFn::Max);
        // The all-wildcards pattern covers (x,y,z|W) and costs W.
        let root_rows = sp.benefit(&Pattern::all_wildcards(3));
        assert_eq!(sp.cost(&root_rows), 10.0);
    }

    #[test]
    fn rejects_malformed_graphs() {
        let mut g = graph();
        g.edges.push(((0, 5), (1, 0)));
        assert!(matches!(
            lemma1_instance(&g, 1.0, 10.0),
            Err(ReductionError::BadVertex { .. })
        ));
        let mut g = graph();
        g.edges.push(((0, 0), (0, 1)));
        assert!(matches!(
            lemma1_instance(&g, 1.0, 10.0),
            Err(ReductionError::SamePartEdge(_))
        ));
    }

    #[test]
    #[should_panic(expected = "W > τ")]
    fn requires_w_above_tau() {
        let _ = lemma1_instance(&graph(), 5.0, 5.0);
    }

    #[test]
    fn theorem3_patterns_cover_exactly_their_sets() {
        let mut b = SetSystem::builder(4);
        b.add_set([0, 2], 3.0)
            .add_set([1, 2, 3], 5.0)
            .add_universe_set(9.0);
        let system = b.build().unwrap();
        let (table, patterns) = set_system_to_patterns(&system).unwrap();
        assert_eq!(table.num_rows(), 4);
        assert_eq!(patterns.len(), 3);
        let idx = InvertedIndex::build(&table);
        for (id, set) in system.iter() {
            let rows = idx.benefit(&patterns[id as usize]);
            let expected: Vec<u32> = set.members().to_vec();
            assert_eq!(rows, expected, "set {id}");
        }
        assert!(patterns[2].is_root(), "universe set maps to all-ALL");
    }
}
