//! Pattern weight functions.
//!
//! "The details of computing set (or pattern) weights are orthogonal to
//! our algorithms" (Section II); the paper's running example and
//! experiments use the **maximum** of the covered records' measure values
//! (Table II, and session length for LBL), and Section IV notes the
//! hardness carries over to sum and Lp-norms. All of those are provided.

use crate::table::{RowId, Table};

/// How a pattern's weight is derived from the measures of the records it
/// covers.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum CostFn {
    /// `max_{t ∈ Ben(p)} t[M]` — the paper's default (Section I).
    Max,
    /// `Σ_{t ∈ Ben(p)} t[M]`.
    Sum,
    /// Arithmetic mean of the covered measures.
    Mean,
    /// `|Ben(p)|` — cost equals coverage; degenerates to unweighted cover.
    Count,
    /// `(Σ |t[M]|^p)^{1/p}` for `p ≥ 1` (Section IV's "other functions").
    LpNorm(f64),
}

impl CostFn {
    /// Evaluates the weight of a pattern covering `rows` of `table`.
    ///
    /// An empty benefit set yields weight 0 (such patterns are never
    /// candidates anyway — a set must cover something to be useful).
    ///
    /// # Panics
    /// Panics if `LpNorm(p)` has `p < 1` or non-finite `p`.
    pub fn evaluate(&self, table: &Table, rows: &[RowId]) -> f64 {
        if rows.is_empty() {
            return 0.0;
        }
        let measures = rows.iter().map(|&r| table.measure(r));
        match *self {
            CostFn::Max => measures.fold(f64::NEG_INFINITY, f64::max),
            CostFn::Sum => measures.sum(),
            CostFn::Mean => measures.sum::<f64>() / rows.len() as f64,
            CostFn::Count => rows.len() as f64,
            CostFn::LpNorm(p) => {
                assert!(p.is_finite() && p >= 1.0, "LpNorm requires p >= 1, got {p}");
                measures
                    .map(|m| m.abs().powf(p))
                    .sum::<f64>()
                    .powf(p.recip())
            }
        }
    }

    /// Whether the function is monotone along the pattern lattice
    /// (children never cost more than parents). `Max`, `Sum`, `Count`, and
    /// `LpNorm` are (assuming non-negative measures); `Mean` is not.
    pub fn is_lattice_monotone(&self) -> bool {
        !matches!(self, CostFn::Mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut b = Table::builder(&["X"], "m");
        for (v, m) in [("a", 3.0), ("a", 4.0), ("b", 12.0), ("b", 5.0)] {
            b.push_row(&[v], m).unwrap();
        }
        b.build()
    }

    #[test]
    fn max_matches_paper_convention() {
        let t = table();
        assert_eq!(CostFn::Max.evaluate(&t, &[0, 1]), 4.0);
        assert_eq!(CostFn::Max.evaluate(&t, &[0, 1, 2, 3]), 12.0);
    }

    #[test]
    fn sum_mean_count() {
        let t = table();
        assert_eq!(CostFn::Sum.evaluate(&t, &[0, 1, 3]), 12.0);
        assert_eq!(CostFn::Mean.evaluate(&t, &[0, 1, 3]), 4.0);
        assert_eq!(CostFn::Count.evaluate(&t, &[0, 1, 3]), 3.0);
    }

    #[test]
    fn lp_norms() {
        let t = table();
        // L1 over rows 0,1 = 7; L2 = sqrt(9+16) = 5
        assert_eq!(CostFn::LpNorm(1.0).evaluate(&t, &[0, 1]), 7.0);
        assert!((CostFn::LpNorm(2.0).evaluate(&t, &[0, 1]) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "p >= 1")]
    fn lp_norm_rejects_small_p() {
        CostFn::LpNorm(0.5).evaluate(&table(), &[0]);
    }

    #[test]
    fn empty_rows_cost_zero() {
        let t = table();
        for f in [
            CostFn::Max,
            CostFn::Sum,
            CostFn::Mean,
            CostFn::Count,
            CostFn::LpNorm(2.0),
        ] {
            assert_eq!(f.evaluate(&t, &[]), 0.0);
        }
    }

    #[test]
    fn monotonicity_flags() {
        assert!(CostFn::Max.is_lattice_monotone());
        assert!(CostFn::Sum.is_lattice_monotone());
        assert!(CostFn::Count.is_lattice_monotone());
        assert!(CostFn::LpNorm(2.0).is_lattice_monotone());
        assert!(!CostFn::Mean.is_lattice_monotone());
    }

    #[test]
    fn max_is_monotone_on_nested_row_sets() {
        let t = table();
        let small = CostFn::Max.evaluate(&t, &[0]);
        let large = CostFn::Max.evaluate(&t, &[0, 2]);
        assert!(small <= large);
    }

    #[test]
    fn mean_is_not_monotone_on_nested_row_sets() {
        let t = table();
        let child = CostFn::Mean.evaluate(&t, &[2]); // 12
        let parent = CostFn::Mean.evaluate(&t, &[2, 3]); // 8.5
        assert!(child > parent);
    }
}
