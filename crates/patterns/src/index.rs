//! Inverted index over a [`Table`]: per `(attribute, value)` posting lists
//! plus k-way intersection, the workhorse for computing a pattern's
//! benefit set `Ben(p)` without scanning the table.

use crate::dictionary::ValueId;
use crate::pattern::Pattern;
use crate::table::{RowId, Table};

/// Posting lists `(attr, value) → sorted row ids`.
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    /// postings[attr][value] = sorted row ids having that value
    postings: Vec<Vec<Vec<RowId>>>,
    num_rows: usize,
}

impl InvertedIndex {
    /// Builds the index in one pass over the table.
    pub fn build(table: &Table) -> InvertedIndex {
        let mut postings: Vec<Vec<Vec<RowId>>> = (0..table.num_attrs())
            .map(|a| vec![Vec::new(); table.dictionary(a).len()])
            .collect();
        for (attr, attr_postings) in postings.iter_mut().enumerate() {
            for (row, &v) in table.column(attr).iter().enumerate() {
                attr_postings[v as usize].push(row as RowId);
            }
        }
        InvertedIndex {
            postings,
            num_rows: table.num_rows(),
        }
    }

    /// Rows having `value` in `attr` (sorted ascending).
    pub fn posting(&self, attr: usize, value: ValueId) -> &[RowId] {
        &self.postings[attr][value as usize]
    }

    /// Number of rows in the indexed table.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// `Ben(p)`: the sorted rows matching `pattern`, via posting-list
    /// intersection (smallest list drives a galloping probe of the rest).
    /// The all-wildcards pattern yields every row.
    pub fn benefit(&self, pattern: &Pattern) -> Vec<RowId> {
        let mut lists: Vec<&[RowId]> = Vec::new();
        for (attr, v) in pattern.values().iter().enumerate() {
            if let Some(v) = v {
                match self.postings[attr].get(*v as usize) {
                    Some(list) => lists.push(list),
                    None => return Vec::new(), // value outside active domain
                }
            }
        }
        match lists.len() {
            0 => (0..self.num_rows as RowId).collect(),
            1 => lists[0].to_vec(),
            _ => {
                lists.sort_by_key(|l| l.len());
                let (first, rest) = lists.split_first().expect("len >= 2");
                intersect_driver(first, rest)
            }
        }
    }

    /// `|Ben(p)|` without materializing the row list.
    pub fn benefit_count(&self, pattern: &Pattern) -> usize {
        // For the sizes seen here materializing is cheap enough; kept as a
        // separate entry point so callers express intent.
        if pattern.is_root() {
            self.num_rows
        } else {
            self.benefit(pattern).len()
        }
    }
}

/// Intersects `driver` against every list in `rest` using galloping
/// (exponential + binary) search, good when the driver is much smaller.
fn intersect_driver(driver: &[RowId], rest: &[&[RowId]]) -> Vec<RowId> {
    let mut out = Vec::with_capacity(driver.len());
    let mut cursors = vec![0usize; rest.len()];
    'rows: for &row in driver {
        for (list, cursor) in rest.iter().zip(cursors.iter_mut()) {
            match gallop_to(list, *cursor, row) {
                Some(pos) => *cursor = pos + 1,
                None => {
                    // Advance the cursor past smaller entries anyway so the
                    // next probe starts close.
                    *cursor = list.partition_point(|&x| x < row);
                    if *cursor >= list.len() {
                        break 'rows; // this list is exhausted: no more hits
                    }
                    continue 'rows;
                }
            }
        }
        out.push(row);
    }
    out
}

/// Finds `target` in `list[start..]` by galloping; returns its position.
fn gallop_to(list: &[RowId], start: usize, target: RowId) -> Option<usize> {
    if start >= list.len() {
        return None;
    }
    let mut step = 1usize;
    let mut hi = start;
    while hi < list.len() && list[hi] < target {
        hi = hi.saturating_add(step);
        step <<= 1;
    }
    let lo = hi.saturating_sub(step >> 1).max(start);
    let hi = hi.min(list.len());
    let idx = lo + list[lo..hi].partition_point(|&x| x < target);
    (idx < list.len() && list[idx] == target).then_some(idx)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut b = Table::builder(&["Type", "Location"], "Cost");
        for (t, l, c) in [
            ("A", "West", 10.0),
            ("A", "Northeast", 32.0),
            ("B", "South", 2.0),
            ("A", "North", 4.0),
            ("B", "West", 4.0),
            ("B", "South", 1.0),
        ] {
            b.push_row(&[t, l], c).unwrap();
        }
        b.build()
    }

    fn pat(t: &Table, ty: Option<&str>, loc: Option<&str>) -> Pattern {
        Pattern::new(vec![
            ty.map(|v| t.dictionary(0).lookup(v).unwrap()),
            loc.map(|v| t.dictionary(1).lookup(v).unwrap()),
        ])
    }

    #[test]
    fn postings_are_sorted_per_value() {
        let t = table();
        let idx = InvertedIndex::build(&t);
        let a = t.dictionary(0).lookup("A").unwrap();
        assert_eq!(idx.posting(0, a), &[0, 1, 3]);
        let south = t.dictionary(1).lookup("South").unwrap();
        assert_eq!(idx.posting(1, south), &[2, 5]);
    }

    #[test]
    fn root_benefit_is_all_rows() {
        let t = table();
        let idx = InvertedIndex::build(&t);
        assert_eq!(
            idx.benefit(&Pattern::all_wildcards(2)),
            vec![0, 1, 2, 3, 4, 5]
        );
        assert_eq!(idx.benefit_count(&Pattern::all_wildcards(2)), 6);
    }

    #[test]
    fn single_attribute_benefit() {
        let t = table();
        let idx = InvertedIndex::build(&t);
        assert_eq!(idx.benefit(&pat(&t, Some("B"), None)), vec![2, 4, 5]);
        assert_eq!(idx.benefit(&pat(&t, None, Some("West"))), vec![0, 4]);
    }

    #[test]
    fn two_attribute_intersection() {
        let t = table();
        let idx = InvertedIndex::build(&t);
        assert_eq!(idx.benefit(&pat(&t, Some("B"), Some("South"))), vec![2, 5]);
        assert_eq!(
            idx.benefit(&pat(&t, Some("A"), Some("South"))),
            Vec::<RowId>::new()
        );
        assert_eq!(idx.benefit_count(&pat(&t, Some("B"), Some("West"))), 1);
    }

    #[test]
    fn matches_agrees_with_index() {
        let t = table();
        let idx = InvertedIndex::build(&t);
        for p in [
            pat(&t, Some("A"), None),
            pat(&t, None, Some("South")),
            pat(&t, Some("B"), Some("West")),
            Pattern::all_wildcards(2),
        ] {
            let scanned: Vec<RowId> = (0..t.num_rows() as RowId)
                .filter(|&r| p.matches(&t, r))
                .collect();
            assert_eq!(idx.benefit(&p), scanned, "{}", p.display(&t));
        }
    }

    #[test]
    fn gallop_finds_positions() {
        let list: Vec<RowId> = vec![2, 5, 9, 14, 20, 33, 50];
        assert_eq!(gallop_to(&list, 0, 2), Some(0));
        assert_eq!(gallop_to(&list, 0, 50), Some(6));
        assert_eq!(gallop_to(&list, 2, 14), Some(3));
        assert_eq!(gallop_to(&list, 0, 15), None);
        assert_eq!(gallop_to(&list, 7, 2), None, "start past end");
        assert_eq!(gallop_to(&list, 3, 9), None, "target before start");
    }

    #[test]
    fn three_way_intersection() {
        let mut b = Table::builder(&["X", "Y", "Z"], "m");
        b.push_row(&["a", "p", "u"], 1.0).unwrap();
        b.push_row(&["a", "p", "v"], 1.0).unwrap();
        b.push_row(&["a", "q", "u"], 1.0).unwrap();
        b.push_row(&["b", "p", "u"], 1.0).unwrap();
        let t = b.build();
        let idx = InvertedIndex::build(&t);
        let p = Pattern::new(vec![
            t.dictionary(0).lookup("a"),
            t.dictionary(1).lookup("p"),
            t.dictionary(2).lookup("u"),
        ]);
        assert_eq!(idx.benefit(&p), vec![0]);
    }

    #[test]
    fn empty_table_index() {
        let t = Table::builder(&["X"], "m").build();
        let idx = InvertedIndex::build(&t);
        assert_eq!(idx.benefit(&Pattern::all_wildcards(1)), Vec::<RowId>::new());
    }
}
