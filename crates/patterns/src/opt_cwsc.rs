//! Optimized Concise Weighted Set Cover for patterned sets — Figure 3.
//!
//! Instead of materializing the full pattern cube, the candidate set `C`
//! starts with just the all-wildcards pattern and is expanded downwards
//! only where a child can still meet the current eligibility floor
//! `rem/i`. Because benefit is anti-monotone along the lattice, a child is
//! examined only when *all* of its parents are candidates (if any parent
//! fell below the floor, the child must be below it too). The waitlist `W`
//! processes candidates parents-before-children by always taking the
//! highest marginal benefit next.
//!
//! Provided both break ties the same way (they do — see
//! [`crate::candidates::gain_order`]), the optimized algorithm selects
//! exactly the same patterns in the same order as running the unoptimized
//! CWSC over the full materialization; the property tests assert this.

use crate::candidates::{gain_order, CandId, CandidatePool};
use crate::pattern::Pattern;
use crate::pattern_solution::PatternSolution;
use crate::space::{LatticeSpace, PatternSpace};
use scwsc_core::engine::{
    panic_message, Certificate, Deadline, DegradeReason, Degraded, EngineError, SolveOutcome,
};
use scwsc_core::parallel::prune_from_env;
use scwsc_core::telemetry::{
    audit, pack_k_target, EventLog, Observer, PhaseSpan, PruneReason, TraceId, PHASE_EXPAND,
    PHASE_SCAN_PRUNE, PHASE_SELECT, PHASE_TOTAL,
};
use scwsc_core::{coverage_target, BitSet, SolveError};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Runs the optimized CWSC (Fig. 3): at most `k` patterns covering at
/// least `⌈coverage_fraction·n⌉` records of the space's table.
///
/// The run reports its work through any [`Observer`]: `benefit_computed`
/// per pattern whose benefit set and cost are materialized (Fig. 3 lines
/// 05 and 17 — the Figure 6 metric), `candidate_pruned(BelowFloor)` when a
/// candidate drops below the eligibility floor `rem/i`,
/// `subtree_pruned(BelowFloor)` when a child fails the floor at
/// materialization (its whole subtree stays unexplored),
/// `posting_scanned` for the parent rows bucketed during lattice
/// expansion, `set_selected` per pick, and a `"total"` phase span. Passing
/// `&mut Stats` recovers the classic counters.
///
/// ```
/// use scwsc_patterns::{opt_cwsc, CostFn, PatternSpace, Table};
/// use scwsc_core::Stats;
///
/// let mut b = Table::builder(&["Type", "Location"], "Cost");
/// b.push_row(&["A", "West"], 10.0).unwrap();
/// b.push_row(&["B", "South"], 2.0).unwrap();
/// b.push_row(&["B", "West"], 4.0).unwrap();
/// let table = b.build();
///
/// let space = PatternSpace::new(&table, CostFn::Max);
/// let summary = opt_cwsc(&space, 2, 2.0 / 3.0, &mut Stats::new()).unwrap();
/// assert!(summary.size() <= 2);
/// assert!(summary.covered >= 2);
/// summary.verify(&space); // recomputes coverage/cost independently
/// ```
pub fn opt_cwsc<O: Observer + ?Sized>(
    space: &PatternSpace<'_>,
    k: usize,
    coverage_fraction: f64,
    obs: &mut O,
) -> Result<PatternSolution, SolveError> {
    let n = space.num_rows();
    opt_cwsc_in(space, k, coverage_target(n, coverage_fraction), obs)
}

/// [`opt_cwsc`] with an explicit element-count target.
pub fn opt_cwsc_with_target<O: Observer + ?Sized>(
    space: &PatternSpace<'_>,
    k: usize,
    target: usize,
    obs: &mut O,
) -> Result<PatternSolution, SolveError> {
    opt_cwsc_in(space, k, target, obs)
}

/// The Figure 3 algorithm over any [`LatticeSpace`] — the flat pattern
/// cube or the hierarchy-enriched lattice of
/// [`crate::hierarchy::HierarchicalSpace`].
pub fn opt_cwsc_in<S: LatticeSpace, O: Observer + ?Sized>(
    space: &S,
    k: usize,
    target: usize,
    obs: &mut O,
) -> Result<PatternSolution, SolveError> {
    if k == 0 {
        return Err(SolveError::ZeroSizeBound);
    }
    if target == 0 {
        return Ok(PatternSolution {
            patterns: Vec::new(),
            covered: 0,
            total_cost: 0.0,
        });
    }
    obs.trace_started(
        TraceId::mint(
            "opt_cwsc",
            space.num_rows() as u64,
            pack_k_target(k, target),
        ),
        "opt_cwsc",
    );
    let span = PhaseSpan::enter(obs, PHASE_TOTAL);
    let result = match run_in(space, k, target, &Deadline::unbounded(), obs) {
        PatternRound::Done(result) => result,
        PatternRound::Expired { .. } => unreachable!("unbounded deadline cannot expire"),
    };
    span.exit(obs);
    result
}

/// [`opt_cwsc`] under a [`Deadline`]: the resilience-engine entry point
/// (DESIGN.md §12). See [`opt_cwsc_in_within`].
pub fn opt_cwsc_within<O: Observer + ?Sized>(
    space: &PatternSpace<'_>,
    k: usize,
    coverage_fraction: f64,
    deadline: &Deadline,
    obs: &mut O,
) -> Result<SolveOutcome<PatternSolution>, EngineError> {
    let n = space.num_rows();
    opt_cwsc_in_within(
        space,
        k,
        coverage_target(n, coverage_fraction),
        deadline,
        obs,
    )
}

/// [`opt_cwsc_in`] under a [`Deadline`], over any [`LatticeSpace`].
///
/// One work tick is consumed per selection round and per waitlist pop
/// (so runaway lattice expansions stay interruptible). On expiry the
/// patterns picked so far return as [`SolveOutcome::Degraded`] with a
/// [`Certificate`] that
/// [`verify_certificate_in`](crate::pattern_solution::verify_certificate_in)
/// re-checks (`quotas_exhausted` is always empty — Fig. 3 has no cost
/// levels). The single round runs under `catch_unwind` with its telemetry
/// in a private [`EventLog`] (replayed only on normal completion); a
/// panic surfaces as [`EngineError::Panicked`]. The walk is
/// single-threaded, so tick streams are identical across thread counts.
pub fn opt_cwsc_in_within<S: LatticeSpace, O: Observer + ?Sized>(
    space: &S,
    k: usize,
    target: usize,
    deadline: &Deadline,
    obs: &mut O,
) -> Result<SolveOutcome<PatternSolution>, EngineError> {
    if k == 0 {
        return Err(SolveError::ZeroSizeBound.into());
    }
    if target == 0 {
        return Ok(SolveOutcome::Complete(PatternSolution {
            patterns: Vec::new(),
            covered: 0,
            total_cost: 0.0,
        }));
    }
    obs.trace_started(
        TraceId::mint(
            "opt_cwsc",
            space.num_rows() as u64,
            pack_k_target(k, target),
        ),
        "opt_cwsc",
    );
    let span = PhaseSpan::enter(obs, PHASE_TOTAL);
    let mut log = EventLog::new();
    let caught = catch_unwind(AssertUnwindSafe(|| {
        run_in(space, k, target, deadline, &mut log)
    }));
    let result = match caught {
        Ok(round) => {
            log.replay(obs);
            match round {
                PatternRound::Done(result) => result
                    .map(SolveOutcome::Complete)
                    .map_err(EngineError::Solve),
                PatternRound::Expired { partial, reason } => {
                    obs.degrade_decided(reason.as_str(), partial.covered as u64, target as u64);
                    let certificate = Certificate {
                        sets_used: partial.size(),
                        covered: partial.covered,
                        target,
                        total_cost: partial.total_cost,
                        quotas_exhausted: Vec::new(),
                        ticks: deadline.ticks(),
                        reason,
                    };
                    Ok(SolveOutcome::Degraded(Degraded {
                        partial,
                        certificate,
                    }))
                }
            }
        }
        Err(payload) => Err(EngineError::Panicked(panic_message(payload.as_ref()))),
    };
    span.exit(obs);
    result
}

/// How one deadline-aware Fig. 3 round ended.
enum PatternRound {
    Done(Result<PatternSolution, SolveError>),
    Expired {
        partial: PatternSolution,
        reason: DegradeReason,
    },
}

/// The Fig. 3 body, wrapped by [`opt_cwsc_in`]'s phase span. Consumes one
/// `deadline` work tick per selection round and per waitlist pop; under
/// an unbounded deadline the checkpoints can never fail.
fn run_in<S: LatticeSpace, O: Observer + ?Sized>(
    space: &S,
    k: usize,
    target: usize,
    deadline: &Deadline,
    obs: &mut O,
) -> PatternRound {
    // Like flat CWSC, the optimized variant is a single round.
    obs.guess_started(None);
    let prune = prune_from_env();
    let n = space.num_rows();
    let mut covered = BitSet::new(n);
    let mut solution = PatternSolution {
        patterns: Vec::with_capacity(k),
        covered: 0,
        total_cost: 0.0,
    };

    // Lines 01-06: C starts as just the all-wildcards pattern.
    let mut pool = CandidatePool::new();
    let root = space.root();
    let root_rows = space.root_rows();
    let root_cost = space.cost(&root_rows);
    pool.insert(root, root_rows, root_cost, &covered);
    obs.benefit_computed(1);
    // Patterns selected into S (line 15's "not in ... S" check).
    let mut selected: Vec<Pattern> = Vec::new();

    let mut rem = target; // line 03

    for i in (1..=k).rev() {
        if let Err(reason) = deadline.checkpoint() {
            return PatternRound::Expired {
                partial: solution,
                reason,
            };
        }
        // Lines 08-10: drop candidates below the eligibility floor rem/i.
        // (Marginal benefits are already current: recount_all runs after
        // every selection.)
        let i_u = i as u64;
        let rem_u = rem as u64;
        let below_floor = |mben: usize| -> bool { i_u * (mben as u64) < rem_u };
        let to_drop: Vec<usize> = pool
            .alive_ids()
            .filter(|&id| below_floor(pool.get(id).mben))
            .collect();
        for id in to_drop {
            obs.candidate_pruned(PruneReason::BelowFloor);
            pool.remove(id);
        }

        // Line 11: the waitlist starts as all of C. Within the while loop
        // no selection happens, so marginal benefits are static and a
        // plain max-heap (mben desc, pattern asc) gives line 13's argmax.
        let expand_span = PhaseSpan::enter(obs, PHASE_EXPAND);
        let mut waitlist: BinaryHeap<(usize, Reverse<Pattern>, usize)> = pool
            .alive_ids()
            .map(|id| (pool.get(id).mben, Reverse(pool.get(id).pattern.clone()), id))
            .collect();

        // Lines 12-20: expand children that can meet the floor.
        while let Some((_, _, q_id)) = waitlist.pop() {
            if let Err(reason) = deadline.checkpoint() {
                expand_span.exit(obs);
                return PatternRound::Expired {
                    partial: solution,
                    reason,
                };
            }
            if !pool.is_alive(q_id) {
                continue; // pruned since being enqueued (defensive)
            }
            let children = {
                let q = pool.get(q_id);
                // Expansion buckets every parent row once per wildcard
                // attribute — the index-posting scan the lattice saves
                // relative to re-intersecting from scratch.
                let wildcards = q.pattern.values().iter().filter(|v| v.is_none()).count();
                obs.posting_scanned((q.rows.len() * wildcards) as u64);
                space.children_with_rows(&q.pattern, &q.rows)
            };
            for (child, child_rows) in children {
                if pool.contains(&child) || selected.contains(&child) {
                    continue; // line 15
                }
                // Line 16: all parents must currently be candidates.
                if !space.parents(&child).iter().all(|p| pool.contains(p)) {
                    continue;
                }
                // Line 17: materialize cost and marginal benefit.
                obs.benefit_computed(1);
                let child_mben = child_rows
                    .iter()
                    .filter(|&&r| !covered.contains(r as usize))
                    .count();
                if below_floor(child_mben) {
                    // Anti-monotonicity: everything under `child` is below
                    // the floor too, so the whole subtree stays unexplored.
                    obs.subtree_pruned(PruneReason::BelowFloor);
                    continue; // line 18 fails: stays out of C and W
                }
                let cost = space.cost(&child_rows);
                let id = pool.insert(child.clone(), child_rows, cost, &covered);
                waitlist.push((pool.get(id).mben, Reverse(child), id));
            }
        }
        expand_span.exit(obs);

        // Line 21: argmax of marginal gain over C, kept as a sorted
        // best-first top list so the audit ledger records the runners-up
        // alongside the winner.
        let select_span = PhaseSpan::enter(obs, PHASE_SELECT);
        let mut top: Vec<CandId> = Vec::with_capacity(audit::TOP);
        for id in pool.alive_ids() {
            let pos = top.iter().position(|&t| {
                gain_order(pool.get(id), pool.get(t)) == std::cmp::Ordering::Greater
            });
            match pos {
                Some(p) => top.insert(p, id),
                None if top.len() < audit::TOP => top.push(id),
                None => continue,
            }
            top.truncate(audit::TOP);
        }
        let Some(&q_id) = top.first() else {
            select_span.exit(obs);
            return PatternRound::Done(Err(SolveError::NoSolution)); // line 22
        };
        // Pattern-space candidates audit under their pool id; ties beyond
        // cost actually break on the pattern ordering the pool id mirrors
        // (insertion is parents-before-children, deterministic).
        let as_audit = |id: CandId| {
            let c = pool.get(id);
            audit::AuditCandidate {
                id: id as u64,
                benefit: c.mben as u64,
                weight: c.cost,
            }
        };
        let runners: Vec<audit::AuditCandidate> = top[1..].iter().map(|&id| as_audit(id)).collect();
        obs.round_decided(audit::ORDER_GAIN, &as_audit(q_id), &runners);

        // Lines 23-26: select q.
        let q = pool.get(q_id);
        let q_mben = q.mben;
        let q_cost = q.cost;
        let newly: Vec<u32> = q
            .rows
            .iter()
            .copied()
            .filter(|&r| !covered.contains(r as usize))
            .collect();
        debug_assert_eq!(newly.len(), q_mben, "recount kept mben current");
        obs.price_charged(q_id as u64, &newly, q_cost);
        solution.patterns.push(q.pattern.clone());
        solution.total_cost += q.cost;
        selected.push(q.pattern.clone());
        obs.set_selected(q_id as u64, q_mben as u64, q_cost);
        for &r in &pool.get(q_id).rows {
            covered.insert(r as usize);
        }
        solution.covered = covered.count_ones();
        pool.remove(q_id);
        rem = rem.saturating_sub(q_mben);
        if rem == 0 {
            select_span.exit(obs);
            return PatternRound::Done(Ok(solution)); // line 25
        }
        // Lines 27-30: refresh marginal benefits, dropping exhausted ones.
        // When pruning is on, the recount is fused with the *next* round's
        // eligibility floor ⌈rem/(i-1)⌉ so recounts provably landing below
        // it can stop at the first proving block (the survivors' benefits
        // and the BelowFloor sweep above stay identical — see
        // `CandidatePool::recount_all_pruned`).
        if prune {
            let next_floor = if i > 1 { rem.div_ceil(i - 1) } else { 0 };
            let prune_span = PhaseSpan::enter(obs, PHASE_SCAN_PRUNE);
            pool.recount_all_pruned(&covered, next_floor, obs);
            prune_span.exit(obs);
        } else {
            pool.recount_all(&covered);
        }
        select_span.exit(obs);
    }

    // Eligibility guarantees each pick covers ≥ rem/i, so k picks always
    // reach the target; defensive fallthrough.
    PatternRound::Done(Err(SolveError::NoSolution))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost_fn::CostFn;
    use crate::enumerate::enumerate_all;
    use crate::table::Table;
    use scwsc_core::algorithms::cwsc;
    use scwsc_core::Stats;

    /// The paper's Table I entities data set (16 records).
    fn entities() -> Table {
        let mut b = Table::builder(&["Type", "Location"], "Cost");
        for (t, l, c) in [
            ("A", "West", 10.0),
            ("A", "Northeast", 32.0),
            ("B", "South", 2.0),
            ("A", "North", 4.0),
            ("B", "East", 7.0),
            ("A", "Northwest", 20.0),
            ("B", "West", 4.0),
            ("B", "Southwest", 24.0),
            ("A", "Southwest", 4.0),
            ("B", "Northwest", 4.0),
            ("A", "North", 3.0),
            ("B", "Northeast", 3.0),
            ("B", "South", 1.0),
            ("B", "North", 20.0),
            ("A", "East", 3.0),
            ("A", "South", 96.0),
        ] {
            b.push_row(&[t, l], c).unwrap();
        }
        b.build()
    }

    /// Section V-B's worked example: k=2, ŝ=9/16 selects P16 {B,ALL}
    /// (gain 8/24) and then P3 {A,North} (gain 2/4), total cost 28.
    #[test]
    fn paper_worked_example() {
        let t = entities();
        let sp = PatternSpace::new(&t, CostFn::Max);
        let sol = opt_cwsc(&sp, 2, 9.0 / 16.0, &mut Stats::new()).unwrap();
        assert_eq!(sol.size(), 2);
        assert_eq!(sol.patterns[0].display(&t), "{Type=B, Location=ALL}");
        assert_eq!(sol.patterns[1].display(&t), "{Type=A, Location=North}");
        assert_eq!(sol.total_cost, 24.0 + 4.0);
        assert!(sol.covered >= 9);
        sol.verify(&sp);
    }

    /// On a data set big enough for the lattice pruning to matter, the
    /// optimized algorithm materializes far fewer patterns than the full
    /// cube (the Figure 6 effect). The 16-record paper example is too
    /// small to show it — there every pattern ends up eligible.
    #[test]
    fn considers_fewer_patterns_than_full_cube_at_scale() {
        let t = crate::test_util::skewed_table(600, 4, 7);
        let sp = PatternSpace::new(&t, CostFn::Max);
        let mut stats = Stats::new();
        let sol = opt_cwsc(&sp, 10, 0.3, &mut stats).unwrap();
        sol.verify(&sp);
        let unopt = enumerate_all(&t, CostFn::Max);
        assert!(
            (stats.considered as usize) < unopt.num_patterns() / 2,
            "optimized considered {} vs full cube {}",
            stats.considered,
            unopt.num_patterns()
        );
    }

    #[test]
    fn matches_unoptimized_selection_on_entities() {
        let t = entities();
        let sp = PatternSpace::new(&t, CostFn::Max);
        let m = enumerate_all(&t, CostFn::Max);
        for (k, s) in [
            (2usize, 9.0 / 16.0),
            (3, 0.5),
            (5, 0.8),
            (4, 1.0),
            (1, 0.25),
        ] {
            let opt = opt_cwsc(&sp, k, s, &mut Stats::new());
            let unopt = cwsc(&m.system, k, s, &mut Stats::new());
            match (opt, unopt) {
                (Ok(o), Ok(u)) => {
                    let u_patterns: Vec<&Pattern> = m.solution_patterns(&u);
                    let o_patterns: Vec<&Pattern> = o.patterns.iter().collect();
                    assert_eq!(o_patterns, u_patterns, "k={k} s={s}");
                    assert!((o.total_cost - u.total_cost().value()).abs() < 1e-9);
                    assert_eq!(o.covered, u.covered());
                }
                (Err(a), Err(b)) => assert_eq!(a, b),
                (a, b) => panic!("k={k} s={s}: optimized {a:?} vs unoptimized {b:?}"),
            }
        }
    }

    #[test]
    fn respects_k_and_coverage() {
        let t = entities();
        let sp = PatternSpace::new(&t, CostFn::Max);
        for k in 1..=6 {
            let sol = opt_cwsc(&sp, k, 0.75, &mut Stats::new()).unwrap();
            assert!(sol.size() <= k);
            assert!(sol.covered >= 12);
            sol.verify(&sp);
        }
    }

    #[test]
    fn zero_target_returns_empty() {
        let t = entities();
        let sp = PatternSpace::new(&t, CostFn::Max);
        let sol = opt_cwsc(&sp, 3, 0.0, &mut Stats::new()).unwrap();
        assert_eq!(sol.size(), 0);
    }

    #[test]
    fn zero_k_is_an_error() {
        let t = entities();
        let sp = PatternSpace::new(&t, CostFn::Max);
        assert_eq!(
            opt_cwsc(&sp, 0, 0.5, &mut Stats::new()),
            Err(SolveError::ZeroSizeBound)
        );
    }

    #[test]
    fn k1_full_coverage_selects_root() {
        let t = entities();
        let sp = PatternSpace::new(&t, CostFn::Max);
        let sol = opt_cwsc(&sp, 1, 1.0, &mut Stats::new()).unwrap();
        assert_eq!(sol.size(), 1);
        assert!(sol.patterns[0].is_root());
        assert_eq!(sol.covered, 16);
    }

    #[test]
    fn works_with_sum_cost_function() {
        let t = entities();
        let sp = PatternSpace::new(&t, CostFn::Sum);
        let sol = opt_cwsc(&sp, 3, 0.5, &mut Stats::new()).unwrap();
        assert!(sol.covered >= 8);
        sol.verify(&sp);
    }

    mod within {
        use super::*;
        use crate::pattern_solution::verify_certificate_in;
        use scwsc_core::engine::{Deadline, DegradeReason, SolveOutcome};
        use scwsc_core::telemetry::MetricsRecorder;

        #[test]
        fn unbounded_deadline_matches_plain_opt_cwsc() {
            let t = entities();
            let sp = PatternSpace::new(&t, CostFn::Max);
            let plain = opt_cwsc(&sp, 2, 9.0 / 16.0, &mut Stats::new()).unwrap();
            let out = opt_cwsc_within(
                &sp,
                2,
                9.0 / 16.0,
                &Deadline::unbounded(),
                &mut MetricsRecorder::new(),
            )
            .unwrap();
            assert_eq!(out.expect_complete("unbounded"), plain);
        }

        #[test]
        fn tick_budget_degrades_with_verifiable_certificate() {
            let t = entities();
            let sp = PatternSpace::new(&t, CostFn::Max);
            for budget in [0u64, 1, 2, 5] {
                let deadline = Deadline::unbounded().with_tick_budget(budget);
                let out =
                    opt_cwsc_within(&sp, 4, 1.0, &deadline, &mut MetricsRecorder::new()).unwrap();
                let SolveOutcome::Degraded(d) = out else {
                    continue; // larger budgets may legitimately finish
                };
                assert_eq!(d.certificate.reason, DegradeReason::TickBudget);
                assert!(d.certificate.quotas_exhausted.is_empty());
                let check = verify_certificate_in(&sp, &d.partial, &d.certificate);
                assert!(check.is_valid(), "budget {budget}: {check:?}");
            }
        }

        #[test]
        fn deadline_runs_are_deterministic() {
            let t = crate::test_util::skewed_table(300, 3, 5);
            let sp = PatternSpace::new(&t, CostFn::Max);
            let run = || {
                let deadline = Deadline::unbounded().with_tick_budget(40);
                opt_cwsc_within(&sp, 8, 0.9, &deadline, &mut MetricsRecorder::new()).unwrap()
            };
            assert_eq!(run(), run());
        }
    }
}
