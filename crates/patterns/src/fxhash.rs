//! A fast, non-cryptographic hasher for pattern keys.
//!
//! Pattern-lattice algorithms keep hash maps keyed by patterns (small
//! arrays of value ids) on their hot path; the standard library's SipHash
//! is needlessly defensive for that use. This is the well-known `FxHash`
//! multiply-xor scheme used by rustc, implemented locally because the
//! `rustc-hash` crate is outside this project's approved dependency set.
//! HashDoS resistance is irrelevant here: keys are derived from the data
//! set being summarized, not from untrusted network input.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// Multiply-xor hasher (the rustc `FxHasher` scheme).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `HashMap` with the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` with the Fx hasher.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(value: &T) -> u64 {
        let mut h = FxHasher::default();
        value.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
    }

    #[test]
    fn discriminates_values() {
        assert_ne!(hash_of(&1u32), hash_of(&2u32));
        assert_ne!(hash_of(&[1u32, 2]), hash_of(&[2u32, 1]));
        assert_ne!(hash_of(&"ab"), hash_of(&"ba"));
    }

    #[test]
    fn handles_unaligned_byte_tails() {
        // 9 bytes: one full chunk + 1-byte remainder.
        let a: &[u8] = &[1, 2, 3, 4, 5, 6, 7, 8, 9];
        let b: &[u8] = &[1, 2, 3, 4, 5, 6, 7, 8, 10];
        let mut ha = FxHasher::default();
        ha.write(a);
        let mut hb = FxHasher::default();
        hb.write(b);
        assert_ne!(ha.finish(), hb.finish());
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<Vec<Option<u32>>, usize> = FxHashMap::default();
        m.insert(vec![None, Some(3)], 1);
        m.insert(vec![Some(2), None], 2);
        assert_eq!(m.get(&vec![None, Some(3)]), Some(&1));
        let mut s: FxHashSet<u32> = FxHashSet::default();
        assert!(s.insert(9));
        assert!(!s.insert(9));
    }
}
