//! Dictionary encoding for categorical pattern attributes.
//!
//! Pattern algorithms never compare strings: each attribute's active
//! domain `dom(D_i)` is mapped to dense value ids `0..|dom|` once at load
//! time, and everything downstream (columns, patterns, posting lists)
//! works on `u32`s. The dictionary retains the id→string mapping for
//! display.

use crate::fxhash::FxHashMap;

/// Dense id for a categorical value within one attribute's active domain.
pub type ValueId = u32;

/// Bidirectional mapping between category strings and dense [`ValueId`]s.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Dictionary {
    values: Vec<String>,
    #[cfg_attr(feature = "serde", serde(skip))]
    index: FxHashMap<String, ValueId>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Dictionary {
        Dictionary::default()
    }

    /// Returns the id for `value`, interning it on first sight.
    pub fn intern(&mut self, value: &str) -> ValueId {
        if let Some(&id) = self.index.get(value) {
            return id;
        }
        let id = self.values.len() as ValueId;
        self.values.push(value.to_owned());
        self.index.insert(value.to_owned(), id);
        id
    }

    /// Looks up an already-interned value.
    pub fn lookup(&self, value: &str) -> Option<ValueId> {
        self.index.get(value).copied()
    }

    /// The string for an id.
    ///
    /// # Panics
    /// Panics if `id` was never interned.
    pub fn resolve(&self, id: ValueId) -> &str {
        &self.values[id as usize]
    }

    /// Size of the active domain.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates `(id, value)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ValueId, &str)> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, v)| (i as ValueId, v.as_str()))
    }

    /// Rebuilds the string→id index (needed after deserialization, which
    /// skips the index).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .values
            .iter()
            .enumerate()
            .map(|(i, v)| (v.clone(), i as ValueId))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern("West");
        let b = d.intern("East");
        assert_eq!(d.intern("West"), a);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn ids_are_dense_in_first_seen_order() {
        let mut d = Dictionary::new();
        assert_eq!(d.intern("x"), 0);
        assert_eq!(d.intern("y"), 1);
        assert_eq!(d.intern("z"), 2);
    }

    #[test]
    fn resolve_and_lookup_roundtrip() {
        let mut d = Dictionary::new();
        let id = d.intern("tcp");
        assert_eq!(d.resolve(id), "tcp");
        assert_eq!(d.lookup("tcp"), Some(id));
        assert_eq!(d.lookup("udp"), None);
    }

    #[test]
    fn iter_in_id_order() {
        let mut d = Dictionary::new();
        d.intern("a");
        d.intern("b");
        let pairs: Vec<_> = d.iter().collect();
        assert_eq!(pairs, vec![(0, "a"), (1, "b")]);
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let mut d = Dictionary::new();
        d.intern("p");
        d.intern("q");
        let mut copy = Dictionary {
            values: d.values.clone(),
            index: FxHashMap::default(),
        };
        assert_eq!(copy.lookup("q"), None, "index empty before rebuild");
        copy.rebuild_index();
        assert_eq!(copy.lookup("q"), Some(1));
    }

    #[test]
    fn empty_dictionary() {
        let d = Dictionary::new();
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        assert_eq!(d.iter().count(), 0);
    }
}
