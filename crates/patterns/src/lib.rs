//! # scwsc-patterns
//!
//! The patterned-set specialization of Size-Constrained Weighted Set Cover
//! (Sections II and V-C of the ICDE 2015 paper): the elements are records
//! of a relational table, and the sets to choose from are data-cube
//! *patterns* — conjunctions of attribute values with `ALL` wildcards —
//! weighted by an aggregate of a numeric measure over the records they
//! cover.
//!
//! Two execution paths are provided:
//!
//! * **unoptimized** — [`enumerate::enumerate_all`] materializes the full
//!   pattern cube as a `scwsc_core::SetSystem` and the general algorithms
//!   run on it (what the paper's Figures 5–6 call "CMC"/"CWSC");
//! * **optimized** — [`opt_cwsc::opt_cwsc`] and [`opt_cmc::opt_cmc`] walk
//!   the pattern lattice top-down, materializing only patterns whose
//!   marginal benefit can still matter ("optimized CMC/CWSC").
//!
//! ```
//! use scwsc_patterns::{CostFn, PatternSpace, Table, opt_cwsc::opt_cwsc};
//! use scwsc_core::Stats;
//!
//! let mut b = Table::builder(&["Type", "Location"], "Cost");
//! b.push_row(&["A", "West"], 10.0).unwrap();
//! b.push_row(&["B", "South"], 2.0).unwrap();
//! b.push_row(&["B", "West"], 4.0).unwrap();
//! let table = b.build();
//!
//! let space = PatternSpace::new(&table, CostFn::Max);
//! let solution = opt_cwsc(&space, 2, 1.0, &mut Stats::new()).unwrap();
//! assert!(solution.size() <= 2);
//! assert_eq!(solution.covered, 3);
//! println!("{}", solution.display(&space));
//! ```

#![warn(missing_docs)]

pub mod candidates;
pub mod cost_fn;
pub mod dictionary;
pub mod enumerate;
pub mod fxhash;
pub mod hierarchy;
pub mod index;
pub mod instance;
pub mod opt_cmc;
pub mod opt_cwsc;
pub mod pattern;
pub mod pattern_solution;
pub mod reductions;
pub mod space;
pub mod table;
pub mod test_util;

pub use cost_fn::CostFn;
pub use dictionary::{Dictionary, ValueId};
pub use enumerate::{enumerate_all, MaterializedPatterns};
pub use hierarchy::{enumerate_hierarchical, hier_cmc, hier_cwsc, HierarchicalSpace, Hierarchy};
pub use index::InvertedIndex;
pub use instance::PatternInstance;
pub use opt_cmc::{
    opt_cmc, opt_cmc_in, opt_cmc_in_on, opt_cmc_in_within, opt_cmc_on, opt_cmc_within,
};
pub use opt_cwsc::{
    opt_cwsc, opt_cwsc_in, opt_cwsc_in_within, opt_cwsc_with_target, opt_cwsc_within,
};
pub use pattern::Pattern;
pub use pattern_solution::{verify_certificate_in, PatternSolution};
pub use space::{LatticeSpace, PatternSpace};
pub use table::{RowId, Table, TableBuilder, TableError};
