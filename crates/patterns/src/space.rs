//! The pattern search space: table + inverted index + cost function.
//!
//! [`PatternSpace`] is what the optimized algorithms of Section V-C walk:
//! it hands out the all-wildcards root, computes benefit sets on demand,
//! evaluates pattern weights, and enumerates the *non-empty* children of a
//! pattern by bucketing the parent's benefit set (a child's benefit set is
//! exactly the parent's rows having the child's extra value, so expansion
//! never rescans the table).

use crate::cost_fn::CostFn;
use crate::dictionary::ValueId;
use crate::index::InvertedIndex;
use crate::pattern::Pattern;
use crate::table::{RowId, Table};

/// The `(attribute, value)` specialization step from `parent` to its
/// direct child `child`: the one attribute where a wildcard was filled
/// in — or, in hierarchy-enriched lattices, where an already-set value
/// was refined to a deeper node.
fn child_step(parent: &Pattern, child: &Pattern) -> (usize, ValueId) {
    parent
        .values()
        .iter()
        .zip(child.values())
        .enumerate()
        .find_map(|(attr, (p, c))| match (p, c) {
            (None, Some(v)) => Some((attr, *v)),
            (Some(p), Some(v)) if p != v => Some((attr, *v)),
            _ => None,
        })
        .expect("child refines exactly one parent attribute")
}

/// Callback for [`LatticeSpace::for_each_child`]: receives the
/// `(attribute, value)` step, the child pattern, and its benefit rows.
pub type ChildVisitor<'a> = dyn FnMut(usize, ValueId, &Pattern, &[RowId]) + 'a;

/// The lattice operations the optimized algorithms (Figures 3–4) need.
///
/// Implemented by [`PatternSpace`] (the paper's flat pattern cube) and by
/// [`HierarchicalSpace`](crate::hierarchy::HierarchicalSpace) (the §II
/// tree-hierarchy extension). Requirements on implementors:
///
/// * benefit is anti-monotone: `Ben(child) ⊆ Ben(parent)`;
/// * [`LatticeSpace::children_with_rows`] returns each non-empty child of
///   a pattern exactly once, with its exact benefit rows (sorted), in a
///   deterministic order;
/// * [`LatticeSpace::parents`] returns the patterns whose child the
///   argument is, each of which is non-empty whenever the argument is.
pub trait LatticeSpace {
    /// The underlying table.
    fn table(&self) -> &Table;

    /// Number of records `n = |T|`.
    fn num_rows(&self) -> usize {
        self.table().num_rows()
    }

    /// The all-wildcards pattern (covers every record).
    fn root(&self) -> Pattern;

    /// The root's benefit rows (all of `0..n`).
    fn root_rows(&self) -> Vec<RowId> {
        (0..self.num_rows() as RowId).collect()
    }

    /// `Cost(p)` given its benefit rows.
    fn cost(&self, rows: &[RowId]) -> f64;

    /// The non-empty children of `pattern` with their benefit sets.
    fn children_with_rows(
        &self,
        pattern: &Pattern,
        parent_rows: &[RowId],
    ) -> Vec<(Pattern, Vec<RowId>)>;

    /// Visits each non-empty child with its benefit rows, in exactly the
    /// order `children_with_rows` returns them, without requiring an
    /// owned `Vec` per child. The callback also receives the
    /// `(attribute, value)` step that produced the child from the
    /// parent, letting callers with packed pattern keys derive the
    /// child's key from the parent's in O(1). Lattice caches use this
    /// to skip the row copy for children they already hold: in a
    /// diamond-shaped lattice most children are reached from several
    /// parents, and the `children_with_rows` path materializes (and
    /// then drops) a fresh row vector for every duplicate encounter.
    fn for_each_child(&self, pattern: &Pattern, parent_rows: &[RowId], f: &mut ChildVisitor<'_>) {
        for (child, rows) in self.children_with_rows(pattern, parent_rows) {
            let (attr, value) = child_step(pattern, &child);
            f(attr, value, &child, &rows);
        }
    }

    /// The parents of `pattern` in the lattice.
    fn parents(&self, pattern: &Pattern) -> Vec<Pattern>;

    /// `parents(pattern).len()` without necessarily materializing the
    /// parents. Spaces whose parent count is known in closed form
    /// (both shipped spaces produce exactly one parent per non-wildcard
    /// attribute) override this to skip the allocation — it runs once
    /// per materialized lattice node.
    fn num_parents(&self, pattern: &Pattern) -> usize {
        self.parents(pattern).len()
    }

    /// Per-attribute bit widths under which every pattern of this space
    /// packs injectively into one `u64` (field `value_id + 1`, wildcard
    /// `0`), or `None` when the value domain is unbounded or too wide.
    /// Lattice caches use this to key their dedup maps by integer
    /// instead of hashing boxed pattern slices on every child visit.
    fn packed_key_bits(&self) -> Option<Vec<u32>> {
        None
    }

    /// `Ben(p)` — used by verification and display, not by the solvers
    /// (they only ever bucket parent rows).
    fn benefit(&self, pattern: &Pattern) -> Vec<RowId>;
}

/// Lattice navigation handle over one table.
///
/// The inverted index is behind an [`Arc`] so long-lived holders (the
/// serving layer's `PatternInstance`) can build it once and stamp out a
/// cheap per-query `PatternSpace` — same table, same index, per-query
/// cost function — via [`PatternSpace::with_index`].
pub struct PatternSpace<'a> {
    table: &'a Table,
    index: std::sync::Arc<InvertedIndex>,
    cost_fn: CostFn,
}

impl LatticeSpace for PatternSpace<'_> {
    fn table(&self) -> &Table {
        self.table
    }

    fn root(&self) -> Pattern {
        PatternSpace::root(self)
    }

    fn cost(&self, rows: &[RowId]) -> f64 {
        PatternSpace::cost(self, rows)
    }

    fn children_with_rows(
        &self,
        pattern: &Pattern,
        parent_rows: &[RowId],
    ) -> Vec<(Pattern, Vec<RowId>)> {
        PatternSpace::children_with_rows(self, pattern, parent_rows)
    }

    fn for_each_child(&self, pattern: &Pattern, parent_rows: &[RowId], f: &mut ChildVisitor<'_>) {
        PatternSpace::for_each_child(self, pattern, parent_rows, f)
    }

    fn parents(&self, pattern: &Pattern) -> Vec<Pattern> {
        pattern.parents()
    }

    fn num_parents(&self, pattern: &Pattern) -> usize {
        // One parent per non-wildcard attribute (re-wildcard it).
        pattern.specificity()
    }

    fn packed_key_bits(&self) -> Option<Vec<u32>> {
        let bits: Vec<u32> = (0..self.table.num_attrs())
            .map(|attr| {
                // Field holds value_id + 1 in [1, len]; 0 is the wildcard.
                let len = self.table.dictionary(attr).len() as u64;
                u64::BITS - len.leading_zeros()
            })
            .collect();
        (bits.iter().sum::<u32>() <= u64::BITS).then_some(bits)
    }

    fn benefit(&self, pattern: &Pattern) -> Vec<RowId> {
        PatternSpace::benefit(self, pattern)
    }
}

impl<'a> PatternSpace<'a> {
    /// Builds the inverted index and wraps the table.
    pub fn new(table: &'a Table, cost_fn: CostFn) -> PatternSpace<'a> {
        PatternSpace {
            table,
            index: std::sync::Arc::new(InvertedIndex::build(table)),
            cost_fn,
        }
    }

    /// Wraps the table around an already-built index — O(1), no scan.
    /// The index must have been built from this same table.
    pub fn with_index(
        table: &'a Table,
        index: std::sync::Arc<InvertedIndex>,
        cost_fn: CostFn,
    ) -> PatternSpace<'a> {
        PatternSpace {
            table,
            index,
            cost_fn,
        }
    }

    /// A shareable handle to the inverted index, for constructing further
    /// spaces over the same table without re-indexing.
    pub fn index_handle(&self) -> std::sync::Arc<InvertedIndex> {
        std::sync::Arc::clone(&self.index)
    }

    /// The underlying table.
    pub fn table(&self) -> &'a Table {
        self.table
    }

    /// The cost function in use.
    pub fn cost_fn(&self) -> CostFn {
        self.cost_fn
    }

    /// The all-wildcards pattern (covers every record).
    pub fn root(&self) -> Pattern {
        Pattern::all_wildcards(self.table.num_attrs())
    }

    /// `Ben(p)` as sorted row ids.
    pub fn benefit(&self, pattern: &Pattern) -> Vec<RowId> {
        self.index.benefit(pattern)
    }

    /// `Cost(p)` given its benefit rows (callers always have them at hand).
    pub fn cost(&self, rows: &[RowId]) -> f64 {
        self.cost_fn.evaluate(self.table, rows)
    }

    /// The non-empty children of `pattern` with their benefit sets, in
    /// deterministic `(attribute, value)` order. Builds on
    /// [`PatternSpace::for_each_child`]; callers that cache patterns
    /// (and so mostly re-encounter children they already hold) should
    /// use the visitor directly and skip these per-child allocations.
    pub fn children_with_rows(
        &self,
        pattern: &Pattern,
        parent_rows: &[RowId],
    ) -> Vec<(Pattern, Vec<RowId>)> {
        let mut out = Vec::new();
        self.for_each_child(pattern, parent_rows, &mut |_, _, child, rows| {
            out.push((child.clone(), rows.to_vec()));
        });
        out
    }

    /// Visits the non-empty children of `pattern` with their benefit
    /// rows, computed by partitioning `parent_rows` (which must be
    /// `Ben(pattern)`). Children arrive in deterministic
    /// `(attribute, value)` order; each child's rows stay sorted because
    /// sorting the `(value, row)` pairs orders rows ascending within
    /// each value run — the same order bucketing the (sorted) parent
    /// rows produced. Two reused buffers and one in-place child cursor
    /// replace the per-value hash-map buckets the first version used:
    /// this runs on every lattice expansion, and the per-child
    /// allocations dominated the expansion profile.
    pub fn for_each_child(
        &self,
        pattern: &Pattern,
        parent_rows: &[RowId],
        f: &mut ChildVisitor<'_>,
    ) {
        // Stack offset buffers cover every realistic dictionary; wider
        // domains spill to the heap once per call.
        const STACK_CARD: usize = 256;
        let mut child = pattern.clone(); // reusable cursor
                                         // Counting-sort scratch, reused across attributes: `sorted`
                                         // holds the rows grouped by value, `starts` the exclusive
                                         // prefix offsets, `cursor` the scatter positions.
        let mut sorted: Vec<RowId> = vec![0; parent_rows.len()];
        let mut starts_buf = [0u32; STACK_CARD + 1];
        let mut cursor_buf = [0u32; STACK_CARD];
        let mut starts_heap: Vec<u32> = Vec::new();
        let mut cursor_heap: Vec<u32> = Vec::new();
        for attr in 0..pattern.num_attrs() {
            if pattern.get(attr).is_some() {
                continue; // not a wildcard: cannot specialize here
            }
            let column = self.table.column(attr);
            let card = self.table.dictionary(attr).len();
            let (starts, cursor) = if card <= STACK_CARD {
                starts_buf[..=card].fill(0);
                (&mut starts_buf[..=card], &mut cursor_buf[..card])
            } else {
                starts_heap.clear();
                starts_heap.resize(card + 1, 0);
                cursor_heap.resize(card, 0);
                (&mut starts_heap[..], &mut cursor_heap[..])
            };
            // Group by value in two O(n + card) passes. The scatter walks
            // `parent_rows` in (ascending) order, so each value's run
            // stays sorted — the same order bucketing produced.
            for &row in parent_rows {
                starts[column[row as usize] as usize + 1] += 1;
            }
            for v in 0..card {
                starts[v + 1] += starts[v];
            }
            cursor.copy_from_slice(&starts[..card]);
            for &row in parent_rows {
                let v = column[row as usize] as usize;
                sorted[cursor[v] as usize] = row;
                cursor[v] += 1;
            }
            for value in 0..card {
                let (lo, hi) = (starts[value] as usize, starts[value + 1] as usize);
                if lo == hi {
                    continue; // value absent from the parent: empty child
                }
                child.set(attr, Some(value as u32));
                f(attr, value as u32, &child, &sorted[lo..hi]);
            }
            child.set(attr, None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut b = Table::builder(&["Type", "Location"], "Cost");
        for (t, l, c) in [
            ("A", "West", 10.0),
            ("B", "South", 2.0),
            ("B", "West", 4.0),
            ("B", "South", 1.0),
        ] {
            b.push_row(&[t, l], c).unwrap();
        }
        b.build()
    }

    #[test]
    fn root_covers_all_rows() {
        let t = table();
        let sp = PatternSpace::new(&t, CostFn::Max);
        let root = sp.root();
        assert!(root.is_root());
        assert_eq!(sp.benefit(&root), vec![0, 1, 2, 3]);
        assert_eq!(sp.cost(&sp.benefit(&root)), 10.0);
    }

    #[test]
    fn children_partition_parent_rows_per_attribute() {
        let t = table();
        let sp = PatternSpace::new(&t, CostFn::Max);
        let root = sp.root();
        let rows = sp.benefit(&root);
        let children = sp.children_with_rows(&root, &rows);
        // Type: A, B; Location: West, South -> 4 children
        assert_eq!(children.len(), 4);
        for (child, child_rows) in &children {
            assert_eq!(child.specificity(), 1);
            assert_eq!(&sp.benefit(child), child_rows, "{}", child.display(&t));
            assert!(child_rows.windows(2).all(|w| w[0] < w[1]), "sorted");
        }
        // Per attribute, the children partition the parent's rows.
        let type_rows: usize = children
            .iter()
            .filter(|(c, _)| c.get(0).is_some())
            .map(|(_, r)| r.len())
            .sum();
        assert_eq!(type_rows, 4);
    }

    #[test]
    fn children_of_specific_pattern_only_fill_wildcards() {
        let t = table();
        let sp = PatternSpace::new(&t, CostFn::Max);
        let b = t.dictionary(0).lookup("B").unwrap();
        let p = Pattern::new(vec![Some(b), None]);
        let rows = sp.benefit(&p);
        assert_eq!(rows, vec![1, 2, 3]);
        let children = sp.children_with_rows(&p, &rows);
        // Only Location can specialize: {B,South} and {B,West}.
        assert_eq!(children.len(), 2);
        assert!(children.iter().all(|(c, _)| c.get(0) == Some(b)));
        let souths: Vec<_> = children
            .iter()
            .filter(|(c, _)| c.display(&t).contains("South"))
            .collect();
        assert_eq!(souths.len(), 1);
        assert_eq!(souths[0].1, vec![1, 3]);
    }

    #[test]
    fn leaf_pattern_has_no_children() {
        let t = table();
        let sp = PatternSpace::new(&t, CostFn::Max);
        let p = Pattern::of_row(&t, 0);
        let rows = sp.benefit(&p);
        assert!(sp.children_with_rows(&p, &rows).is_empty());
    }

    #[test]
    fn cost_uses_configured_function() {
        let t = table();
        let sp = PatternSpace::new(&t, CostFn::Sum);
        let rows = sp.benefit(&sp.root());
        assert_eq!(sp.cost(&rows), 17.0);
        assert_eq!(sp.cost_fn(), CostFn::Sum);
    }

    #[test]
    fn children_order_is_deterministic() {
        let t = table();
        let sp = PatternSpace::new(&t, CostFn::Max);
        let root = sp.root();
        let rows = sp.benefit(&root);
        let a = sp.children_with_rows(&root, &rows);
        let b = sp.children_with_rows(&root, &rows);
        assert_eq!(a, b);
    }
}
