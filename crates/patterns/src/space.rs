//! The pattern search space: table + inverted index + cost function.
//!
//! [`PatternSpace`] is what the optimized algorithms of Section V-C walk:
//! it hands out the all-wildcards root, computes benefit sets on demand,
//! evaluates pattern weights, and enumerates the *non-empty* children of a
//! pattern by bucketing the parent's benefit set (a child's benefit set is
//! exactly the parent's rows having the child's extra value, so expansion
//! never rescans the table).

use crate::cost_fn::CostFn;
use crate::fxhash::FxHashMap;
use crate::index::InvertedIndex;
use crate::pattern::Pattern;
use crate::table::{RowId, Table};

/// The lattice operations the optimized algorithms (Figures 3–4) need.
///
/// Implemented by [`PatternSpace`] (the paper's flat pattern cube) and by
/// [`HierarchicalSpace`](crate::hierarchy::HierarchicalSpace) (the §II
/// tree-hierarchy extension). Requirements on implementors:
///
/// * benefit is anti-monotone: `Ben(child) ⊆ Ben(parent)`;
/// * [`LatticeSpace::children_with_rows`] returns each non-empty child of
///   a pattern exactly once, with its exact benefit rows (sorted), in a
///   deterministic order;
/// * [`LatticeSpace::parents`] returns the patterns whose child the
///   argument is, each of which is non-empty whenever the argument is.
pub trait LatticeSpace {
    /// The underlying table.
    fn table(&self) -> &Table;

    /// Number of records `n = |T|`.
    fn num_rows(&self) -> usize {
        self.table().num_rows()
    }

    /// The all-wildcards pattern (covers every record).
    fn root(&self) -> Pattern;

    /// The root's benefit rows (all of `0..n`).
    fn root_rows(&self) -> Vec<RowId> {
        (0..self.num_rows() as RowId).collect()
    }

    /// `Cost(p)` given its benefit rows.
    fn cost(&self, rows: &[RowId]) -> f64;

    /// The non-empty children of `pattern` with their benefit sets.
    fn children_with_rows(
        &self,
        pattern: &Pattern,
        parent_rows: &[RowId],
    ) -> Vec<(Pattern, Vec<RowId>)>;

    /// The parents of `pattern` in the lattice.
    fn parents(&self, pattern: &Pattern) -> Vec<Pattern>;

    /// `Ben(p)` — used by verification and display, not by the solvers
    /// (they only ever bucket parent rows).
    fn benefit(&self, pattern: &Pattern) -> Vec<RowId>;
}

/// Lattice navigation handle over one table.
pub struct PatternSpace<'a> {
    table: &'a Table,
    index: InvertedIndex,
    cost_fn: CostFn,
}

impl LatticeSpace for PatternSpace<'_> {
    fn table(&self) -> &Table {
        self.table
    }

    fn root(&self) -> Pattern {
        PatternSpace::root(self)
    }

    fn cost(&self, rows: &[RowId]) -> f64 {
        PatternSpace::cost(self, rows)
    }

    fn children_with_rows(
        &self,
        pattern: &Pattern,
        parent_rows: &[RowId],
    ) -> Vec<(Pattern, Vec<RowId>)> {
        PatternSpace::children_with_rows(self, pattern, parent_rows)
    }

    fn parents(&self, pattern: &Pattern) -> Vec<Pattern> {
        pattern.parents()
    }

    fn benefit(&self, pattern: &Pattern) -> Vec<RowId> {
        PatternSpace::benefit(self, pattern)
    }
}

impl<'a> PatternSpace<'a> {
    /// Builds the inverted index and wraps the table.
    pub fn new(table: &'a Table, cost_fn: CostFn) -> PatternSpace<'a> {
        PatternSpace {
            table,
            index: InvertedIndex::build(table),
            cost_fn,
        }
    }

    /// The underlying table.
    pub fn table(&self) -> &'a Table {
        self.table
    }

    /// The cost function in use.
    pub fn cost_fn(&self) -> CostFn {
        self.cost_fn
    }

    /// The all-wildcards pattern (covers every record).
    pub fn root(&self) -> Pattern {
        Pattern::all_wildcards(self.table.num_attrs())
    }

    /// `Ben(p)` as sorted row ids.
    pub fn benefit(&self, pattern: &Pattern) -> Vec<RowId> {
        self.index.benefit(pattern)
    }

    /// `Cost(p)` given its benefit rows (callers always have them at hand).
    pub fn cost(&self, rows: &[RowId]) -> f64 {
        self.cost_fn.evaluate(self.table, rows)
    }

    /// The non-empty children of `pattern` with their benefit sets,
    /// computed by bucketing `parent_rows` (which must be `Ben(pattern)`).
    /// Children are returned in deterministic `(attribute, value)` order;
    /// each child's rows stay sorted because the parent's were.
    pub fn children_with_rows(
        &self,
        pattern: &Pattern,
        parent_rows: &[RowId],
    ) -> Vec<(Pattern, Vec<RowId>)> {
        let mut out = Vec::new();
        for attr in 0..pattern.num_attrs() {
            if pattern.get(attr).is_some() {
                continue; // not a wildcard: cannot specialize here
            }
            let column = self.table.column(attr);
            let mut buckets: FxHashMap<u32, Vec<RowId>> = FxHashMap::default();
            for &row in parent_rows {
                buckets.entry(column[row as usize]).or_default().push(row);
            }
            let mut values: Vec<u32> = buckets.keys().copied().collect();
            values.sort_unstable();
            for v in values {
                let rows = buckets.remove(&v).expect("key came from the map");
                out.push((pattern.child(attr, v), rows));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut b = Table::builder(&["Type", "Location"], "Cost");
        for (t, l, c) in [
            ("A", "West", 10.0),
            ("B", "South", 2.0),
            ("B", "West", 4.0),
            ("B", "South", 1.0),
        ] {
            b.push_row(&[t, l], c).unwrap();
        }
        b.build()
    }

    #[test]
    fn root_covers_all_rows() {
        let t = table();
        let sp = PatternSpace::new(&t, CostFn::Max);
        let root = sp.root();
        assert!(root.is_root());
        assert_eq!(sp.benefit(&root), vec![0, 1, 2, 3]);
        assert_eq!(sp.cost(&sp.benefit(&root)), 10.0);
    }

    #[test]
    fn children_partition_parent_rows_per_attribute() {
        let t = table();
        let sp = PatternSpace::new(&t, CostFn::Max);
        let root = sp.root();
        let rows = sp.benefit(&root);
        let children = sp.children_with_rows(&root, &rows);
        // Type: A, B; Location: West, South -> 4 children
        assert_eq!(children.len(), 4);
        for (child, child_rows) in &children {
            assert_eq!(child.specificity(), 1);
            assert_eq!(&sp.benefit(child), child_rows, "{}", child.display(&t));
            assert!(child_rows.windows(2).all(|w| w[0] < w[1]), "sorted");
        }
        // Per attribute, the children partition the parent's rows.
        let type_rows: usize = children
            .iter()
            .filter(|(c, _)| c.get(0).is_some())
            .map(|(_, r)| r.len())
            .sum();
        assert_eq!(type_rows, 4);
    }

    #[test]
    fn children_of_specific_pattern_only_fill_wildcards() {
        let t = table();
        let sp = PatternSpace::new(&t, CostFn::Max);
        let b = t.dictionary(0).lookup("B").unwrap();
        let p = Pattern::new(vec![Some(b), None]);
        let rows = sp.benefit(&p);
        assert_eq!(rows, vec![1, 2, 3]);
        let children = sp.children_with_rows(&p, &rows);
        // Only Location can specialize: {B,South} and {B,West}.
        assert_eq!(children.len(), 2);
        assert!(children.iter().all(|(c, _)| c.get(0) == Some(b)));
        let souths: Vec<_> = children
            .iter()
            .filter(|(c, _)| c.display(&t).contains("South"))
            .collect();
        assert_eq!(souths.len(), 1);
        assert_eq!(souths[0].1, vec![1, 3]);
    }

    #[test]
    fn leaf_pattern_has_no_children() {
        let t = table();
        let sp = PatternSpace::new(&t, CostFn::Max);
        let p = Pattern::of_row(&t, 0);
        let rows = sp.benefit(&p);
        assert!(sp.children_with_rows(&p, &rows).is_empty());
    }

    #[test]
    fn cost_uses_configured_function() {
        let t = table();
        let sp = PatternSpace::new(&t, CostFn::Sum);
        let rows = sp.benefit(&sp.root());
        assert_eq!(sp.cost(&rows), 17.0);
        assert_eq!(sp.cost_fn(), CostFn::Sum);
    }

    #[test]
    fn children_order_is_deterministic() {
        let t = table();
        let sp = PatternSpace::new(&t, CostFn::Max);
        let root = sp.root();
        let rows = sp.benefit(&root);
        let a = sp.children_with_rows(&root, &rows);
        let b = sp.children_with_rows(&root, &rows);
        assert_eq!(a, b);
    }
}
