//! Candidate bookkeeping shared by the optimized algorithms (Section V-C).
//!
//! Both Figure 3 and Figure 4 maintain a candidate set `C` of patterns
//! with materialized benefit sets, costs, and marginal benefits.
//! [`CandidatePool`] stores them with pattern-keyed lookup; comparator
//! functions mirror the canonical tie-breaking of
//! `scwsc_core::CoverState` (so the optimized CWSC provably selects the
//! same patterns as the unoptimized one, which the property tests check).

use crate::fxhash::FxHashMap;
use crate::pattern::Pattern;
use crate::table::RowId;
use scwsc_core::telemetry::Observer;
use scwsc_core::{BitSet, BlockSummary, LimitedCount};
use std::cmp::Ordering;

/// A materialized candidate pattern.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The pattern itself.
    pub pattern: Pattern,
    /// Its benefit set `Ben(p)` (sorted row ids).
    pub rows: Vec<RowId>,
    /// Its weight `Cost(p)`.
    pub cost: f64,
    /// Cached `|MBen(p, S)|`.
    pub mben: usize,
}

/// Index into a [`CandidatePool`].
pub type CandId = usize;

/// The candidate set `C`: patterns with cached marginal benefits.
///
/// Alongside each candidate's sorted row list, the pool materializes a
/// row [`BitSet`] mask plus its [`BlockSummary`], so every recount is a
/// blocked-popcount `|rows \ covered|` kernel instead of a per-row
/// membership loop, and [`recount_all_pruned`](CandidatePool::recount_all_pruned)
/// can abort a recount the moment it proves the result lands below the
/// next eligibility floor (DESIGN.md §15).
#[derive(Debug, Default)]
pub struct CandidatePool {
    cands: Vec<Candidate>,
    by_pattern: FxHashMap<Pattern, CandId>,
    alive: Vec<bool>,
    masks: Vec<BitSet>,
    summaries: Vec<BlockSummary>,
}

impl CandidatePool {
    /// Empty pool.
    pub fn new() -> CandidatePool {
        CandidatePool::default()
    }

    /// Inserts a pattern with its benefit rows and cost, computing its
    /// marginal benefit against `covered`. Re-inserting a pattern that was
    /// previously removed revives the stored entry (recounting `mben`).
    pub fn insert(
        &mut self,
        pattern: Pattern,
        rows: Vec<RowId>,
        cost: f64,
        covered: &BitSet,
    ) -> CandId {
        if let Some(&id) = self.by_pattern.get(&pattern) {
            self.alive[id] = true;
            self.recount(id, covered);
            return id;
        }
        let mut mask = BitSet::new(covered.len());
        for &r in &rows {
            mask.insert(r as usize);
        }
        let mben = mask.difference_count(covered);
        let id = self.cands.len();
        self.by_pattern.insert(pattern.clone(), id);
        self.cands.push(Candidate {
            pattern,
            rows,
            cost,
            mben,
        });
        self.summaries.push(BlockSummary::of(&mask));
        self.masks.push(mask);
        self.alive.push(true);
        id
    }

    /// The candidate with this id.
    pub fn get(&self, id: CandId) -> &Candidate {
        &self.cands[id]
    }

    /// Whether the pattern is currently in `C`.
    pub fn contains(&self, pattern: &Pattern) -> bool {
        self.by_pattern
            .get(pattern)
            .is_some_and(|&id| self.alive[id])
    }

    /// Whether the pattern was ever materialized (alive or not).
    pub fn known(&self, pattern: &Pattern) -> bool {
        self.by_pattern.contains_key(pattern)
    }

    /// Id of a pattern currently in `C`.
    pub fn id_of(&self, pattern: &Pattern) -> Option<CandId> {
        self.by_pattern
            .get(pattern)
            .copied()
            .filter(|&id| self.alive[id])
    }

    /// Removes a pattern from `C` (keeps its materialization for `known`).
    pub fn remove(&mut self, id: CandId) {
        self.alive[id] = false;
    }

    /// Whether `id` is in `C`.
    pub fn is_alive(&self, id: CandId) -> bool {
        self.alive[id]
    }

    /// Number of alive candidates.
    pub fn alive_count(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Ids of alive candidates.
    pub fn alive_ids(&self) -> impl Iterator<Item = CandId> + '_ {
        self.alive
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| i)
    }

    /// Recounts one candidate's marginal benefit against `covered`;
    /// returns the new value.
    pub fn recount(&mut self, id: CandId, covered: &BitSet) -> usize {
        let c = &mut self.cands[id];
        c.mben = self.masks[id].difference_count(covered);
        c.mben
    }

    /// Recounts every alive candidate (the Fig. 3 lines 27–30 update),
    /// removing those whose marginal benefit dropped to zero.
    pub fn recount_all(&mut self, covered: &BitSet) {
        for id in 0..self.cands.len() {
            if self.alive[id] && self.recount(id, covered) == 0 {
                self.alive[id] = false;
            }
        }
    }

    /// [`recount_all`](CandidatePool::recount_all) fused with the *next*
    /// round's eligibility floor: a recount may early-exit as soon as the
    /// block-summary remainder proves the candidate lands below `floor`.
    ///
    /// Observationally identical to an exact recount followed by the
    /// caller's floor sweep:
    ///
    /// * `Exact(0)` drops the candidate silently — exactly the exact
    ///   path's zero-drop.
    /// * `Short {nonzero: false}` proves the count is zero (the early exit
    ///   scanned the remaining words), so the candidate drops silently too.
    /// * `Short {nonzero: true}` proves `0 < mben < floor`; the candidate
    ///   stays alive with its benefit clamped to 1, which the caller's
    ///   floor sweep then prunes with the same `BelowFloor` event the
    ///   exact value would have produced (`floor >= 2` whenever a short
    ///   nonzero count is possible, so 1 is always below it). A clamped
    ///   candidate that is instead *revived* later gets an exact
    ///   [`recount`](CandidatePool::recount) on insertion.
    ///
    /// Advisory telemetry: one `scan_pruned` per early-exited recount, one
    /// `bound_refreshed` per completed exact recount. With `floor <= 1`
    /// this is just the kernel recount (no early exit is possible).
    pub fn recount_all_pruned<O: Observer + ?Sized>(
        &mut self,
        covered: &BitSet,
        floor: usize,
        obs: &mut O,
    ) {
        let mut pruned = 0u64;
        let mut refreshed = 0u64;
        for id in 0..self.cands.len() {
            if !self.alive[id] {
                continue;
            }
            match self.masks[id].difference_count_limited(covered, &self.summaries[id], floor) {
                LimitedCount::Exact(n) => {
                    refreshed += 1;
                    self.cands[id].mben = n;
                    if n == 0 {
                        self.alive[id] = false;
                    }
                }
                LimitedCount::Short { nonzero: false } => {
                    pruned += 1;
                    self.cands[id].mben = 0;
                    self.alive[id] = false;
                }
                LimitedCount::Short { nonzero: true } => {
                    pruned += 1;
                    self.cands[id].mben = 1;
                }
            }
        }
        if pruned > 0 {
            obs.scan_pruned(pruned);
        }
        if refreshed > 0 {
            obs.bound_refreshed(refreshed);
        }
    }

    /// The row mask of candidate `id` (used by the optimized CMC's
    /// delta recounts).
    pub fn mask(&self, id: CandId) -> &BitSet {
        &self.masks[id]
    }
}

/// Canonical benefit comparison (`Greater` = `a` preferred): marginal
/// benefit desc, cost asc, pattern asc — the pattern-space analogue of
/// `CoverState::benefit_order`.
pub fn benefit_order(a: &Candidate, b: &Candidate) -> Ordering {
    a.mben
        .cmp(&b.mben)
        .then_with(|| b.cost.total_cmp(&a.cost))
        .then_with(|| b.pattern.cmp(&a.pattern))
}

/// Canonical gain comparison (`Greater` = `a` preferred): marginal gain
/// desc (by exact cross-multiplication), then [`benefit_order`] — the
/// pattern-space analogue of `CoverState::gain_order`.
pub fn gain_order(a: &Candidate, b: &Candidate) -> Ordering {
    let ma = a.mben as f64;
    let mb = b.mben as f64;
    (ma * b.cost)
        .total_cmp(&(mb * a.cost))
        .then_with(|| benefit_order(a, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(mben: usize, cost: f64, pat: Vec<Option<u32>>) -> Candidate {
        Candidate {
            pattern: Pattern::new(pat),
            rows: Vec::new(),
            cost,
            mben,
        }
    }

    #[test]
    fn pool_insert_get_remove() {
        let covered = BitSet::new(10);
        let mut pool = CandidatePool::new();
        let p = Pattern::new(vec![Some(1)]);
        let id = pool.insert(p.clone(), vec![0, 3, 7], 2.0, &covered);
        assert!(pool.contains(&p));
        assert_eq!(pool.get(id).mben, 3);
        assert_eq!(pool.id_of(&p), Some(id));
        pool.remove(id);
        assert!(!pool.contains(&p));
        assert!(pool.known(&p));
        assert_eq!(pool.id_of(&p), None);
        assert_eq!(pool.alive_count(), 0);
    }

    #[test]
    fn insert_computes_mben_against_covered() {
        let mut covered = BitSet::new(10);
        covered.insert(3);
        let mut pool = CandidatePool::new();
        let id = pool.insert(Pattern::new(vec![None]), vec![0, 3, 7], 1.0, &covered);
        assert_eq!(pool.get(id).mben, 2);
    }

    #[test]
    fn reinsert_revives_and_recounts() {
        let mut covered = BitSet::new(10);
        let mut pool = CandidatePool::new();
        let p = Pattern::new(vec![Some(2)]);
        let id = pool.insert(p.clone(), vec![0, 1], 1.0, &covered);
        pool.remove(id);
        covered.insert(0);
        let id2 = pool.insert(p.clone(), Vec::new(), 1.0, &covered);
        assert_eq!(id, id2, "same slot revived");
        assert!(pool.contains(&p));
        assert_eq!(pool.get(id).mben, 1, "recounted against new coverage");
        assert_eq!(pool.get(id).rows, vec![0, 1], "original rows kept");
    }

    #[test]
    fn recount_all_drops_zeros() {
        let mut covered = BitSet::new(4);
        let mut pool = CandidatePool::new();
        pool.insert(Pattern::new(vec![Some(0)]), vec![0, 1], 1.0, &covered);
        pool.insert(Pattern::new(vec![Some(1)]), vec![2, 3], 1.0, &covered);
        covered.insert(0);
        covered.insert(1);
        pool.recount_all(&covered);
        assert_eq!(pool.alive_count(), 1);
        let alive: Vec<_> = pool.alive_ids().collect();
        assert_eq!(pool.get(alive[0]).mben, 2);
    }

    #[test]
    fn pruned_recount_matches_exact_with_floor_semantics() {
        use scwsc_core::telemetry::MetricsRecorder;
        let n = 2048;
        let mut seed = 0x5ca1ab1eu64;
        let mut lcg = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            seed >> 33
        };
        let empty = BitSet::new(n);
        let mut exact = CandidatePool::new();
        let mut pruned = CandidatePool::new();
        for i in 0..60u32 {
            let len = 1 + (lcg() as usize % 400);
            let rows: Vec<RowId> = (0..len).map(|_| (lcg() % n as u64) as RowId).collect();
            let mut rows = rows;
            rows.sort_unstable();
            rows.dedup();
            let pat = Pattern::new(vec![Some(i)]);
            exact.insert(pat.clone(), rows.clone(), 1.0 + i as f64, &empty);
            pruned.insert(pat, rows, 1.0 + i as f64, &empty);
        }
        let mut covered = BitSet::new(n);
        for _ in 0..n / 2 {
            covered.insert((lcg() % n as u64) as usize);
        }
        let mut m = MetricsRecorder::new();
        for floor in [0usize, 1, 8, 64, 400] {
            exact.recount_all(&covered);
            pruned.recount_all_pruned(&covered, floor, &mut m);
            for id in 0..60 {
                assert_eq!(
                    exact.is_alive(id),
                    pruned.is_alive(id),
                    "floor {floor} id {id}: liveness must agree"
                );
                if !exact.is_alive(id) {
                    continue;
                }
                let (e, p) = (exact.get(id).mben, pruned.get(id).mben);
                if e >= floor {
                    assert_eq!(p, e, "floor {floor} id {id}: survivors stay exact");
                } else {
                    // Below the floor the pruned count may be clamped, but
                    // stays nonzero and below the floor — exactly what the
                    // caller's BelowFloor sweep needs.
                    assert!(
                        p > 0 && p < floor.max(1),
                        "floor {floor} id {id}: {p} vs {e}"
                    );
                }
            }
        }
        assert!(m.scan_candidates_pruned > 0, "early exits fired");
        assert!(m.scan_bounds_refreshed > 0);
    }

    #[test]
    fn benefit_order_prefers_bigger_then_cheaper_then_smaller_pattern() {
        let a = cand(5, 1.0, vec![Some(0)]);
        let b = cand(3, 0.5, vec![Some(1)]);
        assert_eq!(benefit_order(&a, &b), Ordering::Greater);
        let c = cand(5, 0.5, vec![Some(1)]);
        assert_eq!(benefit_order(&c, &a), Ordering::Greater, "cheaper wins tie");
        let d = cand(5, 0.5, vec![Some(0)]);
        assert_eq!(
            benefit_order(&d, &c),
            Ordering::Greater,
            "smaller pattern wins"
        );
    }

    #[test]
    fn gain_order_cross_multiplies() {
        let a = cand(3, 2.0, vec![Some(0)]); // 1.5
        let b = cand(5, 4.0, vec![Some(1)]); // 1.25
        assert_eq!(gain_order(&a, &b), Ordering::Greater);
        // zero-cost wins against anything with finite gain
        let z = cand(1, 0.0, vec![Some(2)]);
        assert_eq!(gain_order(&z, &a), Ordering::Greater);
        // equal gains: larger mben preferred
        let c = cand(2, 2.0, vec![Some(3)]);
        let d = cand(4, 4.0, vec![Some(4)]);
        assert_eq!(gain_order(&d, &c), Ordering::Greater);
    }
}
