//! Patterns: conjunctions of attribute values with wildcards.
//!
//! A pattern has, for each pattern attribute `D_i`, either a value from
//! `dom(D_i)` or the wildcard `ALL` (Section II). A record matches a
//! pattern when they agree on every non-wildcard attribute. Patterns form
//! a lattice: *parents* generalize (one constant → `ALL`), *children*
//! specialize (one `ALL` → a constant); benefit is anti-monotone along it,
//! the property Section V-C's optimizations exploit.

use crate::dictionary::ValueId;
use crate::table::{RowId, Table};
use std::fmt::Write as _;

/// A pattern over `j` attributes; `None` is the wildcard `ALL`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Pattern {
    values: Box<[Option<ValueId>]>,
}

impl Pattern {
    /// The all-wildcards pattern over `num_attrs` attributes — the set that
    /// covers every record, guaranteeing feasibility (Definition 1).
    pub fn all_wildcards(num_attrs: usize) -> Pattern {
        Pattern {
            values: vec![None; num_attrs].into_boxed_slice(),
        }
    }

    /// Builds a pattern from explicit per-attribute values.
    pub fn new(values: Vec<Option<ValueId>>) -> Pattern {
        Pattern {
            values: values.into_boxed_slice(),
        }
    }

    /// Builds a fully-specified pattern matching exactly `row`'s values.
    pub fn of_row(table: &Table, row: RowId) -> Pattern {
        Pattern {
            values: (0..table.num_attrs())
                .map(|a| Some(table.value(row, a)))
                .collect(),
        }
    }

    /// Number of attributes `j`.
    #[inline]
    pub fn num_attrs(&self) -> usize {
        self.values.len()
    }

    /// Value at `attr` (`None` = `ALL`).
    #[inline]
    pub fn get(&self, attr: usize) -> Option<ValueId> {
        self.values[attr]
    }

    /// Per-attribute values.
    #[inline]
    pub fn values(&self) -> &[Option<ValueId>] {
        &self.values
    }

    /// Number of non-wildcard attributes (depth in the lattice).
    pub fn specificity(&self) -> usize {
        self.values.iter().filter(|v| v.is_some()).count()
    }

    /// True for the all-wildcards pattern.
    pub fn is_root(&self) -> bool {
        self.values.iter().all(|v| v.is_none())
    }

    /// Whether `row` of `table` matches this pattern: agreement on every
    /// non-wildcard attribute (Section II).
    ///
    /// # Panics
    /// Panics if the pattern arity differs from the table's.
    pub fn matches(&self, table: &Table, row: RowId) -> bool {
        assert_eq!(self.num_attrs(), table.num_attrs(), "pattern arity");
        self.values
            .iter()
            .enumerate()
            .all(|(a, v)| v.is_none_or(|v| table.value(row, a) == v))
    }

    /// The patterns obtained by replacing one constant with `ALL` — this
    /// pattern's parents in the lattice. The root has none.
    pub fn parents(&self) -> Vec<Pattern> {
        let mut out = Vec::with_capacity(self.specificity());
        for (a, v) in self.values.iter().enumerate() {
            if v.is_some() {
                let mut vals = self.values.to_vec();
                vals[a] = None;
                out.push(Pattern::new(vals));
            }
        }
        out
    }

    /// The child replacing the wildcard at `attr` with `value`.
    ///
    /// # Panics
    /// Panics if `attr` is not a wildcard.
    pub fn child(&self, attr: usize, value: ValueId) -> Pattern {
        assert!(self.values[attr].is_none(), "attribute {attr} is not ALL");
        let mut vals = self.values.to_vec();
        vals[attr] = Some(value);
        Pattern::new(vals)
    }

    /// Overwrites the value at `attr` in place (`None` = `ALL`).
    /// Crate-internal: lattice walkers drive one scratch pattern as a
    /// reusable child cursor instead of allocating a pattern per child.
    pub(crate) fn set(&mut self, attr: usize, value: Option<ValueId>) {
        self.values[attr] = value;
    }

    /// Whether `other` is this pattern with exactly one wildcard filled in.
    pub fn is_parent_of(&self, other: &Pattern) -> bool {
        if self.num_attrs() != other.num_attrs() {
            return false;
        }
        let mut diffs = 0;
        for (s, o) in self.values.iter().zip(other.values.iter()) {
            match (s, o) {
                (None, Some(_)) => diffs += 1,
                (a, b) if a == b => {}
                _ => return false,
            }
        }
        diffs == 1
    }

    /// Whether every record matching `other` also matches this pattern
    /// (this pattern is equal to or an ancestor of `other`).
    pub fn generalizes(&self, other: &Pattern) -> bool {
        self.num_attrs() == other.num_attrs()
            && self
                .values
                .iter()
                .zip(other.values.iter())
                .all(|(s, o)| s.is_none() || s == o)
    }

    /// Human-readable rendering using the table's dictionaries, e.g.
    /// `{Type=B, Location=ALL}`.
    pub fn display(&self, table: &Table) -> String {
        let mut out = String::from("{");
        for (a, v) in self.values.iter().enumerate() {
            if a > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{}=", table.attr_names()[a]);
            match v {
                Some(id) => out.push_str(table.dictionary(a).resolve(*id)),
                None => out.push_str("ALL"),
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut b = Table::builder(&["Type", "Location"], "Cost");
        b.push_row(&["A", "West"], 10.0).unwrap();
        b.push_row(&["B", "South"], 2.0).unwrap();
        b.push_row(&["B", "West"], 4.0).unwrap();
        b.build()
    }

    #[test]
    fn root_matches_everything() {
        let t = table();
        let root = Pattern::all_wildcards(2);
        assert!(root.is_root());
        assert_eq!(root.specificity(), 0);
        for r in 0..t.num_rows() as RowId {
            assert!(root.matches(&t, r));
        }
    }

    #[test]
    fn of_row_matches_exactly_that_shape() {
        let t = table();
        let p = Pattern::of_row(&t, 0); // {A, West}
        assert!(p.matches(&t, 0));
        assert!(!p.matches(&t, 1));
        assert!(!p.matches(&t, 2), "B/West differs on Type");
        assert_eq!(p.specificity(), 2);
    }

    #[test]
    fn partial_pattern_matching() {
        let t = table();
        let west = t.dictionary(1).lookup("West").unwrap();
        let p = Pattern::new(vec![None, Some(west)]); // {ALL, West}
        assert!(p.matches(&t, 0));
        assert!(!p.matches(&t, 1));
        assert!(p.matches(&t, 2));
    }

    #[test]
    fn parents_replace_one_constant() {
        let t = table();
        let p = Pattern::of_row(&t, 1); // {B, South}
        let parents = p.parents();
        assert_eq!(parents.len(), 2);
        assert!(parents.iter().all(|q| q.specificity() == 1));
        assert!(parents.iter().all(|q| q.is_parent_of(&p)));
        assert!(Pattern::all_wildcards(2).parents().is_empty());
    }

    #[test]
    fn child_fills_one_wildcard() {
        let root = Pattern::all_wildcards(2);
        let c = root.child(0, 3);
        assert_eq!(c.get(0), Some(3));
        assert_eq!(c.get(1), None);
        assert!(root.is_parent_of(&c));
        assert!(!c.is_parent_of(&root));
    }

    #[test]
    #[should_panic(expected = "not ALL")]
    fn child_of_constant_panics() {
        Pattern::new(vec![Some(1), None]).child(0, 2);
    }

    #[test]
    fn is_parent_of_requires_exactly_one_step() {
        let root = Pattern::all_wildcards(2);
        let leaf = Pattern::new(vec![Some(1), Some(2)]);
        assert!(!root.is_parent_of(&leaf), "two steps apart");
        assert!(!root.is_parent_of(&root));
        let mid = Pattern::new(vec![Some(1), None]);
        assert!(root.is_parent_of(&mid));
        assert!(mid.is_parent_of(&leaf));
        // different value at a shared constant is not a parent
        let other = Pattern::new(vec![Some(9), Some(2)]);
        assert!(!mid.is_parent_of(&other));
    }

    #[test]
    fn generalizes_is_reflexive_and_transitive_on_chain() {
        let root = Pattern::all_wildcards(2);
        let mid = Pattern::new(vec![Some(1), None]);
        let leaf = Pattern::new(vec![Some(1), Some(2)]);
        assert!(root.generalizes(&mid) && mid.generalizes(&leaf));
        assert!(root.generalizes(&leaf));
        assert!(leaf.generalizes(&leaf));
        assert!(!leaf.generalizes(&mid));
    }

    #[test]
    fn display_uses_dictionaries() {
        let t = table();
        let p = Pattern::of_row(&t, 1);
        assert_eq!(p.display(&t), "{Type=B, Location=South}");
        assert_eq!(
            Pattern::all_wildcards(2).display(&t),
            "{Type=ALL, Location=ALL}"
        );
    }

    #[test]
    fn ordering_is_deterministic() {
        let a = Pattern::new(vec![None, Some(1)]);
        let b = Pattern::new(vec![Some(0), None]);
        assert!(a < b, "ALL sorts before any constant");
        let mut v = vec![b.clone(), a.clone()];
        v.sort();
        assert_eq!(v, vec![a, b]);
    }
}
