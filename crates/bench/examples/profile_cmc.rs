//! Profiling driver: loops one registry workload so a sampling profiler
//! sees only its hot path. Usage:
//!
//! ```text
//! cargo run --release -p scwsc-bench --example profile_cmc [iters] [name]
//! ```
//!
//! With `SCWSC_PROFILE_OBS=record` each iteration attaches the same
//! observer stack the `record` runner uses (span profiler + decision
//! ledger), separating solver time from recording overhead.

use scwsc_bench::measure::{run, run_traced};
use scwsc_bench::registry::full_suite;
use scwsc_core::telemetry::DecisionLedger;
use scwsc_core::{Fanout, SpanProfiler};

#[global_allocator]
static ALLOC: scwsc_core::telemetry::alloc::CountingAlloc =
    scwsc_core::telemetry::alloc::CountingAlloc;

fn main() {
    let mut args = std::env::args().skip(1);
    let iters: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(50);
    let name = args
        .next()
        .unwrap_or_else(|| "fig5/cmc_opt/rows4000".into());
    let record_obs = std::env::var("SCWSC_PROFILE_OBS").as_deref() == Ok("record");
    let w = full_suite()
        .into_iter()
        .find(|w| w.name == name)
        .unwrap_or_else(|| panic!("no workload named {name}"));
    let table = w.gen.table();
    let start = std::time::Instant::now();
    let mut sink = 0usize;
    for _ in 0..iters {
        let m = if record_obs {
            let mut profiler = SpanProfiler::new();
            let mut ledger = DecisionLedger::new();
            let mut extra = Fanout::new();
            extra.attach(&mut profiler).attach(&mut ledger);
            run_traced(w.algo, &table, &w.params, &mut extra).0
        } else {
            run(w.algo, &table, &w.params)
        };
        sink = sink.wrapping_add(m.considered as usize);
    }
    let secs = start.elapsed().as_secs_f64();
    println!(
        "{name}: {iters} iters in {secs:.3}s ({:.4}s/iter, sink {sink})",
        secs / iters as f64
    );
}
