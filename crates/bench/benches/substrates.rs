//! Criterion micro-benchmarks for the substrate data structures: bitsets,
//! posting-list intersection, full-cube enumeration, dictionary interning,
//! and the workload samplers.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scwsc_core::BitSet;
use scwsc_data::distributions::{log_normal, Zipf};
use scwsc_data::lbl::LblConfig;
use scwsc_patterns::{enumerate_all, CostFn, InvertedIndex, Pattern, PatternSpace};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

fn bench_bitset(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitset");
    let n = 100_000;
    group.bench_function("insert_100k", |b| {
        b.iter_batched(
            || BitSet::new(n),
            |mut bits| {
                for i in (0..n).step_by(3) {
                    bits.insert(i);
                }
                black_box(bits.count_ones())
            },
            BatchSize::SmallInput,
        )
    });
    let mut a = BitSet::new(n);
    let mut d = BitSet::new(n);
    for i in (0..n).step_by(2) {
        a.insert(i);
    }
    for i in (0..n).step_by(5) {
        d.insert(i);
    }
    group.bench_function("intersection_count_100k", |b| {
        b.iter(|| black_box(a.intersection_count(&d)))
    });
    let ids: Vec<u32> = (0..n as u32).step_by(7).collect();
    group.bench_function("count_unset_marginal_benefit", |b| {
        b.iter(|| black_box(a.count_unset(ids.iter().map(|&x| x as usize))))
    });
    group.finish();
}

fn bench_index(c: &mut Criterion) {
    let table = LblConfig {
        seed: 7,
        ..LblConfig::scaled(20_000)
    }
    .generate();
    let idx = InvertedIndex::build(&table);
    let space = PatternSpace::new(&table, CostFn::Max);
    let mut group = c.benchmark_group("index");
    group.bench_function("build_20k_rows", |b| {
        b.iter(|| black_box(InvertedIndex::build(&table)))
    });
    // A two-attribute pattern: protocol 0 + endstate 0 (both exist).
    let pattern = Pattern::new(vec![Some(0), None, None, Some(0), None]);
    group.bench_function("benefit_two_attr_intersection", |b| {
        b.iter(|| black_box(idx.benefit(&pattern)))
    });
    let root = space.root();
    let rows = space.benefit(&root);
    group.bench_function("children_of_root", |b| {
        b.iter(|| black_box(space.children_with_rows(&root, &rows).len()))
    });
    group.finish();
}

fn bench_enumeration(c: &mut Criterion) {
    let table = LblConfig {
        seed: 7,
        ..LblConfig::scaled(5_000)
    }
    .generate();
    c.benchmark_group("enumerate")
        .sample_size(10)
        .bench_function("full_cube_5k_rows_5_attrs", |b| {
            b.iter(|| black_box(enumerate_all(&table, CostFn::Max).num_patterns()))
        });
}

fn bench_distributions(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributions");
    let zipf = Zipf::new(2_500, 1.1);
    let mut rng = StdRng::seed_from_u64(7);
    group.bench_function("zipf_sample_10k", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..10_000 {
                acc += zipf.sample(&mut rng);
            }
            black_box(acc)
        })
    });
    group.bench_function("log_normal_10k", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for _ in 0..10_000 {
                acc += log_normal(&mut rng, 2.0, 2.0);
            }
            black_box(acc)
        })
    });
    group.bench_function("uniform_10k_baseline", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for _ in 0..10_000 {
                acc += rng.gen::<f64>();
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_hashing(c: &mut Criterion) {
    use scwsc_patterns::fxhash::FxHashMap;
    use std::collections::HashMap;
    let patterns: Vec<Pattern> = (0..5_000u32)
        .map(|i| {
            Pattern::new(vec![
                Some(i % 13),
                (i % 3 == 0).then_some(i % 7),
                Some(i % 29),
                None,
                Some(i % 5),
            ])
        })
        .collect();
    let mut group = c.benchmark_group("pattern_hashmap");
    group.bench_function("fxhash_insert_lookup", |b| {
        b.iter(|| {
            let mut m: FxHashMap<&Pattern, u32> = FxHashMap::default();
            for (i, p) in patterns.iter().enumerate() {
                m.insert(p, i as u32);
            }
            let mut acc = 0u32;
            for p in &patterns {
                acc = acc.wrapping_add(*m.get(p).unwrap());
            }
            black_box(acc)
        })
    });
    group.bench_function("siphash_insert_lookup", |b| {
        b.iter(|| {
            let mut m: HashMap<&Pattern, u32> = HashMap::new();
            for (i, p) in patterns.iter().enumerate() {
                m.insert(p, i as u32);
            }
            let mut acc = 0u32;
            for p in &patterns {
                acc = acc.wrapping_add(*m.get(p).unwrap());
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_telemetry(c: &mut Criterion) {
    use scwsc_core::algorithms::{cmc, CmcParams};
    use scwsc_core::{MetricsRecorder, NoopObserver, Stats};
    let table = LblConfig {
        seed: 7,
        ..LblConfig::scaled(2_000)
    }
    .generate();
    let m = enumerate_all(&table, CostFn::Max);
    let params = CmcParams::epsilon(10, 0.3, 1.0, 1.0);
    // The three observer tiers on the same solve: the no-op path should be
    // indistinguishable from the Stats path (static dispatch, default
    // methods), with MetricsRecorder paying only for histogram updates.
    let mut group = c.benchmark_group("telemetry_overhead");
    group.bench_function("cmc_noop_observer", |b| {
        b.iter(|| black_box(cmc(&m.system, &params, &mut NoopObserver).is_ok()))
    });
    group.bench_function("cmc_stats", |b| {
        b.iter(|| {
            let mut stats = Stats::new();
            black_box(cmc(&m.system, &params, &mut stats).is_ok())
        })
    });
    group.bench_function("cmc_metrics_recorder", |b| {
        b.iter(|| {
            let mut metrics = MetricsRecorder::new();
            black_box(cmc(&m.system, &params, &mut metrics).is_ok())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_bitset, bench_index, bench_enumeration, bench_distributions, bench_hashing,
        bench_telemetry
}
criterion_main!(benches);
