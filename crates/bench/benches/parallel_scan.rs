//! Criterion benchmarks for the parallel execution layer: the chunked
//! masked benefit scan against its serial equivalent on the largest
//! registry workload scale (fig5 rows4000), the end-to-end `cwsc` /
//! `cwsc_on` pair, and the fused bitset kernels the scan is built from
//! (`difference_count` vs a materialized difference,
//! `max_intersection_count` vs a hand-rolled argmax loop).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use scwsc_core::algorithms::scan::{
    build_masks, masked_argmax, masked_argmax_pruned, PrunedScan, ScanOrder,
};
use scwsc_core::algorithms::{cwsc, cwsc_on};
use scwsc_core::cover_state::benefit_order;
use scwsc_core::{
    BitSet, BlockSummary, NoopObserver, SetSystem, ThreadLocalTelemetry, ThreadPool, Threads,
};
use scwsc_data::lbl::LblConfig;
use scwsc_patterns::{enumerate_all, CostFn};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

/// The full-cube set system of the largest registry workload's table
/// (`fig5/*/rows4000`): the exact input the unoptimized solvers scan.
fn largest_registry_system() -> SetSystem {
    let table = LblConfig {
        seed: 7,
        ..LblConfig::scaled(4000)
    }
    .generate();
    enumerate_all(&table, CostFn::Max).system
}

/// A half-covered universe: the regime mid-solve where the scan does
/// real `difference_count` work instead of terminating on empty masks.
fn half_covered(num_elements: usize) -> BitSet {
    let mut covered = BitSet::new(num_elements);
    for e in (0..num_elements).step_by(2) {
        covered.insert(e);
    }
    covered
}

fn bench_benefit_scan(c: &mut Criterion) {
    let system = largest_registry_system();
    let covered = half_covered(system.num_elements());
    let mut group = c.benchmark_group("parallel_benefit_scan");
    for threads in [1usize, 2, 4] {
        let pool = ThreadPool::new(Threads::new(threads));
        let masks = build_masks(&pool, &system);
        let tls = ThreadLocalTelemetry::new(pool.threads());
        group.bench_function(&format!("masked_argmax_rows4000_t{threads}"), |b| {
            b.iter(|| {
                let best = masked_argmax(
                    &pool,
                    &tls,
                    &system,
                    &masks,
                    &covered,
                    |_| true,
                    |_| true,
                    benefit_order,
                );
                // Drain the shards so spans don't accumulate across iters.
                tls.replay(&mut NoopObserver);
                black_box(best)
            })
        });
    }
    group.finish();
}

fn bench_cwsc_end_to_end(c: &mut Criterion) {
    let system = largest_registry_system();
    let mut group = c.benchmark_group("parallel_cwsc");
    group.bench_function("cwsc_rows4000_serial", |b| {
        b.iter(|| black_box(cwsc(&system, 10, 0.3, &mut NoopObserver).is_ok()))
    });
    for threads in [2usize, 4] {
        let pool = ThreadPool::new(Threads::new(threads));
        group.bench_function(&format!("cwsc_rows4000_t{threads}"), |b| {
            b.iter(|| black_box(cwsc_on(&system, 10, 0.3, &pool, &mut NoopObserver).is_ok()))
        });
    }
    group.finish();
}

fn bench_bitset_kernels(c: &mut Criterion) {
    let n = 100_000;
    let mut a = BitSet::new(n);
    let mut covered = BitSet::new(n);
    for i in (0..n).step_by(3) {
        a.insert(i);
    }
    for i in (0..n).step_by(2) {
        covered.insert(i);
    }
    let mut group = c.benchmark_group("bitset_kernels");
    group.bench_function("difference_count_fused_100k", |b| {
        b.iter(|| black_box(a.difference_count(&covered)))
    });
    group.bench_function("difference_count_materialized_100k", |b| {
        b.iter(|| {
            let mut d = a.clone();
            d.difference_with(&covered);
            black_box(d.count_ones())
        })
    });
    let others: Vec<BitSet> = (0..64)
        .map(|s| {
            let mut o = BitSet::new(n);
            for i in (s..n).step_by(17 + s % 7) {
                o.insert(i);
            }
            o
        })
        .collect();
    group.bench_function("max_intersection_count_64x100k", |b| {
        b.iter(|| black_box(a.max_intersection_count(&others)))
    });
    group.bench_function("max_intersection_count_naive_64x100k", |b| {
        b.iter(|| {
            let mut best: Option<(usize, usize)> = None;
            for (i, o) in others.iter().enumerate() {
                let count = a.intersection_count(o);
                if best.is_none_or(|(_, c)| count > c) {
                    best = Some((i, count));
                }
            }
            black_box(best)
        })
    });
    group.finish();
}

/// Reference popcount loop over the raw words: what the blocked 4-wide
/// kernel in `BitSet` replaces. Kept here (not in core) so the baseline
/// cannot drift with the production code.
fn scalar_difference_count(a: &BitSet, b: &BitSet) -> usize {
    a.words()
        .iter()
        .zip(b.words())
        .map(|(x, y)| (x & !y).count_ones() as usize)
        .sum()
}

fn bench_blocked_kernels(c: &mut Criterion) {
    let n = 100_000;
    let mut a = BitSet::new(n);
    let mut covered = BitSet::new(n);
    for i in (0..n).step_by(3) {
        a.insert(i);
    }
    for i in (0..n).step_by(2) {
        covered.insert(i);
    }
    let summary = BlockSummary::of(&a);
    let mut group = c.benchmark_group("blocked_kernels");
    group.bench_function("difference_count_blocked_100k", |b| {
        b.iter(|| black_box(a.difference_count(&covered)))
    });
    group.bench_function("difference_count_scalar_100k", |b| {
        b.iter(|| black_box(scalar_difference_count(&a, &covered)))
    });
    // Early exit: all of `front`'s ones sit in the first 1% of the
    // universe, so the suffix bound collapses after a handful of blocks
    // and an unreachable threshold returns `Short` almost immediately.
    let mut front = BitSet::new(n);
    for i in 0..n / 100 {
        front.insert(i);
    }
    let front_summary = BlockSummary::of(&front);
    group.bench_function("difference_count_limited_exit_100k", |b| {
        b.iter(|| black_box(front.difference_count_limited(&covered, &front_summary, n)))
    });
    group.bench_function("difference_count_limited_full_100k", |b| {
        // Threshold 0 disables the exit: measures the probe's overhead
        // over the plain blocked kernel when it never fires.
        b.iter(|| black_box(a.difference_count_limited(&covered, &summary, 0)))
    });
    group.finish();
}

/// One covered set per coverage density the scan meets over a solve:
/// early rounds (sparse), mid-solve (half), endgame (dense).
fn covered_at_density(num_elements: usize, keep_every: usize, invert: bool) -> BitSet {
    let mut covered = BitSet::new(num_elements);
    if invert {
        covered.fill();
        for e in (0..num_elements).step_by(keep_every) {
            covered.remove(e);
        }
    } else {
        for e in (0..num_elements).step_by(keep_every) {
            covered.insert(e);
        }
    }
    covered
}

fn bench_pruned_vs_exact_scan(c: &mut Criterion) {
    let system = largest_registry_system();
    let pool = ThreadPool::new(Threads::new(1));
    let masks = build_masks(&pool, &system);
    let tls = ThreadLocalTelemetry::new(pool.threads());
    let mut group = c.benchmark_group("pruned_vs_exact_scan");
    for (density, keep_every, invert) in [
        ("sparse10", 10, false),
        ("half50", 2, false),
        ("dense90", 10, true),
    ] {
        let covered = covered_at_density(system.num_elements(), keep_every, invert);
        group.bench_function(&format!("exact_{density}"), |b| {
            b.iter(|| {
                let best = masked_argmax(
                    &pool,
                    &tls,
                    &system,
                    &masks,
                    &covered,
                    |_| true,
                    |_| true,
                    benefit_order,
                );
                tls.replay(&mut NoopObserver);
                black_box(best)
            })
        });
        // Steady state: bounds warmed by one scan at this coverage, the
        // regime every round after the first sees.
        let mut scan = PrunedScan::with_enabled(&masks, true);
        masked_argmax_pruned(
            &pool,
            &tls,
            &system,
            &masks,
            &mut scan,
            &covered,
            |_| true,
            |_| true,
            0,
            ScanOrder::Benefit,
            &mut NoopObserver,
        );
        tls.replay(&mut NoopObserver);
        group.bench_function(&format!("pruned_{density}"), |b| {
            b.iter(|| {
                let best = masked_argmax_pruned(
                    &pool,
                    &tls,
                    &system,
                    &masks,
                    &mut scan,
                    &covered,
                    |_| true,
                    |_| true,
                    0,
                    ScanOrder::Benefit,
                    &mut NoopObserver,
                );
                tls.replay(&mut NoopObserver);
                black_box(best)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_benefit_scan, bench_cwsc_end_to_end, bench_bitset_kernels,
    bench_blocked_kernels, bench_pruned_vs_exact_scan
}
criterion_main!(benches);
