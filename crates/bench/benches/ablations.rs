//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! CMC level schedules (classic vs ε vs generalized), the coverage
//! discount, pattern cost functions, and lazy vs eager greedy selection.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use scwsc_core::algorithms::{cmc, CmcParams, LevelSchedule};
use scwsc_core::incremental::{IncrementalCover, RepairStrategy};
use scwsc_core::lazy_greedy::LazyGreedy;
use scwsc_core::{CoverState, SetSystem, Stats};
use scwsc_data::lbl::LblConfig;
use scwsc_patterns::{enumerate_all, opt_cwsc, CostFn, PatternSpace, Table};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

fn workload() -> Table {
    LblConfig {
        seed: 7,
        ..LblConfig::scaled(8_000)
    }
    .generate()
}

/// Which level schedule makes CMC cheapest to run / best quality?
fn bench_level_schedules(c: &mut Criterion) {
    let table = workload();
    let m = enumerate_all(&table, CostFn::Max);
    let mut group = c.benchmark_group("cmc_level_schedule");
    for (name, schedule) in [
        ("classic_5k", LevelSchedule::Classic),
        ("epsilon_0_5", LevelSchedule::Epsilon(0.5)),
        ("epsilon_2", LevelSchedule::Epsilon(2.0)),
        ("generalized_l3", LevelSchedule::Generalized(3)),
    ] {
        let params = CmcParams {
            schedule,
            discount_coverage: false,
            ..CmcParams::classic(10, 0.3, 1.0)
        };
        group.bench_function(name, |b| {
            b.iter(|| black_box(cmc(&m.system, &params, &mut Stats::new())))
        });
    }
    group.finish();
}

/// How much work does the (1−1/e) coverage discount save?
fn bench_coverage_discount(c: &mut Criterion) {
    let table = workload();
    let m = enumerate_all(&table, CostFn::Max);
    let mut group = c.benchmark_group("cmc_coverage_discount");
    for (name, discount) in [("discounted_target", true), ("full_target", false)] {
        let params = CmcParams {
            discount_coverage: discount,
            ..CmcParams::classic(10, 0.5, 1.0)
        };
        group.bench_function(name, |b| {
            b.iter(|| black_box(cmc(&m.system, &params, &mut Stats::new())))
        });
    }
    group.finish();
}

/// Cost-function sensitivity of the optimized CWSC.
fn bench_cost_functions(c: &mut Criterion) {
    let table = workload();
    let mut group = c.benchmark_group("opt_cwsc_cost_fn");
    for (name, cost_fn) in [
        ("max", CostFn::Max),
        ("sum", CostFn::Sum),
        ("mean", CostFn::Mean),
        ("l2_norm", CostFn::LpNorm(2.0)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let space = PatternSpace::new(&table, cost_fn);
                black_box(opt_cwsc(&space, 10, 0.3, &mut Stats::new()))
            })
        });
    }
    group.finish();
}

/// Lazy-greedy heap vs the faithful eager scan for max-k-coverage
/// selection over a materialized system.
fn bench_lazy_vs_eager(c: &mut Criterion) {
    let table = workload();
    let m = enumerate_all(&table, CostFn::Max);
    let k = 40;
    let mut group = c.benchmark_group("greedy_selection");
    group.bench_function("eager_scan", |b| {
        b.iter(|| {
            let mut state = CoverState::new(&m.system);
            let mut picked = 0usize;
            for _ in 0..k {
                let Some(q) = state.argmax_benefit(|_| true) else {
                    break;
                };
                state.select(q);
                picked += 1;
            }
            black_box(picked)
        })
    });
    group.bench_function("lazy_heap", |b| {
        b.iter(|| black_box(lazy_max_coverage(&m.system, k)))
    });
    group.finish();
}

/// Max-k-coverage via the lazy heap (returns how many sets were picked).
fn lazy_max_coverage(system: &SetSystem, k: usize) -> usize {
    let mut covered = scwsc_core::BitSet::new(system.num_elements());
    let mut lg =
        LazyGreedy::with_candidates(system.iter().map(|(id, s)| (id, s.benefit() as f64, 0.0)));
    let mut picked = 0usize;
    for _ in 0..k {
        let popped = lg.pop_max(|id| {
            let mben = covered.count_unset(system.members(id).iter().map(|&e| e as usize));
            (mben > 0).then_some((mben as f64, 0.0))
        });
        let Some((id, _)) = popped else { break };
        for &e in system.members(id) {
            covered.insert(e as usize);
        }
        picked += 1;
        lg.invalidate();
    }
    picked
}

/// Incremental maintenance: full re-solve vs greedy patch repairs
/// (the §VII future-work feature's two strategies).
fn bench_incremental_strategies(c: &mut Criterion) {
    // Pre-generate a deterministic arrival stream over 24 sets + universe.
    let mut rng_state = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        rng_state
    };
    let arrivals: Vec<Vec<u32>> = (0..3_000)
        .map(|_| {
            let mut sets = vec![24u32]; // universe
            for s in 0..24u32 {
                if next() % 5 == 0 {
                    sets.push(s);
                }
            }
            sets
        })
        .collect();
    let costs: Vec<f64> = (0..24).map(|i| 2.0 + f64::from(i)).chain([500.0]).collect();

    let mut group = c.benchmark_group("incremental_repair");
    for (name, strategy) in [
        ("resolve", RepairStrategy::Resolve),
        ("patch", RepairStrategy::Patch),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut inc = IncrementalCover::with_strategy(&costs, 6, 0.6, strategy).unwrap();
                for memberships in &arrivals {
                    inc.push_element(memberships).unwrap();
                }
                black_box((inc.resolves(), inc.patches(), inc.solution_cost()))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_level_schedules, bench_coverage_discount, bench_cost_functions, bench_lazy_vs_eager, bench_incremental_strategies
}
criterion_main!(benches);
