//! Criterion benchmarks for the paper's algorithms on a fixed seeded
//! workload — the micro-benchmark companions to the Figure 5 / Table V
//! harness binaries (which sweep parameters; these pin them).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use scwsc_bench::measure::RunParams;
use scwsc_core::algorithms::{
    cmc, cwsc, exact_optimal, greedy_max_coverage, greedy_partial_max_coverage,
    greedy_weighted_set_cover,
};
use scwsc_core::Stats;
use scwsc_data::lbl::LblConfig;
use scwsc_patterns::{enumerate_all, opt_cmc, opt_cwsc, CostFn, PatternSpace};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3))
}

fn bench_algorithms(c: &mut Criterion) {
    let table = LblConfig {
        seed: 7,
        ..LblConfig::scaled(10_000)
    }
    .generate();
    let params = RunParams::default(); // k=10, s=0.3, b=eps=1
    let materialized = enumerate_all(&table, CostFn::Max);
    let cmc_params = params.cmc_params();

    let mut group = c.benchmark_group("fig5_10k_rows");
    group.bench_function("cwsc_unoptimized_presolved_cube", |b| {
        b.iter(|| {
            black_box(cwsc(
                &materialized.system,
                params.k,
                params.coverage,
                &mut Stats::new(),
            ))
        })
    });
    group.bench_function("cwsc_optimized", |b| {
        b.iter(|| {
            let space = PatternSpace::new(&table, CostFn::Max);
            black_box(opt_cwsc(
                &space,
                params.k,
                params.coverage,
                &mut Stats::new(),
            ))
        })
    });
    group.bench_function("cmc_unoptimized_presolved_cube", |b| {
        b.iter(|| black_box(cmc(&materialized.system, &cmc_params, &mut Stats::new())))
    });
    group.bench_function("cmc_optimized", |b| {
        b.iter(|| {
            let space = PatternSpace::new(&table, CostFn::Max);
            black_box(opt_cmc(&space, &cmc_params, &mut Stats::new()))
        })
    });
    group.finish();

    let mut group = c.benchmark_group("baselines_10k_rows");
    group.bench_function("greedy_weighted_set_cover", |b| {
        b.iter(|| {
            black_box(greedy_weighted_set_cover(
                &materialized.system,
                0.3,
                &mut Stats::new(),
            ))
        })
    });
    group.bench_function("greedy_max_coverage_k10", |b| {
        b.iter(|| {
            black_box(greedy_max_coverage(
                &materialized.system,
                10,
                &mut Stats::new(),
            ))
        })
    });
    group.bench_function("greedy_partial_max_coverage", |b| {
        b.iter(|| {
            black_box(greedy_partial_max_coverage(
                &materialized.system,
                0.3,
                &mut Stats::new(),
            ))
        })
    });
    group.finish();

    // Section VI-D scale: the exact solver on a small sample.
    let small = LblConfig {
        seed: 7,
        ..LblConfig::scaled(60)
    }
    .generate();
    let small_m = enumerate_all(&small, CostFn::Max);
    c.benchmark_group("sec6d_exact")
        .sample_size(10)
        .bench_function("branch_and_bound_60_rows_k5", |b| {
            b.iter(|| black_box(exact_optimal(&small_m.system, 5, 0.5)))
        });
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_algorithms
}
criterion_main!(benches);
