//! End-to-end: boot `scwsc_serve`'s transport in-process on an ephemeral
//! port, drive it with the `serve-load` client generator, and assert the
//! serving contract held — zero dropped requests, every degrade
//! certified, every rejection hinted — then drain cleanly.

use scwsc_bench::serve_load::{self, LoadOptions};
use scwsc_core::{FlightRecorder, ThreadPool, Threads};
use scwsc_patterns::{PatternInstance, Table};
use scwsc_serve::{serve, ServeOptions, ServerConfig, ServerState, ShutdownFlag};
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

fn small_table() -> Table {
    let mut b = Table::builder(&["proto", "dst"], "bytes");
    for i in 0..24u32 {
        let proto = format!("p{}", i % 3);
        let dst = format!("d{}", i % 5);
        b.push_row(&[&proto, &dst], f64::from(10 + i)).unwrap();
    }
    b.build()
}

#[test]
fn burst_load_upholds_the_no_drop_contract() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral port");
    let addr = listener.local_addr().unwrap().to_string();
    let state = Arc::new(ServerState::new(
        Arc::new(PatternInstance::new(small_table())),
        ThreadPool::new(Threads::new(2)),
        ServerConfig {
            default_deadline_ms: 0,
            ..ServerConfig::default()
        },
        FlightRecorder::new(),
        None,
    ));
    let shutdown = ShutdownFlag::new();
    let server = {
        let state = Arc::clone(&state);
        let shutdown = shutdown.clone();
        std::thread::spawn(move || serve(listener, state, ServeOptions::default(), shutdown))
    };

    let options = LoadOptions {
        addr,
        connections: 3,
        requests: 12,
        distinct: 6,
        max_ticks: Some(50_000),
        retries: 2,
        timeout: Duration::from_secs(20),
        ..LoadOptions::default()
    };
    let report = serve_load::run(&options).expect("load run");
    assert_eq!(report.sent, 36);
    assert_eq!(
        report.answered + report.dropped,
        report.sent,
        "every request accounted for"
    );
    assert!(report.ok(), "contract violated:\n{}", report.render());
    assert!(report.complete + report.degraded > 0, "some work got done");
    assert!(
        report.cached > 0,
        "6 distinct queries over 36 requests must hit the cache"
    );

    shutdown.raise();
    let summary = server.join().unwrap().expect("server io");
    assert!(summary.drained_clean, "graceful drain");
    assert_eq!(summary.stalls, 0, "watchdog quiet");
    // Every wire request got exactly one response: the 36 logical
    // requests plus one extra round-trip per client-side retry of a
    // rejection. (cache_hits is a subset of complete, not a fifth class.)
    assert_eq!(
        summary.complete + summary.degraded + summary.errors + summary.rejected,
        36 + report.retried,
        "server-side accounting matches the client's"
    );
}
