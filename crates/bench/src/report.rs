//! Plain-text table rendering for the experiment binaries.
//!
//! Every harness binary prints the same rows/series the paper's figures
//! and tables report, as fixed-width text tables (easy to diff, easy to
//! paste into EXPERIMENTS.md) and optionally as CSV.

use std::fmt::Write as _;

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> TextTable {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header arity).
    ///
    /// # Panics
    /// Panics on arity mismatch — harness rows are produced by code, so a
    /// mismatch is a bug.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with padded columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = w);
            }
            out.push('\n');
        };
        emit(&mut out, &self.header);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }

    /// Renders as CSV (no quoting; harness cells never contain commas).
    pub fn to_csv(&self) -> String {
        let mut out = self.header.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Renders as a JSON array of objects keyed by the header, with cells
    /// that parse as finite numbers emitted as numbers.
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        let rows = self
            .rows
            .iter()
            .map(|row| {
                Json::Obj(
                    self.header
                        .iter()
                        .zip(row)
                        .map(|(key, cell)| {
                            let value = match cell.parse::<f64>() {
                                Ok(n) if n.is_finite() => Json::Num(n),
                                _ => Json::Str(cell.clone()),
                            };
                            (key.clone(), value)
                        })
                        .collect(),
                )
            })
            .collect();
        Json::Arr(rows)
    }
}

/// Formats seconds with milli precision.
pub fn secs(s: f64) -> String {
    format!("{s:.3}")
}

/// Formats a float compactly (trailing zeros trimmed at 2 decimals).
pub fn num(v: f64) -> String {
    if (v - v.round()).abs() < 1e-9 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["alg", "time"]);
        t.row(["CWSC", "1.5"]).row(["optimized CWSC", "0.7"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("alg"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].contains("optimized CWSC"));
        // all rows same width
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn csv_output() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["1", "2"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        TextTable::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn json_output_types_cells() {
        use crate::json::Json;
        let mut t = TextTable::new(["alg", "time"]);
        t.row(["CWSC", "1.5"]);
        let json = t.to_json();
        let rows = json.as_arr().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("alg").and_then(Json::as_str), Some("CWSC"));
        assert_eq!(rows[0].get("time").and_then(Json::as_f64), Some(1.5));
        // Round-trips through the parser.
        assert_eq!(Json::parse(&json.to_pretty()).unwrap(), json);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(num(3.0), "3");
        assert_eq!(num(1.23456), "1.23");
        assert_eq!(secs(0.12345), "0.123");
    }
}
