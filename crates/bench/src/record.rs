//! Driving a workload suite into a [`Snapshot`] (`scwsc_bench record`).

use crate::measure::run_traced_on;
use crate::registry::Workload;
use crate::snapshot::{deterministic_counters, QualityStats, Snapshot, SpanSnapshot, WorkloadRun};
use scwsc_core::telemetry::audit::{self, DecisionLedger};
use scwsc_core::{coverage_target, Fanout, MetricsRecorder, SpanProfiler, ThreadPool, Threads};
use scwsc_patterns::enumerate_all;

#[cfg(feature = "alloc-stats")]
use crate::snapshot::AllocStats;
#[cfg(feature = "alloc-stats")]
use scwsc_core::telemetry::alloc;

/// Times every workload `reps` times and assembles the snapshot.
///
/// Each rep regenerates the input table so table construction cannot warm
/// caches across reps unevenly, and runs with a fresh [`SpanProfiler`].
/// The deterministic counters and the span tree are taken from the last
/// rep (the counters are identical across reps by construction — that is
/// what makes them exact-diff material). Allocation statistics cover the
/// last rep's solve, peak re-armed at its start; they are `None` unless
/// the recording binary installed the counting allocator.
///
/// `progress` is called once per workload with a short status line.
pub fn record_suite(
    suite: &[Workload],
    label: &str,
    reps: usize,
    progress: impl FnMut(&str),
) -> Snapshot {
    record_suite_on(
        suite,
        label,
        reps,
        &ThreadPool::new(Threads::serial()),
        progress,
    )
}

/// [`record_suite`] with each workload's solver fan-outs run on `pool`.
///
/// The deterministic counters are identical to a serial recording for any
/// pool size — that is the parallel layer's contract and exactly what
/// `scwsc_bench diff --counters-only` checks between a `SCWSC_THREADS=1`
/// and a `SCWSC_THREADS=4` recording. Only `rep_secs` and span timings
/// change.
pub fn record_suite_on(
    suite: &[Workload],
    label: &str,
    reps: usize,
    pool: &ThreadPool,
    progress: impl FnMut(&str),
) -> Snapshot {
    record_suite_with_metrics_on(suite, label, reps, pool, progress).0
}

/// [`record_suite_on`] that also returns the suite-wide merged
/// [`MetricsRecorder`] (each workload's last rep, merged in suite order) —
/// the source for `scwsc_bench record --export-metrics`.
pub fn record_suite_with_metrics_on(
    suite: &[Workload],
    label: &str,
    reps: usize,
    pool: &ThreadPool,
    mut progress: impl FnMut(&str),
) -> (Snapshot, MetricsRecorder) {
    assert!(reps >= 1, "at least one rep required");
    let mut merged = MetricsRecorder::new();
    let mut workloads = Vec::with_capacity(suite.len());
    for w in suite {
        let mut rep_secs = Vec::with_capacity(reps);
        let mut last: Option<WorkloadRun> = None;
        for rep in 0..reps {
            let table = w.gen.table();
            let mut profiler = SpanProfiler::new();
            let mut ledger = DecisionLedger::new();
            #[cfg(feature = "alloc-stats")]
            let alloc_before = {
                alloc::reset_peak();
                alloc::snapshot()
            };
            let (measurement, metrics) = {
                let mut extra = Fanout::new();
                extra.attach(&mut profiler).attach(&mut ledger);
                run_traced_on(w.algo, &table, &w.params, pool, &mut extra)
            };
            #[cfg(feature = "alloc-stats")]
            let alloc_stats = alloc::is_active()
                .then(|| AllocStats::from_delta(alloc::snapshot().delta(&alloc_before)));
            #[cfg(not(feature = "alloc-stats"))]
            let alloc_stats = None;
            assert!(measurement.ok, "workload {} failed to solve", w.name);
            rep_secs.push(measurement.seconds);
            if rep_secs.len() == reps {
                merged.merge(&metrics);
            }
            // Certify the last rep only: the dual bound re-enumerates the
            // pattern cube, which is recording overhead, not solve time.
            let quality = (rep == reps - 1).then(|| {
                let cube = enumerate_all(&table, w.params.cost_fn);
                let target = coverage_target(table.num_rows(), w.params.coverage);
                let cert = audit::certify(&cube.system, &ledger.prices(), target);
                QualityStats {
                    greedy_cost: cert.greedy_cost,
                    lower_bound: cert.lower_bound,
                    mean_margin: ledger.mean_margin(),
                    rounds: ledger.rounds_total() as u64,
                }
            });
            last = Some(WorkloadRun {
                name: w.name.clone(),
                rep_secs: Vec::new(), // filled in below, once all reps ran
                counters: deterministic_counters(&metrics),
                spans: SpanSnapshot::from_node(&profiler.tree()),
                alloc: alloc_stats,
                quality,
            });
        }
        let mut run = last.expect("reps >= 1");
        run.rep_secs = rep_secs;
        progress(&format!(
            "{:<28} median {:.4}s over {} rep(s)",
            run.name,
            run.median_secs(),
            reps
        ));
        workloads.push(run);
    }
    let snapshot = Snapshot {
        label: label.to_string(),
        git_sha: crate::snapshot::git_sha(),
        rustc: crate::snapshot::rustc_version(),
        reps,
        workloads,
    };
    (snapshot, merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::{diff, DiffOptions};
    use crate::registry::smoke_suite;

    #[test]
    fn recorded_smoke_snapshot_self_diffs_clean_and_round_trips() {
        let suite = smoke_suite();
        let snap = record_suite(&suite, "test", 2, |_| {});
        assert_eq!(snap.workloads.len(), suite.len());
        for w in &snap.workloads {
            assert_eq!(w.rep_secs.len(), 2);
            assert!(
                w.counters.values().any(|&v| v > 0),
                "{} did no work",
                w.name
            );
            assert_eq!(w.spans.name, "total", "solver total span is the root");
        }
        // Round-trip through text, then self-diff: counters are exact.
        let parsed = Snapshot::parse(&snap.to_json().to_pretty()).unwrap();
        let report = diff(&snap, &parsed, &DiffOptions::default());
        assert!(report.ok(), "{}", report.render());

        // A second recording reproduces the counters exactly.
        let again = record_suite(&suite, "test2", 1, |_| {});
        let report = diff(
            &snap,
            &again,
            &DiffOptions {
                tolerance: 0.25,
                counters_only: true,
            },
        );
        assert!(report.ok(), "{}", report.render());
    }

    #[test]
    fn merged_metrics_sum_the_suite_and_render_prometheus() {
        let suite = smoke_suite();
        let pool = ThreadPool::new(Threads::serial());
        let (snap, metrics) = record_suite_with_metrics_on(&suite, "m", 1, &pool, |_| {});
        let recorded: u64 = snap
            .workloads
            .iter()
            .filter_map(|w| w.counters.get("benefits_computed"))
            .sum();
        assert_eq!(metrics.benefits_computed, recorded, "merge sums workloads");
        let text = scwsc_core::render_prometheus(&metrics, None);
        let samples = scwsc_core::parse_prometheus(&text).unwrap();
        let sample = samples
            .iter()
            .find(|s| s.name == "scwsc_benefits_computed_total")
            .expect("exported counter present");
        assert_eq!(sample.value, recorded as f64);
    }

    #[test]
    fn parallel_recording_counters_diff_clean_against_serial() {
        let suite = smoke_suite();
        let serial = record_suite(&suite, "serial", 1, |_| {});
        let pool = ThreadPool::new(Threads::new(4));
        let parallel = record_suite_on(&suite, "parallel", 1, &pool, |_| {});
        let report = diff(
            &serial,
            &parallel,
            &DiffOptions {
                tolerance: 0.25,
                counters_only: true,
            },
        );
        assert!(report.ok(), "{}", report.render());
    }
}
