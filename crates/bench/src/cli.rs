//! Shared entry-point plumbing for the experiment binaries.

use crate::args::Args;
use crate::report::TextTable;

/// Exit codes of the solver binaries' error taxonomy (DESIGN.md §12).
/// Code 0 is success, 1 is an internal fault (e.g. a solver worker that
/// panicked twice); the rest distinguish the expected failure families so
/// scripts can branch without parsing stderr.
pub mod exit_code {
    /// Bad command-line arguments or flag values.
    pub const BAD_ARGS: i32 = 2;
    /// Unreadable or malformed input data.
    pub const BAD_INPUT: i32 = 3;
    /// The instance is infeasible for the requested constraints
    /// ([`scwsc_core::SolveError`]).
    pub const INFEASIBLE: i32 = 4;
    /// The deadline expired: a degraded partial solution and its
    /// certificate were printed.
    pub const DEADLINE_DEGRADED: i32 = 5;
}

/// Prints `error: message` and exits with the given taxonomy code.
pub fn exit_with(code: i32, message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(code)
}

/// Parses process arguments or exits with code 2 and a usage hint.
pub fn args_or_exit(usage: &str) -> Args {
    match Args::from_env() {
        Ok(args) => {
            if args.flag("help") {
                eprintln!("{usage}");
                std::process::exit(0);
            }
            args
        }
        Err(e) => {
            eprintln!("error: {e}\n{usage}");
            std::process::exit(2);
        }
    }
}

/// Prints a titled table; with `--csv <path>` also writes it as CSV.
pub fn emit(title: &str, table: &TextTable, args: &Args) {
    println!("== {title} ==");
    println!("{}", table.render());
    if let Some(path) = args.get("csv") {
        if let Err(e) = std::fs::write(path, table.to_csv()) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("csv written to {path}");
    }
}

/// Exits with a parse error message ([`exit_code::BAD_ARGS`]).
pub fn bail(message: &str) -> ! {
    exit_with(exit_code::BAD_ARGS, message)
}

/// Unwraps an argument parse result via [`bail`].
pub fn required<T>(result: Result<T, String>) -> T {
    result.unwrap_or_else(|e| bail(&e))
}
