//! Shared entry-point plumbing for the experiment binaries.

use crate::args::Args;
use crate::report::TextTable;

/// Parses process arguments or exits with code 2 and a usage hint.
pub fn args_or_exit(usage: &str) -> Args {
    match Args::from_env() {
        Ok(args) => {
            if args.flag("help") {
                eprintln!("{usage}");
                std::process::exit(0);
            }
            args
        }
        Err(e) => {
            eprintln!("error: {e}\n{usage}");
            std::process::exit(2);
        }
    }
}

/// Prints a titled table; with `--csv <path>` also writes it as CSV.
pub fn emit(title: &str, table: &TextTable, args: &Args) {
    println!("== {title} ==");
    println!("{}", table.render());
    if let Some(path) = args.get("csv") {
        if let Err(e) = std::fs::write(path, table.to_csv()) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("csv written to {path}");
    }
}

/// Exits with a parse error message.
pub fn bail(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(2)
}

/// Unwraps an argument parse result via [`bail`].
pub fn required<T>(result: Result<T, String>) -> T {
    result.unwrap_or_else(|e| bail(&e))
}
