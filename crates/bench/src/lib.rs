//! # scwsc-bench
//!
//! Experiment harness reproducing every figure and table of the ICDE 2015
//! evaluation (Section VI). Each `src/bin/*` binary regenerates one
//! figure/table; `run_all` executes the full suite and writes the results
//! under `results/`. Criterion micro-benchmarks live in `benches/`.
//!
//! Workloads are synthetic LBL-CONN-7-like traces (see `scwsc-data` and
//! DESIGN.md §4); every binary accepts `--rows` and `--seed` so runs are
//! reproducible and scalable to the machine at hand.

#![warn(missing_docs)]

pub mod args;
pub mod attribute;
pub mod chrome_trace;
pub mod cli;
pub mod diff;
pub mod experiments;
pub mod json;
pub mod measure;
pub mod printers;
pub mod record;
pub mod registry;
pub mod report;
pub mod serve_load;
pub mod snapshot;
pub mod soak;
pub mod trend;

pub use args::Args;
pub use measure::{run, Algo, Measurement, RunParams};
