//! Snapshot comparison: the `scwsc_bench diff` semantics (DESIGN.md §10).
//!
//! Two snapshot dimensions are held to different standards:
//!
//! * **Deterministic counters** (benefits computed, postings scanned,
//!   prunes, selections, stale pops, …) are a function of the workload and
//!   the algorithm alone, so they must match **exactly**. Any difference —
//!   in either direction — fails the diff: an "improvement" that changes
//!   the work done is an algorithmic change and the baseline must be
//!   regenerated deliberately, not drifted past.
//! * **Timings and allocations** are machine- and run-dependent, so they
//!   compare within a configurable relative tolerance, and only
//!   *increases* beyond it count as regressions (getting faster or leaner
//!   is reported but never fails).

use crate::snapshot::{Snapshot, WorkloadRun};

/// Counters that are recorded in snapshots but never compared exactly.
///
/// The pruned-scan advisories depend on chunk boundaries (thread count) and
/// on whether `SCWSC_PRUNE` is set: with more threads each chunk has its own
/// running champion, so a candidate pruned at `t1` may be counted exactly at
/// `t4` and vice versa. They document how much work the scan skipped; any
/// drift is surfaced as a note, not a regression, so the t1-vs-t4 and
/// PRUNE=0-vs-1 gates stay byte-stable on the exact counters alone.
pub const ADVISORY_COUNTERS: &[&str] = &[
    "scan_candidates_pruned",
    "scan_bounds_refreshed",
    "scan_sketch_inconclusive",
];

fn is_advisory(key: &str) -> bool {
    ADVISORY_COUNTERS.contains(&key)
}

/// Knobs of one diff run.
#[derive(Debug, Clone, Copy)]
pub struct DiffOptions {
    /// Relative headroom for timings and allocation statistics: a new
    /// value regresses when `new > base * (1 + tolerance)`.
    pub tolerance: f64,
    /// Compare only the deterministic counters (CI mode: wall-clock on a
    /// shared runner is too noisy to gate on).
    pub counters_only: bool,
}

impl Default for DiffOptions {
    /// 25% timing headroom, all dimensions compared.
    fn default() -> DiffOptions {
        DiffOptions {
            tolerance: 0.25,
            counters_only: false,
        }
    }
}

/// Outcome of comparing two snapshots.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Failures: each line names the workload, the dimension, and both
    /// values. Non-empty means the diff fails.
    pub regressions: Vec<String>,
    /// Non-failing observations (improvements, new workloads).
    pub notes: Vec<String>,
    /// Workloads compared.
    pub compared: usize,
}

impl DiffReport {
    /// Whether the new snapshot is acceptable against the baseline.
    pub fn ok(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Human-readable summary, one line per finding.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.regressions {
            out.push_str("REGRESSION  ");
            out.push_str(r);
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str("note        ");
            out.push_str(n);
            out.push('\n');
        }
        out.push_str(&format!(
            "{} workload(s) compared, {} regression(s)\n",
            self.compared,
            self.regressions.len()
        ));
        out
    }
}

/// Compares `new` against the `base` baseline.
pub fn diff(base: &Snapshot, new: &Snapshot, opts: &DiffOptions) -> DiffReport {
    let mut report = DiffReport::default();
    for base_run in &base.workloads {
        let Some(new_run) = new.workload(&base_run.name) else {
            report.regressions.push(format!(
                "{}: workload missing from new snapshot",
                base_run.name
            ));
            continue;
        };
        report.compared += 1;
        diff_counters(base_run, new_run, &mut report);
        // Quality is deterministic (greedy cost and dual bound are functions
        // of the workload), so the gate stays active under --counters-only.
        diff_quality(base_run, new_run, opts.tolerance, &mut report);
        if !opts.counters_only {
            diff_timing(base_run, new_run, opts.tolerance, &mut report);
            diff_alloc(base_run, new_run, opts.tolerance, &mut report);
        }
    }
    for new_run in &new.workloads {
        if base.workload(&new_run.name).is_none() {
            report
                .notes
                .push(format!("{}: new workload, no baseline", new_run.name));
        }
    }
    report
}

fn diff_counters(base: &WorkloadRun, new: &WorkloadRun, report: &mut DiffReport) {
    for (key, &base_v) in &base.counters {
        if is_advisory(key) {
            if let Some(&new_v) = new.counters.get(key) {
                if new_v != base_v {
                    report.notes.push(format!(
                        "{}: advisory counter '{key}' {base_v} -> {new_v}",
                        base.name
                    ));
                }
            }
            continue;
        }
        match new.counters.get(key) {
            None => report
                .regressions
                .push(format!("{}: counter '{key}' missing", base.name)),
            Some(&new_v) if new_v != base_v => report.regressions.push(format!(
                "{}: counter '{key}' changed {base_v} -> {new_v}",
                base.name
            )),
            _ => {}
        }
    }
    for key in new.counters.keys() {
        if !base.counters.contains_key(key) {
            report
                .notes
                .push(format!("{}: new counter '{key}'", base.name));
        }
    }
}

fn diff_quality(base: &WorkloadRun, new: &WorkloadRun, tolerance: f64, report: &mut DiffReport) {
    let (Some(b), Some(n)) = (&base.quality, &new.quality) else {
        // One side recorded before the audit ledger existed (schema 1):
        // nothing to hold the other side to.
        return;
    };
    if b.greedy_cost > 0.0 && n.greedy_cost > b.greedy_cost * (1.0 + tolerance) {
        report.regressions.push(format!(
            "{}: greedy cost {:.4} -> {:.4} (+{:.0}%, tolerance {:.0}%)",
            base.name,
            b.greedy_cost,
            n.greedy_cost,
            100.0 * (n.greedy_cost / b.greedy_cost - 1.0),
            100.0 * tolerance
        ));
    } else if b.greedy_cost > 0.0 && n.greedy_cost < b.greedy_cost * (1.0 - tolerance) {
        report.notes.push(format!(
            "{}: greedy cost improved {:.4} -> {:.4}",
            base.name, b.greedy_cost, n.greedy_cost
        ));
    }
    let (br, nr) = (b.certified_ratio(), n.certified_ratio());
    if br.is_finite() && nr.is_infinite() {
        report.regressions.push(format!(
            "{}: certified bound became uninformative (ratio {:.3} -> inf)",
            base.name, br
        ));
    } else if br.is_finite() && nr > br * (1.0 + tolerance) {
        report.regressions.push(format!(
            "{}: certified ratio {:.3} -> {:.3} (+{:.0}%, tolerance {:.0}%)",
            base.name,
            br,
            nr,
            100.0 * (nr / br - 1.0),
            100.0 * tolerance
        ));
    }
}

fn diff_timing(base: &WorkloadRun, new: &WorkloadRun, tolerance: f64, report: &mut DiffReport) {
    let (b, n) = (base.median_secs(), new.median_secs());
    if b <= 0.0 {
        return; // degenerate baseline: nothing meaningful to compare
    }
    if n > b * (1.0 + tolerance) {
        report.regressions.push(format!(
            "{}: median {:.4}s -> {:.4}s (+{:.0}%, tolerance {:.0}%)",
            base.name,
            b,
            n,
            100.0 * (n / b - 1.0),
            100.0 * tolerance
        ));
    } else if n < b * (1.0 - tolerance) {
        report.notes.push(format!(
            "{}: median improved {:.4}s -> {:.4}s",
            base.name, b, n
        ));
    }
}

fn diff_alloc(base: &WorkloadRun, new: &WorkloadRun, tolerance: f64, report: &mut DiffReport) {
    let (Some(b), Some(n)) = (&base.alloc, &new.alloc) else {
        // One side recorded without the counting allocator: nothing to
        // hold the other side to.
        return;
    };
    let dims = [
        ("allocs", b.allocs, n.allocs),
        ("bytes_allocated", b.bytes_allocated, n.bytes_allocated),
        ("peak_live_bytes", b.peak_live_bytes, n.peak_live_bytes),
    ];
    for (dim, base_v, new_v) in dims {
        if base_v == 0 {
            continue;
        }
        let ratio = new_v as f64 / base_v as f64;
        if ratio > 1.0 + tolerance {
            report.regressions.push(format!(
                "{}: {dim} {base_v} -> {new_v} (+{:.0}%, tolerance {:.0}%)",
                base.name,
                100.0 * (ratio - 1.0),
                100.0 * tolerance
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{AllocStats, QualityStats, SpanSnapshot};
    use std::collections::BTreeMap;

    fn run(name: &str, secs: f64, selections: u64, allocs: u64) -> WorkloadRun {
        WorkloadRun {
            name: name.to_string(),
            rep_secs: vec![secs],
            counters: BTreeMap::from([
                ("selections".to_string(), selections),
                ("benefits_computed".to_string(), 100),
            ]),
            spans: SpanSnapshot {
                name: "total".into(),
                count: 1,
                total_secs: secs,
                counters: BTreeMap::new(),
                children: Vec::new(),
            },
            alloc: Some(AllocStats {
                allocs,
                bytes_allocated: allocs * 64,
                peak_live_bytes: allocs * 16,
            }),
            quality: Some(QualityStats {
                greedy_cost: 20.0,
                lower_bound: 10.0,
                mean_margin: 0.5,
                rounds: selections,
            }),
        }
    }

    fn with_quality(mut r: WorkloadRun, greedy_cost: f64, lower_bound: f64) -> WorkloadRun {
        r.quality = Some(QualityStats {
            greedy_cost,
            lower_bound,
            mean_margin: 0.5,
            rounds: 7,
        });
        r
    }

    fn snap(runs: Vec<WorkloadRun>) -> Snapshot {
        Snapshot {
            label: "t".into(),
            git_sha: "x".into(),
            rustc: "r".into(),
            reps: 1,
            workloads: runs,
        }
    }

    #[test]
    fn identical_snapshots_diff_clean() {
        let s = snap(vec![run("a", 0.5, 7, 1000)]);
        let report = diff(&s, &s.clone(), &DiffOptions::default());
        assert!(report.ok(), "{}", report.render());
        assert_eq!(report.compared, 1);
    }

    #[test]
    fn counter_change_fails_in_both_directions() {
        let base = snap(vec![run("a", 0.5, 7, 1000)]);
        for changed in [6, 8] {
            let new = snap(vec![run("a", 0.5, changed, 1000)]);
            let report = diff(&base, &new, &DiffOptions::default());
            assert!(!report.ok(), "selections {changed} must fail exact match");
            assert!(report.regressions[0].contains("selections"));
        }
    }

    #[test]
    fn timing_regression_respects_tolerance() {
        let base = snap(vec![run("a", 1.0, 7, 1000)]);
        let opts = DiffOptions {
            tolerance: 0.25,
            counters_only: false,
        };
        assert!(diff(&base, &snap(vec![run("a", 1.2, 7, 1000)]), &opts).ok());
        let slow = diff(&base, &snap(vec![run("a", 1.3, 7, 1000)]), &opts);
        assert!(!slow.ok());
        assert!(slow.regressions[0].contains("median"));
        // Faster is a note, never a failure.
        let fast = diff(&base, &snap(vec![run("a", 0.2, 7, 1000)]), &opts);
        assert!(fast.ok());
        assert!(fast.notes[0].contains("improved"));
    }

    #[test]
    fn counters_only_ignores_time_and_alloc() {
        let base = snap(vec![run("a", 1.0, 7, 1000)]);
        let new = snap(vec![run("a", 99.0, 7, 999_999)]);
        let opts = DiffOptions {
            tolerance: 0.25,
            counters_only: true,
        };
        assert!(diff(&base, &new, &opts).ok());
    }

    #[test]
    fn alloc_growth_fails_shrink_passes() {
        let base = snap(vec![run("a", 1.0, 7, 1000)]);
        let opts = DiffOptions::default();
        assert!(!diff(&base, &snap(vec![run("a", 1.0, 7, 2000)]), &opts).ok());
        assert!(diff(&base, &snap(vec![run("a", 1.0, 7, 500)]), &opts).ok());
    }

    #[test]
    fn missing_workload_and_counter_fail() {
        let base = snap(vec![run("a", 1.0, 7, 1000), run("b", 1.0, 3, 10)]);
        let report = diff(
            &base,
            &snap(vec![run("a", 1.0, 7, 1000)]),
            &DiffOptions::default(),
        );
        assert!(!report.ok());
        assert!(report.regressions[0].contains("missing"));

        let mut shrunk = run("a", 1.0, 7, 1000);
        shrunk.counters.remove("selections");
        let report = diff(
            &snap(vec![run("a", 1.0, 7, 1000)]),
            &snap(vec![shrunk]),
            &DiffOptions::default(),
        );
        assert!(!report.ok());
    }

    #[test]
    fn new_workloads_are_notes_not_failures() {
        let base = snap(vec![run("a", 1.0, 7, 1000)]);
        let new = snap(vec![run("a", 1.0, 7, 1000), run("c", 1.0, 1, 1)]);
        let report = diff(&base, &new, &DiffOptions::default());
        assert!(report.ok());
        assert!(report.notes.iter().any(|n| n.contains("no baseline")));
    }

    #[test]
    fn quality_gate_fails_on_cost_and_ratio_regressions() {
        let base = snap(vec![with_quality(run("a", 1.0, 7, 1000), 20.0, 10.0)]);
        let opts = DiffOptions {
            tolerance: 0.25,
            counters_only: true, // quality stays gated even in CI mode
        };
        // Within tolerance on both dimensions: clean.
        let near = snap(vec![with_quality(run("a", 1.0, 7, 1000), 22.0, 10.0)]);
        assert!(diff(&base, &near, &opts).ok());
        // Greedy cost blew past tolerance.
        let costly = snap(vec![with_quality(run("a", 1.0, 7, 1000), 30.0, 15.0)]);
        let report = diff(&base, &costly, &opts);
        assert!(!report.ok());
        assert!(report.regressions[0].contains("greedy cost"));
        // Bound weakened: same cost, certified ratio 2.0 -> 4.0.
        let loose = snap(vec![with_quality(run("a", 1.0, 7, 1000), 20.0, 5.0)]);
        let report = diff(&base, &loose, &opts);
        assert!(!report.ok());
        assert!(report.regressions[0].contains("certified ratio"));
        // Cheaper is a note, never a failure.
        let better = snap(vec![with_quality(run("a", 1.0, 7, 1000), 10.0, 10.0)]);
        let report = diff(&base, &better, &opts);
        assert!(report.ok(), "{}", report.render());
        assert!(report.notes.iter().any(|n| n.contains("improved")));
    }

    #[test]
    fn uninformative_bound_is_a_regression_missing_quality_is_not() {
        let base = snap(vec![with_quality(run("a", 1.0, 7, 1000), 20.0, 10.0)]);
        // Finite ratio degrading to infinite (LB collapsed to zero) fails.
        let dead = snap(vec![with_quality(run("a", 1.0, 7, 1000), 20.0, 0.0)]);
        let report = diff(&base, &dead, &DiffOptions::default());
        assert!(!report.ok());
        assert!(report.regressions[0].contains("uninformative"));
        // A schema-1 side without quality is tolerated in either direction.
        let mut old = run("a", 1.0, 7, 1000);
        old.quality = None;
        assert!(diff(&snap(vec![old.clone()]), &base, &DiffOptions::default()).ok());
        assert!(diff(&base, &snap(vec![old]), &DiffOptions::default()).ok());
    }

    #[test]
    fn advisory_counters_drift_as_notes_not_regressions() {
        let mut base_run = run("a", 1.0, 7, 1000);
        base_run
            .counters
            .insert("scan_candidates_pruned".to_string(), 900);
        base_run
            .counters
            .insert("scan_bounds_refreshed".to_string(), 40);
        let mut new_run = run("a", 1.0, 7, 1000);
        // t4 run prunes a different subset than t1: values drift, and one
        // advisory key can even go missing (PRUNE=0 records zeros, but an
        // old-schema snapshot may lack the key entirely).
        new_run
            .counters
            .insert("scan_candidates_pruned".to_string(), 123);
        let report = diff(
            &snap(vec![base_run]),
            &snap(vec![new_run]),
            &DiffOptions::default(),
        );
        assert!(report.ok(), "{}", report.render());
        assert!(report
            .notes
            .iter()
            .any(|n| n.contains("advisory counter 'scan_candidates_pruned' 900 -> 123")));
        // But an exact counter drifting by the same amount still fails.
        let mut bad = run("a", 1.0, 9, 1000);
        bad.counters.insert("scan_candidates_pruned".to_string(), 1);
        let report = diff(
            &snap(vec![run("a", 1.0, 7, 1000)]),
            &snap(vec![bad]),
            &DiffOptions::default(),
        );
        assert!(!report.ok());
        assert!(report.regressions[0].contains("selections"));
    }

    #[test]
    fn missing_alloc_on_either_side_is_tolerated() {
        let mut a = run("a", 1.0, 7, 1000);
        a.alloc = None;
        let base = snap(vec![a]);
        let new = snap(vec![run("a", 1.0, 7, 999_999)]);
        assert!(diff(&base, &new, &DiffOptions::default()).ok());
    }
}
