//! The `BENCH_<label>.json` performance-snapshot model (DESIGN.md §10).
//!
//! A snapshot captures one `scwsc_bench record` run: provenance (label,
//! git SHA, rustc version, rep count) plus, per workload, the median
//! wall-clock over the reps, the deterministic work counters from a
//! [`MetricsRecorder`], the aggregated span tree, and — when the counting
//! allocator is installed — allocation statistics. Snapshots committed at
//! the repo root form the performance trajectory that
//! `scwsc_bench diff` compares against.

use crate::json::Json;
use scwsc_core::telemetry::{MetricsRecorder, PruneReason, SpanNode};
use std::collections::BTreeMap;
use std::process::Command;

#[cfg(feature = "alloc-stats")]
use scwsc_core::telemetry::alloc::AllocSnapshot;

/// Allocation statistics of one workload run (deltas over the run, peak
/// re-armed at its start). Mirrors the fields of
/// `telemetry::alloc::AllocSnapshot` but is always available so snapshots
/// recorded with `alloc-stats` parse in builds without it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocStats {
    /// Allocations (including reallocations) during the run.
    pub allocs: u64,
    /// Bytes requested across those allocations.
    pub bytes_allocated: u64,
    /// Peak live bytes during the run.
    pub peak_live_bytes: u64,
}

#[cfg(feature = "alloc-stats")]
impl AllocStats {
    /// Converts a measured allocator delta into snapshot form.
    pub fn from_delta(delta: AllocSnapshot) -> AllocStats {
        AllocStats {
            allocs: delta.allocs,
            bytes_allocated: delta.bytes_allocated,
            peak_live_bytes: delta.peak_live_bytes,
        }
    }
}

/// Certified-quality attribution of one workload run (schema 2): the
/// decision audit's dual-feasible lower bound on the optimal cost,
/// alongside the greedy cost it certifies and the ledger's mean winning
/// margin. Lives *outside* the exact-diff counter map — solution quality
/// compares through its own toleranced gate, and the margin/bound floats
/// would make exact comparison brittle across rustc versions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityStats {
    /// Total charged greedy cost of the final guess.
    pub greedy_cost: f64,
    /// Certified lower bound `LB ≤ optimal cost` (0 when uninformative).
    pub lower_bound: f64,
    /// Mean winning margin over the final guess's rounds.
    pub mean_margin: f64,
    /// Audited selection rounds across all guesses.
    pub rounds: u64,
}

impl QualityStats {
    /// Certified approximation ratio `greedy_cost / LB`: 1 for a free
    /// solution, infinite when the bound is uninformative — which is why
    /// the ratio is derived here instead of being stored (JSON has no
    /// infinity).
    pub fn certified_ratio(&self) -> f64 {
        if self.greedy_cost <= 0.0 {
            1.0
        } else if self.lower_bound <= 0.0 {
            f64::INFINITY
        } else {
            self.greedy_cost / self.lower_bound
        }
    }
}

/// A serializable copy of one aggregated span-tree node.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSnapshot {
    /// Span name (`"total"`, `"expand"`, …).
    pub name: String,
    /// Completions aggregated into this node.
    pub count: u64,
    /// Total wall-clock seconds across completions (children included).
    pub total_secs: f64,
    /// Non-zero counters attributed while this span was innermost.
    pub counters: BTreeMap<String, u64>,
    /// Child spans.
    pub children: Vec<SpanSnapshot>,
}

impl SpanSnapshot {
    /// Copies an aggregated [`SpanNode`] tree into snapshot form.
    pub fn from_node(node: &SpanNode) -> SpanSnapshot {
        SpanSnapshot {
            name: node.name.to_string(),
            count: node.count,
            total_secs: node.total_secs,
            counters: node
                .counters
                .nonzero()
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            children: node.children.iter().map(SpanSnapshot::from_node).collect(),
        }
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("count".into(), Json::from_u64(self.count)),
            ("total_secs".into(), Json::Num(self.total_secs)),
            ("counters".into(), counters_to_json(&self.counters)),
            (
                "children".into(),
                Json::Arr(self.children.iter().map(SpanSnapshot::to_json).collect()),
            ),
        ])
    }

    fn from_json(json: &Json) -> Result<SpanSnapshot, String> {
        Ok(SpanSnapshot {
            name: require_str(json, "name")?.to_string(),
            count: require_u64(json, "count")?,
            total_secs: require_f64(json, "total_secs")?,
            counters: counters_from_json(json.get("counters"))?,
            children: json
                .get("children")
                .and_then(Json::as_arr)
                .unwrap_or(&[])
                .iter()
                .map(SpanSnapshot::from_json)
                .collect::<Result<_, _>>()?,
        })
    }
}

/// One workload's recorded results.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadRun {
    /// Registry name, e.g. `"fig5/cwsc_opt/rows2000"`.
    pub name: String,
    /// Wall-clock seconds of every rep, in run order.
    pub rep_secs: Vec<f64>,
    /// Deterministic work counters (identical across reps by construction;
    /// recorded from the median-defining rep).
    pub counters: BTreeMap<String, u64>,
    /// Aggregated span tree of one rep.
    pub spans: SpanSnapshot,
    /// Allocator statistics of one rep, when the counting allocator was
    /// installed in the recording process.
    pub alloc: Option<AllocStats>,
    /// Certified-quality attribution of the last rep (schema 2; `None`
    /// for snapshots recorded under schema 1).
    pub quality: Option<QualityStats>,
}

impl WorkloadRun {
    /// Median of [`rep_secs`](WorkloadRun::rep_secs) (lower-middle for
    /// even rep counts).
    pub fn median_secs(&self) -> f64 {
        let mut sorted = self.rep_secs.clone();
        sorted.sort_by(f64::total_cmp);
        if sorted.is_empty() {
            return 0.0;
        }
        sorted[(sorted.len() - 1) / 2]
    }

    fn to_json(&self) -> Json {
        let mut entries = vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("median_secs".into(), Json::Num(self.median_secs())),
            (
                "rep_secs".into(),
                Json::Arr(self.rep_secs.iter().map(|&s| Json::Num(s)).collect()),
            ),
            ("counters".into(), counters_to_json(&self.counters)),
            ("spans".into(), self.spans.to_json()),
        ];
        if let Some(alloc) = &self.alloc {
            entries.push((
                "alloc".into(),
                Json::Obj(vec![
                    ("allocs".into(), Json::from_u64(alloc.allocs)),
                    (
                        "bytes_allocated".into(),
                        Json::from_u64(alloc.bytes_allocated),
                    ),
                    (
                        "peak_live_bytes".into(),
                        Json::from_u64(alloc.peak_live_bytes),
                    ),
                ]),
            ));
        }
        if let Some(q) = &self.quality {
            entries.push((
                "quality".into(),
                Json::Obj(vec![
                    ("greedy_cost".into(), Json::Num(q.greedy_cost)),
                    ("lower_bound".into(), Json::Num(q.lower_bound)),
                    ("mean_margin".into(), Json::Num(q.mean_margin)),
                    ("rounds".into(), Json::from_u64(q.rounds)),
                ]),
            ));
        }
        Json::Obj(entries)
    }

    fn from_json(json: &Json) -> Result<WorkloadRun, String> {
        let alloc = match json.get("alloc") {
            None | Some(Json::Null) => None,
            Some(a) => Some(AllocStats {
                allocs: require_u64(a, "allocs")?,
                bytes_allocated: require_u64(a, "bytes_allocated")?,
                peak_live_bytes: require_u64(a, "peak_live_bytes")?,
            }),
        };
        let quality = match json.get("quality") {
            None | Some(Json::Null) => None,
            Some(q) => Some(QualityStats {
                greedy_cost: require_f64(q, "greedy_cost")?,
                lower_bound: require_f64(q, "lower_bound")?,
                mean_margin: require_f64(q, "mean_margin")?,
                rounds: require_u64(q, "rounds")?,
            }),
        };
        Ok(WorkloadRun {
            name: require_str(json, "name")?.to_string(),
            rep_secs: json
                .get("rep_secs")
                .and_then(Json::as_arr)
                .ok_or("workload missing rep_secs")?
                .iter()
                .map(|v| v.as_f64().ok_or_else(|| "non-numeric rep".to_string()))
                .collect::<Result<_, _>>()?,
            counters: counters_from_json(json.get("counters"))?,
            spans: SpanSnapshot::from_json(json.get("spans").ok_or("workload missing spans")?)?,
            alloc,
            quality,
        })
    }
}

/// A complete `BENCH_<label>.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Snapshot label (`seed`, a date, a branch name, …).
    pub label: String,
    /// `git rev-parse HEAD` at record time, or `"unknown"`.
    pub git_sha: String,
    /// `rustc --version` at record time, or `"unknown"`.
    pub rustc: String,
    /// Reps each workload was timed for.
    pub reps: usize,
    /// Per-workload results, in registry order.
    pub workloads: Vec<WorkloadRun>,
}

impl Snapshot {
    /// Serializes to the committed `BENCH_*.json` layout (schema 2:
    /// schema 1 plus the optional per-workload `quality` block).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::from_u64(2)),
            ("label".into(), Json::Str(self.label.clone())),
            ("git_sha".into(), Json::Str(self.git_sha.clone())),
            ("rustc".into(), Json::Str(self.rustc.clone())),
            ("reps".into(), Json::from_u64(self.reps as u64)),
            (
                "workloads".into(),
                Json::Arr(self.workloads.iter().map(WorkloadRun::to_json).collect()),
            ),
        ])
    }

    /// Parses a snapshot document.
    pub fn from_json(json: &Json) -> Result<Snapshot, String> {
        match json.get("schema").and_then(Json::as_u64) {
            // Schema 2 added the optional `quality` block; schema 1
            // documents simply parse with `quality: None`.
            Some(1 | 2) => {}
            other => return Err(format!("unsupported snapshot schema {other:?}")),
        }
        Ok(Snapshot {
            label: require_str(json, "label")?.to_string(),
            git_sha: require_str(json, "git_sha")?.to_string(),
            rustc: require_str(json, "rustc")?.to_string(),
            reps: require_u64(json, "reps")? as usize,
            workloads: json
                .get("workloads")
                .and_then(Json::as_arr)
                .ok_or("snapshot missing workloads")?
                .iter()
                .map(WorkloadRun::from_json)
                .collect::<Result<_, _>>()?,
        })
    }

    /// Parses a snapshot from JSON text.
    pub fn parse(text: &str) -> Result<Snapshot, String> {
        let json = Json::parse(text).map_err(|e| e.to_string())?;
        Snapshot::from_json(&json)
    }

    /// Finds a workload by name.
    pub fn workload(&self, name: &str) -> Option<&WorkloadRun> {
        self.workloads.iter().find(|w| w.name == name)
    }
}

/// Flattens a [`MetricsRecorder`] into the snapshot's deterministic
/// counter map: every counter here is a function of the input and the
/// algorithm alone, so `diff` compares them exactly. Phase timings and
/// histograms stay out — timings belong to the toleranced side, and the
/// histograms are derived from the same events as the counters.
pub fn deterministic_counters(metrics: &MetricsRecorder) -> BTreeMap<String, u64> {
    let mut counters = BTreeMap::new();
    counters.insert("guesses".to_string(), metrics.guesses);
    counters.insert("levels_entered".to_string(), metrics.levels_entered);
    counters.insert("level_allowance".to_string(), metrics.level_allowance);
    counters.insert("selections".to_string(), metrics.selections);
    counters.insert("benefits_computed".to_string(), metrics.benefits_computed);
    counters.insert("heap_stale_pops".to_string(), metrics.heap_stale_pops);
    counters.insert("postings_scanned".to_string(), metrics.postings_scanned);
    for reason in PruneReason::all() {
        counters.insert(
            format!("candidates_pruned_{}", reason.as_str()),
            metrics.candidates_pruned[reason.index()],
        );
        counters.insert(
            format!("subtrees_pruned_{}", reason.as_str()),
            metrics.subtrees_pruned[reason.index()],
        );
    }
    // Pruned-scan advisories are *recorded* so snapshots document how much
    // work the scan skipped, but `diff` never compares them exactly: which
    // candidates get pruned depends on chunk-local champions (thread
    // count) and on `SCWSC_PRUNE`. See `diff::ADVISORY_COUNTERS`.
    counters.insert(
        "scan_candidates_pruned".to_string(),
        metrics.scan_candidates_pruned,
    );
    counters.insert(
        "scan_bounds_refreshed".to_string(),
        metrics.scan_bounds_refreshed,
    );
    counters.insert(
        "scan_sketch_inconclusive".to_string(),
        metrics.scan_sketch_inconclusive,
    );
    counters
}

/// `git rev-parse HEAD` in the current directory, or `"unknown"`.
pub fn git_sha() -> String {
    run_capture("git", &["rev-parse", "HEAD"])
}

/// `rustc --version`, or `"unknown"`.
pub fn rustc_version() -> String {
    run_capture("rustc", &["--version"])
}

fn run_capture(program: &str, args: &[&str]) -> String {
    Command::new(program)
        .args(args)
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn counters_to_json(counters: &BTreeMap<String, u64>) -> Json {
    Json::Obj(
        counters
            .iter()
            .map(|(k, &v)| (k.clone(), Json::from_u64(v)))
            .collect(),
    )
}

fn counters_from_json(json: Option<&Json>) -> Result<BTreeMap<String, u64>, String> {
    let entries = json
        .and_then(Json::as_obj)
        .ok_or("missing counters object")?;
    entries
        .iter()
        .map(|(k, v)| {
            v.as_u64()
                .map(|v| (k.clone(), v))
                .ok_or_else(|| format!("counter '{k}' is not a u64"))
        })
        .collect()
}

fn require_str<'a>(json: &'a Json, key: &str) -> Result<&'a str, String> {
    json.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing string field '{key}'"))
}

fn require_u64(json: &Json, key: &str) -> Result<u64, String> {
    json.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing u64 field '{key}'"))
}

fn require_f64(json: &Json, key: &str) -> Result<f64, String> {
    json.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing number field '{key}'"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut counters = BTreeMap::new();
        counters.insert("selections".to_string(), 7);
        counters.insert("benefits_computed".to_string(), 1234);
        Snapshot {
            label: "seed".into(),
            git_sha: "deadbeef".into(),
            rustc: "rustc 1.95.0".into(),
            reps: 3,
            workloads: vec![WorkloadRun {
                name: "fig5/cwsc_opt/rows1000".into(),
                rep_secs: vec![0.03, 0.01, 0.02],
                counters,
                spans: SpanSnapshot {
                    name: "total".into(),
                    count: 1,
                    total_secs: 0.0199,
                    counters: BTreeMap::from([("selections".to_string(), 7)]),
                    children: vec![SpanSnapshot {
                        name: "select".into(),
                        count: 1,
                        total_secs: 0.015,
                        counters: BTreeMap::new(),
                        children: Vec::new(),
                    }],
                },
                alloc: Some(AllocStats {
                    allocs: 4242,
                    bytes_allocated: 1 << 20,
                    peak_live_bytes: 1 << 18,
                }),
                quality: Some(QualityStats {
                    greedy_cost: 28.0,
                    lower_bound: 14.0,
                    mean_margin: 0.75,
                    rounds: 7,
                }),
            }],
        }
    }

    #[test]
    fn snapshot_round_trips_through_json_text() {
        let snap = sample();
        let text = snap.to_json().to_pretty();
        assert_eq!(Snapshot::parse(&text).unwrap(), snap);
    }

    #[test]
    fn median_is_order_independent() {
        let w = &sample().workloads[0];
        assert_eq!(w.median_secs(), 0.02);
        let even = WorkloadRun {
            rep_secs: vec![4.0, 1.0, 3.0, 2.0],
            ..w.clone()
        };
        assert_eq!(even.median_secs(), 2.0, "lower middle for even counts");
    }

    #[test]
    fn missing_alloc_parses_as_none() {
        let mut snap = sample();
        snap.workloads[0].alloc = None;
        let text = snap.to_json().to_pretty();
        assert_eq!(Snapshot::parse(&text).unwrap().workloads[0].alloc, None);
    }

    #[test]
    fn unknown_schema_is_rejected() {
        let text = sample()
            .to_json()
            .to_pretty()
            .replace("\"schema\": 2", "\"schema\": 99");
        assert!(Snapshot::parse(&text).unwrap_err().contains("schema"));
    }

    #[test]
    fn schema_one_documents_parse_without_quality() {
        let mut snap = sample();
        snap.workloads[0].quality = None;
        let text = snap
            .to_json()
            .to_pretty()
            .replace("\"schema\": 2", "\"schema\": 1");
        let parsed = Snapshot::parse(&text).unwrap();
        assert_eq!(parsed.workloads[0].quality, None);
        assert_eq!(parsed, snap);
    }

    #[test]
    fn quality_round_trips_and_ratio_is_derived() {
        let snap = sample();
        let parsed = Snapshot::parse(&snap.to_json().to_pretty()).unwrap();
        let q = parsed.workloads[0].quality.unwrap();
        assert_eq!(q.certified_ratio(), 2.0);
        // Uninformative bound: the derived ratio is infinite, which is
        // exactly why the ratio never enters the JSON document.
        let free = QualityStats {
            greedy_cost: 1.0,
            lower_bound: 0.0,
            mean_margin: 0.0,
            rounds: 1,
        };
        assert!(free.certified_ratio().is_infinite());
        let zero = QualityStats {
            greedy_cost: 0.0,
            lower_bound: 0.0,
            mean_margin: 0.0,
            rounds: 0,
        };
        assert_eq!(zero.certified_ratio(), 1.0);
    }

    #[test]
    fn audit_counters_stay_out_of_the_exact_diff_set() {
        // `rounds_audited` counts the audit observer's round events; it is
        // derived from the same stream as `selections` and must not widen
        // the pinned exact-diff map.
        let counters = deterministic_counters(&MetricsRecorder::new());
        assert!(
            !counters.contains_key("rounds_audited"),
            "rounds_audited must stay out of the exact-diff set"
        );
    }

    #[test]
    fn deterministic_counters_cover_prune_reasons() {
        let metrics = MetricsRecorder::new();
        let counters = deterministic_counters(&metrics);
        assert!(counters.contains_key("benefits_computed"));
        assert!(counters.contains_key("candidates_pruned_below_floor"));
        assert!(counters.contains_key("subtrees_pruned_cost_bound"));
        // 7 scalar counters + per-reason prune counters + the 3 recorded
        // (advisory-only) pruned-scan counters.
        assert_eq!(counters.len(), 7 + 2 * PruneReason::all().len() + 3);
    }

    #[test]
    fn pruned_scan_advisories_are_recorded_but_advisory_in_diff() {
        // The scan advisories are a function of thread count and
        // SCWSC_PRUNE, not of the algorithm: they are recorded for
        // documentation but every one of them must be on the diff's
        // advisory skip list, or the t1-vs-t4 and PRUNE=0-vs-1 gates
        // would spuriously fail.
        let counters = deterministic_counters(&MetricsRecorder::new());
        for advisory in crate::diff::ADVISORY_COUNTERS {
            assert!(
                counters.contains_key(*advisory),
                "{advisory} should be recorded in snapshots"
            );
        }
    }

    #[test]
    fn resilience_counters_stay_out_of_the_exact_diff_set() {
        // Speculation and fault-recovery bookkeeping depends on thread
        // count and timing, so it must never enter the exactly-compared
        // counter map or the BENCH gate would flake across machines.
        let counters = deterministic_counters(&MetricsRecorder::new());
        for volatile in ["guesses_retried", "guesses_committed", "guesses_wasted"] {
            assert!(
                !counters.contains_key(volatile),
                "{volatile} must stay out of the exact-diff set"
            );
        }
    }

    #[test]
    fn trace_counters_stay_out_of_the_exact_diff_set() {
        // Trace mints and worker switches count observer plumbing, not
        // algorithmic work: switches vary with shard occupancy and mints
        // with how callers nest entry points, so pinning them into the
        // exact-diff map would turn refactors into spurious regressions.
        let counters = deterministic_counters(&MetricsRecorder::new());
        for volatile in ["traces_started", "worker_switches"] {
            assert!(
                !counters.contains_key(volatile),
                "{volatile} must stay out of the exact-diff set"
            );
        }
    }

    #[test]
    fn telemetry_window_counters_stay_out_of_the_exact_diff_set() {
        // The liveness watchdog fires on wall-clock stalls and the
        // sliding windows roll over with serving cadence — continuous-
        // operation telemetry, not algorithmic work. Pinning any of it
        // into the exact-diff map would make the BENCH gate depend on
        // machine speed and soak history.
        let counters = deterministic_counters(&MetricsRecorder::new());
        for volatile in [
            "stalls_detected",
            "window_rollovers",
            "window_solves",
            "soak_iterations",
        ] {
            assert!(
                !counters.contains_key(volatile),
                "{volatile} must stay out of the exact-diff set"
            );
        }
    }

    #[test]
    fn span_snapshot_copies_node_tree() {
        let mut profiler = scwsc_core::SpanProfiler::new();
        use scwsc_core::Observer as _;
        profiler.phase_started("total");
        profiler.benefit_computed(5);
        profiler.phase_ended("total", 0.5);
        let snap = SpanSnapshot::from_node(&profiler.tree());
        assert_eq!(snap.name, "total");
        assert_eq!(snap.count, 1);
        assert_eq!(snap.counters.get("benefits"), Some(&5));
    }
}
