//! Turns experiment results into the paper's figure/table layouts.

use crate::experiments::{GridRow, OptRow, PerturbRow};
use crate::measure::{Algo, Measurement};
use crate::report::{num, secs, TextTable};

/// Pivots measurements into `key × algorithm` cells.
///
/// `key` extracts the x-axis value (data size, #attrs, k, ŝ); `value`
/// extracts the plotted quantity (seconds, patterns considered). Rows are
/// emitted in first-seen key order; columns follow [`Algo::ALL`].
pub fn pivot(
    ms: &[Measurement],
    key_name: &str,
    key: impl Fn(&Measurement) -> String,
    value: impl Fn(&Measurement) -> String,
) -> TextTable {
    let mut keys: Vec<String> = Vec::new();
    for m in ms {
        let k = key(m);
        if !keys.contains(&k) {
            keys.push(k);
        }
    }
    let mut header = vec![key_name.to_owned()];
    header.extend(Algo::ALL.iter().map(|a| a.name().to_owned()));
    let mut table = TextTable::new(header);
    for k in keys {
        let mut row = vec![k.clone()];
        for algo in Algo::ALL {
            let cell = ms
                .iter()
                .find(|m| m.algo == algo && key(m) == k)
                .map_or_else(|| "-".to_owned(), &value);
            row.push(cell);
        }
        table.row(row);
    }
    table
}

/// Figure 5: running time (seconds) vs data size.
pub fn fig5(ms: &[Measurement]) -> TextTable {
    pivot(ms, "rows", |m| m.rows.to_string(), |m| secs(m.seconds))
}

/// Figure 6: patterns considered vs data size.
pub fn fig6(ms: &[Measurement]) -> TextTable {
    pivot(
        ms,
        "rows",
        |m| m.rows.to_string(),
        |m| m.considered.to_string(),
    )
}

/// Figure 7: running time vs number of pattern attributes.
pub fn fig7(ms: &[Measurement]) -> TextTable {
    pivot(ms, "attrs", |m| m.attrs.to_string(), |m| secs(m.seconds))
}

/// Figure 8: running time vs the size bound `k`.
pub fn fig8(ms: &[Measurement]) -> TextTable {
    pivot(ms, "k", |m| m.k.to_string(), |m| secs(m.seconds))
}

/// Figure 9: running time vs coverage fraction.
pub fn fig9(ms: &[Measurement]) -> TextTable {
    pivot(ms, "coverage", |m| num(m.coverage), |m| secs(m.seconds))
}

/// Tables IV/V: the `(algorithm config) × coverage` grid; `value` picks
/// cost (Table IV) or seconds (Table V).
pub fn grid(
    rows: &[GridRow],
    coverages: &[f64],
    value: impl Fn(&Measurement) -> String,
) -> TextTable {
    let mut header = vec!["Algorithm".to_owned()];
    header.extend(coverages.iter().map(|&s| format!("s={}", num(s))));
    let mut table = TextTable::new(header);
    for row in rows {
        let mut cells = vec![row.label.clone()];
        cells.extend(row.cells.iter().map(&value));
        table.row(cells);
    }
    table
}

/// Table VI: `(coverage, #patterns, cost)` of the weighted-set-cover
/// baseline.
pub fn table6(rows: &[(f64, usize, f64)]) -> TextTable {
    let mut t = TextTable::new(["coverage fraction", "number of patterns", "total cost"]);
    for &(s, size, cost) in rows {
        t.row([num(s), size.to_string(), num(cost)]);
    }
    t
}

/// Section VI-C comparison rows.
pub fn maxcov(rows: &[(f64, f64, usize, f64)]) -> TextTable {
    let mut t = TextTable::new([
        "coverage",
        "max-coverage cost",
        "max-coverage size",
        "CWSC cost",
    ]);
    for &(s, mc_cost, mc_size, cwsc_cost) in rows {
        t.row([num(s), num(mc_cost), mc_size.to_string(), num(cwsc_cost)]);
    }
    t
}

/// Section VI-B perturbation rows.
pub fn perturb(rows: &[PerturbRow]) -> TextTable {
    let mut t = TextTable::new(["weights", "CWSC cost", "CMC min cost", "CMC max cost"]);
    for r in rows {
        t.row([
            r.label.clone(),
            num(r.cwsc_cost),
            num(r.cmc_min),
            num(r.cmc_max),
        ]);
    }
    t
}

/// Section VI-D optimality rows.
pub fn vs_optimal(rows: &[OptRow]) -> TextTable {
    let mut t = TextTable::new([
        "rows",
        "target",
        "certified LB",
        "optimal cost",
        "CWSC cost",
        "certified ratio",
        "CMC cost",
        "CMC covered",
    ]);
    for r in rows {
        t.row([
            r.rows.to_string(),
            r.target.to_string(),
            num(r.lower_bound),
            num(r.optimal),
            num(r.cwsc),
            if r.certified.is_finite() {
                num(r.certified)
            } else {
                "inf".to_string()
            },
            num(r.cmc),
            r.cmc_covered.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(algo: Algo, rows: usize, seconds: f64) -> Measurement {
        Measurement {
            algo,
            rows,
            attrs: 5,
            k: 10,
            coverage: 0.3,
            seconds,
            considered: 100,
            guesses: 1,
            cost: 1.0,
            size: 2,
            covered: 10,
            ok: true,
        }
    }

    #[test]
    fn pivot_groups_by_key_and_algo() {
        let ms = vec![
            m(Algo::CmcUnopt, 100, 1.0),
            m(Algo::CwscOpt, 100, 0.2),
            m(Algo::CmcUnopt, 200, 2.0),
        ];
        let t = fig5(&ms);
        let text = t.render();
        assert!(text.contains("rows"));
        assert_eq!(t.len(), 2);
        assert!(text.contains("1.000"));
        assert!(text.contains("-"), "missing cells rendered as dash");
    }

    #[test]
    fn fig6_uses_considered() {
        let ms = vec![m(Algo::CwscOpt, 100, 0.2)];
        assert!(fig6(&ms).render().contains("100"));
    }

    #[test]
    fn grid_layout_uses_coverage_headers() {
        use crate::experiments::GridRow;
        let rows = vec![GridRow {
            label: "CWSC".to_owned(),
            cells: vec![m(Algo::CwscOpt, 100, 0.5)],
        }];
        let t = grid(&rows, &[0.3], |c| crate::report::num(c.cost));
        let text = t.render();
        assert!(text.contains("s=0.30"), "{text}");
        assert!(text.contains("CWSC"), "{text}");
    }

    #[test]
    fn vs_optimal_layout() {
        use crate::experiments::OptRow;
        let t = vs_optimal(&[OptRow {
            rows: 30,
            optimal: 10.0,
            cwsc: 11.0,
            cmc: 9.5,
            cmc_covered: 15,
            target: 15,
            lower_bound: 8.0,
            certified: 11.0 / 8.0,
        }]);
        let text = t.render();
        assert!(text.contains("optimal cost"), "{text}");
        assert!(text.contains("certified LB"), "{text}");
        assert!(text.contains("9.50"), "{text}");
    }

    #[test]
    fn perturb_layout() {
        use crate::experiments::PerturbRow;
        let t = perturb(&[PerturbRow {
            label: "uniform delta=0.5".to_owned(),
            cwsc_cost: 10.0,
            cmc_min: 11.0,
            cmc_max: 14.0,
        }]);
        assert!(t.render().contains("uniform delta=0.5"));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn table6_layout() {
        let t = table6(&[(0.5, 15, 120.0), (0.9, 58, 300.0)]);
        let text = t.render();
        assert!(text.contains("number of patterns"));
        assert!(text.contains("58"));
    }
}
