//! The named workload registry behind `scwsc_bench record`.
//!
//! Each workload is a fully deterministic (generator, algorithm,
//! parameters) triple shaped like one point of the paper's evaluation:
//! Figure 5's row scaling, the unoptimized/optimized pairing of Figure 6,
//! Figure 8's `k` sweep, Figure 9's coverage sweep, plus two
//! skewed-domain workloads where lattice pruning dominates. Determinism
//! is what makes the snapshot counters exact-diff material: the same
//! binary on the same workload always does the same work.

use crate::measure::{Algo, RunParams};
use scwsc_data::lbl::LblConfig;
use scwsc_patterns::{test_util, Table};

/// Deterministic input generator of one workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadGen {
    /// The LBL-CONN-7-like synthetic trace (DESIGN.md §4), scaled down.
    Lbl {
        /// Connection records to generate.
        rows: usize,
        /// RNG seed.
        seed: u64,
    },
    /// The dense skewed-domain table from `scwsc_patterns::test_util`
    /// (the Figure 6 pruning regime).
    Skewed {
        /// Rows to generate.
        rows: usize,
        /// Pattern attributes.
        attrs: usize,
        /// Active-domain cardinality per attribute.
        cardinality: u64,
    },
}

impl WorkloadGen {
    /// Materializes the input table.
    pub fn table(&self) -> Table {
        match *self {
            WorkloadGen::Lbl { rows, seed } => LblConfig {
                rows,
                seed,
                local_hosts: 20,
                remote_hosts: 30,
                ..LblConfig::default()
            }
            .generate(),
            WorkloadGen::Skewed {
                rows,
                attrs,
                cardinality,
            } => test_util::skewed_table(rows, attrs, cardinality),
        }
    }
}

/// One registered workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Stable name, also the key `diff` matches on.
    pub name: String,
    /// Algorithm variant to run.
    pub algo: Algo,
    /// Solver parameters.
    pub params: RunParams,
    /// Input generator.
    pub gen: WorkloadGen,
}

fn lbl(rows: usize) -> WorkloadGen {
    WorkloadGen::Lbl {
        rows,
        seed: 0x1cde_2015,
    }
}

fn workload(name: &str, algo: Algo, params: RunParams, gen: WorkloadGen) -> Workload {
    Workload {
        name: name.to_string(),
        algo,
        params,
        gen,
    }
}

/// The full registry (the `record` default): 14 paper-shaped workloads.
pub fn full_suite() -> Vec<Workload> {
    let defaults = RunParams::default();
    let mut suite = Vec::new();
    // Figure 5 regime: runtime vs. input size for the optimized variants.
    for rows in [1000, 2000, 4000] {
        for algo in [Algo::CmcOpt, Algo::CwscOpt] {
            let tag = if algo == Algo::CmcOpt {
                "cmc_opt"
            } else {
                "cwsc_opt"
            };
            suite.push(workload(
                &format!("fig5/{tag}/rows{rows}"),
                algo,
                defaults,
                lbl(rows),
            ));
        }
    }
    // Figure 6 pairing: the unoptimized full-cube variants at one size.
    suite.push(workload(
        "fig6/cmc_unopt/rows1000",
        Algo::CmcUnopt,
        defaults,
        lbl(1000),
    ));
    suite.push(workload(
        "fig6/cwsc_unopt/rows1000",
        Algo::CwscUnopt,
        defaults,
        lbl(1000),
    ));
    // Figure 8 regime: the size bound k.
    for k in [5, 20] {
        suite.push(workload(
            &format!("fig8/cwsc_opt/k{k}"),
            Algo::CwscOpt,
            RunParams { k, ..defaults },
            lbl(2000),
        ));
    }
    // Figure 9 regime: the coverage fraction ŝ.
    for coverage in [0.5, 0.7] {
        suite.push(workload(
            &format!("fig9/cwsc_opt/cov{:02}", (coverage * 100.0) as u32),
            Algo::CwscOpt,
            RunParams {
                coverage,
                ..defaults
            },
            lbl(2000),
        ));
    }
    // Dense skewed domains: the regime where subtree pruning dominates.
    let skew = WorkloadGen::Skewed {
        rows: 800,
        attrs: 4,
        cardinality: 6,
    };
    suite.push(workload("skewed/cwsc_opt", Algo::CwscOpt, defaults, skew));
    suite.push(workload("skewed/cmc_opt", Algo::CmcOpt, defaults, skew));
    suite
}

/// A two-workload suite small enough for debug-build end-to-end tests.
pub fn smoke_suite() -> Vec<Workload> {
    let params = RunParams {
        k: 5,
        ..RunParams::default()
    };
    vec![
        workload("smoke/cwsc_opt", Algo::CwscOpt, params, lbl(300)),
        workload("smoke/cmc_opt", Algo::CmcOpt, params, lbl(300)),
    ]
}

/// Looks up a suite by name (`"full"` or `"smoke"`).
pub fn suite(name: &str) -> Option<Vec<Workload>> {
    match name {
        "full" => Some(full_suite()),
        "smoke" => Some(smoke_suite()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::run;

    #[test]
    fn full_suite_names_are_unique_and_stable() {
        let suite = full_suite();
        assert_eq!(suite.len(), 14);
        let mut names: Vec<&str> = suite.iter().map(|w| w.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), suite.len(), "duplicate workload names");
        assert!(suite.iter().any(|w| w.name == "fig5/cmc_opt/rows1000"));
        assert!(suite.iter().any(|w| w.name == "fig9/cwsc_opt/cov70"));
    }

    #[test]
    fn generators_are_deterministic() {
        for w in smoke_suite() {
            let a = w.gen.table();
            let b = w.gen.table();
            assert_eq!(a.num_rows(), b.num_rows());
            let ra = run(w.algo, &a, &w.params);
            let rb = run(w.algo, &b, &w.params);
            assert_eq!(ra.considered, rb.considered, "{}", w.name);
            assert_eq!(ra.cost.to_bits(), rb.cost.to_bits(), "{}", w.name);
        }
    }

    #[test]
    fn smoke_workloads_solve() {
        for w in smoke_suite() {
            let m = run(w.algo, &w.gen.table(), &w.params);
            assert!(m.ok, "{} failed to solve", w.name);
        }
    }

    #[test]
    fn unknown_suite_is_none() {
        assert!(suite("full").is_some());
        assert!(suite("smoke").is_some());
        assert!(suite("nope").is_none());
    }
}
