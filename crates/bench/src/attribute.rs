//! Regression attribution: the `scwsc_bench diff --attribute` semantics
//! (DESIGN.md §13).
//!
//! A failed (or merely suspicious) diff says *that* a workload moved;
//! attribution says *where*. It aligns the two snapshots' aggregated span
//! trees by path, computes each node's **self time** (total minus
//! children, the time actually spent in that span's own code), and ranks
//! the movers by absolute self-time delta. Deterministic counters are
//! ranked the same way by absolute delta, so a counter regression points
//! at the responsible event stream, not just the workload.

use crate::snapshot::{Snapshot, SpanSnapshot, WorkloadRun};

/// One span whose self time moved between the snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanMover {
    /// Workload the span belongs to.
    pub workload: String,
    /// Slash-joined span path from the root, e.g. `"total/guess/scan"`.
    pub path: String,
    /// Self seconds in the baseline (0.0 when the span is new).
    pub base_self_secs: f64,
    /// Self seconds in the new snapshot (0.0 when the span vanished).
    pub new_self_secs: f64,
    /// Whether the span exists in the baseline tree at all.
    pub in_base: bool,
    /// Whether the span exists in the new tree at all.
    pub in_new: bool,
}

impl SpanMover {
    /// Signed self-time change, new minus base.
    pub fn delta(&self) -> f64 {
        self.new_self_secs - self.base_self_secs
    }

    /// How the before/after column renders. A span present on only one
    /// side (a feature toggled on, like `scan_prune` under `SCWSC_PRUNE`)
    /// is labelled rather than "diffed" against a zero that was never
    /// measured — `0.0000s -> 0.0031s` reads as a regression when it is
    /// really a new instrument.
    fn side_label(&self) -> String {
        match (self.in_base, self.in_new) {
            (true, true) => format!("{:.4}s -> {:.4}s", self.base_self_secs, self.new_self_secs),
            (false, true) => format!("new span: {:.4}s", self.new_self_secs),
            (true, false) => format!("vanished: was {:.4}s", self.base_self_secs),
            (false, false) => unreachable!("mover from a span on neither side"),
        }
    }
}

/// One deterministic counter whose value moved between the snapshots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterMover {
    /// Workload the counter belongs to.
    pub workload: String,
    /// Counter key, e.g. `"benefits_computed"`.
    pub key: String,
    /// Baseline value (0 when the counter is new).
    pub base: u64,
    /// New value (0 when the counter vanished).
    pub new: u64,
}

impl CounterMover {
    /// Signed counter change, new minus base.
    pub fn delta(&self) -> i64 {
        self.new as i64 - self.base as i64
    }
}

/// The ranked movers of one attribution run.
#[derive(Debug, Clone, Default)]
pub struct Attribution {
    /// Span movers, largest `|delta|` first.
    pub spans: Vec<SpanMover>,
    /// Counter movers, largest `|delta|` first.
    pub counters: Vec<CounterMover>,
}

impl Attribution {
    /// Renders the ranked movers table, `top` rows per section.
    pub fn render(&self, top: usize) -> String {
        let mut out = String::new();
        out.push_str("span self-time movers (new - base):\n");
        if self.spans.is_empty() {
            out.push_str("  (none)\n");
        }
        for m in self.spans.iter().take(top) {
            out.push_str(&format!(
                "  {:+10.4}s  {}  {}  {}\n",
                m.delta(),
                m.side_label(),
                m.workload,
                m.path
            ));
        }
        out.push_str("counter movers (new - base):\n");
        if self.counters.is_empty() {
            out.push_str("  (none)\n");
        }
        for m in self.counters.iter().take(top) {
            out.push_str(&format!(
                "  {:+12}  {} -> {}  {}  {}\n",
                m.delta(),
                m.base,
                m.new,
                m.workload,
                m.key
            ));
        }
        out
    }
}

/// Walks both snapshots and ranks every span and counter mover.
///
/// Workloads missing from either side are skipped (the plain diff already
/// reports those); spans or counters present on only one side attribute
/// against zero, so a brand-new hot span still tops the table.
pub fn attribute(base: &Snapshot, new: &Snapshot) -> Attribution {
    let mut result = Attribution::default();
    for base_run in &base.workloads {
        let Some(new_run) = new.workload(&base_run.name) else {
            continue;
        };
        collect_span_movers(base_run, new_run, &mut result.spans);
        collect_counter_movers(base_run, new_run, &mut result.counters);
    }
    result
        .spans
        .sort_by(|a, b| b.delta().abs().total_cmp(&a.delta().abs()));
    result.counters.sort_by(|a, b| {
        b.delta()
            .abs()
            .cmp(&a.delta().abs())
            .then_with(|| a.key.cmp(&b.key))
    });
    result
}

/// Self time of one aggregated node: total minus children, floored at
/// zero (clock skew between a parent and its children can go negative).
fn self_secs(node: &SpanSnapshot) -> f64 {
    let children: f64 = node.children.iter().map(|c| c.total_secs).sum();
    (node.total_secs - children).max(0.0)
}

fn collect_span_movers(base: &WorkloadRun, new: &WorkloadRun, out: &mut Vec<SpanMover>) {
    walk_pair(
        &base.name,
        Some(&base.spans),
        Some(&new.spans),
        &base.spans.name.clone(),
        out,
    );
}

/// Recursively aligns two span trees by child name. `path` is the
/// slash-joined path of the node pair being visited.
fn walk_pair(
    workload: &str,
    base: Option<&SpanSnapshot>,
    new: Option<&SpanSnapshot>,
    path: &str,
    out: &mut Vec<SpanMover>,
) {
    let base_self = base.map(self_secs).unwrap_or(0.0);
    let new_self = new.map(self_secs).unwrap_or(0.0);
    // Sub-picosecond "movement" is rounding noise from the total-minus-
    // children subtraction, not a real mover.
    if (base_self - new_self).abs() > 1e-12 {
        out.push(SpanMover {
            workload: workload.to_string(),
            path: path.to_string(),
            base_self_secs: base_self,
            new_self_secs: new_self,
            in_base: base.is_some(),
            in_new: new.is_some(),
        });
    }
    // Visit the union of child names, preserving base-side order and
    // appending new-only children after.
    let mut names: Vec<&str> = Vec::new();
    for side in [base, new] {
        for child in side.map(|n| n.children.as_slice()).unwrap_or(&[]) {
            if !names.contains(&child.name.as_str()) {
                names.push(&child.name);
            }
        }
    }
    for name in names {
        let child_path = format!("{path}/{name}");
        walk_pair(
            workload,
            child(base, name),
            child(new, name),
            &child_path,
            out,
        );
    }
}

fn child<'a>(node: Option<&'a SpanSnapshot>, name: &str) -> Option<&'a SpanSnapshot> {
    node.and_then(|n| n.children.iter().find(|c| c.name == name))
}

fn collect_counter_movers(base: &WorkloadRun, new: &WorkloadRun, out: &mut Vec<CounterMover>) {
    let mut keys: Vec<&String> = base.counters.keys().collect();
    for key in new.counters.keys() {
        if !base.counters.contains_key(key) {
            keys.push(key);
        }
    }
    for key in keys {
        let base_v = base.counters.get(key).copied().unwrap_or(0);
        let new_v = new.counters.get(key).copied().unwrap_or(0);
        if base_v != new_v {
            out.push(CounterMover {
                workload: base.name.clone(),
                key: key.clone(),
                base: base_v,
                new: new_v,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn span(name: &str, total: f64, children: Vec<SpanSnapshot>) -> SpanSnapshot {
        SpanSnapshot {
            name: name.to_string(),
            count: 1,
            total_secs: total,
            counters: BTreeMap::new(),
            children,
        }
    }

    fn snap(spans: SpanSnapshot, counters: BTreeMap<String, u64>) -> Snapshot {
        Snapshot {
            label: "t".into(),
            git_sha: "x".into(),
            rustc: "r".into(),
            reps: 1,
            workloads: vec![WorkloadRun {
                name: "w".into(),
                rep_secs: vec![spans.total_secs],
                counters,
                spans,
                alloc: None,
                quality: None,
            }],
        }
    }

    fn base_tree() -> SpanSnapshot {
        span(
            "total",
            1.0,
            vec![span("guess", 0.6, vec![span("scan", 0.5, vec![])])],
        )
    }

    #[test]
    fn perturbed_span_is_the_top_mover() {
        // Inflate scan by 0.4s: scan self goes 0.5 -> 0.9, and guess/total
        // self times are unchanged (their child totals grow in lockstep).
        let perturbed = span(
            "total",
            1.4,
            vec![span("guess", 1.0, vec![span("scan", 0.9, vec![])])],
        );
        let base = snap(base_tree(), BTreeMap::new());
        let new = snap(perturbed, BTreeMap::new());
        let attr = attribute(&base, &new);
        assert_eq!(attr.spans[0].path, "total/guess/scan");
        assert!((attr.spans[0].delta() - 0.4).abs() < 1e-12);
        assert!(
            attr.spans.iter().all(|m| m.path == "total/guess/scan"),
            "only the perturbed span moved: {:?}",
            attr.spans
        );
    }

    #[test]
    fn new_and_vanished_spans_attribute_against_zero() {
        let base = snap(base_tree(), BTreeMap::new());
        let new = snap(
            span("total", 1.0, vec![span("select", 0.6, vec![])]),
            BTreeMap::new(),
        );
        let attr = attribute(&base, &new);
        let paths: Vec<&str> = attr.spans.iter().map(|m| m.path.as_str()).collect();
        assert!(paths.contains(&"total/guess"), "vanished span reported");
        assert!(paths.contains(&"total/select"), "new span reported");
        let select = attr
            .spans
            .iter()
            .find(|m| m.path == "total/select")
            .unwrap();
        assert_eq!(select.base_self_secs, 0.0);
        assert_eq!(select.new_self_secs, 0.6);
        assert!(!select.in_base && select.in_new);
    }

    #[test]
    fn one_sided_scan_prune_span_renders_as_new_not_as_regression() {
        // Golden render: turning SCWSC_PRUNE on makes scan_prune spans
        // appear where the baseline (recorded with pruning off) has none.
        // The mover must read "new span", never "0.0000s -> ...".
        let base = snap(base_tree(), BTreeMap::new());
        let pruned = span(
            "total",
            1.0,
            vec![span(
                "guess",
                0.6,
                vec![span("scan", 0.4, vec![]), span("scan_prune", 0.1, vec![])],
            )],
        );
        let new = snap(pruned, BTreeMap::new());
        let text = attribute(&base, &new).render(10);
        assert!(
            text.contains("new span: 0.1000s  w  total/guess/scan_prune"),
            "one-sided span labelled as new:\n{text}"
        );
        assert!(
            !text.contains("0.0000s -> 0.1000s"),
            "must not diff a never-measured side against zero:\n{text}"
        );
        // And the reverse direction (baseline had it, new does not).
        let text = attribute(&new, &base).render(10);
        assert!(
            text.contains("vanished: was 0.1000s  w  total/guess/scan_prune"),
            "one-sided span labelled as vanished:\n{text}"
        );
        // Both-sided movers keep the arrow format the CI golden greps for.
        let slower = snap(
            span(
                "total",
                2.0,
                vec![span("guess", 0.6, vec![span("scan", 0.5, vec![])])],
            ),
            BTreeMap::new(),
        );
        let text = attribute(&snap(base_tree(), BTreeMap::new()), &slower).render(10);
        assert!(
            text.contains("0.4000s -> 1.4000s  w  total"),
            "two-sided movers keep the arrow format:\n{text}"
        );
    }

    #[test]
    fn counter_movers_rank_by_absolute_delta() {
        let base = snap(
            base_tree(),
            BTreeMap::from([("selections".to_string(), 10), ("scans".to_string(), 100)]),
        );
        let new = snap(
            base_tree(),
            BTreeMap::from([("selections".to_string(), 12), ("scans".to_string(), 40)]),
        );
        let attr = attribute(&base, &new);
        assert_eq!(attr.counters[0].key, "scans");
        assert_eq!(attr.counters[0].delta(), -60);
        assert_eq!(attr.counters[1].key, "selections");
        assert_eq!(attr.counters[1].delta(), 2);
        assert!(attr.spans.is_empty(), "identical trees produce no movers");
    }

    #[test]
    fn render_lists_movers_and_handles_empty() {
        let base = snap(base_tree(), BTreeMap::from([("selections".to_string(), 1)]));
        let mut new = base.clone();
        new.workloads[0]
            .counters
            .insert("selections".to_string(), 5);
        let text = attribute(&base, &new).render(10);
        assert!(text.contains("selections"));
        assert!(text.contains("1 -> 5"));
        let clean = attribute(&base, &base.clone()).render(10);
        assert!(clean.contains("(none)"));
    }
}
