//! One function per figure/table of the paper's Section VI.
//!
//! Each returns structured results; the `src/bin/*` wrappers print them as
//! the same rows/series the paper reports. Absolute numbers differ from
//! the paper's 2015 C++/Opteron setup; the *shapes* (who wins, how curves
//! grow) are what EXPERIMENTS.md records.

use crate::measure::{run, Algo, Measurement, RunParams};
use scwsc_core::algorithms::{
    cmc, cwsc, exact_optimal_with_target, greedy_partial_max_coverage, greedy_weighted_set_cover,
};
use scwsc_core::telemetry::audit::{self, DecisionLedger};
use scwsc_core::{coverage_target, Stats};
use scwsc_data::lbl::LblConfig;
use scwsc_data::perturb::{lognormal_rerank, uniform_noise};
use scwsc_patterns::{enumerate_all, opt_cmc, opt_cwsc, CostFn, PatternSpace, Table};

/// Builds the standard synthetic LBL-like workload for a given size.
pub fn workload(rows: usize, seed: u64) -> Table {
    LblConfig {
        seed,
        ..LblConfig::scaled(rows)
    }
    .generate()
}

/// Figures 5 & 6: all four algorithms across data sizes. Returns one
/// [`Measurement`] per `(size, algorithm)`; the binaries print seconds
/// (Fig. 5) and patterns considered (Fig. 6) from the same data.
pub fn scaling(sizes: &[usize], seed: u64, params: &RunParams) -> Vec<Measurement> {
    let mut out = Vec::with_capacity(sizes.len() * 4);
    for &rows in sizes {
        let table = workload(rows, seed);
        for algo in Algo::ALL {
            out.push(run(algo, &table, params));
        }
    }
    out
}

/// Figure 7: running time vs number of pattern attributes (the paper
/// removes one attribute at a time from the 5-attribute LBL schema).
pub fn attrs_scaling(rows: usize, seed: u64, params: &RunParams) -> Vec<Measurement> {
    let table = workload(rows, seed);
    let mut out = Vec::new();
    for attrs in 1..=table.num_attrs() {
        let keep: Vec<usize> = (0..attrs).collect();
        let projected = table.project(&keep).expect("attribute ids in range");
        for algo in Algo::ALL {
            out.push(run(algo, &projected, params));
        }
    }
    out
}

/// Figure 8: running time vs the size bound `k`.
pub fn k_scaling(rows: usize, seed: u64, ks: &[usize], base: &RunParams) -> Vec<Measurement> {
    let table = workload(rows, seed);
    let mut out = Vec::new();
    for &k in ks {
        let params = RunParams { k, ..*base };
        for algo in Algo::ALL {
            out.push(run(algo, &table, &params));
        }
    }
    out
}

/// Figure 9: running time vs the coverage fraction `ŝ`.
pub fn coverage_scaling(
    rows: usize,
    seed: u64,
    coverages: &[f64],
    base: &RunParams,
) -> Vec<Measurement> {
    let table = workload(rows, seed);
    let mut out = Vec::new();
    for &coverage in coverages {
        let params = RunParams { coverage, ..*base };
        for algo in Algo::ALL {
            out.push(run(algo, &table, &params));
        }
    }
    out
}

/// One row of Tables IV–V: an algorithm configuration across coverages.
#[derive(Debug, Clone)]
pub struct GridRow {
    /// Paper-style label, e.g. `CMC (b=1/2, eps=1)`.
    pub label: String,
    /// One measurement per requested coverage fraction.
    pub cells: Vec<Measurement>,
}

/// Tables IV & V: CWSC vs CMC over the `(b, ε)` grid, for each coverage
/// fraction. Table IV reads the `cost` field, Table V the `seconds` field
/// (runs are sequential so the timings are clean).
pub fn quality_grid(table: &Table, coverages: &[f64], k: usize) -> Vec<GridRow> {
    let grid: [(f64, f64); 6] = [
        (0.5, 1.0),
        (0.5, 2.0),
        (1.0, 1.0),
        (1.0, 2.0),
        (2.0, 1.0),
        (2.0, 2.0),
    ];
    let mut rows = Vec::with_capacity(1 + grid.len());

    let cwsc_cells: Vec<Measurement> = coverages
        .iter()
        .map(|&coverage| {
            run(
                Algo::CwscOpt,
                table,
                &RunParams {
                    k,
                    coverage,
                    ..RunParams::default()
                },
            )
        })
        .collect();
    rows.push(GridRow {
        label: "CWSC".to_owned(),
        cells: cwsc_cells,
    });

    for (b, eps) in grid {
        let cells: Vec<Measurement> = coverages
            .iter()
            .map(|&coverage| {
                run(
                    Algo::CmcOpt,
                    table,
                    &RunParams {
                        k,
                        coverage,
                        b,
                        eps,
                        ..RunParams::default()
                    },
                )
            })
            .collect();
        let b_label = if b == 0.5 {
            "1/2".to_owned()
        } else {
            crate::report::num(b)
        };
        rows.push(GridRow {
            label: format!("CMC (b={b_label}, eps={})", crate::report::num(eps)),
            cells,
        });
    }
    rows
}

/// Table VI: patterns needed by plain greedy partial *weighted set cover*
/// (no size bound) per coverage fraction. Returns `(ŝ, #patterns, cost)`.
pub fn wsc_baseline(table: &Table, coverages: &[f64], cost_fn: CostFn) -> Vec<(f64, usize, f64)> {
    let m = enumerate_all(table, cost_fn);
    coverages
        .iter()
        .map(|&s| {
            let sol = greedy_weighted_set_cover(&m.system, s, &mut Stats::new())
                .expect("universe pattern guarantees feasibility");
            (s, sol.size(), sol.total_cost().value())
        })
        .collect()
}

/// Section VI-C: the partial *maximum coverage* heuristic (cost-blind) vs
/// CWSC. Returns `(ŝ, max-coverage cost, max-coverage size, CWSC cost)`.
pub fn maxcov_comparison(
    table: &Table,
    coverages: &[f64],
    k: usize,
    cost_fn: CostFn,
) -> Vec<(f64, f64, usize, f64)> {
    let m = enumerate_all(table, cost_fn);
    let space = PatternSpace::new(table, cost_fn);
    coverages
        .iter()
        .map(|&s| {
            let mc = greedy_partial_max_coverage(&m.system, s, &mut Stats::new())
                .expect("universe pattern guarantees feasibility");
            let ours = opt_cwsc(&space, k, s, &mut Stats::new())
                .expect("universe pattern guarantees feasibility");
            (s, mc.total_cost().value(), mc.size(), ours.total_cost)
        })
        .collect()
}

/// One Section VI-B row: a perturbed data set's CWSC cost against the
/// range of CMC costs over the `(b, ε)` grid.
#[derive(Debug, Clone)]
pub struct PerturbRow {
    /// Which perturbation produced the data set.
    pub label: String,
    /// CWSC's solution cost.
    pub cwsc_cost: f64,
    /// Cheapest CMC cost across the grid.
    pub cmc_min: f64,
    /// Most expensive CMC cost across the grid.
    pub cmc_max: f64,
}

/// Section VI-B: CWSC vs CMC on the two groups of synthetic weights
/// (δ-uniform noise; log-normal re-ranked).
pub fn perturbed_quality(
    rows: usize,
    seed: u64,
    k: usize,
    coverage: f64,
    deltas: &[f64],
    sigmas: &[f64],
) -> Vec<PerturbRow> {
    let base = workload(rows, seed);
    let mut out = Vec::new();
    let variants: Vec<(String, Table)> = deltas
        .iter()
        .map(|&d| {
            (
                format!("uniform delta={d}"),
                uniform_noise(&base, d, seed ^ 0xd),
            )
        })
        .chain(sigmas.iter().map(|&s| {
            (
                format!("lognormal sigma={s}"),
                lognormal_rerank(&base, 2.0, s, seed ^ 0x5),
            )
        }))
        .collect();
    for (label, table) in variants {
        let space = PatternSpace::new(&table, CostFn::Max);
        let cwsc_cost = opt_cwsc(&space, k, coverage, &mut Stats::new())
            .expect("feasible by construction")
            .total_cost;
        let mut cmc_min = f64::INFINITY;
        let mut cmc_max = f64::NEG_INFINITY;
        for (b, eps) in [(0.5, 1.0), (1.0, 1.0), (1.0, 2.0), (2.0, 2.0)] {
            let params = RunParams {
                k,
                coverage,
                b,
                eps,
                ..RunParams::default()
            };
            let sol = opt_cmc(&space, &params.cmc_params(), &mut Stats::new())
                .expect("feasible by construction");
            cmc_min = cmc_min.min(sol.total_cost);
            cmc_max = cmc_max.max(sol.total_cost);
        }
        out.push(PerturbRow {
            label,
            cwsc_cost,
            cmc_min,
            cmc_max,
        });
    }
    out
}

/// One Section VI-D row: greedy algorithms against the exact optimum on a
/// small sample.
#[derive(Debug, Clone)]
pub struct OptRow {
    /// Sample size (rows).
    pub rows: usize,
    /// Exact optimal cost (None when the B&B found no feasible solution —
    /// impossible here because the root pattern exists).
    pub optimal: f64,
    /// CWSC cost.
    pub cwsc: f64,
    /// CMC (b=1, ε=1) cost. Note CMC may use up to `(1+ε)k` patterns, so
    /// it can legitimately undercut the `k`-constrained optimum.
    pub cmc: f64,
    /// CMC coverage achieved (the harness runs it at the full target).
    pub cmc_covered: usize,
    /// The common coverage target in records.
    pub target: usize,
    /// Dual-feasible lower bound certified from CWSC's greedy prices.
    pub lower_bound: f64,
    /// Certified ratio `cwsc / lower_bound` (∞ when the bound collapses).
    pub certified: f64,
}

/// Section VI-D: compares CWSC and CMC to the exact optimum on small
/// samples (the paper uses exhaustive search; we use branch and bound).
pub fn vs_optimal(sample_sizes: &[usize], seed: u64, k: usize, coverage: f64) -> Vec<OptRow> {
    let mut out = Vec::new();
    for &rows in sample_sizes {
        let table = workload(rows, seed);
        let m = enumerate_all(&table, CostFn::Max);
        let target = coverage_target(rows, coverage);
        let optimal = exact_optimal_with_target(&m.system, k, target)
            .expect("root pattern guarantees feasibility")
            .total_cost()
            .value();
        let mut ledger = DecisionLedger::new();
        let cwsc_cost = cwsc(&m.system, k, coverage, &mut ledger)
            .expect("feasible")
            .total_cost()
            .value();
        let cert = audit::certify(&m.system, &ledger.prices(), target);
        let params = RunParams {
            k,
            coverage,
            ..RunParams::default()
        };
        let cmc_sol = cmc(&m.system, &params.cmc_params(), &mut Stats::new()).expect("feasible");
        out.push(OptRow {
            rows,
            optimal,
            cwsc: cwsc_cost,
            cmc: cmc_sol.solution.total_cost().value(),
            cmc_covered: cmc_sol.solution.covered(),
            target,
            lower_bound: cert.lower_bound,
            certified: cert.certified_ratio(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_produces_four_rows_per_size() {
        let ms = scaling(
            &[150, 300],
            7,
            &RunParams {
                k: 5,
                ..RunParams::default()
            },
        );
        assert_eq!(ms.len(), 8);
        assert!(ms.iter().all(|m| m.ok));
        assert_eq!(ms[0].rows, 150);
        assert_eq!(ms[7].rows, 300);
    }

    #[test]
    fn attrs_scaling_covers_one_to_five() {
        let ms = attrs_scaling(
            200,
            7,
            &RunParams {
                k: 4,
                ..RunParams::default()
            },
        );
        assert_eq!(ms.len(), 20);
        assert_eq!(ms[0].attrs, 1);
        assert_eq!(ms[19].attrs, 5);
    }

    #[test]
    fn quality_grid_has_seven_rows() {
        let table = workload(250, 7);
        let rows = quality_grid(&table, &[0.3, 0.5], 5);
        assert_eq!(rows.len(), 7);
        assert_eq!(rows[0].label, "CWSC");
        assert!(rows.iter().all(|r| r.cells.len() == 2));
        assert!(rows.iter().all(|r| r.cells.iter().all(|c| c.ok)));
    }

    #[test]
    fn wsc_baseline_size_grows_with_coverage() {
        let table = workload(400, 7);
        let rows = wsc_baseline(&table, &[0.3, 0.6, 0.9], CostFn::Max);
        assert_eq!(rows.len(), 3);
        assert!(rows[0].1 <= rows[2].1, "{rows:?}");
    }

    #[test]
    fn maxcov_costs_more_than_cwsc() {
        let table = workload(400, 7);
        let rows = maxcov_comparison(&table, &[0.3], 10, CostFn::Max);
        let (_, mc_cost, _, cwsc_cost) = rows[0];
        assert!(
            mc_cost >= cwsc_cost,
            "cost-blind heuristic should not beat CWSC: {mc_cost} vs {cwsc_cost}"
        );
    }

    #[test]
    fn perturbed_rows_cover_both_groups() {
        let rows = perturbed_quality(200, 7, 5, 0.3, &[0.0, 0.5], &[1.0]);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.cwsc_cost.is_finite());
            assert!(r.cmc_min <= r.cmc_max);
        }
    }

    #[test]
    fn vs_optimal_bounds_hold() {
        let rows = vs_optimal(&[25, 40], 7, 4, 0.5);
        for r in &rows {
            assert!(
                r.optimal <= r.cwsc + 1e-9,
                "optimum cannot exceed greedy: {r:?}"
            );
            assert!(
                r.lower_bound <= r.optimal + 1e-9,
                "certified LB must bound the optimum from below: {r:?}"
            );
            assert!(
                r.certified + 1e-9 >= 1.0,
                "certified ratio is at least 1: {r:?}"
            );
            assert!(
                r.cmc_covered >= r.target,
                "harness CMC runs at the full target: {r:?}"
            );
        }
    }
}
