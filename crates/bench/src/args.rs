//! Re-export of the `--key value` argument parser that moved to
//! [`scwsc_core::cli`] when `scwsc_serve` needed it (DESIGN.md §17).
//! Kept as a module so `crate::args::Args` paths stay valid.

pub use scwsc_core::cli::Args;
