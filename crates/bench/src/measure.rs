//! Timed, instrumented runs of the four algorithm variants the paper
//! plots: unoptimized/optimized CMC and CWSC (Figures 5–9).

use scwsc_core::algorithms::{cmc, cmc_on, cwsc, cwsc_on, CmcParams};
use scwsc_core::{Fanout, MetricsRecorder, NoopObserver, Observer, Stats, ThreadPool};
use scwsc_patterns::{enumerate_all, opt_cmc, opt_cmc_on, opt_cwsc, CostFn, PatternSpace, Table};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// The four lines of Figures 5–9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Algo {
    /// Unoptimized CMC: full-cube enumeration + Fig. 1 over the sets.
    CmcUnopt,
    /// Optimized CMC (Fig. 4).
    CmcOpt,
    /// Unoptimized CWSC: full-cube enumeration + Fig. 2 over the sets.
    CwscUnopt,
    /// Optimized CWSC (Fig. 3).
    CwscOpt,
}

impl Algo {
    /// All four, in the paper's legend order.
    pub const ALL: [Algo; 4] = [Algo::CmcUnopt, Algo::CmcOpt, Algo::CwscUnopt, Algo::CwscOpt];

    /// Display name matching the paper's figure legends.
    pub fn name(self) -> &'static str {
        match self {
            Algo::CmcUnopt => "CMC",
            Algo::CmcOpt => "optimized CMC",
            Algo::CwscUnopt => "CWSC",
            Algo::CwscOpt => "optimized CWSC",
        }
    }
}

/// Parameters of one measured run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RunParams {
    /// Solution size bound `k`.
    pub k: usize,
    /// Coverage fraction `ŝ`.
    pub coverage: f64,
    /// CMC budget growth `b`.
    pub b: f64,
    /// CMC size slack `ε` (the ε-level schedule is the paper's default).
    pub eps: f64,
    /// Pattern weight function.
    pub cost_fn: CostFn,
    /// Whether CMC targets the discounted `(1−1/e)·ŝ·n` (Fig. 1 line 06)
    /// or the full `ŝ·n`. The harness defaults to the full target so CMC
    /// and CWSC solve the same task and Tables IV/V compare like for like
    /// (the paper's worked example folds the discount into ŝ itself);
    /// Theorems 4–5 hold either way.
    pub discount: bool,
}

impl Default for RunParams {
    /// The paper's Section VI defaults: `k = 10`, `ŝ = 0.3`, `b = ε = 1`.
    fn default() -> RunParams {
        RunParams {
            k: 10,
            coverage: 0.3,
            b: 1.0,
            eps: 1.0,
            cost_fn: CostFn::Max,
            discount: false,
        }
    }
}

impl RunParams {
    /// The CMC parameter block for these settings.
    pub fn cmc_params(&self) -> CmcParams {
        let mut p = CmcParams::epsilon(self.k, self.coverage, self.b, self.eps);
        p.discount_coverage = self.discount;
        p
    }
}

/// Outcome of one measured run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Measurement {
    /// Which algorithm ran.
    pub algo: Algo,
    /// Rows in the input table.
    pub rows: usize,
    /// Pattern attributes in the input table.
    pub attrs: usize,
    /// Size bound `k` of the run.
    pub k: usize,
    /// Coverage fraction `ŝ` of the run.
    pub coverage: f64,
    /// Wall-clock seconds (including full-cube enumeration for the
    /// unoptimized variants — computing every pattern's benefit is part of
    /// those algorithms).
    pub seconds: f64,
    /// Patterns considered (the Figure 6 metric).
    pub considered: u64,
    /// CMC budget guesses (1 for CWSC).
    pub guesses: u32,
    /// Solution total cost.
    pub cost: f64,
    /// Solution size (number of patterns).
    pub size: usize,
    /// Records covered.
    pub covered: usize,
    /// Whether the run found a solution.
    pub ok: bool,
}

/// Runs one algorithm variant on `table`, timing it end to end.
pub fn run(algo: Algo, table: &Table, params: &RunParams) -> Measurement {
    run_traced(algo, table, params, &mut NoopObserver).0
}

/// Like [`run`], but also aggregates the solver's telemetry stream into a
/// [`MetricsRecorder`] (per-phase timings, prune counters, histograms) and
/// forwards every event to `extra` — pass a
/// [`JsonlSink`](scwsc_core::JsonlSink) for a trace file, or
/// [`NoopObserver`] for none.
pub fn run_traced(
    algo: Algo,
    table: &Table,
    params: &RunParams,
    extra: &mut dyn Observer,
) -> (Measurement, MetricsRecorder) {
    run_traced_inner(algo, table, params, None, extra)
}

/// [`run_traced`] with the solver's parallel fan-outs run on `pool`.
///
/// The deterministic counters and the solution are identical to the serial
/// run for any pool size; only wall-clock changes. `CwscOpt` has no
/// parallel variant (the Fig. 3 lattice walk is a single sequential round
/// whose per-step candidate set is too small to chunk profitably) and runs
/// serial regardless of the pool.
pub fn run_traced_on(
    algo: Algo,
    table: &Table,
    params: &RunParams,
    pool: &ThreadPool,
    extra: &mut dyn Observer,
) -> (Measurement, MetricsRecorder) {
    let pool = if pool.is_serial() { None } else { Some(pool) };
    run_traced_inner(algo, table, params, pool, extra)
}

fn run_traced_inner(
    algo: Algo,
    table: &Table,
    params: &RunParams,
    pool: Option<&ThreadPool>,
    extra: &mut dyn Observer,
) -> (Measurement, MetricsRecorder) {
    let mut stats = Stats::new();
    let mut metrics = MetricsRecorder::new();
    let start = Instant::now();
    let outcome: Option<(f64, usize, usize)> = {
        let mut obs = Fanout::new();
        obs.attach(&mut stats).attach(&mut metrics).attach(extra);
        match algo {
            Algo::CmcUnopt => {
                let m = enumerate_all(table, params.cost_fn);
                let result = match pool {
                    Some(pool) => cmc_on(&m.system, &params.cmc_params(), pool, &mut obs),
                    None => cmc(&m.system, &params.cmc_params(), &mut obs),
                };
                result.ok().map(|o| {
                    (
                        o.solution.total_cost().value(),
                        o.solution.size(),
                        o.solution.covered(),
                    )
                })
            }
            Algo::CwscUnopt => {
                let m = enumerate_all(table, params.cost_fn);
                let result = match pool {
                    Some(pool) => cwsc_on(&m.system, params.k, params.coverage, pool, &mut obs),
                    None => cwsc(&m.system, params.k, params.coverage, &mut obs),
                };
                result
                    .ok()
                    .map(|s| (s.total_cost().value(), s.size(), s.covered()))
            }
            Algo::CmcOpt => {
                let space = PatternSpace::new(table, params.cost_fn);
                let result = match pool {
                    Some(pool) => opt_cmc_on(&space, &params.cmc_params(), pool, &mut obs),
                    None => opt_cmc(&space, &params.cmc_params(), &mut obs),
                };
                result.ok().map(|s| (s.total_cost, s.size(), s.covered))
            }
            Algo::CwscOpt => {
                let space = PatternSpace::new(table, params.cost_fn);
                opt_cwsc(&space, params.k, params.coverage, &mut obs)
                    .ok()
                    .map(|s| (s.total_cost, s.size(), s.covered))
            }
        }
    };
    let seconds = start.elapsed().as_secs_f64();
    let (cost, size, covered) = outcome.unwrap_or((f64::NAN, 0, 0));
    let measurement = Measurement {
        algo,
        rows: table.num_rows(),
        attrs: table.num_attrs(),
        k: params.k,
        coverage: params.coverage,
        seconds,
        considered: stats.considered,
        guesses: stats.budget_guesses,
        cost,
        size,
        covered,
        ok: outcome.is_some(),
    };
    (measurement, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scwsc_data::lbl::LblConfig;

    fn small_table() -> Table {
        LblConfig {
            rows: 400,
            local_hosts: 15,
            remote_hosts: 20,
            ..LblConfig::default()
        }
        .generate()
    }

    #[test]
    fn all_four_algorithms_produce_valid_solutions() {
        let t = small_table();
        let params = RunParams {
            k: 5,
            ..RunParams::default()
        };
        for algo in Algo::ALL {
            let m = run(algo, &t, &params);
            assert!(m.ok, "{algo:?} failed");
            assert!(m.covered >= 1, "{algo:?} covered nothing");
            assert!(m.cost.is_finite());
            assert!(m.seconds >= 0.0);
            assert!(m.considered > 0);
        }
    }

    #[test]
    fn optimized_considers_fewer_patterns() {
        // Needs a workload where lattice pruning pays off (the Figure 6
        // regime): dense value domains so the coverage floor rem/i prunes
        // whole subtrees. On very sparse toy traces the optimized
        // algorithm's per-iteration re-expansion can touch more patterns
        // than a tiny full cube; the harness-scale relationship is
        // exercised by the fig5/fig6 binaries and EXPERIMENTS.md.
        let t = scwsc_patterns::test_util::skewed_table(800, 4, 6);
        let params = RunParams::default();
        let unopt = run(Algo::CwscUnopt, &t, &params);
        let opt = run(Algo::CwscOpt, &t, &params);
        assert!(
            opt.considered < unopt.considered,
            "opt {} vs unopt {}",
            opt.considered,
            unopt.considered
        );
    }

    #[test]
    fn cwsc_respects_k_and_coverage() {
        let t = small_table();
        let params = RunParams {
            k: 7,
            coverage: 0.4,
            ..RunParams::default()
        };
        let m = run(Algo::CwscOpt, &t, &params);
        assert!(m.size <= 7);
        assert!(m.covered >= (0.4f64 * 400.0).ceil() as usize);
    }

    #[test]
    fn traced_run_aggregates_matching_counters() {
        let t = small_table();
        let params = RunParams {
            k: 5,
            ..RunParams::default()
        };
        for algo in [Algo::CwscOpt, Algo::CmcOpt] {
            let (m, metrics) = run_traced(algo, &t, &params, &mut NoopObserver);
            assert!(m.ok, "{algo:?} failed");
            assert_eq!(metrics.benefits_computed, m.considered, "{algo:?}");
            // CMC also selects during failed budget guesses, so the event
            // count can exceed the final solution size; CWSC is one round.
            match algo {
                Algo::CwscOpt => assert_eq!(metrics.selections as usize, m.size),
                _ => assert!(metrics.selections as usize >= m.size),
            }
            assert_eq!(metrics.guesses, u64::from(m.guesses), "{algo:?}");
            let total = metrics
                .phase_seconds(scwsc_core::PHASE_TOTAL)
                .expect("solver records a total phase");
            assert!(total >= 0.0 && total <= m.seconds);
        }
    }

    #[test]
    fn pooled_run_matches_serial_measurement_and_counters() {
        use scwsc_core::Threads;
        let t = small_table();
        let params = RunParams {
            k: 5,
            ..RunParams::default()
        };
        let pool = ThreadPool::new(Threads::new(4));
        for algo in Algo::ALL {
            let (sm, smet) = run_traced(algo, &t, &params, &mut NoopObserver);
            let (pm, pmet) = run_traced_on(algo, &t, &params, &pool, &mut NoopObserver);
            assert_eq!(pm.cost, sm.cost, "{algo:?}");
            assert_eq!(pm.size, sm.size, "{algo:?}");
            assert_eq!(pm.covered, sm.covered, "{algo:?}");
            assert_eq!(pm.considered, sm.considered, "{algo:?}");
            assert_eq!(pm.guesses, sm.guesses, "{algo:?}");
            assert_eq!(pmet.selections, smet.selections, "{algo:?}");
            assert_eq!(pmet.benefits_computed, smet.benefits_computed, "{algo:?}");
            assert_eq!(
                pmet.marginal_benefit_hist, smet.marginal_benefit_hist,
                "{algo:?}"
            );
        }
    }

    #[test]
    fn names_match_legends() {
        assert_eq!(Algo::CmcUnopt.name(), "CMC");
        assert_eq!(Algo::CwscOpt.name(), "optimized CWSC");
    }
}
