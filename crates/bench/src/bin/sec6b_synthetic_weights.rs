//! Section VI-B: solution quality on the two synthetic weight groups
//! (δ-uniform noise and log-normal re-ranked session lengths) — CWSC's
//! cost stays at or below CMC's across the `(b, ε)` grid.

use scwsc_bench::cli::{args_or_exit, emit, required};
use scwsc_bench::{experiments, printers};

const USAGE: &str = "sec6b_synthetic_weights [--rows N] [--seed N] [--k N] [--coverage F] \
[--deltas 0,0.25,...] [--sigmas 1,2,3,4] [--csv PATH]";

fn main() {
    let args = args_or_exit(USAGE);
    let rows: usize = required(args.get_or("rows", 50_000));
    let seed: u64 = required(args.get_or("seed", 7));
    let k: usize = required(args.get_or("k", 10));
    let coverage: f64 = required(args.get_or("coverage", 0.3));
    let deltas: Vec<f64> = required(args.get_list_or("deltas", &[0.0, 0.25, 0.5, 0.75, 1.0]));
    let sigmas: Vec<f64> = required(args.get_list_or("sigmas", &[1.0, 2.0, 3.0, 4.0]));
    let rows_out = experiments::perturbed_quality(rows, seed, k, coverage, &deltas, &sigmas);
    emit(
        "Section VI-B: CWSC vs CMC on synthetic weight distributions",
        &printers::perturb(&rows_out),
        &args,
    );
}
