//! Section VI-C: the cost-blind partial maximum coverage heuristic pays
//! many times CWSC's cost for the same coverage.

use scwsc_bench::cli::{args_or_exit, emit, required};
use scwsc_bench::{experiments, printers};
use scwsc_patterns::CostFn;

const USAGE: &str =
    "sec6c_maxcov_cost [--rows N] [--seed N] [--k N] [--coverages 0.3,...,0.6] [--csv PATH]";

fn main() {
    let args = args_or_exit(USAGE);
    let rows: usize = required(args.get_or("rows", 50_000));
    let seed: u64 = required(args.get_or("seed", 7));
    let k: usize = required(args.get_or("k", 10));
    let coverages: Vec<f64> = required(args.get_list_or("coverages", &[0.3, 0.4, 0.5, 0.6]));
    let table = experiments::workload(rows, seed);
    let rows_out = experiments::maxcov_comparison(&table, &coverages, k, CostFn::Max);
    emit(
        "Section VI-C: partial max coverage vs CWSC (total cost)",
        &printers::maxcov(&rows_out),
        &args,
    );
}
