//! Figure 8: running time vs the maximum number of patterns `k` — CWSC
//! slows down with k (more iterations) while CMC speeds up (feasible
//! budgets are found sooner).

use scwsc_bench::cli::{args_or_exit, emit, required};
use scwsc_bench::measure::RunParams;
use scwsc_bench::{experiments, printers};

const USAGE: &str =
    "fig8_runtime_vs_k [--rows N] [--seed N] [--ks 2,5,10,...] [--coverage F] [--b F] [--eps F] [--csv PATH]";

fn main() {
    let args = args_or_exit(USAGE);
    let rows: usize = required(args.get_or("rows", 100_000));
    let seed: u64 = required(args.get_or("seed", 7));
    let ks: Vec<usize> = required(args.get_list_or("ks", &[2, 5, 10, 15, 20, 25]));
    let base = RunParams {
        coverage: required(args.get_or("coverage", 0.3)),
        b: required(args.get_or("b", 1.0)),
        eps: required(args.get_or("eps", 1.0)),
        ..RunParams::default()
    };
    let ms = experiments::k_scaling(rows, seed, &ks, &base);
    emit(
        "Figure 8: running time (s) vs maximum number of patterns k",
        &printers::fig8(&ms),
        &args,
    );
}
