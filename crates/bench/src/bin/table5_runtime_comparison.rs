//! Table V: running time (seconds) of CWSC vs CMC over the `(b, ε)` grid.

use scwsc_bench::cli::{args_or_exit, emit, required};
use scwsc_bench::report::secs;
use scwsc_bench::{experiments, printers};

const USAGE: &str =
    "table5_runtime_comparison [--rows N] [--seed N] [--k N] [--coverages 0.3,0.4,0.5,0.6] [--csv PATH]";

fn main() {
    let args = args_or_exit(USAGE);
    let rows: usize = required(args.get_or("rows", 100_000));
    let seed: u64 = required(args.get_or("seed", 7));
    let k: usize = required(args.get_or("k", 10));
    let coverages: Vec<f64> = required(args.get_list_or("coverages", &[0.3, 0.4, 0.5, 0.6]));
    let table = experiments::workload(rows, seed);
    let grid = experiments::quality_grid(&table, &coverages, k);
    emit(
        "Table V: running time (s) of CMC and CWSC",
        &printers::grid(&grid, &coverages, |m| secs(m.seconds)),
        &args,
    );
}
