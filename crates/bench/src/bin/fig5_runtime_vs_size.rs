//! Figure 5: running time vs data size for CMC, optimized CMC, CWSC, and
//! optimized CWSC on the synthetic LBL-like trace.

use scwsc_bench::cli::{args_or_exit, emit, required};
use scwsc_bench::measure::RunParams;
use scwsc_bench::{experiments, printers};

const USAGE: &str = "fig5_runtime_vs_size [--sizes 25000,50000,...] [--seed N] [--k N] \
[--coverage F] [--b F] [--eps F] [--csv PATH]
Defaults: sizes 25000,50000,100000,200000; k=10, coverage=0.3, b=1, eps=1 (the paper's settings).";

fn main() {
    let args = args_or_exit(USAGE);
    let sizes: Vec<usize> =
        required(args.get_list_or("sizes", &[25_000, 50_000, 100_000, 200_000]));
    let seed: u64 = required(args.get_or("seed", 7));
    let params = RunParams {
        k: required(args.get_or("k", 10)),
        coverage: required(args.get_or("coverage", 0.3)),
        b: required(args.get_or("b", 1.0)),
        eps: required(args.get_or("eps", 1.0)),
        ..RunParams::default()
    };
    let ms = experiments::scaling(&sizes, seed, &params);
    emit(
        "Figure 5: running time (s) vs number of tuples",
        &printers::fig5(&ms),
        &args,
    );
}
