//! Section VI-D: CWSC and CMC vs the exact optimum (branch and bound) on
//! samples small enough to solve exactly.

use scwsc_bench::cli::{args_or_exit, emit, required};
use scwsc_bench::{experiments, printers};

const USAGE: &str =
    "sec6d_vs_optimal [--sizes 30,50,80] [--seed N] [--k N] [--coverage F] [--csv PATH]";

fn main() {
    let args = args_or_exit(USAGE);
    let sizes: Vec<usize> = required(args.get_list_or("sizes", &[30, 50, 80]));
    let seed: u64 = required(args.get_or("seed", 7));
    let k: usize = required(args.get_or("k", 5));
    let coverage: f64 = required(args.get_or("coverage", 0.5));
    let rows_out = experiments::vs_optimal(&sizes, seed, k, coverage);
    emit(
        "Section VI-D: comparison to the optimal solution",
        &printers::vs_optimal(&rows_out),
        &args,
    );
}
