//! Command-line solver: summarize a CSV table (or a generated synthetic
//! trace) with at most `k` patterns covering a required fraction.
//!
//! ```text
//! scwsc_solve --csv data.csv --k 8 --coverage 0.4 --algorithm cwsc
//! scwsc_solve --rows 50000 --k 10 --coverage 0.3 --algorithm cmc --b 1 --eps 1
//! ```
//!
//! The CSV's last column is the numeric measure; all others are pattern
//! attributes (the format `scwsc_data::csv` writes).

use scwsc_bench::cli::{args_or_exit, bail, required};
use scwsc_bench::measure::RunParams;
use scwsc_bench::report::{secs, TextTable};
use scwsc_core::{Fanout, JsonlSink, MetricsRecorder, SpanProfiler, Stats, ThreadPool, Threads};
use scwsc_data::csv::read_table;
use scwsc_data::lbl::LblConfig;
use scwsc_patterns::{opt_cmc_on, opt_cwsc, CostFn, PatternSolution, PatternSpace, Table};
use std::fs::File;
use std::io::BufWriter;
use std::path::Path;

const USAGE: &str = "scwsc_solve [--csv PATH | --rows N [--seed N]] \
[--k N] [--coverage F] [--algorithm cwsc|cmc] [--b F] [--eps F] \
[--cost-fn max|sum|mean|count] [--threads N] [--trace-jsonl PATH] [--metrics] [--profile]
Solves size-constrained weighted set cover over the table's pattern cube and
prints the chosen patterns. Without --csv, a synthetic LBL-like trace of
--rows records is generated. --threads sets the worker count for the cmc
solver's parallel fan-outs (1 = serial; default $SCWSC_THREADS, else all
cores) — the solution and all counters are identical for any value; cwsc is
a single sequential round and always runs serial. --trace-jsonl streams
every solver event as one JSON object per line; --metrics prints aggregated
counters and per-phase timings; --profile prints the run's aggregated span
tree (per-phase total/self wall-clock with counter attribution; parallel
runs show the per-chunk scan spans merged under their round).";

fn cost_fn_of(name: &str) -> CostFn {
    match name {
        "max" => CostFn::Max,
        "sum" => CostFn::Sum,
        "mean" => CostFn::Mean,
        "count" => CostFn::Count,
        other => bail(&format!("unknown cost function {other:?}")),
    }
}

fn load(args: &scwsc_bench::Args) -> Table {
    if let Some(path) = args.get("csv") {
        match read_table(Path::new(path)) {
            Ok(t) => t,
            Err(e) => bail(&format!("cannot read {path}: {e}")),
        }
    } else {
        let rows: usize = required(args.get_or("rows", 20_000));
        let seed: u64 = required(args.get_or("seed", 7));
        LblConfig {
            seed,
            ..LblConfig::scaled(rows)
        }
        .generate()
    }
}

fn main() {
    let args = args_or_exit(USAGE);
    let table = load(&args);
    let params = RunParams {
        k: required(args.get_or("k", 10)),
        coverage: required(args.get_or("coverage", 0.3)),
        b: required(args.get_or("b", 1.0)),
        eps: required(args.get_or("eps", 1.0)),
        cost_fn: cost_fn_of(args.get("cost-fn").unwrap_or("max")),
        ..RunParams::default()
    };
    let algorithm = args.get("algorithm").unwrap_or("cwsc");
    let threads = if args.get("threads").is_some() {
        Threads::new(required(args.get_or("threads", 1)))
    } else {
        Threads::from_env()
    };
    let pool = ThreadPool::new(threads);

    eprintln!(
        "solving: {} rows, {} attributes, k={}, coverage>={:.0}%, algorithm={algorithm}, \
         threads={}",
        table.num_rows(),
        table.num_attrs(),
        params.k,
        params.coverage * 100.0,
        pool.threads()
    );
    let space = PatternSpace::new(&table, params.cost_fn);
    let mut stats = Stats::new();
    let mut metrics = MetricsRecorder::new();
    let trace_path = args.get("trace-jsonl");
    let mut sink = trace_path.map(|path| {
        let file =
            File::create(path).unwrap_or_else(|e| bail(&format!("cannot create {path}: {e}")));
        JsonlSink::new(BufWriter::new(file))
    });
    let mut profiler = args.flag("profile").then(SpanProfiler::new);
    let solution: PatternSolution = {
        let mut obs = Fanout::new();
        obs.attach(&mut stats).attach(&mut metrics);
        if let Some(s) = sink.as_mut() {
            obs.attach(s);
        }
        if let Some(p) = profiler.as_mut() {
            obs.attach(p);
        }
        match algorithm {
            "cwsc" => opt_cwsc(&space, params.k, params.coverage, &mut obs)
                .unwrap_or_else(|e| bail(&format!("no solution: {e}"))),
            "cmc" => opt_cmc_on(&space, &params.cmc_params(), &pool, &mut obs)
                .unwrap_or_else(|e| bail(&format!("no solution: {e}"))),
            other => bail(&format!("unknown algorithm {other:?} (use cwsc or cmc)")),
        }
    };
    solution.verify(&space);
    if let Some(s) = sink {
        let path = trace_path.expect("sink implies a path");
        if s.has_failed() {
            bail(&format!("trace write to {path} failed"));
        }
        match s.into_inner() {
            Ok(_) => eprintln!("trace written to {path}"),
            Err(e) => bail(&format!("cannot flush {path}: {e}")),
        }
    }

    println!(
        "{} patterns, total weight {:.3}, covering {}/{} records ({:.1}%)",
        solution.size(),
        solution.total_cost,
        solution.covered,
        table.num_rows(),
        100.0 * solution.covered as f64 / table.num_rows().max(1) as f64
    );
    for p in &solution.patterns {
        let rows = space.benefit(p);
        println!(
            "  {}\t({} records, weight {:.3})",
            p.display(&table),
            rows.len(),
            space.cost(&rows)
        );
    }
    eprintln!(
        "considered {} patterns in {} budget guess(es)",
        stats.considered, stats.budget_guesses
    );
    if args.flag("metrics") {
        print_metrics(&metrics);
    }
    if let Some(p) = &profiler {
        println!("== span profile ==");
        print!("{}", p.render());
    }
}

/// Prints the aggregated telemetry: counters, then per-phase timings.
fn print_metrics(metrics: &MetricsRecorder) {
    let mut counters = TextTable::new(["counter", "value"]);
    for (name, value) in [
        ("budget guesses", metrics.guesses),
        ("levels entered", metrics.levels_entered),
        ("selections", metrics.selections),
        ("benefits computed", metrics.benefits_computed),
        ("candidates pruned", metrics.candidates_pruned_total()),
        ("subtrees pruned", metrics.subtrees_pruned_total()),
        ("heap stale pops", metrics.heap_stale_pops),
        ("postings scanned", metrics.postings_scanned),
    ] {
        counters.row([name.to_string(), value.to_string()]);
    }
    println!("== metrics ==");
    println!("{}", counters.render());
    if !metrics.marginal_benefit_hist.is_empty() {
        println!(
            "marginal benefit: mean {:.1}, max {}",
            metrics.marginal_benefit_hist.mean(),
            metrics.marginal_benefit_hist.max()
        );
    }
    let mut phases = TextTable::new(["phase", "seconds", "runs"]);
    for p in metrics.phases() {
        phases.row([p.name.to_string(), secs(p.seconds), p.count.to_string()]);
    }
    if !phases.is_empty() {
        println!("{}", phases.render());
    }
}
