//! Command-line solver: summarize a CSV table (or a generated synthetic
//! trace) with at most `k` patterns covering a required fraction.
//!
//! ```text
//! scwsc_solve --csv data.csv --k 8 --coverage 0.4 --algorithm cwsc
//! scwsc_solve --rows 50000 --k 10 --coverage 0.3 --algorithm cmc --b 1 --eps 1
//! ```
//!
//! The CSV's last column is the numeric measure; all others are pattern
//! attributes (the format `scwsc_data::csv` writes).

use scwsc_bench::cli::{args_or_exit, bail, exit_code, exit_with, required};
use scwsc_bench::measure::RunParams;
use scwsc_bench::report::{secs, TextTable};
use scwsc_core::telemetry::audit::{self, DecisionLedger};
#[cfg(feature = "fault-inject")]
use scwsc_core::FaultPlan;
use scwsc_core::{
    coverage_target, render_prometheus, Certificate, Deadline, EngineError, Fanout, FlightRecorder,
    JsonlSink, MetricsRecorder, SloGauges, SolveOutcome, SpanProfiler, Stats, ThreadPool, Threads,
    Watchdog,
};
use scwsc_data::csv::read_table;
use scwsc_data::lbl::LblConfig;
use scwsc_patterns::{
    enumerate_all, opt_cmc_on, opt_cmc_within, opt_cwsc, opt_cwsc_within, verify_certificate_in,
    CostFn, PatternSolution, PatternSpace, Table,
};
use std::fs::File;
use std::io::BufWriter;
use std::path::{Path, PathBuf};
use std::time::Duration;

const USAGE: &str = "scwsc_solve [--csv PATH | --rows N [--seed N]] \
[--k N] [--coverage F] [--algorithm cwsc|cmc] [--b F] [--eps F] \
[--cost-fn max|sum|mean|count] [--threads N] [--trace-jsonl PATH] [--metrics] [--profile] \
[--deadline-ms N] [--max-ticks N] [--fault SPEC] [--watchdog MS] [--flight-dump PATH] \
[--metrics-prom PATH] [--explain [N]] [--audit-jsonl PATH]
Solves size-constrained weighted set cover over the table's pattern cube and
prints the chosen patterns. Without --csv, a synthetic LBL-like trace of
--rows records is generated. --threads sets the worker count for the cmc
solver's parallel fan-outs (1 = serial; default $SCWSC_THREADS, else all
cores) — the solution and all counters are identical for any value; cwsc is
a single sequential round and always runs serial. --deadline-ms bounds the
solve by wall clock (when the flag is absent the SCWSC_DEADLINE_MS
environment variable supplies the same bound; an explicit flag always wins
over the environment) and --max-ticks by a deterministic work-tick budget; on
expiry the best partial solution prints with its certificate and the process
exits with code 5 (exit codes: 2 bad args, 3 bad input, 4 infeasible, 5
deadline-degraded). --fault injects a deterministic fault schedule
(comma-separated panic@TICK, cancel@TICK, panicguess@I, failguess@I,
stall@TICK:MS, or seed:N; requires a build with --features fault-inject).
--watchdog MS arms a liveness watchdog: a background monitor watches
observer events plus engine checkpoint ticks, and when an armed solve
makes no progress for MS milliseconds it records a stall_detected event
and dumps the flight recording at that moment (to <--flight-dump
PATH>.stall, else scwsc-stall-flight.jsonl) without interrupting the
solve. --trace-jsonl streams
every solver event as one JSON object per line; --metrics prints aggregated
counters and per-phase timings; --profile prints the run's aggregated span
tree (per-phase total/self wall-clock with counter attribution; parallel
runs show the per-chunk scan spans merged under their round). A flight
recorder of recent enriched events always rides along: --flight-dump writes
its JSONL dump (header, events, causal tree) after the run, and a faulted or
deadline-degraded run dumps automatically (to the --flight-dump path, else
scwsc-<trace-id>-flight.jsonl) before the process exits non-zero. --metrics-prom writes
the aggregated counters plus the run's SLO gauges (deadline headroom, ticks
used/budget, degraded flag, retries) in Prometheus text exposition format.
--explain prints the decision audit: every selection round's winner with its
runners-up, winning margin, tie-break key, and per-element price charging
(--explain N caps the rounds shown per guess), plus a certified quality
bound — the dual-feasible lower bound LB on the optimal cost scaled from
the greedy prices, and the certified ratio cost/LB. --audit-jsonl writes
the full ledger as line-oriented JSON; the file is byte-identical for any
--threads value. Both flags materialize the full pattern cube once to
certify the bound, so prefer them on analysis-sized inputs.";

fn cost_fn_of(name: &str) -> CostFn {
    match name {
        "max" => CostFn::Max,
        "sum" => CostFn::Sum,
        "mean" => CostFn::Mean,
        "count" => CostFn::Count,
        other => bail(&format!("unknown cost function {other:?}")),
    }
}

fn load(args: &scwsc_bench::Args) -> Table {
    if let Some(path) = args.get("csv") {
        match read_table(Path::new(path)) {
            Ok(t) => t,
            Err(e) => exit_with(exit_code::BAD_INPUT, &format!("cannot read {path}: {e}")),
        }
    } else {
        let rows: usize = required(args.get_or("rows", 20_000));
        let seed: u64 = required(args.get_or("seed", 7));
        LblConfig {
            seed,
            ..LblConfig::scaled(rows)
        }
        .generate()
    }
}

/// Parses a `--fault` schedule: comma-separated `panic@TICK`,
/// `cancel@TICK`, `panicguess@INDEX`, `failguess@INDEX`,
/// `stall@TICK:MS`, or a single `seed:N` deriving a pseudo-random plan.
#[cfg(feature = "fault-inject")]
fn parse_fault(spec: &str) -> FaultPlan {
    let number = |part: &str, text: &str| -> u64 {
        text.parse()
            .unwrap_or_else(|_| bail(&format!("bad fault spec {part:?}: not a number")))
    };
    let mut plan = FaultPlan::new();
    for part in spec.split(',') {
        plan = if let Some(t) = part.strip_prefix("panic@") {
            plan.panic_at_tick(number(part, t))
        } else if let Some(t) = part.strip_prefix("cancel@") {
            plan.cancel_at_tick(number(part, t))
        } else if let Some(i) = part.strip_prefix("panicguess@") {
            plan.panic_guess_once(number(part, i))
        } else if let Some(i) = part.strip_prefix("failguess@") {
            plan.fail_guess(number(part, i))
        } else if let Some(spec) = part.strip_prefix("stall@") {
            let (tick, ms) = spec
                .split_once(':')
                .unwrap_or_else(|| bail(&format!("bad fault spec {part:?}: use stall@TICK:MS")));
            plan.stall_at_tick(number(part, tick), number(part, ms))
        } else if let Some(n) = part.strip_prefix("seed:") {
            FaultPlan::from_seed(number(part, n))
        } else {
            bail(&format!(
                "bad fault spec {part:?} (use panic@T, cancel@T, panicguess@I, failguess@I, \
                 stall@T:MS, seed:N)"
            ))
        };
    }
    plan
}

/// Builds the run's [`Deadline`] from `--deadline-ms` (falling back to
/// the `SCWSC_DEADLINE_MS` environment variable), `--max-ticks`, and
/// `--fault`; `None` when no resilience bound was given (classic path).
fn deadline_of(args: &scwsc_bench::Args) -> Option<Deadline> {
    let mut deadline = Deadline::unbounded();
    let mut bounded = false;
    // The flag wins over the environment: SCWSC_DEADLINE_MS sets a
    // fleet-wide default (e.g. exported by an operator for every run in
    // a shell), an explicit --deadline-ms overrides it per invocation.
    let env_deadline_ms = std::env::var("SCWSC_DEADLINE_MS").ok().map(|raw| {
        raw.parse::<u64>().unwrap_or_else(|_| {
            bail(&format!(
                "SCWSC_DEADLINE_MS must be an integer, got {raw:?}"
            ))
        })
    });
    if args.get("deadline-ms").is_some() {
        let ms: u64 = required(args.get_or("deadline-ms", 0));
        deadline = deadline.with_wall_clock(Duration::from_millis(ms));
        bounded = true;
    } else if let Some(ms) = env_deadline_ms {
        deadline = deadline.with_wall_clock(Duration::from_millis(ms));
        bounded = true;
    }
    if args.get("max-ticks").is_some() {
        let ticks: u64 = required(args.get_or("max-ticks", 0));
        deadline = deadline.with_tick_budget(ticks);
        bounded = true;
    }
    if let Some(spec) = args.get("fault") {
        #[cfg(feature = "fault-inject")]
        {
            deadline = deadline.with_fault_plan(parse_fault(spec));
            bounded = true;
        }
        #[cfg(not(feature = "fault-inject"))]
        {
            let _ = spec;
            bail("--fault requires a build with --features fault-inject");
        }
    }
    bounded.then_some(deadline)
}

fn main() {
    let args = args_or_exit(USAGE);
    let table = load(&args);
    let params = RunParams {
        k: required(args.get_or("k", 10)),
        coverage: required(args.get_or("coverage", 0.3)),
        b: required(args.get_or("b", 1.0)),
        eps: required(args.get_or("eps", 1.0)),
        cost_fn: cost_fn_of(args.get("cost-fn").unwrap_or("max")),
        ..RunParams::default()
    };
    let algorithm = args.get("algorithm").unwrap_or("cwsc");
    let threads = if args.get("threads").is_some() {
        Threads::new(required(args.get_or("threads", 1)))
    } else {
        Threads::from_env()
    };
    let pool = ThreadPool::new(threads);
    let deadline = deadline_of(&args);

    eprintln!(
        "solving: {} rows, {} attributes, k={}, coverage>={:.0}%, algorithm={algorithm}, \
         threads={}",
        table.num_rows(),
        table.num_attrs(),
        params.k,
        params.coverage * 100.0,
        pool.threads()
    );
    let space = PatternSpace::new(&table, params.cost_fn);
    let mut stats = Stats::new();
    let mut metrics = MetricsRecorder::new();
    let trace_path = args.get("trace-jsonl");
    let mut sink = trace_path.map(|path| {
        let file =
            File::create(path).unwrap_or_else(|e| bail(&format!("cannot create {path}: {e}")));
        JsonlSink::new(BufWriter::new(file))
    });
    let mut profiler = args.flag("profile").then(SpanProfiler::new);
    // `--explain` (bare: all rounds) or `--explain N` (cap per guess).
    let explain = args.flag("explain") || args.get("explain").is_some();
    let explain_limit: Option<usize> = args
        .get("explain")
        .map(|_| required(args.get_or("explain", 0)));
    let audit_path = args.get("audit-jsonl");
    let mut ledger = (explain || audit_path.is_some()).then(DecisionLedger::new);
    let flight = FlightRecorder::new();
    let flight_path = args.get("flight-dump");
    // `--watchdog MS`: arm the liveness watchdog around the solve. It
    // shares the flight recorder's ring, so a stall dump carries the
    // events leading up to the hang.
    let watchdog = args.get("watchdog").map(|_| {
        let ms: u64 = required(args.get_or("watchdog", 0));
        let mut dog = Watchdog::new(Duration::from_millis(ms)).with_flight(flight.clone());
        if let Some(d) = &deadline {
            dog = dog.with_probe(d.tick_probe());
        }
        // The stall dump gets its own file: the end-of-run dump reuses
        // the --flight-dump path, and by then the ring may have evicted
        // the events surrounding the stall.
        let stall_path = match flight_path {
            Some(path) => format!("{path}.stall"),
            None => "scwsc-stall-flight.jsonl".to_string(),
        };
        dog.with_dump_path(PathBuf::from(stall_path))
    });
    let monitor = watchdog.as_ref().map(Watchdog::monitor);
    let outcome: Outcome = {
        let mut flight_tap = flight.clone();
        let mut dog_tap = watchdog.clone();
        let mut obs = Fanout::new();
        obs.attach(&mut stats)
            .attach(&mut metrics)
            .attach(&mut flight_tap);
        if let Some(s) = sink.as_mut() {
            obs.attach(s);
        }
        if let Some(p) = profiler.as_mut() {
            obs.attach(p);
        }
        if let Some(l) = ledger.as_mut() {
            obs.attach(l);
        }
        if let Some(d) = dog_tap.as_mut() {
            obs.attach(d);
        }
        match (&deadline, algorithm) {
            (None, "cwsc") => match opt_cwsc(&space, params.k, params.coverage, &mut obs) {
                Ok(s) => Outcome::Solved(s, None),
                Err(e) => Outcome::Infeasible(e),
            },
            (None, "cmc") => match opt_cmc_on(&space, &params.cmc_params(), &pool, &mut obs) {
                Ok(s) => Outcome::Solved(s, None),
                Err(e) => Outcome::Infeasible(e),
            },
            (Some(deadline), "cwsc") => outcome_of(opt_cwsc_within(
                &space,
                params.k,
                params.coverage,
                deadline,
                &mut obs,
            )),
            (Some(deadline), "cmc") => outcome_of(opt_cmc_within(
                &space,
                &params.cmc_params(),
                &pool,
                deadline,
                &mut obs,
            )),
            (_, other) => bail(&format!("unknown algorithm {other:?} (use cwsc or cmc)")),
        }
    };

    // Post-mortem observability runs before ANY exit below:
    // `process::exit` skips destructors, so the sink must flush here, and
    // the flight dump is most valuable exactly when the run went wrong.
    drop(monitor);
    if let Some(dog) = &watchdog {
        metrics.stalls_detected += dog.stalls();
        if dog.stalls() > 0 {
            eprintln!(
                "watchdog: {} stall(s) detected during trace {}",
                dog.stalls(),
                dog.trace_id()
            );
        }
    }
    let degraded = matches!(&outcome, Outcome::Solved(_, Some(_)));
    if let Some(path) = flight_path {
        dump_flight(&flight, Path::new(path));
    } else if degraded || matches!(&outcome, Outcome::Faulted(_)) {
        // The trace id in the name keeps concurrent post-mortems from
        // clobbering each other (and matches the *-flight.jsonl ignore).
        let name = format!("scwsc-{}-flight.jsonl", flight.trace_id());
        dump_flight(&flight, Path::new(&name));
    }
    if let Some(path) = args.get("metrics-prom") {
        let unbounded = Deadline::unbounded();
        let slo = SloGauges::capture(deadline.as_ref().unwrap_or(&unbounded), degraded, &metrics);
        match std::fs::write(path, render_prometheus(&metrics, Some(&slo))) {
            Ok(()) => eprintln!("metrics written to {path}"),
            Err(e) => eprintln!("failed to write metrics to {path}: {e}"),
        }
    }
    if let Some(s) = sink {
        let path = trace_path.expect("sink implies a path");
        if s.has_failed() {
            bail(&format!("trace write to {path} failed"));
        }
        match s.into_inner() {
            Ok(_) => eprintln!("trace written to {path}"),
            Err(e) => bail(&format!("cannot flush {path}: {e}")),
        }
    }

    let (solution, degraded) = match outcome {
        Outcome::Solved(solution, certificate) => (solution, certificate),
        Outcome::Infeasible(e) => infeasible(&e),
        Outcome::Faulted(msg) => {
            eprintln!("error: solver fault: {msg}");
            std::process::exit(1);
        }
    };
    match &degraded {
        None => {
            solution.verify(&space);
        }
        Some(cert) => {
            let check = verify_certificate_in(&space, &solution, cert);
            if !check.is_valid() {
                eprintln!("error: degraded certificate failed verification: {check:?}");
                std::process::exit(1);
            }
        }
    }

    println!(
        "{} patterns, total weight {:.3}, covering {}/{} records ({:.1}%)",
        solution.size(),
        solution.total_cost,
        solution.covered,
        table.num_rows(),
        100.0 * solution.covered as f64 / table.num_rows().max(1) as f64
    );
    for p in &solution.patterns {
        let rows = space.benefit(p);
        println!(
            "  {}\t({} records, weight {:.3})",
            p.display(&table),
            rows.len(),
            space.cost(&rows)
        );
    }
    eprintln!(
        "considered {} patterns in {} budget guess(es)",
        stats.considered, stats.budget_guesses
    );
    if let Some(ledger) = &ledger {
        if let Some(path) = audit_path {
            let file =
                File::create(path).unwrap_or_else(|e| bail(&format!("cannot create {path}: {e}")));
            let mut w = BufWriter::new(file);
            match ledger.write_jsonl(&mut w) {
                Ok(()) => eprintln!("audit ledger written to {path}"),
                Err(e) => bail(&format!("cannot write {path}: {e}")),
            }
        }
        if explain {
            println!("== decision audit ==");
            print!(
                "{}",
                ledger.render_explain(explain_limit.filter(|&n| n > 0))
            );
        }
        // Certify the greedy prices against the materialized cube: a
        // dual-feasible lower bound on the optimal cost of any solution
        // meeting the coverage target (DESIGN.md §14).
        let cube = enumerate_all(&table, params.cost_fn);
        let target = coverage_target(table.num_rows(), params.coverage);
        let cert = audit::certify(&cube.system, &ledger.prices(), target);
        println!(
            "certified quality: cost {:.3} >= LB {:.3} (alpha {:.3}) -> ratio {:.3}; \
             mean winning margin {:.3} over {} round(s)",
            cert.greedy_cost,
            cert.lower_bound,
            cert.alpha,
            cert.certified_ratio(),
            ledger.mean_margin(),
            ledger.rounds_total()
        );
    }
    if args.flag("metrics") {
        print_metrics(&metrics);
    }
    if let Some(p) = &profiler {
        println!("== span profile ==");
        print!("{}", p.render());
    }
    if let Some(cert) = degraded {
        eprintln!("deadline expired: {cert}");
        eprintln!("certificate verified against the partial solution");
        std::process::exit(exit_code::DEADLINE_DEGRADED);
    }
}

/// How one solve run ended. Carried as a value (instead of exiting at the
/// failure site) so the flight dump, Prometheus export, and trace-sink
/// flush all happen before the process exits non-zero.
enum Outcome {
    /// A printable solution; `Some` certificate means deadline-degraded.
    Solved(PatternSolution, Option<Certificate>),
    /// The instance cannot satisfy the requested constraints.
    Infeasible(scwsc_core::SolveError),
    /// A solver worker panicked twice.
    Faulted(String),
}

/// Exits with the infeasible taxonomy code, printing the solver's own
/// [`Display`](std::fmt::Display) message.
fn infeasible(e: &scwsc_core::SolveError) -> ! {
    exit_with(exit_code::INFEASIBLE, &format!("infeasible: {e}"))
}

/// Classifies a resilience-engine result: `Complete` and `Degraded` both
/// carry a printable solution (the degraded one with its certificate).
fn outcome_of(result: Result<SolveOutcome<PatternSolution>, EngineError>) -> Outcome {
    match result {
        Ok(SolveOutcome::Complete(solution)) => Outcome::Solved(solution, None),
        Ok(SolveOutcome::Degraded(d)) => Outcome::Solved(d.partial, Some(d.certificate)),
        Err(EngineError::Solve(e)) => Outcome::Infeasible(e),
        Err(EngineError::Panicked(msg)) => Outcome::Faulted(msg),
    }
}

/// Writes the flight recorder's post-mortem dump, reporting where it went
/// (dump failures are reported but never mask the run's own exit code).
fn dump_flight(flight: &FlightRecorder, path: &Path) {
    match flight.dump_to_path(path) {
        Ok(()) => eprintln!(
            "flight dump ({} event(s), trace {}) written to {}",
            flight.len(),
            flight.trace_id(),
            path.display()
        ),
        Err(e) => eprintln!("failed to write flight dump {}: {e}", path.display()),
    }
}

/// Prints the aggregated telemetry: counters, then per-phase timings.
fn print_metrics(metrics: &MetricsRecorder) {
    let mut counters = TextTable::new(["counter", "value"]);
    for (name, value) in [
        ("budget guesses", metrics.guesses),
        ("levels entered", metrics.levels_entered),
        ("selections", metrics.selections),
        ("benefits computed", metrics.benefits_computed),
        ("candidates pruned", metrics.candidates_pruned_total()),
        ("subtrees pruned", metrics.subtrees_pruned_total()),
        ("heap stale pops", metrics.heap_stale_pops),
        ("postings scanned", metrics.postings_scanned),
    ] {
        counters.row([name.to_string(), value.to_string()]);
    }
    println!("== metrics ==");
    println!("{}", counters.render());
    if !metrics.marginal_benefit_hist.is_empty() {
        println!(
            "marginal benefit: mean {:.1}, max {}",
            metrics.marginal_benefit_hist.mean(),
            metrics.marginal_benefit_hist.max()
        );
    }
    let mut phases = TextTable::new(["phase", "seconds", "runs"]);
    for p in metrics.phases() {
        phases.row([p.name.to_string(), secs(p.seconds), p.count.to_string()]);
    }
    if !phases.is_empty() {
        println!("{}", phases.render());
    }
}
