//! Table VI: how many patterns the standard greedy *weighted set cover*
//! heuristic needs to reach each coverage threshold — it optimizes cost
//! and coverage but cannot bound the solution size.

use scwsc_bench::cli::{args_or_exit, emit, required};
use scwsc_bench::{experiments, printers};
use scwsc_patterns::CostFn;

const USAGE: &str = "table6_wsc_size [--rows N] [--seed N] [--coverages 0.5,...,0.9] [--csv PATH]";

fn main() {
    let args = args_or_exit(USAGE);
    let rows: usize = required(args.get_or("rows", 50_000));
    let seed: u64 = required(args.get_or("seed", 7));
    let coverages: Vec<f64> = required(args.get_list_or("coverages", &[0.5, 0.6, 0.7, 0.8, 0.9]));
    let table = experiments::workload(rows, seed);
    let rows_out = experiments::wsc_baseline(&table, &coverages, CostFn::Max);
    emit(
        "Table VI: patterns required by standard weighted set cover",
        &printers::table6(&rows_out),
        &args,
    );
}
