//! Runs the full experiment suite (every figure and table of Section VI)
//! and writes the rendered outputs under `results/`.
//!
//! `--quick` shrinks workloads for a smoke run; `--rows`/`--seed` scale
//! the standard run. Expect a few minutes at the defaults in release mode.

use scwsc_bench::cli::{args_or_exit, required};
use scwsc_bench::measure::RunParams;
use scwsc_bench::report::{num, secs, TextTable};
use scwsc_bench::{experiments, printers};
use scwsc_patterns::CostFn;
use std::fs;
use std::path::Path;
use std::time::Instant;

const USAGE: &str = "run_all [--rows N] [--seed N] [--quick] [--out DIR]";

fn save(dir: &Path, name: &str, title: &str, table: &TextTable) {
    let text = format!("== {title} ==\n{}", table.render());
    println!("{text}");
    let path = dir.join(format!("{name}.txt"));
    fs::write(&path, &text).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    let csv_path = dir.join(format!("{name}.csv"));
    fs::write(&csv_path, table.to_csv())
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", csv_path.display()));
    let json_path = dir.join(format!("{name}.json"));
    fs::write(&json_path, table.to_json().to_pretty())
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", json_path.display()));
}

fn main() {
    let args = args_or_exit(USAGE);
    let quick = args.flag("quick");
    let base_rows: usize = required(args.get_or("rows", if quick { 4_000 } else { 100_000 }));
    let seed: u64 = required(args.get_or("seed", 7));
    let out_dir = args.get("out").unwrap_or("results").to_owned();
    let dir = Path::new(&out_dir);
    fs::create_dir_all(dir).expect("cannot create results directory");

    let started = Instant::now();
    let params = RunParams::default();

    // Figures 5 & 6 share one sweep.
    let sizes: Vec<usize> = if quick {
        vec![1_000, 2_000, 4_000]
    } else {
        vec![25_000, 50_000, 100_000, 200_000]
    };
    eprintln!("[1/9] figures 5-6: scaling over {sizes:?}");
    let ms = experiments::scaling(&sizes, seed, &params);
    save(
        dir,
        "fig5_runtime_vs_size",
        "Figure 5: running time (s) vs number of tuples",
        &printers::fig5(&ms),
    );
    save(
        dir,
        "fig6_patterns_considered",
        "Figure 6: patterns considered vs number of tuples",
        &printers::fig6(&ms),
    );

    eprintln!("[2/9] figure 7: attribute scaling");
    let ms = experiments::attrs_scaling(base_rows, seed, &params);
    save(
        dir,
        "fig7_runtime_vs_attrs",
        "Figure 7: running time (s) vs number of attributes",
        &printers::fig7(&ms),
    );

    eprintln!("[3/9] figure 8: k scaling");
    let ks: Vec<usize> = if quick {
        vec![2, 5, 10]
    } else {
        vec![2, 5, 10, 15, 20, 25]
    };
    let ms = experiments::k_scaling(base_rows, seed, &ks, &params);
    save(
        dir,
        "fig8_runtime_vs_k",
        "Figure 8: running time (s) vs maximum number of patterns k",
        &printers::fig8(&ms),
    );

    eprintln!("[4/9] figure 9: coverage scaling");
    let coverages = [0.2, 0.3, 0.4, 0.5, 0.6, 0.7];
    let ms = experiments::coverage_scaling(base_rows, seed, &coverages, &params);
    save(
        dir,
        "fig9_runtime_vs_coverage",
        "Figure 9: running time (s) vs coverage threshold",
        &printers::fig9(&ms),
    );

    eprintln!("[5/9] tables IV-V: quality/time grid");
    let table = experiments::workload(base_rows, seed);
    let t45_coverages = [0.3, 0.4, 0.5, 0.6];
    let grid = experiments::quality_grid(&table, &t45_coverages, 10);
    save(
        dir,
        "table4_solution_quality",
        "Table IV: solution quality (total cost) of CMC and CWSC",
        &printers::grid(&grid, &t45_coverages, |m| num(m.cost)),
    );
    save(
        dir,
        "table5_runtime_comparison",
        "Table V: running time (s) of CMC and CWSC",
        &printers::grid(&grid, &t45_coverages, |m| secs(m.seconds)),
    );

    eprintln!("[6/9] table VI: weighted set cover baseline");
    let wsc_rows = if quick { base_rows } else { 50_000 };
    let wsc_table = experiments::workload(wsc_rows, seed);
    let rows_out = experiments::wsc_baseline(&wsc_table, &[0.5, 0.6, 0.7, 0.8, 0.9], CostFn::Max);
    save(
        dir,
        "table6_wsc_size",
        "Table VI: patterns required by standard weighted set cover",
        &printers::table6(&rows_out),
    );

    eprintln!("[7/9] section VI-C: max coverage comparison");
    let rows_out =
        experiments::maxcov_comparison(&wsc_table, &[0.3, 0.4, 0.5, 0.6], 10, CostFn::Max);
    save(
        dir,
        "sec6c_maxcov_cost",
        "Section VI-C: partial max coverage vs CWSC (total cost)",
        &printers::maxcov(&rows_out),
    );

    eprintln!("[8/9] section VI-B: synthetic weights");
    let deltas = [0.0, 0.25, 0.5, 0.75, 1.0];
    let sigmas = [1.0, 2.0, 3.0, 4.0];
    let rows_out = experiments::perturbed_quality(wsc_rows, seed, 10, 0.3, &deltas, &sigmas);
    save(
        dir,
        "sec6b_synthetic_weights",
        "Section VI-B: CWSC vs CMC on synthetic weight distributions",
        &printers::perturb(&rows_out),
    );

    eprintln!("[9/9] section VI-D: vs optimal");
    let rows_out = experiments::vs_optimal(&[30, 50, 80], seed, 5, 0.5);
    save(
        dir,
        "sec6d_vs_optimal",
        "Section VI-D: comparison to the optimal solution",
        &printers::vs_optimal(&rows_out),
    );

    eprintln!(
        "done in {:.1}s; outputs in {}",
        started.elapsed().as_secs_f64(),
        dir.display()
    );
}
