//! `scwsc_bench` — record and compare `BENCH_*.json` performance
//! snapshots (DESIGN.md §10).
//!
//! ```text
//! scwsc_bench record [--label L] [--reps N] [--quick] [--suite S] [--out PATH]
//! scwsc_bench diff BASE NEW [--tolerance F] [--counters-only]
//! scwsc_bench flight-to-chrome IN OUT
//! ```
//!
//! `record` runs the registered workload suite and writes
//! `BENCH_<label>.json`; `--quick` lowers the rep count to 1 but never
//! the workload scale, so a quick run's deterministic counters still
//! match a committed full baseline. `diff` exits non-zero when the new
//! snapshot regresses: deterministic counters must match exactly,
//! timings and allocations within `--tolerance` (default 0.25).

use scwsc_bench::attribute::attribute;
use scwsc_bench::chrome_trace::flight_to_chrome;
use scwsc_bench::diff::{diff, DiffOptions};
use scwsc_bench::record::record_suite_with_metrics_on;
use scwsc_bench::registry;
use scwsc_bench::serve_load::{self, LoadOptions};
use scwsc_bench::snapshot::Snapshot;
use scwsc_bench::soak::{soak, SoakOptions};
use scwsc_bench::trend::{discover, load_timeline};
use scwsc_core::{render_prometheus, ThreadPool, Threads};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

// Installed here, not in the library: allocation statistics only move in
// binaries that opt into the counting allocator.
#[cfg(feature = "alloc-stats")]
#[global_allocator]
static ALLOC: scwsc_core::telemetry::alloc::CountingAlloc =
    scwsc_core::telemetry::alloc::CountingAlloc;

const USAGE: &str = "\
usage:
  scwsc_bench record [--label L] [--reps N] [--quick] [--suite full|smoke] [--only SUBSTR] [--out PATH] [--threads N] [--export-metrics PATH]
  scwsc_bench diff BASE NEW [--tolerance F] [--counters-only] [--attribute] [--top N]
  scwsc_bench soak [--iters N] [--workload SUBSTR] [--suite full|smoke] [--window W] [--threads N] [--timeline PATH] [--stall-after-ms MS]
  scwsc_bench trend [PATHS...] [--dir DIR] [--gate]
  scwsc_bench serve-load [--addr HOST:PORT] [--connections N] [--requests N] [--distinct N] [--deadline-ms MS] [--max-ticks N] [--retries N] [--timeout-ms MS] [--merge-snapshot PATH] [--label L] [--expect-clean]
  scwsc_bench flight-to-chrome IN OUT

record options:
  --label L     snapshot label and default output name BENCH_<L>.json [default: dev]
  --reps N      timing repetitions per workload [default: 5]
  --quick       one rep per workload (counters are unaffected: the
                workloads themselves never shrink)
  --suite S     workload suite: full | smoke [default: full]
  --only SUBSTR restrict the suite to workloads whose name contains
                SUBSTR (timing probes; such snapshots are not valid
                CI baselines)
  --out PATH    output path [default: BENCH_<label>.json]
  --threads N   worker threads for the solver fan-outs; 1 = serial
                [default: $SCWSC_THREADS, else all cores]. Deterministic
                counters are identical for every N — only timings move.
  --export-metrics PATH  write the suite-wide merged counters/histograms
                in Prometheus text exposition format to PATH

diff options:
  --tolerance F   relative headroom for timings/allocations [default: 0.25]
  --counters-only compare only the deterministic work counters (CI mode)
  --attribute     walk both span trees and counter maps and print the
                  ranked movers (largest |self-time delta| first)
  --top N         rows per attribution section [default: 10]

soak options (continuous-telemetry endurance loop, DESIGN.md §16):
  --iters N       full suite iterations [default: 50]
  --workload SUBSTR  restrict the suite to workloads whose name contains
                  SUBSTR
  --suite S       workload suite: full | smoke [default: smoke]
  --window W      sliding-window width in solves [default: 8]
  --threads N     worker threads for the solver fan-outs [default:
                  $SCWSC_THREADS, else all cores]
  --timeline PATH write a windowed-metrics JSONL timeline (one line per
                  iteration)
  --stall-after-ms MS  watchdog stall threshold [default: 5000]
  exits non-zero when any invariant breaks: non-monotone counters,
  drifting windowed quantiles, leaked allocator bytes, or a stall.

trend options (cross-snapshot trajectory, DESIGN.md §16):
  PATHS...   explicit BENCH_*.json files; when omitted, every
             BENCH_*.json under --dir is loaded
  --dir DIR  directory to scan [default: .]
  --gate     exit non-zero when any workload's latest median regresses
             >10% against its best-ever median

serve-load options (client load generator against a running scwsc_serve,
DESIGN.md §17):
  --addr HOST:PORT  server to load [default: 127.0.0.1:7575]
  --connections N   concurrent connections, barrier-released as one
                    burst [default: 4]
  --requests N      requests per connection [default: 64]
  --distinct N      distinct queries in the deterministic mix (small =
                    cache-heavy, large = admission-heavy) [default: 8]
  --deadline-ms MS  caller deadline forwarded per request
  --max-ticks N     caller tick-budget cap forwarded per request
  --retries N       retries per rejected request, sleeping the server's
                    retry_after_ms hint between attempts [default: 0]
  --timeout-ms MS   per-response wait before declaring the request
                    dropped [default: 30000]
  --merge-snapshot PATH  append/replace a 'serve/load' workload in the
                    BENCH_*.json at PATH (created under --label if absent)
  --label L         label for a freshly created snapshot [default: serve]
  --expect-clean    exit non-zero unless the serving contract held:
                    zero dropped, every degrade certified, every
                    rejection carrying retry_after_ms

flight-to-chrome:
  converts a flight-recorder dump (the JSONL written by scwsc_solve
  --flight-dump) into Chrome tracing JSON: open OUT in chrome://tracing
  or https://ui.perfetto.dev. One process per worker; causal-tree spans
  become nested duration events, buffered ring events become instants.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("record") => cmd_record(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("soak") => cmd_soak(&args[1..]),
        Some("trend") => cmd_trend(&args[1..]),
        Some("serve-load") => cmd_serve_load(&args[1..]),
        Some("flight-to-chrome") => cmd_flight_to_chrome(&args[1..]),
        Some("--help" | "-h" | "help") => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        _ => Err(format!("expected a subcommand\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("scwsc_bench: {msg}");
            ExitCode::from(2)
        }
    }
}

fn cmd_record(args: &[String]) -> Result<ExitCode, String> {
    let mut label = "dev".to_string();
    let mut reps = 5usize;
    let mut quick = false;
    let mut suite_name = "full".to_string();
    let mut only: Option<String> = None;
    let mut out: Option<String> = None;
    let mut threads = Threads::from_env();
    let mut export_metrics: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--label" => label = take(&mut it, "--label")?,
            "--export-metrics" => export_metrics = Some(take(&mut it, "--export-metrics")?),
            "--reps" => {
                reps = take(&mut it, "--reps")?
                    .parse()
                    .map_err(|_| "--reps expects a positive integer".to_string())?
            }
            "--quick" => quick = true,
            "--suite" => suite_name = take(&mut it, "--suite")?,
            "--only" => only = Some(take(&mut it, "--only")?),
            "--out" => out = Some(take(&mut it, "--out")?),
            "--threads" => {
                threads = Threads::new(
                    take(&mut it, "--threads")?
                        .parse()
                        .map_err(|_| "--threads expects a positive integer".to_string())?,
                )
            }
            other => return Err(format!("unknown record option '{other}'\n{USAGE}")),
        }
    }
    if reps == 0 {
        return Err("--reps must be at least 1".to_string());
    }
    if quick {
        reps = 1;
    }
    let mut suite = registry::suite(&suite_name)
        .ok_or_else(|| format!("unknown suite '{suite_name}' (expected full|smoke)"))?;
    if let Some(pat) = &only {
        suite.retain(|w| w.name.contains(pat.as_str()));
        if suite.is_empty() {
            return Err(format!(
                "--only '{pat}' matches no workload in '{suite_name}'"
            ));
        }
    }
    let path = out.unwrap_or_else(|| format!("BENCH_{label}.json"));

    let pool = ThreadPool::new(threads);
    eprintln!(
        "recording suite '{suite_name}' ({} workloads, {reps} rep(s), {} thread(s)) as '{label}'",
        suite.len(),
        pool.threads()
    );
    let (snapshot, metrics) =
        record_suite_with_metrics_on(&suite, &label, reps, &pool, |line| eprintln!("  {line}"));
    std::fs::write(&path, snapshot.to_json().to_pretty())
        .map_err(|e| format!("writing {path}: {e}"))?;
    eprintln!("wrote {path}");
    if let Some(prom_path) = export_metrics {
        std::fs::write(&prom_path, render_prometheus(&metrics, None))
            .map_err(|e| format!("writing {prom_path}: {e}"))?;
        eprintln!("wrote {prom_path}");
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_diff(args: &[String]) -> Result<ExitCode, String> {
    let mut paths: Vec<&String> = Vec::new();
    let mut opts = DiffOptions::default();
    let mut attribute_movers = false;
    let mut top = 10usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tolerance" => {
                opts.tolerance = take(&mut it, "--tolerance")?
                    .parse()
                    .map_err(|_| "--tolerance expects a number".to_string())?
            }
            "--counters-only" => opts.counters_only = true,
            "--attribute" => attribute_movers = true,
            "--top" => {
                top = take(&mut it, "--top")?
                    .parse()
                    .map_err(|_| "--top expects a positive integer".to_string())?
            }
            other if !other.starts_with("--") => paths.push(arg),
            other => return Err(format!("unknown diff option '{other}'\n{USAGE}")),
        }
    }
    let [base_path, new_path] = paths.as_slice() else {
        return Err(format!("diff expects exactly two snapshot paths\n{USAGE}"));
    };
    let base = load(base_path)?;
    let new = load(new_path)?;
    let report = diff(&base, &new, &opts);
    print!(
        "{} ({} @ {}) vs {} ({} @ {})\n{}",
        base_path,
        base.label,
        short(&base.git_sha),
        new_path,
        new.label,
        short(&new.git_sha),
        report.render()
    );
    if attribute_movers {
        print!("{}", attribute(&base, &new).render(top));
    }
    Ok(if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_soak(args: &[String]) -> Result<ExitCode, String> {
    let mut opts = SoakOptions::default();
    let mut suite_name = "smoke".to_string();
    let mut only: Option<String> = None;
    let mut threads = Threads::from_env();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--iters" => {
                opts.iters = take(&mut it, "--iters")?
                    .parse()
                    .map_err(|_| "--iters expects a positive integer".to_string())?
            }
            "--workload" => only = Some(take(&mut it, "--workload")?),
            "--suite" => suite_name = take(&mut it, "--suite")?,
            "--window" => {
                opts.window = take(&mut it, "--window")?
                    .parse()
                    .map_err(|_| "--window expects a positive integer".to_string())?
            }
            "--threads" => {
                threads = Threads::new(
                    take(&mut it, "--threads")?
                        .parse()
                        .map_err(|_| "--threads expects a positive integer".to_string())?,
                )
            }
            "--timeline" => opts.timeline = Some(PathBuf::from(take(&mut it, "--timeline")?)),
            "--stall-after-ms" => {
                opts.stall_after = Duration::from_millis(
                    take(&mut it, "--stall-after-ms")?
                        .parse()
                        .map_err(|_| "--stall-after-ms expects milliseconds".to_string())?,
                )
            }
            other => return Err(format!("unknown soak option '{other}'\n{USAGE}")),
        }
    }
    let mut suite = registry::suite(&suite_name)
        .ok_or_else(|| format!("unknown suite '{suite_name}' (expected full|smoke)"))?;
    if let Some(pat) = &only {
        suite.retain(|w| w.name.contains(pat.as_str()));
        if suite.is_empty() {
            return Err(format!(
                "--workload '{pat}' matches no workload in '{suite_name}'"
            ));
        }
    }
    let pool = ThreadPool::new(threads);
    eprintln!(
        "soaking suite '{suite_name}' ({} workloads, {} iterations, window {}, {} thread(s))",
        suite.len(),
        opts.iters,
        opts.window,
        pool.threads()
    );
    let report = soak(&suite, &opts, &pool, |line| eprintln!("  {line}"))?;
    println!("{}", report.render());
    Ok(ExitCode::SUCCESS)
}

fn cmd_trend(args: &[String]) -> Result<ExitCode, String> {
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut dir = ".".to_string();
    let mut gate = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--gate" => gate = true,
            "--dir" => dir = take(&mut it, "--dir")?,
            other if !other.starts_with("--") => paths.push(PathBuf::from(other)),
            other => return Err(format!("unknown trend option '{other}'\n{USAGE}")),
        }
    }
    if paths.is_empty() {
        paths = discover(std::path::Path::new(&dir))?;
    }
    let report = load_timeline(&paths)?;
    print!("{}", report.render());
    Ok(if report.ok() || !gate {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_serve_load(args: &[String]) -> Result<ExitCode, String> {
    let mut options = LoadOptions::default();
    let mut merge_snapshot: Option<String> = None;
    let mut label = "serve".to_string();
    let mut expect_clean = false;
    let parse_num = |flag: &str, value: String| -> Result<u64, String> {
        value
            .parse()
            .map_err(|_| format!("{flag} expects a non-negative integer"))
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => options.addr = take(&mut it, "--addr")?,
            "--connections" => {
                options.connections =
                    parse_num("--connections", take(&mut it, "--connections")?)?.max(1) as usize
            }
            "--requests" => {
                options.requests = parse_num("--requests", take(&mut it, "--requests")?)? as usize
            }
            "--distinct" => {
                options.distinct =
                    parse_num("--distinct", take(&mut it, "--distinct")?)?.max(1) as usize
            }
            "--deadline-ms" => {
                options.deadline_ms =
                    Some(parse_num("--deadline-ms", take(&mut it, "--deadline-ms")?)?)
            }
            "--max-ticks" => {
                options.max_ticks = Some(parse_num("--max-ticks", take(&mut it, "--max-ticks")?)?)
            }
            "--retries" => {
                options.retries = parse_num("--retries", take(&mut it, "--retries")?)? as u32
            }
            "--timeout-ms" => {
                options.timeout = Duration::from_millis(parse_num(
                    "--timeout-ms",
                    take(&mut it, "--timeout-ms")?,
                )?)
            }
            "--merge-snapshot" => merge_snapshot = Some(take(&mut it, "--merge-snapshot")?),
            "--label" => label = take(&mut it, "--label")?,
            "--expect-clean" => expect_clean = true,
            other => return Err(format!("unknown serve-load option '{other}'\n{USAGE}")),
        }
    }
    eprintln!(
        "serve-load: {} connections x {} requests ({} distinct queries) against {}",
        options.connections, options.requests, options.distinct, options.addr
    );
    let report = serve_load::run(&options)?;
    print!("{}", report.render());
    if let Some(path) = merge_snapshot {
        serve_load::merge_into_snapshot(&path, &label, &options, &report)?;
        eprintln!("merged 'serve/load' workload into {path}");
    }
    Ok(if report.ok() || !expect_clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_flight_to_chrome(args: &[String]) -> Result<ExitCode, String> {
    let [input, output] = args else {
        return Err(format!(
            "flight-to-chrome expects exactly two paths (IN OUT)\n{USAGE}"
        ));
    };
    let dump = std::fs::read_to_string(input).map_err(|e| format!("reading {input}: {e}"))?;
    let trace = flight_to_chrome(&dump).map_err(|e| format!("{input}: {e}"))?;
    std::fs::write(output, trace.to_pretty()).map_err(|e| format!("writing {output}: {e}"))?;
    let n = trace
        .get("traceEvents")
        .and_then(|t| t.as_arr())
        .map_or(0, <[_]>::len);
    eprintln!("wrote {output} ({n} trace events) — load it in chrome://tracing or ui.perfetto.dev");
    Ok(ExitCode::SUCCESS)
}

fn load(path: &str) -> Result<Snapshot, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    Snapshot::parse(&text).map_err(|e| format!("parsing {path}: {e}"))
}

fn short(sha: &str) -> &str {
    &sha[..sha.len().min(12)]
}

fn take(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<String, String> {
    it.next()
        .cloned()
        .ok_or_else(|| format!("{flag} expects a value"))
}
