//! Figure 7: running time vs the number of pattern attributes (removing
//! one attribute of the 5-attribute LBL schema at a time).

use scwsc_bench::cli::{args_or_exit, emit, required};
use scwsc_bench::measure::RunParams;
use scwsc_bench::{experiments, printers};

const USAGE: &str =
    "fig7_runtime_vs_attrs [--rows N] [--seed N] [--k N] [--coverage F] [--b F] [--eps F] [--csv PATH]";

fn main() {
    let args = args_or_exit(USAGE);
    let rows: usize = required(args.get_or("rows", 100_000));
    let seed: u64 = required(args.get_or("seed", 7));
    let params = RunParams {
        k: required(args.get_or("k", 10)),
        coverage: required(args.get_or("coverage", 0.3)),
        b: required(args.get_or("b", 1.0)),
        eps: required(args.get_or("eps", 1.0)),
        ..RunParams::default()
    };
    let ms = experiments::attrs_scaling(rows, seed, &params);
    emit(
        "Figure 7: running time (s) vs number of attributes",
        &printers::fig7(&ms),
        &args,
    );
}
