//! Figure 6: number of patterns considered vs data size (the reason the
//! Section V-C optimizations win: far fewer benefit-set materializations).

use scwsc_bench::cli::{args_or_exit, emit, required};
use scwsc_bench::measure::RunParams;
use scwsc_bench::{experiments, printers};

const USAGE: &str = "fig6_patterns_considered [--sizes 25000,50000,...] [--seed N] [--k N] \
[--coverage F] [--b F] [--eps F] [--csv PATH]";

fn main() {
    let args = args_or_exit(USAGE);
    let sizes: Vec<usize> =
        required(args.get_list_or("sizes", &[25_000, 50_000, 100_000, 200_000]));
    let seed: u64 = required(args.get_or("seed", 7));
    let params = RunParams {
        k: required(args.get_or("k", 10)),
        coverage: required(args.get_or("coverage", 0.3)),
        b: required(args.get_or("b", 1.0)),
        eps: required(args.get_or("eps", 1.0)),
        ..RunParams::default()
    };
    let ms = experiments::scaling(&sizes, seed, &params);
    emit(
        "Figure 6: patterns considered vs number of tuples",
        &printers::fig6(&ms),
        &args,
    );
}
