//! Figure 9: running time vs the coverage threshold ŝ — flat for CWSC,
//! increasing for CMC (harder coverage needs more budget guesses).

use scwsc_bench::cli::{args_or_exit, emit, required};
use scwsc_bench::measure::RunParams;
use scwsc_bench::{experiments, printers};

const USAGE: &str =
    "fig9_runtime_vs_coverage [--rows N] [--seed N] [--coverages 0.2,0.3,...] [--k N] [--b F] [--eps F] [--csv PATH]";

fn main() {
    let args = args_or_exit(USAGE);
    let rows: usize = required(args.get_or("rows", 100_000));
    let seed: u64 = required(args.get_or("seed", 7));
    let coverages: Vec<f64> =
        required(args.get_list_or("coverages", &[0.2, 0.3, 0.4, 0.5, 0.6, 0.7]));
    let base = RunParams {
        k: required(args.get_or("k", 10)),
        b: required(args.get_or("b", 1.0)),
        eps: required(args.get_or("eps", 1.0)),
        ..RunParams::default()
    };
    let ms = experiments::coverage_scaling(rows, seed, &coverages, &base);
    emit(
        "Figure 9: running time (s) vs coverage threshold",
        &printers::fig9(&ms),
        &args,
    );
}
