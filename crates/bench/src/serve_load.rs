//! `scwsc_bench serve-load` — client-side load generator for a running
//! `scwsc_serve` instance (DESIGN.md §17).
//!
//! Opens `connections` concurrent TCP connections, releases them through
//! a barrier so the first volley lands as one burst, and drives a
//! deterministic query mix through each. Every request is tracked until
//! it is *answered* (any of the four protocol statuses) or times out —
//! the generator's core assertion is the serving contract itself:
//!
//! > zero dropped requests: `sent == complete + degraded + rejected +
//! > errors`, every degraded answer certificate-verified, every
//! > rejection carrying an explicit `retry_after_ms`.
//!
//! The report aggregates latency percentiles (p50/p99), the degraded
//! and reject rates, cache-hit and brownout-tier observations. With
//! `--merge-snapshot` the run is appended to a `BENCH_*.json` document
//! as a `serve/load` workload so `scwsc_bench trend` tracks serving
//! throughput alongside the solver workloads; only configuration-derived
//! counters are stored there (admission outcomes depend on wall-clock
//! interleaving, so they stay out of the exact-compare counter map).

use crate::snapshot::{Snapshot, SpanSnapshot, WorkloadRun};
use scwsc_core::solver::{CostModel, Query};
use scwsc_serve::{Request, Response, Status};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

/// Load-generator knobs (`scwsc_bench serve-load` flags).
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// Server address, e.g. `127.0.0.1:7575`.
    pub addr: String,
    /// Concurrent connections (each on its own thread).
    pub connections: usize,
    /// Requests per connection.
    pub requests: usize,
    /// Distinct queries in the deterministic mix. Small values drive the
    /// result cache hard; large values drive admission hard.
    pub distinct: usize,
    /// Per-request caller deadline forwarded on the wire (`None` uses
    /// the server default).
    pub deadline_ms: Option<u64>,
    /// Per-request tick-budget cap forwarded on the wire.
    pub max_ticks: Option<u64>,
    /// Retries per rejected request, honoring the server's
    /// `retry_after_ms` hint between attempts. 0 counts rejections as
    /// terminal answers (they still satisfy the no-drop contract).
    pub retries: u32,
    /// How long to wait for one response line before declaring the
    /// request dropped (the contract violation this tool exists to
    /// detect).
    pub timeout: Duration,
}

impl Default for LoadOptions {
    fn default() -> LoadOptions {
        LoadOptions {
            addr: "127.0.0.1:7575".to_string(),
            connections: 4,
            requests: 64,
            distinct: 8,
            deadline_ms: None,
            max_ticks: None,
            retries: 0,
            timeout: Duration::from_secs(30),
        }
    }
}

/// The deterministic query mix: request `i` of the run maps to one of
/// `distinct` queries, cycling algorithms, sizes, coverage targets and
/// cost models so both solver paths and the cache canonicalizer are
/// exercised. Pure function of `(i, distinct)` — every run of the same
/// shape sends the same queries in the same per-connection order.
pub fn query_mix(i: usize, distinct: usize) -> Query {
    let d = i % distinct.max(1);
    let coverage = 0.3 + 0.05 * (d % 8) as f64;
    let k = 2 + d % 3;
    let mut query = if d.is_multiple_of(2) {
        Query::cwsc(k, coverage)
    } else {
        Query::cmc(k, coverage)
    };
    query.cost = match d % 4 {
        0 => CostModel::Max,
        1 => CostModel::Sum,
        2 => CostModel::Mean,
        _ => CostModel::Count,
    };
    query
}

/// Aggregated outcome of one load run.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Requests sent (retries of a rejected request count once).
    pub sent: u64,
    /// Requests that received a terminal response line.
    pub answered: u64,
    /// Requests that timed out or lost their connection — contract
    /// violations unless a fault plan injected the disconnect.
    pub dropped: u64,
    /// Terminal `complete` responses.
    pub complete: u64,
    /// Terminal `degraded` responses.
    pub degraded: u64,
    /// Terminal `rejected` responses (retries exhausted or disabled).
    pub rejected: u64,
    /// Terminal `error` responses.
    pub errors: u64,
    /// Responses served from the result cache.
    pub cached: u64,
    /// Rejections that were retried after their `retry_after_ms` hint.
    pub retried: u64,
    /// Degraded answers whose certificate did **not** re-verify
    /// (`answer.certified != Some(true)`) — contract violations.
    pub uncertified_degraded: u64,
    /// Rejections missing the mandatory `retry_after_ms` — contract
    /// violations.
    pub rejects_without_hint: u64,
    /// Highest brownout tier observed across responses.
    pub max_tier: u8,
    /// Responses that reported a retried panic isolation (attempts ≥ 2).
    pub panics_retried: u64,
    /// Per-request end-to-end latencies in milliseconds, sorted
    /// ascending (terminal answers only).
    pub latencies_ms: Vec<f64>,
    /// Wall clock of the whole run.
    pub elapsed: Duration,
}

impl LoadReport {
    /// The `q`-quantile (0..=1) of the latency distribution, 0 when no
    /// request was answered. Nearest-rank on the sorted latencies.
    pub fn latency_quantile(&self, q: f64) -> f64 {
        if self.latencies_ms.is_empty() {
            return 0.0;
        }
        let rank = ((self.latencies_ms.len() as f64) * q).ceil() as usize;
        self.latencies_ms[rank.clamp(1, self.latencies_ms.len()) - 1]
    }

    /// Fraction of terminal answers that came back degraded.
    pub fn degraded_rate(&self) -> f64 {
        if self.answered == 0 {
            0.0
        } else {
            self.degraded as f64 / self.answered as f64
        }
    }

    /// Fraction of terminal answers that were rejections.
    pub fn reject_rate(&self) -> f64 {
        if self.answered == 0 {
            0.0
        } else {
            self.rejected as f64 / self.answered as f64
        }
    }

    /// Whether the run upheld the serving contract: nothing dropped,
    /// every degrade certified, every rejection carrying its retry hint.
    pub fn ok(&self) -> bool {
        self.dropped == 0 && self.uncertified_degraded == 0 && self.rejects_without_hint == 0
    }

    /// Human-readable summary block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "serve-load: {} sent, {} answered, {} dropped in {:.2}s ({:.0} req/s)\n",
            self.sent,
            self.answered,
            self.dropped,
            self.elapsed.as_secs_f64(),
            self.answered as f64 / self.elapsed.as_secs_f64().max(1e-9),
        ));
        out.push_str(&format!(
            "  complete {}  degraded {} ({:.1}%)  rejected {} ({:.1}%)  errors {}\n",
            self.complete,
            self.degraded,
            100.0 * self.degraded_rate(),
            self.rejected,
            100.0 * self.reject_rate(),
            self.errors,
        ));
        out.push_str(&format!(
            "  latency p50 {:.2}ms  p99 {:.2}ms  cache hits {}  retried rejects {}  max tier {}  panics retried {}\n",
            self.latency_quantile(0.50),
            self.latency_quantile(0.99),
            self.cached,
            self.retried,
            self.max_tier,
            self.panics_retried,
        ));
        if self.ok() {
            out.push_str("  contract: OK (zero dropped, degrades certified, rejects hinted)\n");
        } else {
            out.push_str(&format!(
                "  contract: VIOLATED (dropped {}, uncertified degrades {}, rejects without retry_after {})\n",
                self.dropped, self.uncertified_degraded, self.rejects_without_hint,
            ));
        }
        out
    }

    fn absorb(&mut self, response: &Response) {
        self.answered += 1;
        match response.status {
            Status::Complete => self.complete += 1,
            Status::Degraded => {
                self.degraded += 1;
                let certified = response
                    .answer
                    .as_ref()
                    .is_some_and(|a| a.certified == Some(true));
                if !certified {
                    self.uncertified_degraded += 1;
                }
            }
            Status::Rejected => {
                self.rejected += 1;
                if response.retry_after_ms.is_none() {
                    self.rejects_without_hint += 1;
                }
            }
            Status::Error => self.errors += 1,
        }
        if response.cached {
            self.cached += 1;
        }
        if response.attempts >= 2 {
            self.panics_retried += 1;
        }
        self.max_tier = self.max_tier.max(response.tier);
    }

    fn merge(&mut self, other: LoadReport) {
        self.sent += other.sent;
        self.answered += other.answered;
        self.dropped += other.dropped;
        self.complete += other.complete;
        self.degraded += other.degraded;
        self.rejected += other.rejected;
        self.errors += other.errors;
        self.cached += other.cached;
        self.retried += other.retried;
        self.uncertified_degraded += other.uncertified_degraded;
        self.rejects_without_hint += other.rejects_without_hint;
        self.max_tier = self.max_tier.max(other.max_tier);
        self.panics_retried += other.panics_retried;
        self.latencies_ms.extend(other.latencies_ms);
    }
}

/// One client connection: a buffered line reader over a read-timeout
/// socket. Partial lines are accumulated across timeouts — the overall
/// per-request deadline, not any single `read` return, decides a drop.
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    timeout: Duration,
}

impl Client {
    fn connect(addr: &str, timeout: Duration) -> Result<Client, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connecting {addr}: {e}"))?;
        stream.set_nodelay(true).ok();
        stream
            .set_read_timeout(Some(Duration::from_millis(50)))
            .map_err(|e| format!("read timeout: {e}"))?;
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| format!("cloning stream: {e}"))?,
        );
        Ok(Client {
            stream,
            reader,
            timeout,
        })
    }

    /// Sends one request and waits for its terminal response. `Ok(None)`
    /// means dropped: the deadline passed or the connection died without
    /// a response line.
    fn round_trip(&mut self, request: &Request) -> Result<Option<Response>, String> {
        let mut line = request.to_line();
        line.push('\n');
        if self.stream.write_all(line.as_bytes()).is_err() {
            return Ok(None);
        }
        let deadline = Instant::now() + self.timeout;
        let mut buf = String::new();
        loop {
            match self.reader.read_line(&mut buf) {
                Ok(0) => return Ok(None), // server closed mid-request
                Ok(_) if buf.ends_with('\n') => break,
                Ok(_) => {} // partial line: keep accumulating
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    if Instant::now() >= deadline {
                        return Ok(None); // dropped: the contract violation
                    }
                }
                Err(_) => return Ok(None),
            }
        }
        Response::parse(buf.trim_end()).map(Some)
    }
}

/// Drives one connection's share of the load. Rejected responses are
/// retried up to `options.retries` times after sleeping the server's
/// `retry_after_ms` hint; everything else is terminal on first answer.
fn drive_connection(
    options: &LoadOptions,
    connection: usize,
    start: &Barrier,
) -> Result<LoadReport, String> {
    let mut client = Client::connect(&options.addr, options.timeout)?;
    let mut report = LoadReport::default();
    start.wait(); // the burst: all connections fire together
    for i in 0..options.requests {
        let global = connection * options.requests + i;
        let mut request = Request::new(global as u64, query_mix(global, options.distinct));
        request.deadline_ms = options.deadline_ms;
        request.max_ticks = options.max_ticks;
        report.sent += 1;
        let sent_at = Instant::now();
        let mut attempts_left = options.retries;
        loop {
            match client.round_trip(&request)? {
                None => {
                    report.dropped += 1;
                    // The connection is unusable after a drop (any late
                    // response line would desynchronize the stream);
                    // reconnect for the remaining requests.
                    client = Client::connect(&options.addr, options.timeout)?;
                    break;
                }
                Some(response) if response.status == Status::Rejected && attempts_left > 0 => {
                    attempts_left -= 1;
                    report.retried += 1;
                    std::thread::sleep(Duration::from_millis(
                        response.retry_after_ms.unwrap_or(10).min(1_000),
                    ));
                }
                Some(response) => {
                    report.absorb(&response);
                    report
                        .latencies_ms
                        .push(sent_at.elapsed().as_secs_f64() * 1e3);
                    break;
                }
            }
        }
    }
    Ok(report)
}

/// Runs the load against `options.addr` and aggregates the per-connection
/// reports. Fails only on setup errors (cannot connect, malformed
/// response); contract violations are *reported*, not errored, so the
/// caller can render the summary before gating on [`LoadReport::ok`].
pub fn run(options: &LoadOptions) -> Result<LoadReport, String> {
    let start = Arc::new(Barrier::new(options.connections));
    let failures: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let began = Instant::now();
    let mut report = LoadReport::default();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for connection in 0..options.connections {
            let start = Arc::clone(&start);
            let failures = Arc::clone(&failures);
            handles.push(scope.spawn(move || {
                match drive_connection(options, connection, &start) {
                    Ok(report) => Some(report),
                    Err(e) => {
                        failures.lock().unwrap().push(e);
                        None
                    }
                }
            }));
        }
        for handle in handles {
            if let Some(partial) = handle.join().unwrap_or(None) {
                report.merge(partial);
            }
        }
    });
    let failures = failures.lock().unwrap();
    if let Some(first) = failures.first() {
        return Err(format!(
            "{} connection(s) failed; first: {first}",
            failures.len()
        ));
    }
    report.elapsed = began.elapsed();
    report.latencies_ms.sort_by(f64::total_cmp);
    Ok(report)
}

/// Converts a run into the `serve/load` snapshot workload. Counters hold
/// only configuration-derived values (plus `answered`, which the no-drop
/// contract pins to `sent`): admission outcomes depend on wall-clock
/// interleaving and would make exact counter comparison brittle. The
/// latency distribution rides in `rep_secs` (seconds per answered
/// request) where diff/trend apply their toleranced gates.
pub fn workload_run(options: &LoadOptions, report: &LoadReport) -> WorkloadRun {
    let mut counters = BTreeMap::new();
    counters.insert("connections".to_string(), options.connections as u64);
    counters.insert(
        "requests".to_string(),
        (options.connections * options.requests) as u64,
    );
    counters.insert("distinct_queries".to_string(), options.distinct as u64);
    counters.insert("answered".to_string(), report.answered);
    WorkloadRun {
        name: "serve/load".to_string(),
        rep_secs: vec![
            report.latency_quantile(0.50) / 1e3,
            report.latency_quantile(0.99) / 1e3,
            report.elapsed.as_secs_f64() / report.answered.max(1) as f64,
        ],
        counters,
        spans: SpanSnapshot {
            name: "total".to_string(),
            count: report.answered,
            total_secs: report.elapsed.as_secs_f64(),
            counters: BTreeMap::new(),
            children: Vec::new(),
        },
        alloc: None,
        quality: None,
    }
}

/// Merges the run into the `BENCH_*.json` document at `path`, replacing
/// any previous `serve/load` workload. When the file does not exist a
/// fresh single-workload snapshot is created under `label`.
pub fn merge_into_snapshot(
    path: &str,
    label: &str,
    options: &LoadOptions,
    report: &LoadReport,
) -> Result<(), String> {
    let mut snapshot = match std::fs::read_to_string(path) {
        Ok(text) => Snapshot::parse(&text).map_err(|e| format!("parsing {path}: {e}"))?,
        Err(e) if e.kind() == ErrorKind::NotFound => Snapshot {
            label: label.to_string(),
            git_sha: crate::snapshot::git_sha(),
            rustc: crate::snapshot::rustc_version(),
            reps: 1,
            workloads: Vec::new(),
        },
        Err(e) => return Err(format!("reading {path}: {e}")),
    };
    let run = workload_run(options, report);
    match snapshot.workloads.iter_mut().find(|w| w.name == run.name) {
        Some(existing) => *existing = run,
        None => snapshot.workloads.push(run),
    }
    std::fs::write(path, snapshot.to_json().to_pretty()).map_err(|e| format!("writing {path}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use scwsc_core::solver::Algorithm;

    #[test]
    fn query_mix_is_deterministic_and_cycles() {
        for i in 0..32 {
            assert_eq!(query_mix(i, 8), query_mix(i + 8, 8));
            assert_eq!(query_mix(i, 8), query_mix(i, 8));
        }
        let distinct: std::collections::BTreeSet<String> = (0..64)
            .map(|i| scwsc_serve::canonical_key(&query_mix(i, 8)))
            .collect();
        assert_eq!(distinct.len(), 8, "8 distinct canonical queries");
        assert!((0..8).any(|i| query_mix(i, 8).algorithm == Algorithm::Cwsc));
        assert!((0..8).any(|i| query_mix(i, 8).algorithm == Algorithm::Cmc));
    }

    #[test]
    fn quantiles_use_nearest_rank() {
        let report = LoadReport {
            latencies_ms: vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0],
            ..LoadReport::default()
        };
        assert_eq!(report.latency_quantile(0.50), 5.0);
        assert_eq!(report.latency_quantile(0.99), 10.0);
        assert_eq!(report.latency_quantile(1.0), 10.0);
        assert_eq!(LoadReport::default().latency_quantile(0.5), 0.0);
    }

    #[test]
    fn contract_check_flags_each_violation() {
        let mut report = LoadReport::default();
        assert!(report.ok());
        report.dropped = 1;
        assert!(!report.ok());
        report.dropped = 0;
        report.uncertified_degraded = 1;
        assert!(!report.ok());
        report.uncertified_degraded = 0;
        report.rejects_without_hint = 1;
        assert!(!report.ok());
    }

    #[test]
    fn workload_run_keeps_only_deterministic_counters() {
        let options = LoadOptions {
            connections: 2,
            requests: 8,
            ..LoadOptions::default()
        };
        let report = LoadReport {
            sent: 16,
            answered: 16,
            complete: 10,
            degraded: 4,
            rejected: 2,
            latencies_ms: vec![1.0; 16],
            elapsed: Duration::from_millis(100),
            ..LoadReport::default()
        };
        let run = workload_run(&options, &report);
        assert_eq!(run.name, "serve/load");
        assert_eq!(run.counters.get("requests"), Some(&16));
        assert_eq!(run.counters.get("answered"), Some(&16));
        assert!(
            !run.counters.contains_key("degraded"),
            "timing-dependent outcomes stay out of the exact-compare map"
        );
        assert_eq!(run.rep_secs.len(), 3);
        assert_eq!(run.spans.count, 16);
    }

    #[test]
    fn merge_creates_then_replaces_the_serve_workload() {
        let dir = std::env::temp_dir().join(format!("scwsc-serve-load-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_test.json");
        let path = path.to_str().unwrap();
        let options = LoadOptions::default();
        let mut report = LoadReport {
            sent: 4,
            answered: 4,
            latencies_ms: vec![1.0; 4],
            elapsed: Duration::from_millis(10),
            ..LoadReport::default()
        };
        merge_into_snapshot(path, "test", &options, &report).unwrap();
        let snapshot = Snapshot::parse(&std::fs::read_to_string(path).unwrap()).unwrap();
        assert_eq!(snapshot.label, "test");
        assert_eq!(snapshot.workload("serve/load").unwrap().spans.count, 4);

        report.answered = 8;
        merge_into_snapshot(path, "ignored", &options, &report).unwrap();
        let snapshot = Snapshot::parse(&std::fs::read_to_string(path).unwrap()).unwrap();
        assert_eq!(snapshot.label, "test", "existing label wins");
        assert_eq!(snapshot.workloads.len(), 1, "replaced, not duplicated");
        assert_eq!(snapshot.workload("serve/load").unwrap().spans.count, 8);
        std::fs::remove_file(path).ok();
    }
}
