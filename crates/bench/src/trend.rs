//! Cross-snapshot perf-trend analytics behind `scwsc_bench trend`
//! (DESIGN.md §16).
//!
//! `diff` compares exactly two snapshots; `trend` reads *every* committed
//! `BENCH_*.json` (schema 1 and 2), orders them chronologically by git
//! commit time, and renders per-workload trajectories — median runtime,
//! allocator traffic, and certified quality ratio — with per-hop deltas.
//! A workload whose latest median regresses more than
//! [`REGRESSION_THRESHOLD`] against its best-ever median is flagged;
//! under `--gate` any flag fails the run, which is how CI notices a slow
//! leak of performance that no single two-snapshot diff would catch.

use crate::report::TextTable;
use crate::snapshot::Snapshot;
use std::path::{Path, PathBuf};
use std::process::Command;

/// Latest-vs-best-ever runtime ratio above which a workload is flagged
/// as regressed (`1.10` = 10% slower than its best recorded median).
pub const REGRESSION_THRESHOLD: f64 = 1.10;

/// One snapshot file placed on the timeline.
#[derive(Debug, Clone)]
pub struct TrendPoint {
    /// File the snapshot came from.
    pub path: PathBuf,
    /// Snapshot label (column header in the tables).
    pub label: String,
    /// Unix seconds of the file's last git commit (or file mtime when the
    /// file is untracked), used only for ordering.
    pub committed_at: u64,
    /// The parsed snapshot.
    pub snapshot: Snapshot,
}

/// A workload's latest median regressing against its best-ever median.
#[derive(Debug, Clone)]
pub struct Regression {
    /// Workload name.
    pub workload: String,
    /// Best-ever median seconds and the label it came from.
    pub best: (f64, String),
    /// Latest median seconds and the label it came from.
    pub latest: (f64, String),
}

impl Regression {
    /// Latest / best runtime ratio.
    pub fn ratio(&self) -> f64 {
        self.latest.0 / self.best.0
    }
}

/// The assembled trajectory report.
#[derive(Debug, Clone)]
pub struct TrendReport {
    /// Snapshots in chronological order.
    pub points: Vec<TrendPoint>,
    /// Workloads flagged against [`REGRESSION_THRESHOLD`].
    pub regressions: Vec<Regression>,
}

/// Lists `BENCH_*.json` files directly under `dir`, sorted by name for a
/// deterministic starting order before the chronological sort.
pub fn discover(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut found = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("reading {}: {e}", dir.display()))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with("BENCH_") && name.ends_with(".json") {
            found.push(entry.path());
        }
    }
    found.sort();
    Ok(found)
}

/// The file's last git commit time (`%ct`), falling back to filesystem
/// mtime for untracked files so a freshly recorded snapshot still sorts
/// after the committed history.
fn committed_at(path: &Path) -> u64 {
    let from_git = Command::new("git")
        .args(["log", "-1", "--format=%ct", "--"])
        .arg(path)
        .current_dir(path.parent().unwrap_or(Path::new(".")))
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .and_then(|s| s.trim().parse::<u64>().ok());
    from_git.unwrap_or_else(|| {
        std::fs::metadata(path)
            .and_then(|m| m.modified())
            .ok()
            .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
            .map(|d| d.as_secs())
            .unwrap_or(0)
    })
}

/// Loads and chronologically orders the given snapshot files.
pub fn load_timeline(paths: &[PathBuf]) -> Result<TrendReport, String> {
    if paths.is_empty() {
        return Err("no BENCH_*.json snapshots found".to_string());
    }
    let mut points = Vec::with_capacity(paths.len());
    for path in paths {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let snapshot =
            Snapshot::parse(&text).map_err(|e| format!("parsing {}: {e}", path.display()))?;
        points.push(TrendPoint {
            path: path.clone(),
            label: snapshot.label.clone(),
            committed_at: committed_at(path),
            snapshot,
        });
    }
    // Stable sort: files with equal commit times keep their name order.
    points.sort_by_key(|p| p.committed_at);
    let regressions = find_regressions(&points);
    Ok(TrendReport {
        points,
        regressions,
    })
}

/// Workload names across all points, in first-seen chronological order.
fn workload_names(points: &[TrendPoint]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for point in points {
        for w in &point.snapshot.workloads {
            if !names.iter().any(|n| n == &w.name) {
                names.push(w.name.clone());
            }
        }
    }
    names
}

fn find_regressions(points: &[TrendPoint]) -> Vec<Regression> {
    let Some(latest) = points.last() else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for name in workload_names(points) {
        let Some(last_run) = latest.snapshot.workload(&name) else {
            continue; // workload dropped from the suite; nothing to gate
        };
        let mut best: Option<(f64, String)> = None;
        for point in points {
            if let Some(run) = point.snapshot.workload(&name) {
                let median = run.median_secs();
                if median > 0.0 && best.as_ref().is_none_or(|(b, _)| median < *b) {
                    best = Some((median, point.label.clone()));
                }
            }
        }
        let Some(best) = best else { continue };
        let latest_median = last_run.median_secs();
        if latest_median > best.0 * REGRESSION_THRESHOLD {
            out.push(Regression {
                workload: name,
                best,
                latest: (latest_median, latest.label.clone()),
            });
        }
    }
    out
}

/// A first-column cell, then "value (delta%)" cells against the previous
/// point that had the workload.
fn delta_cell(value: f64, prev: Option<f64>, fmt: impl Fn(f64) -> String) -> String {
    match prev {
        Some(p) if p > 0.0 => {
            let pct = (value / p - 1.0) * 100.0;
            format!("{} ({:+.1}%)", fmt(value), pct)
        }
        _ => fmt(value),
    }
}

impl TrendReport {
    /// True when no workload regressed past the threshold.
    pub fn ok(&self) -> bool {
        self.regressions.is_empty()
    }

    fn table(
        &self,
        names: &[String],
        value: impl Fn(&crate::snapshot::WorkloadRun) -> Option<f64>,
        fmt: impl Fn(f64) -> String,
    ) -> TextTable {
        let mut header = vec!["workload".to_string()];
        header.extend(self.points.iter().map(|p| p.label.clone()));
        let mut table = TextTable::new(header);
        for name in names {
            let mut cells = vec![name.clone()];
            let mut prev: Option<f64> = None;
            for point in &self.points {
                match point.snapshot.workload(name).and_then(&value) {
                    Some(v) => {
                        cells.push(delta_cell(v, prev, &fmt));
                        prev = Some(v);
                    }
                    None => cells.push("-".to_string()),
                }
            }
            table.row(cells);
        }
        table
    }

    /// Renders the trajectory tables and the regression verdict.
    pub fn render(&self) -> String {
        let names = workload_names(&self.points);
        let mut out = String::new();
        out.push_str("snapshots (chronological):\n");
        for point in &self.points {
            out.push_str(&format!(
                "  {}  {}  ({})\n",
                point.label,
                point
                    .snapshot
                    .git_sha
                    .get(..12)
                    .unwrap_or(&point.snapshot.git_sha),
                point.path.display()
            ));
        }
        out.push_str("\nmedian runtime (secs):\n");
        out.push_str(
            &self
                .table(&names, |w| Some(w.median_secs()), crate::report::secs)
                .render(),
        );
        out.push_str("\nallocated bytes:\n");
        out.push_str(
            &self
                .table(
                    &names,
                    |w| w.alloc.as_ref().map(|a| a.bytes_allocated as f64),
                    |v| format!("{}", v as u64),
                )
                .render(),
        );
        out.push_str("\ncertified ratio (greedy cost / lower bound):\n");
        out.push_str(
            &self
                .table(
                    &names,
                    |w| {
                        w.quality
                            .as_ref()
                            .map(|q| q.certified_ratio())
                            .filter(|r| r.is_finite())
                    },
                    |v| format!("{v:.4}"),
                )
                .render(),
        );
        out.push('\n');
        if self.regressions.is_empty() {
            out.push_str(&format!(
                "no workload regresses >{:.0}% vs its best-ever median\n",
                (REGRESSION_THRESHOLD - 1.0) * 100.0
            ));
        } else {
            out.push_str("REGRESSED workloads (latest vs best-ever median):\n");
            for r in &self.regressions {
                out.push_str(&format!(
                    "  {}: {} ({}) -> {} ({}), {:.1}% over best\n",
                    r.workload,
                    crate::report::secs(r.best.0),
                    r.best.1,
                    crate::report::secs(r.latest.0),
                    r.latest.1,
                    (r.ratio() - 1.0) * 100.0
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{SpanSnapshot, WorkloadRun};
    use std::collections::BTreeMap;

    fn snap(label: &str, runs: &[(&str, f64)]) -> Snapshot {
        Snapshot {
            label: label.to_string(),
            git_sha: "deadbeef".to_string(),
            rustc: "rustc test".to_string(),
            reps: 1,
            workloads: runs
                .iter()
                .map(|(name, secs)| WorkloadRun {
                    name: name.to_string(),
                    rep_secs: vec![*secs],
                    counters: BTreeMap::new(),
                    spans: SpanSnapshot {
                        name: "total".to_string(),
                        count: 1,
                        total_secs: *secs,
                        counters: BTreeMap::new(),
                        children: Vec::new(),
                    },
                    alloc: None,
                    quality: None,
                })
                .collect(),
        }
    }

    fn point(label: &str, at: u64, runs: &[(&str, f64)]) -> TrendPoint {
        TrendPoint {
            path: PathBuf::from(format!("BENCH_{label}.json")),
            label: label.to_string(),
            committed_at: at,
            snapshot: snap(label, runs),
        }
    }

    #[test]
    fn flags_latest_median_regressing_past_threshold() {
        let points = vec![
            point("seed", 1, &[("a", 0.100), ("b", 0.200)]),
            point("pr3", 2, &[("a", 0.090), ("b", 0.150)]),
            point("pr7", 3, &[("a", 0.095), ("b", 0.180)]),
        ];
        let regs = find_regressions(&points);
        // a: latest 0.095 vs best 0.090 = +5.6%, under threshold.
        // b: latest 0.180 vs best 0.150 = +20%, flagged.
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].workload, "b");
        assert_eq!(regs[0].best.1, "pr3");
        assert!((regs[0].ratio() - 1.2).abs() < 1e-9);
    }

    #[test]
    fn dropped_and_added_workloads_do_not_flag() {
        let points = vec![
            point("seed", 1, &[("gone", 0.1), ("kept", 0.1)]),
            point("next", 2, &[("kept", 0.1), ("new", 0.3)]),
        ];
        let regs = find_regressions(&points);
        assert!(regs.is_empty(), "{regs:?}");
        let report = TrendReport {
            points,
            regressions: regs,
        };
        assert!(report.ok());
        let rendered = report.render();
        assert!(rendered.contains("gone"));
        assert!(rendered.contains("no workload regresses"));
    }

    #[test]
    fn per_hop_deltas_render_against_previous_point() {
        let report = TrendReport {
            points: vec![
                point("seed", 1, &[("a", 0.200)]),
                point("next", 2, &[("a", 0.100)]),
            ],
            regressions: Vec::new(),
        };
        let rendered = report.render();
        assert!(rendered.contains("(-50.0%)"), "{rendered}");
    }

    #[test]
    fn committed_snapshots_load_in_chronological_order_and_gate_clean() {
        // The repo's own committed history is the acceptance fixture.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let paths = discover(&root).expect("repo root readable");
        if paths.len() < 2 {
            return; // fresh checkout without committed snapshots
        }
        let report = load_timeline(&paths).expect("snapshots parse");
        assert!(
            report
                .points
                .windows(2)
                .all(|w| w[0].committed_at <= w[1].committed_at),
            "chronological order"
        );
        assert!(
            report.ok(),
            "committed snapshots gate clean: {:?}",
            report.regressions
        );
        let rendered = report.render();
        assert!(rendered.contains("median runtime"));
    }
}
