//! The pre-serving endurance harness behind `scwsc_bench soak`
//! (DESIGN.md §16).
//!
//! A soak run loops registry workloads through the full solver stack —
//! generator, solver, telemetry replay, windowed aggregation, liveness
//! watchdog — the way a long-lived serving process would, and asserts the
//! continuous-operation invariants no single-solve test can see:
//!
//! * **monotone counters** — the cumulative [`MetricsRecorder`] never
//!   goes backwards between iterations;
//! * **stable windowed quantiles** — once the sliding window has filled,
//!   every iteration boundary sees the identical p50/p90/p99 (the solve
//!   sequence is periodic and deterministic, so the window's contents at
//!   boundary `i` and boundary `i+1` are the same multiset);
//! * **zero leaked allocator bytes** — after a short warm-up, live bytes
//!   at each iteration boundary match the baseline exactly
//!   ([`telemetry::alloc`](scwsc_core::telemetry::alloc) deltas);
//! * **zero stalls** — the armed [`Watchdog`] never fires.
//!
//! Each iteration appends one line to a windowed-metrics JSONL timeline,
//! so a soak that fails hours in still leaves the trajectory on disk.

use crate::json::Json;
use crate::measure::run_traced_on;
use crate::registry::Workload;
use crate::snapshot::deterministic_counters;
use scwsc_core::telemetry::window::SolveWindows;
use scwsc_core::{Fanout, MetricsRecorder, ThreadPool, Watchdog};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Duration;

#[cfg(feature = "alloc-stats")]
use scwsc_core::telemetry::alloc;

/// Iterations to run before arming the leak baseline: lazy one-time
/// allocations (thread-local scratch, container growth to steady state)
/// settle here and must not count as leaks.
const WARMUP_ITERS: usize = 2;

/// Configuration of one soak run.
#[derive(Debug, Clone)]
pub struct SoakOptions {
    /// Full iterations of the (filtered) suite to run.
    pub iters: usize,
    /// Sliding-window width, in solves.
    pub window: usize,
    /// Watchdog stall threshold. Generous by default: a soak asserts
    /// *zero* stalls, so false positives are worse than slow detection.
    pub stall_after: Duration,
    /// Where to append the windowed-metrics JSONL timeline (one line per
    /// iteration); `None` disables the timeline.
    pub timeline: Option<PathBuf>,
}

impl Default for SoakOptions {
    fn default() -> SoakOptions {
        SoakOptions {
            iters: 50,
            window: 8,
            stall_after: Duration::from_secs(5),
            timeline: None,
        }
    }
}

/// Summary of a completed soak run (every invariant held).
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// Iterations completed.
    pub iters: usize,
    /// Solves completed (iterations × workloads).
    pub solves: u64,
    /// Window rollovers observed.
    pub rollovers: u64,
    /// Stalls the watchdog flagged (always 0 for an `Ok` report).
    pub stalls: u64,
    /// Final windowed benefit quantiles (p50, p90, p99).
    pub quantiles: (u64, u64, u64),
    /// Net live allocator bytes vs. the post-warm-up baseline
    /// (`None` when the counting allocator is not installed).
    pub leaked_bytes: Option<i64>,
}

impl SoakReport {
    /// One-line human summary.
    pub fn render(&self) -> String {
        format!(
            "soak ok: {} iterations, {} solves, {} rollovers, windowed p50/p90/p99 = {}/{}/{}, {} stalls, leaked bytes {}",
            self.iters,
            self.solves,
            self.rollovers,
            self.quantiles.0,
            self.quantiles.1,
            self.quantiles.2,
            self.stalls,
            match self.leaked_bytes {
                Some(b) => b.to_string(),
                None => "n/a".to_string(),
            }
        )
    }
}

/// Live allocator bytes right now, when the counting allocator is active.
fn live_bytes() -> Option<u64> {
    #[cfg(feature = "alloc-stats")]
    {
        alloc::is_active().then(|| alloc::snapshot().live_bytes)
    }
    #[cfg(not(feature = "alloc-stats"))]
    {
        None
    }
}

/// Runs the soak loop. Returns `Err` (with the failing invariant) as soon
/// as any continuous-operation assertion breaks; the timeline written so
/// far is left on disk either way. `progress` receives one line per
/// iteration.
pub fn soak(
    suite: &[Workload],
    opts: &SoakOptions,
    pool: &ThreadPool,
    mut progress: impl FnMut(&str),
) -> Result<SoakReport, String> {
    if suite.is_empty() {
        return Err("soak needs at least one workload".to_string());
    }
    if opts.iters == 0 {
        return Err("soak needs at least one iteration".to_string());
    }
    let mut timeline = match &opts.timeline {
        Some(path) => Some(std::io::BufWriter::new(
            std::fs::File::create(path).map_err(|e| format!("creating {}: {e}", path.display()))?,
        )),
        None => None,
    };

    let mut windows = SolveWindows::with_window(opts.window);
    let watchdog = Watchdog::new(opts.stall_after);
    let monitor = watchdog.monitor();
    let mut cumulative = MetricsRecorder::new();
    let mut prev_counters: Option<BTreeMap<String, u64>> = None;
    // Quantiles latched at the first full-window iteration boundary;
    // every later boundary must reproduce them exactly.
    let mut expected_quantiles: Option<(u64, u64, u64)> = None;
    let mut baseline_live: Option<u64> = None;
    let mut leaked: Option<i64> = None;

    for iter in 1..=opts.iters {
        for w in suite {
            let table = w.gen.table();
            let (measurement, metrics) = {
                let mut dog = watchdog.clone();
                let mut extra = Fanout::new();
                extra.attach(&mut windows).attach(&mut dog);
                run_traced_on(w.algo, &table, &w.params, pool, &mut extra)
            };
            if !measurement.ok {
                return Err(format!("iteration {iter}: workload {} failed", w.name));
            }
            cumulative.merge(&metrics);
        }

        // Invariant: cumulative counters never decrease.
        let counters = deterministic_counters(&cumulative);
        if let Some(prev) = &prev_counters {
            for (key, &was) in prev {
                let now = counters.get(key).copied().unwrap_or(0);
                if now < was {
                    return Err(format!(
                        "iteration {iter}: counter '{key}' went backwards ({was} -> {now})"
                    ));
                }
            }
        }
        prev_counters = Some(counters);

        // Invariant: windowed quantiles are identical at every iteration
        // boundary once the window has filled (periodic solve sequence).
        let hist = &windows.global().benefits_hist;
        let quantiles = (hist.quantile(0.5), hist.quantile(0.9), hist.quantile(0.99));
        if windows.solves() >= opts.window as u64 {
            match expected_quantiles {
                None => expected_quantiles = Some(quantiles),
                Some(expected) if expected != quantiles => {
                    return Err(format!(
                        "iteration {iter}: windowed quantiles drifted \
                         (expected p50/p90/p99 {expected:?}, got {quantiles:?})"
                    ));
                }
                Some(_) => {}
            }
        }

        // Invariant: zero net allocator growth after warm-up.
        if let Some(live) = live_bytes() {
            if iter == WARMUP_ITERS.min(opts.iters) {
                baseline_live = Some(live);
            } else if let Some(base) = baseline_live {
                let net = live as i64 - base as i64;
                leaked = Some(net);
                if net != 0 {
                    return Err(format!(
                        "iteration {iter}: allocator leaked {net} live bytes vs. the \
                         post-warm-up baseline"
                    ));
                }
            }
        }

        // Invariant: the watchdog stayed quiet.
        if watchdog.stalls() > 0 {
            return Err(format!(
                "iteration {iter}: watchdog flagged {} stall(s)",
                watchdog.stalls()
            ));
        }

        if let Some(out) = timeline.as_mut() {
            let line = Json::Obj(vec![
                ("iter".into(), Json::from_u64(iter as u64)),
                ("solves".into(), Json::from_u64(windows.solves())),
                ("rollovers".into(), Json::from_u64(windows.rollovers())),
                ("p50".into(), Json::from_u64(quantiles.0)),
                ("p90".into(), Json::from_u64(quantiles.1)),
                ("p99".into(), Json::from_u64(quantiles.2)),
                (
                    "benefits_per_solve".into(),
                    Json::Num(windows.global().benefits.rate_per_solve()),
                ),
                (
                    "degraded_rate".into(),
                    Json::Num(windows.global().degraded_rate()),
                ),
                ("stalls".into(), Json::from_u64(watchdog.stalls())),
                (
                    "leaked_bytes".into(),
                    match leaked {
                        Some(b) => Json::Num(b as f64),
                        None => Json::Null,
                    },
                ),
            ]);
            writeln!(out, "{}", line.to_compact())
                .and_then(|()| out.flush())
                .map_err(|e| format!("writing timeline: {e}"))?;
        }

        progress(&format!(
            "iter {iter:>4}/{}: {} solves, p50/p90/p99 {}/{}/{}, {} rollovers",
            opts.iters,
            windows.solves(),
            quantiles.0,
            quantiles.1,
            quantiles.2,
            windows.rollovers()
        ));
    }

    drop(monitor);
    let hist = &windows.global().benefits_hist;
    Ok(SoakReport {
        iters: opts.iters,
        solves: windows.solves(),
        rollovers: windows.rollovers(),
        stalls: watchdog.stalls(),
        quantiles: (hist.quantile(0.5), hist.quantile(0.9), hist.quantile(0.99)),
        leaked_bytes: leaked,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::smoke_suite;
    use scwsc_core::Threads;

    #[test]
    fn smoke_soak_holds_every_invariant() {
        let suite = smoke_suite();
        let pool = ThreadPool::new(Threads::serial());
        let opts = SoakOptions {
            iters: 5,
            window: 4,
            ..SoakOptions::default()
        };
        let report = soak(&suite, &opts, &pool, |_| {}).expect("soak holds");
        assert_eq!(report.iters, 5);
        assert_eq!(report.solves, 10, "2 workloads x 5 iterations");
        assert_eq!(report.stalls, 0);
        // Window 4 over 10 solves: 6 rollovers.
        assert_eq!(report.rollovers, 6);
        assert!(report.render().contains("soak ok"));
    }

    #[test]
    fn soak_writes_a_parsable_timeline() {
        let suite = smoke_suite();
        let pool = ThreadPool::new(Threads::serial());
        let dir = std::env::temp_dir().join(format!("scwsc-soak-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("timeline.jsonl");
        let opts = SoakOptions {
            iters: 3,
            window: 2,
            timeline: Some(path.clone()),
            ..SoakOptions::default()
        };
        soak(&suite, &opts, &pool, |_| {}).expect("soak holds");
        let text = std::fs::read_to_string(&path).expect("timeline written");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "one line per iteration");
        for (i, line) in lines.iter().enumerate() {
            let json = Json::parse(line).expect("timeline line parses");
            assert_eq!(json.get("iter").and_then(Json::as_u64), Some(i as u64 + 1));
            assert!(json.get("p99").and_then(Json::as_u64).is_some());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn soak_rejects_empty_inputs() {
        let pool = ThreadPool::new(Threads::serial());
        assert!(soak(&[], &SoakOptions::default(), &pool, |_| {}).is_err());
        let opts = SoakOptions {
            iters: 0,
            ..SoakOptions::default()
        };
        assert!(soak(&smoke_suite(), &opts, &pool, |_| {}).is_err());
    }
}
