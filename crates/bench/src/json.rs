//! Re-export of the hand-rolled JSON value that moved to
//! [`scwsc_core::json`] when the serving layer needed it (DESIGN.md §17).
//! Kept as a module so `crate::json::Json` paths throughout the bench
//! crate (and its tests) stay valid.

pub use scwsc_core::json::{Json, ParseError};
