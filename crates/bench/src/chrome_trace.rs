//! Flight-recorder dumps as Chrome tracing JSON
//! (`scwsc_bench flight-to-chrome IN OUT`).
//!
//! The flight recorder's JSONL dump (DESIGN.md §13) is built for grep;
//! this module re-shapes it for eyes: the output loads directly into
//! `chrome://tracing` or [Perfetto](https://ui.perfetto.dev) as a standard
//! [Trace Event Format] object.
//!
//! * Every distinct worker becomes its own **process** (`pid` = worker id,
//!   named via `process_name` metadata), so the main thread and each
//!   replayed worker block get separate swim lanes.
//! * The **causal tree** becomes nested `"X"` (complete) duration events.
//!   The tree stores aggregate per-span seconds, not start timestamps, so
//!   starts are synthesized by depth-first layout: a span opens where its
//!   previous sibling ended, and a parent is stretched to contain its
//!   children when their sum exceeds its own measured time. Visual
//!   nesting is therefore exact; absolute positions are schematic.
//! * Every **buffered ring event** becomes an `"i"` (instant) event at its
//!   recorded monotonic time, carrying its sequence number, span id, and
//!   payload fields in `args` — the precise tail of the run, overlaid on
//!   the schematic spans.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::json::Json;
use std::collections::BTreeSet;

/// Envelope fields of a ring-event line; everything else is payload and
/// goes to `args` verbatim.
const ENVELOPE: [&str; 7] = ["seq", "t", "trace", "span", "parent", "worker", "event"];

/// Converts a flight dump (the JSONL text written by
/// `FlightRecorder::write_dump`) into one Chrome tracing JSON object.
pub fn flight_to_chrome(dump: &str) -> Result<Json, String> {
    let mut trace_events: Vec<Json> = Vec::new();
    let mut workers: BTreeSet<u64> = BTreeSet::new();
    let mut tree: Option<Json> = None;
    let mut header: Option<Json> = None;
    for (lineno, line) in dump.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = Json::parse(line).map_err(|e| format!("line {}: {e:?}", lineno + 1))?;
        if value.get("flight").is_some() {
            header = Some(value);
        } else if let Some(t) = value.get("causal_tree") {
            tree = Some(t.clone());
        } else if value.get("event").is_some() {
            trace_events.push(instant_event(&value, &mut workers, lineno + 1)?);
        } else {
            return Err(format!("line {}: unrecognized dump line", lineno + 1));
        }
    }
    let header = header.ok_or("missing flight header line")?;
    let tree = tree.ok_or("missing causal_tree trailer line")?;
    layout_spans(&tree, 0.0, &mut trace_events, &mut workers)?;
    for &w in &workers {
        let label = if w == 0 {
            "main".to_string()
        } else {
            format!("worker {w}")
        };
        trace_events.push(Json::Obj(vec![
            ("name".into(), Json::Str("process_name".into())),
            ("ph".into(), Json::Str("M".into())),
            ("pid".into(), Json::from_u64(w)),
            ("tid".into(), Json::from_u64(w)),
            (
                "args".into(),
                Json::Obj(vec![("name".into(), Json::Str(label))]),
            ),
        ]));
    }
    let mut other = Vec::new();
    for key in ["trace_id", "entry", "buffered", "dropped", "capacity"] {
        if let Some(v) = header.get(key) {
            other.push((key.to_string(), v.clone()));
        }
    }
    Ok(Json::Obj(vec![
        ("traceEvents".into(), Json::Arr(trace_events)),
        ("displayTimeUnit".into(), Json::Str("ms".into())),
        ("otherData".into(), Json::Obj(other)),
    ]))
}

/// One ring event line → one `"i"` instant at its recorded time.
fn instant_event(value: &Json, workers: &mut BTreeSet<u64>, lineno: usize) -> Result<Json, String> {
    let field = |key: &str| {
        value
            .get(key)
            .ok_or_else(|| format!("line {lineno}: missing '{key}'"))
    };
    let name = field("event")?
        .as_str()
        .ok_or_else(|| format!("line {lineno}: 'event' is not a string"))?;
    let t = field("t")?
        .as_f64()
        .ok_or_else(|| format!("line {lineno}: 't' is not a number"))?;
    let worker = field("worker")?
        .as_u64()
        .ok_or_else(|| format!("line {lineno}: 'worker' is not a counter"))?;
    workers.insert(worker);
    let mut args = vec![
        ("seq".into(), field("seq")?.clone()),
        ("span".into(), field("span")?.clone()),
    ];
    if let Some(entries) = value.as_obj() {
        for (k, v) in entries {
            if !ENVELOPE.contains(&k.as_str()) {
                args.push((k.clone(), v.clone()));
            }
        }
    }
    Ok(Json::Obj(vec![
        ("name".into(), Json::Str(name.into())),
        ("ph".into(), Json::Str("i".into())),
        ("s".into(), Json::Str("p".into())),
        ("ts".into(), Json::Num(t * 1e6)),
        ("pid".into(), Json::from_u64(worker)),
        ("tid".into(), Json::from_u64(worker)),
        ("args".into(), Json::Obj(args)),
    ]))
}

/// Depth-first layout of one causal-tree node starting at `start_us`.
/// Children are placed end-to-end; the node's duration is its own measured
/// seconds or the children's total, whichever is larger, so nesting never
/// overflows the parent. Returns the node's laid-out duration in µs.
fn layout_spans(
    node: &Json,
    start_us: f64,
    out: &mut Vec<Json>,
    workers: &mut BTreeSet<u64>,
) -> Result<f64, String> {
    let field = |key: &str| {
        node.get(key)
            .ok_or_else(|| format!("causal tree node missing '{key}'"))
    };
    let name = field("name")?
        .as_str()
        .ok_or("causal tree 'name' is not a string")?;
    let secs = field("secs")?
        .as_f64()
        .ok_or("causal tree 'secs' is not a number")?;
    let worker = field("worker")?
        .as_u64()
        .ok_or("causal tree 'worker' is not a counter")?;
    workers.insert(worker);
    let mut cursor = start_us;
    for child in field("children")?.as_arr().unwrap_or(&[]) {
        cursor += layout_spans(child, cursor, out, workers)?;
    }
    let dur_us = (secs * 1e6).max(cursor - start_us);
    out.push(Json::Obj(vec![
        ("name".into(), Json::Str(name.into())),
        ("ph".into(), Json::Str("X".into())),
        ("ts".into(), Json::Num(start_us)),
        ("dur".into(), Json::Num(dur_us)),
        ("pid".into(), Json::from_u64(worker)),
        ("tid".into(), Json::from_u64(worker)),
        (
            "args".into(),
            Json::Obj(vec![
                ("span".into(), field("span")?.clone()),
                ("parent".into(), field("parent")?.clone()),
                ("count".into(), field("count")?.clone()),
                ("events".into(), field("events")?.clone()),
            ]),
        ),
    ]));
    Ok(dur_us)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scwsc_core::telemetry::{PHASE_GUESS, PHASE_SCAN, PHASE_TOTAL};
    use scwsc_core::{FlightRecorder, Observer, TraceId};

    /// A real dump from a two-worker recording, via the recorder itself.
    fn dump() -> String {
        let mut r = FlightRecorder::new();
        r.trace_started(TraceId::mint("cmc", 100, 7), "cmc");
        r.phase_started(PHASE_TOTAL);
        r.phase_started(PHASE_GUESS);
        r.benefit_computed(10);
        r.worker_switched(1);
        r.phase_started(PHASE_SCAN);
        r.benefit_computed(4);
        r.phase_ended(PHASE_SCAN, 0.01);
        r.worker_switched(0);
        r.set_selected(3, 5, 1.0);
        r.phase_ended(PHASE_GUESS, 0.5);
        r.phase_ended(PHASE_TOTAL, 0.6);
        let mut buf = Vec::new();
        r.write_dump(&mut buf).unwrap();
        String::from_utf8(buf).unwrap()
    }

    fn events(trace: &Json) -> Vec<&Json> {
        trace
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array")
            .iter()
            .collect()
    }

    fn phase<'a>(trace: &'a Json, ph: &str) -> Vec<&'a Json> {
        events(trace)
            .into_iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some(ph))
            .collect()
    }

    #[test]
    fn converts_real_dump_to_spans_instants_and_process_names() {
        let trace = flight_to_chrome(&dump()).unwrap();
        // Output itself round-trips through the parser.
        let parsed = Json::parse(&trace.to_pretty()).unwrap();
        assert_eq!(parsed, trace);

        // Three duration spans: total > guess > scan.
        let spans = phase(&trace, "X");
        let names: Vec<_> = spans
            .iter()
            .filter_map(|e| e.get("name").and_then(Json::as_str))
            .collect();
        assert!(names.contains(&PHASE_TOTAL), "{names:?}");
        assert!(names.contains(&PHASE_GUESS), "{names:?}");
        assert!(names.contains(&PHASE_SCAN), "{names:?}");

        // The scan span landed on worker 1's pid; main spans on pid 0.
        let scan = spans
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some(PHASE_SCAN))
            .unwrap();
        assert_eq!(scan.get("pid").and_then(Json::as_u64), Some(1));

        // Every buffered event became an instant on its worker's pid.
        let instants = phase(&trace, "i");
        assert!(
            instants
                .iter()
                .any(|e| e.get("name").and_then(Json::as_str) == Some("set_selected")),
            "selection instant present"
        );
        assert!(
            instants
                .iter()
                .any(|e| e.get("pid").and_then(Json::as_u64) == Some(1)),
            "worker 1 instants on its own process"
        );

        // Both workers got process_name metadata.
        let meta = phase(&trace, "M");
        let meta_pids: Vec<_> = meta
            .iter()
            .filter_map(|e| e.get("pid").and_then(Json::as_u64))
            .collect();
        assert!(
            meta_pids.contains(&0) && meta_pids.contains(&1),
            "{meta_pids:?}"
        );
    }

    #[test]
    fn spans_nest_within_their_parents() {
        let trace = flight_to_chrome(&dump()).unwrap();
        let spans = phase(&trace, "X");
        let bounds = |name: &str| {
            let e = spans
                .iter()
                .find(|e| e.get("name").and_then(Json::as_str) == Some(name))
                .unwrap();
            let ts = e.get("ts").and_then(Json::as_f64).unwrap();
            let dur = e.get("dur").and_then(Json::as_f64).unwrap();
            (ts, ts + dur)
        };
        let total = bounds(PHASE_TOTAL);
        let guess = bounds(PHASE_GUESS);
        let scan = bounds(PHASE_SCAN);
        assert!(total.0 <= guess.0 && guess.1 <= total.1, "guess in total");
        assert!(guess.0 <= scan.0 && scan.1 <= guess.1, "scan in guess");
        assert!((total.1 - total.0 - 0.6e6).abs() < 1.0, "total keeps 0.6s");
    }

    #[test]
    fn instant_payload_fields_reach_args() {
        let trace = flight_to_chrome(&dump()).unwrap();
        let sel = phase(&trace, "i")
            .into_iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("set_selected"))
            .unwrap();
        let args = sel.get("args").expect("args object");
        assert_eq!(args.get("id").and_then(Json::as_u64), Some(3));
        assert_eq!(args.get("marginal_benefit").and_then(Json::as_u64), Some(5));
        assert!(args.get("seq").is_some() && args.get("span").is_some());
    }

    #[test]
    fn malformed_dumps_are_rejected_with_line_numbers() {
        assert!(flight_to_chrome("").unwrap_err().contains("header"));
        let err = flight_to_chrome("{\"flight\":\"scwsc\"}\nnot json\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = flight_to_chrome("{\"flight\":\"scwsc\"}\n{\"stray\":1}\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }
}
