//! The `scwsc_serve` wire protocol: one JSON object per line, both ways.
//!
//! Requests name a [`Query`] plus an optional caller deadline; responses
//! carry one of four statuses:
//!
//! * `complete` — the solver finished inside its budgets;
//! * `degraded` — a deadline expired first; the partial answer rides
//!   along with its certificate, re-verified by the instance
//!   (`answer.certified`);
//! * `rejected` — admission shed the request *without running it*; the
//!   mandatory `retry_after_ms` tells the caller when to come back;
//! * `error` — the request was malformed or the solve failed
//!   structurally (infeasible instance, exhausted retries).
//!
//! Every admitted request is answered `complete`, `degraded`, or
//! `error` — never dropped. The encoding is the hand-rolled
//! [`scwsc_core::json`] (the vendored-deps constraint bans serde_json).

use scwsc_core::json::Json;
use scwsc_core::solver::{Algorithm, Answer, CostModel, Query};
use scwsc_core::Certificate;

/// One request line.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Caller-chosen correlation id, echoed verbatim in the response.
    pub id: u64,
    /// What to solve.
    pub query: Query,
    /// Caller's end-to-end deadline. Queue wait is charged against it:
    /// the solve gets whatever remains at admission. `None` uses the
    /// server default (0 = no wall-clock bound).
    pub deadline_ms: Option<u64>,
    /// Caller's tick-budget cap. The grant is `min(this, server budget)`
    /// after brownout shrinking — callers can lower their budget, never
    /// raise it past the server's.
    pub max_ticks: Option<u64>,
}

impl Request {
    /// A request wrapping `query` with server-default budgets.
    pub fn new(id: u64, query: Query) -> Request {
        Request {
            id,
            query,
            deadline_ms: None,
            max_ticks: None,
        }
    }

    /// Serializes to one compact line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut obj = vec![
            ("id".into(), Json::from_u64(self.id)),
            (
                "algorithm".into(),
                Json::Str(self.query.algorithm.as_str().into()),
            ),
            ("k".into(), Json::from_u64(self.query.k as u64)),
            ("coverage".into(), Json::Num(self.query.coverage)),
            ("b".into(), Json::Num(self.query.b)),
            ("eps".into(), Json::Num(self.query.eps)),
            ("cost_fn".into(), Json::Str(self.query.cost.as_str().into())),
        ];
        if let Some(ms) = self.deadline_ms {
            obj.push(("deadline_ms".into(), Json::from_u64(ms)));
        }
        if let Some(t) = self.max_ticks {
            obj.push(("max_ticks".into(), Json::from_u64(t)));
        }
        Json::Obj(obj).to_compact()
    }

    /// Parses one request line. `default_id` is used when the caller
    /// omitted `id` (typically the server's request sequence number).
    pub fn parse(line: &str, default_id: u64) -> Result<Request, String> {
        let json = Json::parse(line).map_err(|e| e.to_string())?;
        let algorithm = match json.get("algorithm").and_then(Json::as_str) {
            None => Algorithm::Cwsc,
            Some(s) => Algorithm::parse(s).ok_or_else(|| format!("unknown algorithm {s:?}"))?,
        };
        let cost = match json.get("cost_fn").and_then(Json::as_str) {
            None => CostModel::Max,
            Some(s) => CostModel::parse(s).ok_or_else(|| format!("unknown cost_fn {s:?}"))?,
        };
        let k = json
            .get("k")
            .and_then(Json::as_u64)
            .ok_or("request missing k")? as usize;
        let coverage = json
            .get("coverage")
            .and_then(Json::as_f64)
            .ok_or("request missing coverage")?;
        if !(coverage > 0.0 && coverage <= 1.0) {
            return Err(format!("coverage must be in (0, 1], got {coverage}"));
        }
        Ok(Request {
            id: json.get("id").and_then(Json::as_u64).unwrap_or(default_id),
            query: Query {
                algorithm,
                k,
                coverage,
                b: json.get("b").and_then(Json::as_f64).unwrap_or(1.0),
                eps: json.get("eps").and_then(Json::as_f64).unwrap_or(1.0),
                cost,
            },
            deadline_ms: json.get("deadline_ms").and_then(Json::as_u64),
            max_ticks: json.get("max_ticks").and_then(Json::as_u64),
        })
    }
}

/// Response status, the caller's contract (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Solved inside the budgets.
    Complete,
    /// Deadline expired; certified partial answer attached.
    Degraded,
    /// Shed at admission; `retry_after_ms` is set.
    Rejected,
    /// Malformed request or structural solve failure.
    Error,
}

impl Status {
    /// Stable lowercase wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Status::Complete => "complete",
            Status::Degraded => "degraded",
            Status::Rejected => "rejected",
            Status::Error => "error",
        }
    }

    /// Parses the wire name.
    pub fn parse(s: &str) -> Option<Status> {
        match s {
            "complete" => Some(Status::Complete),
            "degraded" => Some(Status::Degraded),
            "rejected" => Some(Status::Rejected),
            "error" => Some(Status::Error),
            _ => None,
        }
    }
}

/// One response line.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Echo of the request id.
    pub id: u64,
    /// Outcome class.
    pub status: Status,
    /// The solution (complete or certified-partial).
    pub answer: Option<Answer>,
    /// The degrade certificate, when status is `degraded`.
    pub certificate: Option<Certificate>,
    /// Set on `rejected`: milliseconds the caller should wait.
    pub retry_after_ms: Option<u64>,
    /// Whether the answer came from the result cache (bypassing
    /// admission entirely).
    pub cached: bool,
    /// Brownout tier the request was served under (0 = full budgets).
    pub tier: u8,
    /// Solve attempts (2 = one panic was isolated and retried).
    pub attempts: u32,
    /// Milliseconds spent queued before the solve started.
    pub queue_ms: f64,
    /// Milliseconds the solve itself took.
    pub solve_ms: f64,
    /// Human-readable diagnostic, when status is `error`.
    pub error: Option<String>,
}

impl Response {
    /// A rejection with the mandatory retry hint.
    pub fn rejected(id: u64, retry_after_ms: u64, queue_ms: f64, tier: u8) -> Response {
        Response {
            id,
            status: Status::Rejected,
            answer: None,
            certificate: None,
            retry_after_ms: Some(retry_after_ms),
            cached: false,
            tier,
            attempts: 0,
            queue_ms,
            solve_ms: 0.0,
            error: None,
        }
    }

    /// An error response (parse failure, infeasibility, exhausted retry).
    pub fn error(id: u64, message: String) -> Response {
        Response {
            id,
            status: Status::Error,
            answer: None,
            certificate: None,
            retry_after_ms: None,
            cached: false,
            tier: 0,
            attempts: 0,
            queue_ms: 0.0,
            solve_ms: 0.0,
            error: Some(message),
        }
    }

    /// Serializes to one compact line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut obj = vec![
            ("id".into(), Json::from_u64(self.id)),
            ("status".into(), Json::Str(self.status.as_str().into())),
        ];
        if let Some(ms) = self.retry_after_ms {
            obj.push(("retry_after_ms".into(), Json::from_u64(ms)));
        }
        if let Some(answer) = &self.answer {
            obj.push(("answer".into(), answer_to_json(answer)));
        }
        if let Some(cert) = &self.certificate {
            obj.push(("certificate".into(), cert_to_json(cert)));
        }
        obj.push(("cached".into(), Json::Bool(self.cached)));
        obj.push(("tier".into(), Json::from_u64(u64::from(self.tier))));
        obj.push(("attempts".into(), Json::from_u64(u64::from(self.attempts))));
        obj.push(("queue_ms".into(), Json::Num(self.queue_ms)));
        obj.push(("solve_ms".into(), Json::Num(self.solve_ms)));
        if let Some(e) = &self.error {
            obj.push(("error".into(), Json::Str(e.clone())));
        }
        Json::Obj(obj).to_compact()
    }

    /// Parses one response line (the client half of the protocol).
    pub fn parse(line: &str) -> Result<Response, String> {
        let json = Json::parse(line).map_err(|e| e.to_string())?;
        let status = json
            .get("status")
            .and_then(Json::as_str)
            .and_then(Status::parse)
            .ok_or("response missing status")?;
        Ok(Response {
            id: json.get("id").and_then(Json::as_u64).unwrap_or(0),
            status,
            answer: json.get("answer").map(answer_from_json).transpose()?,
            certificate: json.get("certificate").map(cert_from_json).transpose()?,
            retry_after_ms: json.get("retry_after_ms").and_then(Json::as_u64),
            cached: json.get("cached") == Some(&Json::Bool(true)),
            tier: json.get("tier").and_then(Json::as_u64).unwrap_or(0) as u8,
            attempts: json.get("attempts").and_then(Json::as_u64).unwrap_or(0) as u32,
            queue_ms: json.get("queue_ms").and_then(Json::as_f64).unwrap_or(0.0),
            solve_ms: json.get("solve_ms").and_then(Json::as_f64).unwrap_or(0.0),
            error: json.get("error").and_then(Json::as_str).map(str::to_string),
        })
    }
}

fn answer_to_json(a: &Answer) -> Json {
    let mut obj = vec![
        ("size".into(), Json::from_u64(a.size as u64)),
        ("covered".into(), Json::from_u64(a.covered as u64)),
        ("target".into(), Json::from_u64(a.target as u64)),
        ("total_cost".into(), Json::Num(a.total_cost)),
        (
            "labels".into(),
            Json::Arr(a.labels.iter().map(|l| Json::Str(l.clone())).collect()),
        ),
    ];
    if let Some(certified) = a.certified {
        obj.push(("certified".into(), Json::Bool(certified)));
    }
    Json::Obj(obj)
}

fn answer_from_json(json: &Json) -> Result<Answer, String> {
    Ok(Answer {
        size: json
            .get("size")
            .and_then(Json::as_u64)
            .ok_or("answer missing size")? as usize,
        covered: json
            .get("covered")
            .and_then(Json::as_u64)
            .ok_or("answer missing covered")? as usize,
        target: json.get("target").and_then(Json::as_u64).unwrap_or(0) as usize,
        total_cost: json
            .get("total_cost")
            .and_then(Json::as_f64)
            .ok_or("answer missing total_cost")?,
        labels: json
            .get("labels")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .filter_map(Json::as_str)
            .map(str::to_string)
            .collect(),
        certified: match json.get("certified") {
            Some(Json::Bool(b)) => Some(*b),
            _ => None,
        },
    })
}

fn cert_to_json(c: &Certificate) -> Json {
    Json::Obj(vec![
        ("sets_used".into(), Json::from_u64(c.sets_used as u64)),
        ("covered".into(), Json::from_u64(c.covered as u64)),
        ("target".into(), Json::from_u64(c.target as u64)),
        ("total_cost".into(), Json::Num(c.total_cost)),
        (
            "quotas_exhausted".into(),
            Json::Arr(
                c.quotas_exhausted
                    .iter()
                    .map(|&q| Json::from_u64(q as u64))
                    .collect(),
            ),
        ),
        ("ticks".into(), Json::from_u64(c.ticks)),
        ("reason".into(), Json::Str(c.reason.as_str().into())),
    ])
}

fn cert_from_json(json: &Json) -> Result<Certificate, String> {
    use scwsc_core::DegradeReason;
    let reason = match json.get("reason").and_then(Json::as_str) {
        Some("wall_clock") => DegradeReason::WallClock,
        Some("tick_budget") => DegradeReason::TickBudget,
        Some("cancelled") => DegradeReason::Cancelled,
        other => return Err(format!("unknown degrade reason {other:?}")),
    };
    Ok(Certificate {
        sets_used: json.get("sets_used").and_then(Json::as_u64).unwrap_or(0) as usize,
        covered: json.get("covered").and_then(Json::as_u64).unwrap_or(0) as usize,
        target: json.get("target").and_then(Json::as_u64).unwrap_or(0) as usize,
        total_cost: json.get("total_cost").and_then(Json::as_f64).unwrap_or(0.0),
        quotas_exhausted: json
            .get("quotas_exhausted")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .filter_map(Json::as_u64)
            .map(|q| q as usize)
            .collect(),
        ticks: json.get("ticks").and_then(Json::as_u64).unwrap_or(0),
        reason,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let req = Request {
            id: 42,
            query: Query::cmc(5, 0.4),
            deadline_ms: Some(250),
            max_ticks: Some(10_000),
        };
        let line = req.to_line();
        assert!(!line.contains('\n'));
        assert_eq!(Request::parse(&line, 0).unwrap(), req);
    }

    #[test]
    fn request_defaults_fill_in() {
        let req = Request::parse(r#"{"k": 3, "coverage": 0.5}"#, 7).unwrap();
        assert_eq!(req.id, 7);
        assert_eq!(req.query.algorithm, Algorithm::Cwsc);
        assert_eq!(req.query.cost, CostModel::Max);
        assert_eq!(req.query.b, 1.0);
        assert_eq!(req.deadline_ms, None);
    }

    #[test]
    fn request_rejects_bad_fields() {
        assert!(Request::parse("{}", 0).is_err(), "missing k");
        assert!(Request::parse(r#"{"k":1}"#, 0).is_err(), "missing coverage");
        assert!(Request::parse(r#"{"k":1,"coverage":0.0}"#, 0).is_err());
        assert!(Request::parse(r#"{"k":1,"coverage":1.5}"#, 0).is_err());
        assert!(Request::parse(r#"{"k":1,"coverage":0.5,"algorithm":"x"}"#, 0).is_err());
        assert!(Request::parse(r#"{"k":1,"coverage":0.5,"cost_fn":"lp"}"#, 0).is_err());
        assert!(Request::parse("not json", 0).is_err());
    }

    #[test]
    fn response_round_trips_with_answer_and_certificate() {
        let resp = Response {
            id: 9,
            status: Status::Degraded,
            answer: Some(Answer {
                size: 2,
                covered: 10,
                target: 20,
                total_cost: 3.5,
                labels: vec!["(A, *)".into(), "(*, West)".into()],
                certified: Some(true),
            }),
            certificate: Some(Certificate {
                sets_used: 2,
                covered: 10,
                target: 20,
                total_cost: 3.5,
                quotas_exhausted: vec![0, 2],
                ticks: 17,
                reason: scwsc_core::DegradeReason::TickBudget,
            }),
            retry_after_ms: None,
            cached: false,
            tier: 1,
            attempts: 1,
            queue_ms: 0.25,
            solve_ms: 1.5,
            error: None,
        };
        assert_eq!(Response::parse(&resp.to_line()).unwrap(), resp);
    }

    #[test]
    fn rejection_carries_retry_after() {
        let resp = Response::rejected(3, 40, 0.0, 2);
        let parsed = Response::parse(&resp.to_line()).unwrap();
        assert_eq!(parsed.status, Status::Rejected);
        assert_eq!(parsed.retry_after_ms, Some(40));
        assert_eq!(parsed.tier, 2);
    }
}
