//! # scwsc-serve
//!
//! Solver-as-a-service for Size-Constrained Weighted Set Cover: the
//! long-lived `scwsc_serve` process loads one instance (a weighted set
//! system or a pattern table) behind an `Arc` and answers
//! `(algorithm, k, ŝ, cost_fn, deadline)` queries over line-delimited
//! JSON on TCP — hand-rolled on `std::net`, no async runtime
//! (DESIGN.md §17).
//!
//! The robustness contract, layer by layer:
//!
//! * [`protocol`] — one JSON object per line, both directions; four
//!   response statuses (`complete` / `degraded` / `rejected` / `error`).
//! * [`cache`] — LRU over canonicalized queries; hits bypass admission.
//! * [`admission`] — bounded queue + tick-budget accounting; brownout
//!   tiers shrink grants under sustained load (*degrade, don't drop*);
//!   full queues reject with an explicit Retry-After.
//! * [`dispatch`] — per-request deadlines (caller budget minus queue
//!   wait), `catch_unwind` panic isolation with one seeded-backoff
//!   retry, certificate re-verification of every degraded answer, and
//!   continuous [`SolveWindows`](scwsc_core::SolveWindows) /
//!   Prometheus / flight-recorder telemetry.
//! * [`server`] — the TCP accept loop, per-connection threads, service
//!   fault injection (slow reads, mid-request disconnects), and
//!   graceful drain on SIGTERM/SIGINT: finish in-flight work, reject
//!   new work, flush telemetry, then exit.
//!
//! Every admitted request is answered `complete`, certified `degraded`,
//! or `error` — never dropped, never hung.

#![warn(missing_docs)]

pub mod admission;
pub mod cache;
pub mod dispatch;
pub mod protocol;
pub mod server;

pub use admission::{Admission, AdmissionConfig, BrownoutConfig, Gate, GateSnapshot, Ticket};
pub use cache::{canonical_key, ResultCache};
pub use dispatch::{ServeCounters, ServerConfig, ServerState, SERVE_ENTRY};
pub use protocol::{Request, Response, Status};
pub use server::{install_signal_handlers, serve, ServeOptions, ServeSummary, ShutdownFlag};
