//! LRU result cache keyed by canonicalized query (DESIGN.md §17).
//!
//! Repeated solves over the same instance are the serving layer's common
//! case (Alexa's iteratively reweighted greedy re-queries one instance
//! per reweighting round), so complete answers are cached and hits
//! bypass admission entirely — a cache hit costs one hash lookup under a
//! short lock, never a queue slot or tick grant.
//!
//! Canonicalization rules (the cache key, also the brownout-independent
//! identity of a query):
//!
//! * algorithm and cost function by their stable lowercase names;
//! * `k` in decimal; floats (`coverage`, `b`, `eps`) via Rust's `{:?}`,
//!   which round-trips `f64` exactly, with `-0.0` normalized to `0.0`;
//! * CWSC forces `b = eps = 1.0` — it ignores both, so spelling them
//!   differently must not split cache entries;
//! * deadlines and tick budgets are **excluded**: budgets shape *when* a
//!   query is answered, not *what* the answer is — and only complete
//!   (budget-independent) answers are ever inserted.
//!
//! Degraded answers are never cached: they depend on the budget that
//! truncated them.
//!
//! The store is a classic O(1) LRU: a slab of doubly-linked entries plus
//! a `HashMap` from key to slab index.

use scwsc_core::solver::{Algorithm, Answer, Query};
use std::collections::HashMap;

/// The canonical cache key of `query` (see module docs for the rules).
pub fn canonical_key(query: &Query) -> String {
    let (b, eps) = match query.algorithm {
        // CWSC ignores the CMC knobs: canonicalize them away.
        Algorithm::Cwsc => (1.0, 1.0),
        Algorithm::Cmc => (query.b, query.eps),
    };
    let norm = |x: f64| if x == 0.0 { 0.0 } else { x };
    format!(
        "{}|k={}|cov={:?}|b={:?}|eps={:?}|cost={}",
        query.algorithm.as_str(),
        query.k,
        norm(query.coverage),
        norm(b),
        norm(eps),
        query.cost.as_str()
    )
}

const NIL: usize = usize::MAX;

struct Entry {
    key: String,
    value: Answer,
    prev: usize,
    next: usize,
}

/// A fixed-capacity LRU map from canonical query keys to complete
/// answers. Not internally synchronized — the server wraps it in a
/// `Mutex` (the critical sections are a hash lookup and two pointer
/// swaps).
pub struct ResultCache {
    capacity: usize,
    map: HashMap<String, usize>,
    slab: Vec<Entry>,
    head: usize,
    tail: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ResultCache {
    /// A cache holding at most `capacity` answers. Capacity 0 disables
    /// caching (every lookup misses, inserts are dropped).
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            capacity,
            map: HashMap::new(),
            slab: Vec::new(),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// `(hits, misses, evictions)` since construction.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &str) -> Option<Answer> {
        match self.map.get(key).copied() {
            Some(i) => {
                self.hits += 1;
                self.detach(i);
                self.push_front(i);
                Some(self.slab[i].value.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) `key`, evicting the least-recently-used
    /// entry when full.
    pub fn insert(&mut self, key: String, value: Answer) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&i) = self.map.get(&key) {
            self.slab[i].value = value;
            self.detach(i);
            self.push_front(i);
            return;
        }
        let index = if self.map.len() >= self.capacity {
            // Recycle the LRU slot in place.
            let tail = self.tail;
            self.detach(tail);
            self.map.remove(&self.slab[tail].key);
            self.evictions += 1;
            self.slab[tail].key.clone_from(&key);
            self.slab[tail].value = value;
            tail
        } else {
            self.slab.push(Entry {
                key: key.clone(),
                value,
                prev: NIL,
                next: NIL,
            });
            self.slab.len() - 1
        };
        self.map.insert(key, index);
        self.push_front(index);
    }

    fn detach(&mut self, i: usize) {
        let (prev, next) = (self.slab[i].prev, self.slab[i].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else if self.head == i {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else if self.tail == i {
            self.tail = prev;
        }
        self.slab[i].prev = NIL;
        self.slab[i].next = NIL;
    }

    fn push_front(&mut self, i: usize) {
        self.slab[i].prev = NIL;
        self.slab[i].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scwsc_core::solver::CostModel;

    fn answer(cost: f64) -> Answer {
        Answer {
            size: 1,
            covered: 1,
            target: 1,
            total_cost: cost,
            labels: vec!["set#0".into()],
            certified: None,
        }
    }

    #[test]
    fn canonical_key_is_deadline_free_and_cwsc_normalizes_knobs() {
        let mut a = Query::cwsc(5, 0.4);
        let mut b = Query::cwsc(5, 0.4);
        b.b = 3.0;
        b.eps = 0.5;
        assert_eq!(canonical_key(&a), canonical_key(&b), "cwsc ignores b/eps");
        a.algorithm = Algorithm::Cmc;
        b.algorithm = Algorithm::Cmc;
        assert_ne!(canonical_key(&a), canonical_key(&b), "cmc does not");
        let mut c = Query::cmc(5, 0.4);
        c.cost = CostModel::Sum;
        assert_ne!(canonical_key(&Query::cmc(5, 0.4)), canonical_key(&c));
    }

    #[test]
    fn canonical_key_distinguishes_close_floats_exactly() {
        let a = Query::cwsc(5, 0.1 + 0.2);
        let b = Query::cwsc(5, 0.3);
        assert_ne!(canonical_key(&a), canonical_key(&b));
        assert_eq!(canonical_key(&a), canonical_key(&Query::cwsc(5, 0.1 + 0.2)));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut cache = ResultCache::new(2);
        cache.insert("a".into(), answer(1.0));
        cache.insert("b".into(), answer(2.0));
        assert!(cache.get("a").is_some(), "refresh a");
        cache.insert("c".into(), answer(3.0)); // evicts b
        assert!(cache.get("b").is_none());
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_some());
        assert_eq!(cache.len(), 2);
        let (hits, misses, evictions) = cache.stats();
        assert_eq!((hits, misses, evictions), (3, 1, 1));
    }

    #[test]
    fn reinsert_refreshes_value_and_recency() {
        let mut cache = ResultCache::new(2);
        cache.insert("a".into(), answer(1.0));
        cache.insert("b".into(), answer(2.0));
        cache.insert("a".into(), answer(9.0));
        cache.insert("c".into(), answer(3.0)); // evicts b, not a
        assert_eq!(cache.get("a").unwrap().total_cost, 9.0);
        assert!(cache.get("b").is_none());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = ResultCache::new(0);
        cache.insert("a".into(), answer(1.0));
        assert!(cache.get("a").is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn single_slot_cycles_correctly() {
        let mut cache = ResultCache::new(1);
        for (i, key) in ["a", "b", "c", "a"].iter().enumerate() {
            cache.insert((*key).into(), answer(i as f64));
            assert_eq!(cache.len(), 1);
            assert_eq!(cache.get(key).unwrap().total_cost, i as f64);
        }
    }
}
