//! Admission control and brownout load shedding (DESIGN.md §17).
//!
//! Every non-cached request passes the [`Gate`], which classifies it:
//!
//! * **Admit** — an in-flight slot and the full (tier-adjusted) tick
//!   budget are available now;
//! * **Degrade** — the request runs, but with a shrunken budget: the
//!   brownout tier is above 0, remaining tick capacity covers only part
//!   of the grant, or the queue wait exhausted the caller's patience and
//!   the request is admitted with a zero budget so the solver returns an
//!   honest certified `Degraded` instead of being dropped;
//! * **Reject** — the bounded queue is full (or the server is draining);
//!   the caller gets an explicit `retry_after_ms` and *no* work is done.
//!
//! The accounting is two-dimensional: slots (`max_inflight` concurrent
//! solves, `max_queue` waiters) bound memory and thread pressure, while
//! the tick budget (`tick_capacity` outstanding ticks) bounds admitted
//! *work* — ticks are the engine's deterministic work unit, so capacity
//! is load-independent and testable.
//!
//! Brownout tiers shrink per-request budgets (`base_ticks >> tier`)
//! under sustained pressure instead of refusing work — degrade, don't
//! drop. The tier climbs when the [`SolveWindows`] p99 benefit count
//! saturates the current grant or the windowed degraded-rate crosses its
//! threshold (both solve-sequence-driven, hence deterministic), plus
//! queue occupancy; it decays after a calm streak. Hysteresis
//! (`raise_after` / `lower_after` consecutive observations) keeps the
//! tier from flapping.

use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Gate sizing and budgets.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Concurrent solves admitted (beyond this, requests queue).
    pub max_inflight: usize,
    /// Bounded queue depth; a full queue rejects with Retry-After.
    pub max_queue: usize,
    /// Cap on the sum of tick budgets granted to in-flight solves.
    pub tick_capacity: u64,
    /// Per-request tick budget at tier 0.
    pub base_ticks: u64,
    /// Grant floor: below this, a partial grant is not worth starting
    /// (the zero-budget distress grant is exempt).
    pub min_ticks: u64,
    /// Retry hint handed out with rejections.
    pub retry_after_ms: u64,
    /// Longest a request waits queued before the degrade-don't-drop path
    /// admits it with a zero budget (callers with deadlines wait at most
    /// their remaining budget instead).
    pub max_queue_wait: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            max_inflight: 4,
            max_queue: 16,
            tick_capacity: 800_000,
            base_ticks: 200_000,
            min_ticks: 64,
            retry_after_ms: 25,
            max_queue_wait: Duration::from_millis(100),
        }
    }
}

/// Brownout state-machine thresholds.
#[derive(Debug, Clone)]
pub struct BrownoutConfig {
    /// Deepest tier; each tier halves the tick grant (`base >> tier`).
    pub max_tier: u8,
    /// Consecutive hot observations before the tier rises.
    pub raise_after: u32,
    /// Consecutive calm observations before the tier falls.
    pub lower_after: u32,
    /// Windowed degraded-rate at or above which a solve counts as hot.
    pub hot_degraded_rate: f64,
    /// Queue+inflight occupancy fraction at or above which a solve
    /// counts as hot.
    pub hot_occupancy: f64,
}

impl Default for BrownoutConfig {
    fn default() -> BrownoutConfig {
        BrownoutConfig {
            max_tier: 3,
            raise_after: 4,
            lower_after: 16,
            hot_degraded_rate: 0.25,
            hot_occupancy: 0.5,
        }
    }
}

/// Proof of admission: the grant to run one solve. Must be handed back
/// via [`Gate::release`] (the dispatcher does this in all paths,
/// including panics).
#[derive(Debug)]
pub struct Ticket {
    /// Granted tick budget (0 = distress grant: degrade immediately).
    pub ticks: u64,
    /// Brownout tier at admission.
    pub tier: u8,
    /// Time spent queued before the grant.
    pub queue_wait: Duration,
    /// Whether the grant was shrunk below the tier-0 ask.
    pub shrunk: bool,
    /// Distress grants bypassed the slot check; release skips the
    /// tick refund (nothing was reserved).
    distress: bool,
}

/// The gate's answer for one request.
#[derive(Debug)]
pub enum Admission {
    /// Full grant at the current tier.
    Admit(Ticket),
    /// Shrunken (possibly zero) grant — run, but expect `Degraded`.
    Degrade(Ticket),
    /// Shed without running; retry after the hint.
    Reject {
        /// Milliseconds the caller should back off.
        retry_after_ms: u64,
    },
}

#[derive(Debug, Default)]
struct GateState {
    inflight: usize,
    queued: usize,
    outstanding_ticks: u64,
    draining: bool,
    tier: u8,
    hot_streak: u32,
    calm_streak: u32,
    tier_raises: u64,
}

/// Point-in-time gate occupancy, for telemetry and tier decisions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateSnapshot {
    /// Solves currently running.
    pub inflight: usize,
    /// Requests currently queued.
    pub queued: usize,
    /// Sum of outstanding tick grants.
    pub outstanding_ticks: u64,
    /// Current brownout tier.
    pub tier: u8,
    /// Times the tier has ever risen.
    pub tier_raises: u64,
    /// Whether the gate is draining (rejecting all new work).
    pub draining: bool,
}

/// The admission controller. All methods are `&self`; one gate is
/// shared by every connection thread.
pub struct Gate {
    config: AdmissionConfig,
    brownout: BrownoutConfig,
    state: Mutex<GateState>,
    freed: Condvar,
}

impl Gate {
    /// A gate with the given sizing.
    pub fn new(config: AdmissionConfig, brownout: BrownoutConfig) -> Gate {
        Gate {
            config,
            brownout,
            state: Mutex::new(GateState::default()),
            freed: Condvar::new(),
        }
    }

    /// The sizing this gate enforces.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Classifies one request. `want_ticks` is the caller's own cap
    /// (never raised above the server budget); `wall_budget` bounds the
    /// queue wait. Blocks at most `min(wall_budget, max_queue_wait)`.
    pub fn admit(&self, want_ticks: Option<u64>, wall_budget: Option<Duration>) -> Admission {
        let started = Instant::now();
        let wait_cap = match wall_budget {
            Some(w) => w.min(self.config.max_queue_wait),
            None => self.config.max_queue_wait,
        };
        let mut state = self.state.lock().expect("gate lock poisoned");
        let mut queued_here = false;
        loop {
            if state.draining {
                if queued_here {
                    state.queued -= 1;
                }
                return Admission::Reject {
                    retry_after_ms: self.config.retry_after_ms,
                };
            }
            let tier_cap = (self.config.base_ticks >> state.tier).max(self.config.min_ticks);
            let desired = want_ticks
                .unwrap_or(self.config.base_ticks)
                .min(self.config.base_ticks)
                .min(tier_cap);
            if state.inflight < self.config.max_inflight {
                let available = self.config.tick_capacity
                    - state.outstanding_ticks.min(self.config.tick_capacity);
                let grant = desired.min(available);
                if grant >= self.config.min_ticks.min(desired) && grant > 0 {
                    if queued_here {
                        state.queued -= 1;
                    }
                    state.inflight += 1;
                    state.outstanding_ticks += grant;
                    let ticket = Ticket {
                        ticks: grant,
                        tier: state.tier,
                        queue_wait: started.elapsed(),
                        shrunk: grant < desired || state.tier > 0,
                        distress: false,
                    };
                    return if ticket.shrunk {
                        Admission::Degrade(ticket)
                    } else {
                        Admission::Admit(ticket)
                    };
                }
            }
            // No slot or no meaningful tick grant: queue (bounded) and
            // wait for a release.
            if !queued_here {
                if state.queued >= self.config.max_queue {
                    return Admission::Reject {
                        retry_after_ms: self.config.retry_after_ms,
                    };
                }
                state.queued += 1;
                queued_here = true;
            }
            let waited = started.elapsed();
            if waited >= wait_cap {
                // Degrade-don't-drop: the wait consumed the caller's
                // patience. Admit with a zero budget — the solver's
                // first checkpoint degrades with an honest certificate.
                state.queued -= 1;
                state.inflight += 1;
                return Admission::Degrade(Ticket {
                    ticks: 0,
                    tier: state.tier,
                    queue_wait: waited,
                    shrunk: true,
                    distress: true,
                });
            }
            let (next, _timeout) = self
                .freed
                .wait_timeout(state, wait_cap - waited)
                .expect("gate lock poisoned");
            state = next;
        }
    }

    /// Returns a ticket after its solve finished (any outcome).
    pub fn release(&self, ticket: Ticket) {
        let mut state = self.state.lock().expect("gate lock poisoned");
        state.inflight -= 1;
        if !ticket.distress {
            state.outstanding_ticks -= ticket.ticks;
        }
        drop(state);
        self.freed.notify_all();
    }

    /// Feeds one completed solve into the brownout state machine.
    /// `windowed_degraded_rate` and `p99_benefits` come from the shared
    /// [`SolveWindows`]; occupancy is read from the gate itself. Returns
    /// the tier now in force.
    pub fn observe_solve(&self, windowed_degraded_rate: f64, p99_benefits: u64) -> u8 {
        let mut state = self.state.lock().expect("gate lock poisoned");
        let occupancy = (state.inflight + state.queued) as f64
            / (self.config.max_inflight + self.config.max_queue) as f64;
        let tier_cap = (self.config.base_ticks >> state.tier).max(self.config.min_ticks);
        let hot = windowed_degraded_rate >= self.brownout.hot_degraded_rate
            || occupancy >= self.brownout.hot_occupancy
            || p99_benefits >= tier_cap;
        if hot {
            state.hot_streak += 1;
            state.calm_streak = 0;
            if state.hot_streak >= self.brownout.raise_after && state.tier < self.brownout.max_tier
            {
                state.tier += 1;
                state.tier_raises += 1;
                state.hot_streak = 0;
            }
        } else {
            state.calm_streak += 1;
            state.hot_streak = 0;
            if state.calm_streak >= self.brownout.lower_after && state.tier > 0 {
                state.tier -= 1;
                state.calm_streak = 0;
            }
        }
        state.tier
    }

    /// Flips the gate into drain mode: every subsequent [`Gate::admit`]
    /// rejects (with Retry-After), queued waiters are woken to reject,
    /// in-flight solves finish normally.
    pub fn drain(&self) {
        self.state.lock().expect("gate lock poisoned").draining = true;
        self.freed.notify_all();
    }

    /// Point-in-time occupancy.
    pub fn snapshot(&self) -> GateSnapshot {
        let state = self.state.lock().expect("gate lock poisoned");
        GateSnapshot {
            inflight: state.inflight,
            queued: state.queued,
            outstanding_ticks: state.outstanding_ticks,
            tier: state.tier,
            tier_raises: state.tier_raises,
            draining: state.draining,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate(max_inflight: usize, max_queue: usize) -> Gate {
        Gate::new(
            AdmissionConfig {
                max_inflight,
                max_queue,
                tick_capacity: 1000,
                base_ticks: 400,
                min_ticks: 10,
                retry_after_ms: 25,
                max_queue_wait: Duration::from_millis(20),
            },
            BrownoutConfig::default(),
        )
    }

    fn ticket(admission: Admission) -> Ticket {
        match admission {
            Admission::Admit(t) | Admission::Degrade(t) => t,
            Admission::Reject { .. } => panic!("expected a grant"),
        }
    }

    #[test]
    fn admits_full_budget_when_idle() {
        let g = gate(2, 2);
        match g.admit(None, None) {
            Admission::Admit(t) => {
                assert_eq!(t.ticks, 400);
                assert_eq!(t.tier, 0);
                assert!(!t.shrunk);
                g.release(t);
            }
            other => panic!("expected Admit, got {other:?}"),
        }
        assert_eq!(g.snapshot().outstanding_ticks, 0);
    }

    #[test]
    fn caller_cap_lowers_but_never_raises_the_grant() {
        let g = gate(2, 2);
        let t = ticket(g.admit(Some(50), None));
        assert_eq!(t.ticks, 50);
        g.release(t);
        let t = ticket(g.admit(Some(9_999_999), None));
        assert_eq!(t.ticks, 400, "capped at base");
        g.release(t);
    }

    #[test]
    fn tick_capacity_shrinks_grants_under_pressure() {
        let g = gate(4, 4);
        let a = ticket(g.admit(None, None)); // 400
        let b = ticket(g.admit(None, None)); // 400
        let c = g.admit(None, None); // only 200 left
        match c {
            Admission::Degrade(t) => {
                assert_eq!(t.ticks, 200);
                assert!(t.shrunk);
                g.release(t);
            }
            other => panic!("expected Degrade, got {other:?}"),
        }
        g.release(a);
        g.release(b);
    }

    #[test]
    fn full_queue_rejects_with_retry_after() {
        let g = gate(1, 0); // one slot, no queue
        let held = ticket(g.admit(None, None));
        match g.admit(None, Some(Duration::from_millis(1))) {
            Admission::Reject { retry_after_ms } => assert_eq!(retry_after_ms, 25),
            other => panic!("expected Reject, got {other:?}"),
        }
        g.release(held);
    }

    #[test]
    fn exhausted_wait_degrades_to_zero_grant_instead_of_dropping() {
        let g = gate(1, 4);
        let held = ticket(g.admit(None, None));
        match g.admit(None, Some(Duration::from_millis(5))) {
            Admission::Degrade(t) => {
                assert_eq!(t.ticks, 0);
                assert!(t.queue_wait >= Duration::from_millis(5));
                g.release(t);
            }
            other => panic!("expected distress Degrade, got {other:?}"),
        }
        g.release(held);
        assert_eq!(g.snapshot().inflight, 0);
        assert_eq!(g.snapshot().outstanding_ticks, 0);
    }

    #[test]
    fn draining_rejects_everything_new() {
        let g = gate(2, 2);
        g.drain();
        assert!(matches!(g.admit(None, None), Admission::Reject { .. }));
        assert!(g.snapshot().draining);
    }

    #[test]
    fn released_slot_wakes_a_queued_waiter() {
        let g = std::sync::Arc::new(gate(1, 4));
        let held = ticket(g.admit(None, None));
        let g2 = std::sync::Arc::clone(&g);
        let waiter = std::thread::spawn(move || ticket(g2.admit(None, None)).ticks);
        std::thread::sleep(Duration::from_millis(2));
        g.release(held);
        assert_eq!(waiter.join().unwrap(), 400, "woken with the full grant");
    }

    #[test]
    fn brownout_rises_on_hot_streak_and_decays_on_calm() {
        let g = gate(4, 4);
        for _ in 0..4 {
            g.observe_solve(1.0, 0);
        }
        assert_eq!(g.snapshot().tier, 1, "raise after 4 hot solves");
        let t = ticket(g.admit(None, None));
        assert_eq!(t.ticks, 200, "tier 1 halves the grant");
        assert!(matches!(t.tier, 1));
        g.release(t);
        for _ in 0..8 {
            g.observe_solve(1.0, 0);
        }
        assert_eq!(g.snapshot().tier, 3, "clamped at max tier");
        for _ in 0..16 {
            g.observe_solve(0.0, 0);
        }
        assert_eq!(g.snapshot().tier, 2, "calm streak lowers one tier");
    }

    #[test]
    fn p99_budget_saturation_counts_as_hot() {
        let g = gate(4, 4);
        for _ in 0..4 {
            g.observe_solve(0.0, 400); // p99 == tier-0 grant
        }
        assert_eq!(g.snapshot().tier, 1);
    }
}
