//! The `scwsc_serve` transport: line-delimited JSON over TCP, hand
//! rolled on `std::net` (the vendored-deps constraint bans tokio/hyper).
//!
//! One accept loop, one thread per connection, all sharing the
//! [`ServerState`] behind an `Arc`. Connections speak the
//! [`protocol`](crate::protocol): one request per line, one response per
//! line, connection kept alive across requests.
//!
//! **Graceful drain.** SIGTERM/SIGINT (or a programmatic
//! [`ShutdownFlag`]) flips the gate into drain mode: queued and new
//! requests are rejected with Retry-After, in-flight solves finish and
//! their responses are written, the accept loop stops, connection
//! threads are joined (bounded by `drain_timeout`), and telemetry — the
//! flight-recorder ring and the Prometheus exposition — is flushed to
//! disk before the summary prints. No admitted request is ever dropped
//! by shutdown.
//!
//! **Service faults** (`fault-inject` builds): a [`FaultPlan`] with
//! `slow_read` stalls the named request mid-read (a slow client; the
//! stall is charged as queue wait, shrinking that request's solve
//! budget), and `disconnect_at` drops the connection after the named
//! request is read and before any response byte is written — the server
//! must shrug, finish the solve, fail the write quietly, and keep
//! serving other connections.

use crate::dispatch::ServerState;
use crate::protocol::{Request, Response};
#[cfg(feature = "fault-inject")]
use scwsc_core::FaultPlan;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cooperative shutdown signal shared between the accept loop, the
/// signal handler, and tests.
#[derive(Debug, Clone, Default)]
pub struct ShutdownFlag(Arc<AtomicBool>);

impl ShutdownFlag {
    /// A flag that is not yet raised.
    pub fn new() -> ShutdownFlag {
        ShutdownFlag::default()
    }

    /// Requests a graceful drain.
    pub fn raise(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn raised(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

// SIGTERM/SIGINT delivery via libc's `signal` — the handler only flips
// an atomic, the drain itself runs on the accept loop. Hand-rolled FFI
// because the vendored-deps constraint bans the libc crate.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

extern "C" fn on_signal(_signum: i32) {
    SIGNALLED.store(true, Ordering::SeqCst);
}

/// Installs SIGTERM/SIGINT handlers that request a graceful drain of
/// every server in the process (the flag is process-global).
pub fn install_signal_handlers() {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
}

/// Transport-layer options.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// How long [`serve`] waits for in-flight solves after drain begins.
    pub drain_timeout: Duration,
    /// Poll interval of the accept loop and the per-connection read
    /// timeout — bounds how stale a drain signal can go unnoticed.
    pub poll_interval: Duration,
    /// Where to flush the flight-recorder ring on drain.
    pub flight_dump: Option<PathBuf>,
    /// Where to flush the Prometheus exposition on drain.
    pub prometheus_dump: Option<PathBuf>,
    /// Service-layer fault schedule (slow reads, disconnects),
    /// addressed by the server-wide 1-based request read sequence.
    #[cfg(feature = "fault-inject")]
    pub faults: Option<Arc<FaultPlan>>,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            drain_timeout: Duration::from_secs(10),
            poll_interval: Duration::from_millis(25),
            flight_dump: None,
            prometheus_dump: None,
            #[cfg(feature = "fault-inject")]
            faults: None,
        }
    }
}

/// What a serve run did, printed by the binary on exit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeSummary {
    /// Connections accepted.
    pub connections: u64,
    /// Requests read off the wire.
    pub requests_read: u64,
    /// Responses answered `complete`.
    pub complete: u64,
    /// Responses answered `degraded`.
    pub degraded: u64,
    /// Requests rejected with Retry-After.
    pub rejected: u64,
    /// Responses answered `error`.
    pub errors: u64,
    /// Result-cache hits.
    pub cache_hits: u64,
    /// Panics isolated by the dispatch retry layer.
    pub panics_isolated: u64,
    /// Responses whose write failed (client gone) — the solve still ran
    /// to an answer; nothing was dropped server-side.
    pub failed_writes: u64,
    /// Watchdog stalls observed (0 in a healthy run).
    pub stalls: u64,
    /// Whether the drain finished inside `drain_timeout`.
    pub drained_clean: bool,
}

/// Runs the accept loop on `listener` until `shutdown` (or a signal
/// installed via [`install_signal_handlers`]) requests a drain, then
/// drains gracefully and returns the summary.
pub fn serve(
    listener: TcpListener,
    state: Arc<ServerState>,
    options: ServeOptions,
    shutdown: ShutdownFlag,
) -> std::io::Result<ServeSummary> {
    listener.set_nonblocking(true)?;
    let monitor = state.watchdog().map(|dog| dog.monitor());
    let read_seq = Arc::new(AtomicU64::new(0));
    let requests_read = Arc::new(AtomicU64::new(0));
    let failed_writes = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    let mut connections = 0u64;

    while !shutdown.raised() && !SIGNALLED.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                connections += 1;
                let conn = Connection {
                    state: Arc::clone(&state),
                    shutdown: shutdown.clone(),
                    read_seq: Arc::clone(&read_seq),
                    requests_read: Arc::clone(&requests_read),
                    failed_writes: Arc::clone(&failed_writes),
                    poll_interval: options.poll_interval,
                    #[cfg(feature = "fault-inject")]
                    faults: options.faults.clone(),
                };
                handles.push(std::thread::spawn(move || conn.run(stream)));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(options.poll_interval);
            }
            Err(e) => return Err(e),
        }
        handles.retain(|h| !h.is_finished());
    }

    // Drain: reject new work (waking queued requests into rejections),
    // let in-flight solves finish, bound the wait.
    state.drain();
    let drain_started = Instant::now();
    let mut drained_clean = true;
    while state.gate_snapshot().inflight > 0 {
        if drain_started.elapsed() > options.drain_timeout {
            drained_clean = false;
            break;
        }
        std::thread::sleep(options.poll_interval);
    }
    for handle in handles {
        if drain_started.elapsed() > options.drain_timeout && !handle.is_finished() {
            drained_clean = false;
            continue; // leak rather than block past the timeout
        }
        let _ = handle.join();
    }
    drop(monitor);

    // Flush telemetry before reporting: the flight ring and the
    // Prometheus text are the post-mortem record of the run.
    if let Some(path) = &options.flight_dump {
        let _ = state.flight().dump_to_path(path);
    }
    if let Some(path) = &options.prometheus_dump {
        let _ = std::fs::write(path, state.prometheus());
    }

    let counters = &state.counters;
    Ok(ServeSummary {
        connections,
        requests_read: requests_read.load(Ordering::Relaxed),
        complete: counters.complete.load(Ordering::Relaxed),
        degraded: counters.degraded.load(Ordering::Relaxed),
        rejected: counters.rejected.load(Ordering::Relaxed),
        errors: counters.errors.load(Ordering::Relaxed),
        cache_hits: counters.cache_hits.load(Ordering::Relaxed),
        panics_isolated: counters.panics_isolated.load(Ordering::Relaxed),
        failed_writes: failed_writes.load(Ordering::Relaxed),
        stalls: state.watchdog().map_or(0, |dog| dog.stalls()),
        drained_clean,
    })
}

/// One connection's half of the protocol loop.
struct Connection {
    state: Arc<ServerState>,
    shutdown: ShutdownFlag,
    read_seq: Arc<AtomicU64>,
    requests_read: Arc<AtomicU64>,
    failed_writes: Arc<AtomicU64>,
    poll_interval: Duration,
    #[cfg(feature = "fault-inject")]
    faults: Option<Arc<FaultPlan>>,
}

impl Connection {
    fn run(self, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        // A finite read timeout keeps the connection responsive to
        // drain: between requests the loop wakes and re-checks.
        let _ = stream.set_read_timeout(Some(self.poll_interval));
        let mut reader = BufReader::new(match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        });
        let mut writer = stream;
        let mut line = String::new();
        loop {
            if self.state.draining() || self.shutdown.raised() || SIGNALLED.load(Ordering::SeqCst) {
                return;
            }
            // `line` accumulates across reads: a request can arrive in
            // several segments (writeln! flushes the payload and the
            // newline separately), and the read timeout fires between
            // them. A timeout with a partial line keeps the partial.
            match reader.read_line(&mut line) {
                Ok(0) if line.is_empty() => return,         // EOF: client closed
                Ok(0) => {}                                 // EOF flushes a final unterminated line
                Ok(_) if !line.ends_with('\n') => continue, // mid-line EOF race: keep reading
                Ok(_) => {}
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue;
                }
                Err(_) => return,
            }
            if line.trim().is_empty() {
                line.clear();
                continue;
            }
            let seq = self.read_seq.fetch_add(1, Ordering::Relaxed) + 1;
            self.requests_read.fetch_add(1, Ordering::Relaxed);
            #[cfg(feature = "fault-inject")]
            if let Some(stall) = self.faults.as_ref().and_then(|f| f.slow_read_before(seq)) {
                // Slow client: the rest of the request "trickles in".
                // The stall lands before admission, so it is charged as
                // part of this caller's end-to-end time, not the solve's.
                std::thread::sleep(stall);
            }
            let response = match Request::parse(line.trim_end(), seq) {
                Ok(request) => self.state.dispatch(&request),
                Err(message) => {
                    self.state.counters.errors.fetch_add(1, Ordering::Relaxed);
                    Response::error(seq, format!("bad request: {message}"))
                }
            };
            #[cfg(feature = "fault-inject")]
            if self.faults.as_ref().is_some_and(|f| f.disconnects(seq)) {
                // Mid-request disconnect: the client vanished between
                // sending the request and reading the answer. The solve
                // already ran; drop the connection without writing.
                self.failed_writes.fetch_add(1, Ordering::Relaxed);
                return;
            }
            // One write_all per response: a single segment on the wire,
            // so slow-reading clients never see a torn line.
            let mut out = response.to_line();
            out.push('\n');
            if writer.write_all(out.as_bytes()).is_err() {
                self.failed_writes.fetch_add(1, Ordering::Relaxed);
                return;
            }
            line.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::ServerConfig;
    use scwsc_core::solver::Query;
    use scwsc_core::{FlightRecorder, SetSystem, SystemInstance, ThreadPool, Threads};

    fn test_state(config: ServerConfig) -> Arc<ServerState> {
        let mut b = SetSystem::builder(6);
        b.add_set([0, 1, 2], 3.0)
            .add_set([3, 4], 1.0)
            .add_set([5], 1.0)
            .add_universe_set(50.0);
        Arc::new(ServerState::new(
            Arc::new(SystemInstance::new(Arc::new(b.build().unwrap()))),
            ThreadPool::new(Threads::serial()),
            config,
            FlightRecorder::new(),
            None,
        ))
    }

    fn boot(
        config: ServerConfig,
        options: ServeOptions,
    ) -> (
        std::net::SocketAddr,
        ShutdownFlag,
        std::thread::JoinHandle<ServeSummary>,
    ) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let state = test_state(config);
        let shutdown = ShutdownFlag::new();
        let flag = shutdown.clone();
        let handle = std::thread::spawn(move || serve(listener, state, options, flag).unwrap());
        (addr, shutdown, handle)
    }

    fn roundtrip(stream: &mut TcpStream, request: &Request) -> Response {
        writeln!(stream, "{}", request.to_line()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) => panic!("server closed before responding"),
                Ok(_) => return Response::parse(line.trim_end()).unwrap(),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue
                }
                Err(e) => panic!("read failed: {e}"),
            }
        }
    }

    #[test]
    fn serves_requests_then_drains_cleanly() {
        let (addr, shutdown, handle) = boot(ServerConfig::default(), ServeOptions::default());
        let mut stream = TcpStream::connect(addr).unwrap();
        let resp = roundtrip(&mut stream, &Request::new(1, Query::cwsc(2, 0.8)));
        assert_eq!(resp.status, crate::protocol::Status::Complete);
        let resp = roundtrip(&mut stream, &Request::new(2, Query::cwsc(2, 0.8)));
        assert!(resp.cached, "second identical query served from cache");
        drop(stream);
        shutdown.raise();
        let summary = handle.join().unwrap();
        assert_eq!(summary.connections, 1);
        assert_eq!(summary.requests_read, 2);
        assert_eq!(summary.complete, 2);
        assert!(summary.drained_clean);
        assert_eq!(summary.stalls, 0);
    }

    #[test]
    fn malformed_lines_get_error_responses_and_the_connection_lives() {
        let (addr, shutdown, handle) = boot(ServerConfig::default(), ServeOptions::default());
        let mut stream = TcpStream::connect(addr).unwrap();
        writeln!(stream, "this is not json").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) => panic!("closed"),
                Ok(_) => break,
                Err(_) => continue,
            }
        }
        let resp = Response::parse(line.trim_end()).unwrap();
        assert_eq!(resp.status, crate::protocol::Status::Error);
        // Same connection still answers good requests.
        let resp = roundtrip(&mut stream, &Request::new(5, Query::cwsc(2, 0.8)));
        assert_eq!(resp.status, crate::protocol::Status::Complete);
        drop(stream);
        shutdown.raise();
        let summary = handle.join().unwrap();
        assert_eq!(summary.errors, 1);
        assert_eq!(summary.complete, 1);
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn injected_disconnect_drops_one_connection_and_spares_the_rest() {
        let options = ServeOptions {
            faults: Some(Arc::new(FaultPlan::new().disconnect_at(1))),
            ..ServeOptions::default()
        };
        let (addr, shutdown, handle) = boot(ServerConfig::default(), options);
        let mut doomed = TcpStream::connect(addr).unwrap();
        writeln!(doomed, "{}", Request::new(1, Query::cwsc(2, 0.8)).to_line()).unwrap();
        // The server drops the connection without writing a byte.
        let mut reader = BufReader::new(doomed.try_clone().unwrap());
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) => break,
                Ok(_) => panic!("expected a silent disconnect, got {line:?}"),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue
                }
                Err(_) => break,
            }
        }
        // A second connection is unaffected.
        let mut healthy = TcpStream::connect(addr).unwrap();
        let resp = roundtrip(&mut healthy, &Request::new(2, Query::cwsc(2, 0.8)));
        assert_eq!(resp.status, crate::protocol::Status::Complete);
        drop(healthy);
        shutdown.raise();
        let summary = handle.join().unwrap();
        assert_eq!(summary.failed_writes, 1);
        assert!(summary.drained_clean);
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn injected_slow_read_charges_the_callers_wall_deadline() {
        let options = ServeOptions {
            faults: Some(Arc::new(FaultPlan::new().slow_read(1, 30))),
            ..ServeOptions::default()
        };
        let (addr, shutdown, handle) = boot(ServerConfig::default(), options);
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut request = Request::new(1, Query::cwsc(2, 0.8));
        request.deadline_ms = Some(10_000);
        let resp = roundtrip(&mut stream, &request);
        // The stall happens before admission; the solve still finishes.
        assert_eq!(resp.status, crate::protocol::Status::Complete);
        drop(stream);
        shutdown.raise();
        assert!(handle.join().unwrap().drained_clean);
    }
}
