//! Long-lived solve service: load one instance, answer queries over TCP.
//!
//! ```text
//! scwsc_serve --rows 20000 --seed 7 --addr 127.0.0.1:7575
//! scwsc_serve --csv data.csv --threads 4 --deadline-ms 250 --watchdog 2000
//! ```
//!
//! Clients send one JSON request per line and read one JSON response per
//! line (see `scwsc-serve`'s protocol module); `scwsc_bench serve-load`
//! is the reference client. SIGTERM/SIGINT drains gracefully: in-flight
//! solves finish, new requests are rejected with Retry-After, telemetry
//! is flushed, and the summary prints.

use scwsc_core::cli::Args;
#[cfg(feature = "fault-inject")]
use scwsc_core::FaultPlan;
use scwsc_core::{FlightRecorder, Solver, ThreadPool, Threads, Watchdog};
use scwsc_data::csv::read_table;
use scwsc_data::lbl::LblConfig;
use scwsc_patterns::PatternInstance;
use scwsc_serve::{
    install_signal_handlers, serve, AdmissionConfig, BrownoutConfig, ServeOptions, ServerConfig,
    ServerState, ShutdownFlag,
};
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::process::exit;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "scwsc_serve [--csv PATH | --rows N [--seed N]] [--addr HOST:PORT] \
[--threads N] [--deadline-ms N] [--cache N] [--window N] \
[--max-inflight N] [--max-queue N] [--tick-capacity N] [--base-ticks N] [--min-ticks N] \
[--retry-after-ms N] [--max-queue-wait-ms N] [--max-tier N] \
[--watchdog MS] [--flight-dump PATH] [--metrics-prom PATH] [--fault SPEC]
Serves size-constrained weighted set cover queries over the instance's
pattern cube: one JSON request per line in, one JSON response per line out
(statuses complete | degraded | rejected | error; rejected always carries
retry_after_ms). Without --csv a synthetic LBL-like trace of --rows records
is generated. --deadline-ms is the default caller deadline applied when a
request names none (0 = unbounded wall clock; tick budgets still bound
work). Admission: at most --max-inflight concurrent solves and --max-queue
queued requests; each solve is granted up to --base-ticks deterministic
work ticks (shrunk by brownout tiers to base>>tier, floored at
--min-ticks) with at most --tick-capacity ticks outstanding across all
in-flight solves; a full queue rejects with --retry-after-ms, and a
request that queues longer than --max-queue-wait-ms (or its own remaining
deadline) is admitted with a zero budget so it degrades honestly instead
of being dropped. --cache bounds the LRU result cache (complete answers
only; hits bypass admission). --watchdog MS arms the liveness watchdog
over every solve; --flight-dump and --metrics-prom flush the flight ring
and the Prometheus exposition on drain. --fault (fault-inject builds)
injects deterministic service faults, comma-separated: slowread@REQ:MS
stalls reading the REQ-th request, disconnect@REQ drops its connection
before the response is written, panicreq@REQ panics that request's first
solve attempt (isolated and retried once).";

fn bail(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!("usage: {USAGE}");
    exit(2);
}

fn required<T>(result: Result<T, String>) -> T {
    result.unwrap_or_else(|e| bail(&e))
}

#[cfg(feature = "fault-inject")]
struct FaultSpec {
    service: Option<Arc<FaultPlan>>,
    panic_request: Option<u64>,
}

/// Parses `--fault`: comma-separated `slowread@REQ:MS`, `disconnect@REQ`,
/// `panicreq@REQ` (all request numbers 1-based).
#[cfg(feature = "fault-inject")]
fn parse_fault(spec: &str) -> FaultSpec {
    let number = |text: &str| -> u64 {
        text.parse()
            .unwrap_or_else(|_| bail(&format!("bad fault spec: {text:?} is not a number")))
    };
    let mut plan = FaultPlan::new();
    let mut any_service = false;
    let mut panic_request = None;
    for part in spec.split(',') {
        match part.split_once('@') {
            Some(("slowread", rest)) => {
                let (req, ms) = rest
                    .split_once(':')
                    .unwrap_or_else(|| bail(&format!("bad fault spec {part:?}: want REQ:MS")));
                plan = plan.slow_read(number(req), number(ms));
                any_service = true;
            }
            Some(("disconnect", req)) => {
                plan = plan.disconnect_at(number(req));
                any_service = true;
            }
            Some(("panicreq", req)) => panic_request = Some(number(req)),
            _ => bail(&format!("unknown fault {part:?}")),
        }
    }
    FaultSpec {
        service: any_service.then(|| Arc::new(plan)),
        panic_request,
    }
}

fn main() {
    let args = match Args::from_env() {
        Ok(args) => args,
        Err(e) => bail(&e),
    };
    let table = if let Some(path) = args.get("csv") {
        match read_table(Path::new(path)) {
            Ok(t) => t,
            Err(e) => bail(&format!("cannot read {path}: {e}")),
        }
    } else {
        let rows: usize = required(args.get_or("rows", 20_000));
        let seed: u64 = required(args.get_or("seed", 7));
        LblConfig {
            seed,
            ..LblConfig::scaled(rows)
        }
        .generate()
    };
    let threads = if args.get("threads").is_some() {
        Threads::new(required(args.get_or("threads", 1)))
    } else {
        Threads::from_env()
    };
    let pool = ThreadPool::new(threads);

    let admission = AdmissionConfig {
        max_inflight: required(
            args.get_or("max-inflight", AdmissionConfig::default().max_inflight),
        ),
        max_queue: required(args.get_or("max-queue", AdmissionConfig::default().max_queue)),
        tick_capacity: required(
            args.get_or("tick-capacity", AdmissionConfig::default().tick_capacity),
        ),
        base_ticks: required(args.get_or("base-ticks", AdmissionConfig::default().base_ticks)),
        min_ticks: required(args.get_or("min-ticks", AdmissionConfig::default().min_ticks)),
        retry_after_ms: required(
            args.get_or("retry-after-ms", AdmissionConfig::default().retry_after_ms),
        ),
        max_queue_wait: Duration::from_millis(required(args.get_or("max-queue-wait-ms", 100))),
    };
    let brownout = BrownoutConfig {
        max_tier: required(args.get_or("max-tier", BrownoutConfig::default().max_tier)),
        ..BrownoutConfig::default()
    };
    #[cfg(feature = "fault-inject")]
    let faults = args.get("fault").map(parse_fault);
    #[cfg(not(feature = "fault-inject"))]
    if args.get("fault").is_some() {
        bail("--fault requires a build with --features fault-inject");
    }
    let config = ServerConfig {
        default_deadline_ms: required(args.get_or("deadline-ms", 0)),
        cache_capacity: required(args.get_or("cache", 256)),
        admission,
        brownout,
        window: required(args.get_or("window", 64)),
        #[cfg(feature = "fault-inject")]
        panic_request: faults.as_ref().and_then(|f| f.panic_request),
        ..ServerConfig::default()
    };

    let flight = FlightRecorder::new();
    let flight_dump = args.get("flight-dump").map(PathBuf::from);
    let watchdog = args.get("watchdog").map(|_| {
        let ms: u64 = required(args.get_or("watchdog", 0));
        let mut dog = Watchdog::new(Duration::from_millis(ms)).with_flight(flight.clone());
        let stall_path = match &flight_dump {
            Some(path) => format!("{}.stall", path.display()),
            None => "scwsc-serve-stall-flight.jsonl".to_string(),
        };
        dog = dog.with_dump_path(PathBuf::from(stall_path));
        dog
    });

    let instance: Arc<dyn Solver> = Arc::new(PatternInstance::new(table));
    let state = Arc::new(ServerState::new(instance, pool, config, flight, watchdog));

    let addr = args.get("addr").unwrap_or("127.0.0.1:7575");
    let listener = match TcpListener::bind(addr) {
        Ok(l) => l,
        Err(e) => bail(&format!("cannot bind {addr}: {e}")),
    };
    let bound = listener.local_addr().expect("bound address");
    eprintln!(
        "scwsc_serve: listening on {bound} — {} ({} in-flight max, {} base ticks/solve, \
         cache {} answers)",
        state.solver().describe(),
        state.config().admission.max_inflight,
        state.config().admission.base_ticks,
        state.config().cache_capacity,
    );
    install_signal_handlers();

    let options = ServeOptions {
        flight_dump,
        prometheus_dump: args.get("metrics-prom").map(PathBuf::from),
        #[cfg(feature = "fault-inject")]
        faults: faults.and_then(|f| f.service),
        ..ServeOptions::default()
    };
    match serve(listener, state, options, ShutdownFlag::new()) {
        Ok(summary) => {
            eprintln!(
                "scwsc_serve: drained — {} conns, {} requests \
                 (complete {}, degraded {}, rejected {}, errors {}, cache hits {}, \
                 panics isolated {}, failed writes {}), {} stalls, clean={}",
                summary.connections,
                summary.requests_read,
                summary.complete,
                summary.degraded,
                summary.rejected,
                summary.errors,
                summary.cache_hits,
                summary.panics_isolated,
                summary.failed_writes,
                summary.stalls,
                summary.drained_clean,
            );
            if !summary.drained_clean || summary.stalls > 0 {
                exit(1);
            }
        }
        Err(e) => {
            eprintln!("scwsc_serve: accept loop failed: {e}");
            exit(1);
        }
    }
}
