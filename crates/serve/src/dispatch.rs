//! Request dispatch: cache → admission → deadline → isolated solve.
//!
//! [`ServerState`] is the transport-independent heart of `scwsc_serve`:
//! one immutable `Arc<dyn Solver>` instance, one shared [`ThreadPool`],
//! one [`Gate`], one [`ResultCache`], one [`SolveWindows`]. The TCP
//! layer (`server.rs`) parses lines into [`Request`]s and calls
//! [`ServerState::dispatch`]; tests and the property suite call it
//! directly, so every admission/degrade/retry path is exercised without
//! sockets.
//!
//! The per-request pipeline:
//!
//! 1. **Cache** — canonicalize the query; a hit returns immediately and
//!    never consumes a queue slot or tick grant.
//! 2. **Admission** — the [`Gate`] grants a (possibly shrunken) tick
//!    budget, or rejects with Retry-After. Queue wait is charged against
//!    the caller's wall deadline: the solve gets whatever remains.
//! 3. **Isolated solve** — `catch_unwind` around the solver; a panicking
//!    request gets exactly one retry after a jittered-but-seeded backoff
//!    (deterministic per request sequence number, so failures replay).
//!    The injected fault plan is attached only to the first attempt: the
//!    injection models a transient fault the retry recovers from.
//! 4. **Bookkeeping** — the solve feeds [`SolveWindows`] (which drives
//!    brownout tier decisions), per-request metrics merge into the
//!    server-lifetime [`MetricsRecorder`], and complete answers enter
//!    the cache.
//!
//! Every admitted request produces a response — `complete`, `degraded`
//! (certificate re-verified by the instance), or `error` — never a drop.

use crate::admission::{Admission, AdmissionConfig, BrownoutConfig, Gate, GateSnapshot};
use crate::cache::{canonical_key, ResultCache};
use crate::protocol::{Request, Response, Status};
#[cfg(feature = "fault-inject")]
use scwsc_core::FaultPlan;
use scwsc_core::{
    panic_message, render_prometheus_windowed, Deadline, EngineError, Fanout, FlightRecorder,
    MetricsRecorder, SloGauges, SolveOutcome, SolveSample, SolveWindows, Solver, ThreadPool,
    Watchdog,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Entry tag solves carry in the sliding-window breakdown.
pub const SERVE_ENTRY: &str = "serve";

/// Server-wide knobs (transport-independent).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Default caller deadline in ms when a request names none
    /// (0 = no wall-clock bound; tick budgets still apply).
    pub default_deadline_ms: u64,
    /// Result-cache capacity in answers (0 disables).
    pub cache_capacity: usize,
    /// Admission gate sizing.
    pub admission: AdmissionConfig,
    /// Brownout state-machine thresholds.
    pub brownout: BrownoutConfig,
    /// Sliding-window width, in solves.
    pub window: usize,
    /// Seed for the retry backoff jitter (deterministic per request).
    pub backoff_seed: u64,
    /// Upper bound on the retry backoff, in ms.
    pub max_backoff_ms: u64,
    /// Engine fault injection: the (1-based) request sequence number
    /// whose first solve attempt panics — exercises the catch_unwind +
    /// retry path deterministically.
    #[cfg(feature = "fault-inject")]
    pub panic_request: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            default_deadline_ms: 0,
            cache_capacity: 256,
            admission: AdmissionConfig::default(),
            brownout: BrownoutConfig::default(),
            window: 64,
            backoff_seed: 0x5c3c_a11e,
            max_backoff_ms: 20,
            #[cfg(feature = "fault-inject")]
            panic_request: None,
        }
    }
}

/// Monotonic service counters, exported on drain and in the summary.
#[derive(Debug, Default)]
pub struct ServeCounters {
    /// Requests answered `complete` (cache hits included).
    pub complete: AtomicU64,
    /// Requests answered `degraded` (all certificate-verified).
    pub degraded: AtomicU64,
    /// Requests shed at admission with Retry-After.
    pub rejected: AtomicU64,
    /// Requests answered `error` (parse/solve failures).
    pub errors: AtomicU64,
    /// Cache hits (subset of `complete`).
    pub cache_hits: AtomicU64,
    /// Panics isolated by `catch_unwind` (each at most one retry).
    pub panics_isolated: AtomicU64,
}

impl ServeCounters {
    /// Total requests answered (every class).
    pub fn answered(&self) -> u64 {
        self.complete.load(Ordering::Relaxed)
            + self.degraded.load(Ordering::Relaxed)
            + self.rejected.load(Ordering::Relaxed)
            + self.errors.load(Ordering::Relaxed)
    }
}

/// The shared, transport-independent server state. All methods take
/// `&self`; connection threads share one `Arc<ServerState>`.
pub struct ServerState {
    solver: Arc<dyn Solver>,
    pool: ThreadPool,
    gate: Gate,
    cache: Mutex<ResultCache>,
    windows: Mutex<SolveWindows>,
    metrics: Mutex<MetricsRecorder>,
    last_slo: Mutex<Option<SloGauges>>,
    flight: FlightRecorder,
    watchdog: Option<Watchdog>,
    config: ServerConfig,
    seq: AtomicU64,
    /// Monotonic service counters.
    pub counters: ServeCounters,
}

impl ServerState {
    /// Builds the server state around an instance. `watchdog` (if any)
    /// observes every solve; arm its monitor in the transport layer.
    pub fn new(
        solver: Arc<dyn Solver>,
        pool: ThreadPool,
        config: ServerConfig,
        flight: FlightRecorder,
        watchdog: Option<Watchdog>,
    ) -> ServerState {
        ServerState {
            gate: Gate::new(config.admission.clone(), config.brownout.clone()),
            cache: Mutex::new(ResultCache::new(config.cache_capacity)),
            windows: Mutex::new(SolveWindows::with_window(config.window)),
            metrics: Mutex::new(MetricsRecorder::new()),
            last_slo: Mutex::new(None),
            flight,
            watchdog,
            config,
            seq: AtomicU64::new(0),
            counters: ServeCounters::default(),
            solver,
            pool,
        }
    }

    /// The instance being served.
    pub fn solver(&self) -> &dyn Solver {
        &*self.solver
    }

    /// The server configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The shared flight recorder (for end-of-run dumps).
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// The liveness watchdog, when armed.
    pub fn watchdog(&self) -> Option<&Watchdog> {
        self.watchdog.as_ref()
    }

    /// Gate occupancy right now.
    pub fn gate_snapshot(&self) -> GateSnapshot {
        self.gate.snapshot()
    }

    /// `(hits, misses, evictions)` of the result cache.
    pub fn cache_stats(&self) -> (u64, u64, u64) {
        self.cache.lock().expect("cache lock").stats()
    }

    /// Flips the gate into drain mode: subsequent dispatches reject with
    /// Retry-After while in-flight solves finish.
    pub fn drain(&self) {
        self.gate.drain();
    }

    /// Whether the gate is draining.
    pub fn draining(&self) -> bool {
        self.gate.snapshot().draining
    }

    /// Renders the Prometheus exposition of the server-lifetime metrics,
    /// the latest solve's SLO gauges, and the sliding windows.
    pub fn prometheus(&self) -> String {
        let metrics = self.metrics.lock().expect("metrics lock");
        let windows = self.windows.lock().expect("windows lock");
        let slo = self.last_slo.lock().expect("slo lock");
        render_prometheus_windowed(&metrics, slo.as_ref(), &windows)
    }

    /// Answers one request end-to-end (see module docs for the
    /// pipeline). Blocks while queued; returns for every input.
    pub fn dispatch(&self, request: &Request) -> Response {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let key = canonical_key(&request.query);
        if let Some(answer) = self.cache.lock().expect("cache lock").get(&key) {
            self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
            self.counters.complete.fetch_add(1, Ordering::Relaxed);
            return Response {
                id: request.id,
                status: Status::Complete,
                answer: Some(answer),
                certificate: None,
                retry_after_ms: None,
                cached: true,
                tier: self.gate.snapshot().tier,
                attempts: 0,
                queue_ms: 0.0,
                solve_ms: 0.0,
                error: None,
            };
        }

        let wall_budget = match request
            .deadline_ms
            .unwrap_or(self.config.default_deadline_ms)
        {
            0 => None,
            ms => Some(Duration::from_millis(ms)),
        };
        let ticket = match self.gate.admit(request.max_ticks, wall_budget) {
            Admission::Admit(t) | Admission::Degrade(t) => t,
            Admission::Reject { retry_after_ms } => {
                self.counters.rejected.fetch_add(1, Ordering::Relaxed);
                return Response::rejected(
                    request.id,
                    retry_after_ms,
                    0.0,
                    self.gate.snapshot().tier,
                );
            }
        };

        let (granted_ticks, queue_wait, tier) = (ticket.ticks, ticket.queue_wait, ticket.tier);
        let queue_ms = queue_wait.as_secs_f64() * 1e3;
        let solve_started = Instant::now();
        let mut attempts = 0u32;
        let mut request_metrics = MetricsRecorder::new();
        let outcome = loop {
            attempts += 1;
            // Fresh deadline per attempt: budgets restart, but the wall
            // clock keeps charging from admission (queue wait included).
            let mut deadline = Deadline::unbounded().with_tick_budget(granted_ticks);
            if let Some(wall) = wall_budget {
                let charged = queue_wait + solve_started.elapsed();
                deadline = deadline.with_wall_clock(wall.saturating_sub(charged));
            }
            #[cfg(feature = "fault-inject")]
            if attempts == 1 && self.config.panic_request == Some(seq) {
                deadline = deadline.with_fault_plan(FaultPlan::new().panic_at_tick(0));
            }
            let solved = {
                let mut flight_tap = self.flight.clone();
                let mut dog_tap = self.watchdog.clone();
                let solver = &*self.solver;
                let pool = &self.pool;
                let query = &request.query;
                let metrics = &mut request_metrics;
                catch_unwind(AssertUnwindSafe(move || {
                    let mut obs = Fanout::new();
                    obs.attach(metrics).attach(&mut flight_tap);
                    if let Some(d) = dog_tap.as_mut() {
                        obs.attach(d);
                    }
                    solver.solve(query, pool, &deadline, &mut obs)
                }))
            };
            let panic_msg = match solved {
                Ok(Ok(outcome)) => {
                    self.finish_solve(&request_metrics, outcome.is_degraded());
                    let solve_ms = solve_started.elapsed().as_secs_f64() * 1e3;
                    self.gate.release(ticket);
                    let status = if outcome.is_degraded() {
                        self.counters.degraded.fetch_add(1, Ordering::Relaxed);
                        Status::Degraded
                    } else {
                        self.counters.complete.fetch_add(1, Ordering::Relaxed);
                        Status::Complete
                    };
                    let certificate = outcome.certificate().cloned();
                    let answer = match outcome {
                        SolveOutcome::Complete(a) => a,
                        SolveOutcome::Degraded(d) => d.partial,
                    };
                    if status == Status::Complete {
                        self.cache
                            .lock()
                            .expect("cache lock")
                            .insert(key, answer.clone());
                    }
                    break Response {
                        id: request.id,
                        status,
                        answer: Some(answer),
                        certificate,
                        retry_after_ms: None,
                        cached: false,
                        tier,
                        attempts,
                        queue_ms,
                        solve_ms,
                        error: None,
                    };
                }
                Ok(Err(EngineError::Panicked(msg))) => msg,
                Ok(Err(EngineError::Solve(e))) => {
                    // Structural failure (infeasible query): deterministic,
                    // so a retry cannot help.
                    self.finish_solve(&request_metrics, false);
                    self.gate.release(ticket);
                    self.counters.errors.fetch_add(1, Ordering::Relaxed);
                    break Response {
                        queue_ms,
                        solve_ms: solve_started.elapsed().as_secs_f64() * 1e3,
                        tier,
                        attempts,
                        ..Response::error(request.id, format!("solve failed: {e}"))
                    };
                }
                Err(payload) => panic_message(&*payload),
            };
            // A panic escaped (or was reported) — isolate it, back off,
            // retry exactly once.
            self.counters
                .panics_isolated
                .fetch_add(1, Ordering::Relaxed);
            if attempts >= 2 {
                self.finish_solve(&request_metrics, false);
                self.gate.release(ticket);
                self.counters.errors.fetch_add(1, Ordering::Relaxed);
                break Response {
                    queue_ms,
                    solve_ms: solve_started.elapsed().as_secs_f64() * 1e3,
                    tier,
                    attempts,
                    ..Response::error(
                        request.id,
                        format!("solve panicked twice, giving up: {panic_msg}"),
                    )
                };
            }
            std::thread::sleep(Duration::from_millis(self.backoff_ms(seq)));
        };
        outcome
    }

    /// Jittered-but-seeded backoff: deterministic per request sequence
    /// number, spread across requests (splitmix-style mix + xorshift).
    fn backoff_ms(&self, seq: u64) -> u64 {
        let mut x = self.config.backoff_seed ^ seq.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        1 + x % self.config.max_backoff_ms.max(1)
    }

    /// Post-solve bookkeeping: fold the solve into the sliding windows,
    /// drive the brownout state machine, merge metrics, refresh gauges.
    fn finish_solve(&self, request_metrics: &MetricsRecorder, degraded: bool) {
        let sample = SolveSample {
            selections: request_metrics.selections,
            benefits_computed: request_metrics.benefits_computed,
            degraded,
        };
        let (rate, p99) = {
            let mut windows = self.windows.lock().expect("windows lock");
            windows.observe(Some(SERVE_ENTRY), sample);
            let global = windows.global();
            (global.degraded_rate(), global.benefits_hist.quantile(0.99))
        };
        self.gate.observe_solve(rate, p99);
        let mut metrics = self.metrics.lock().expect("metrics lock");
        metrics.merge(request_metrics);
        let windows = self.windows.lock().expect("windows lock");
        let probe = Deadline::unbounded();
        *self.last_slo.lock().expect("slo lock") =
            Some(SloGauges::capture_windowed(&probe, &metrics, &windows));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scwsc_core::solver::Query;
    use scwsc_core::{SetSystem, SystemInstance, Threads};

    fn state(config: ServerConfig) -> ServerState {
        let mut b = SetSystem::builder(6);
        b.add_set([0, 1, 2], 3.0)
            .add_set([3, 4], 1.0)
            .add_set([5], 1.0)
            .add_universe_set(50.0);
        let solver = Arc::new(SystemInstance::new(Arc::new(b.build().unwrap())));
        ServerState::new(
            solver,
            ThreadPool::new(Threads::serial()),
            config,
            FlightRecorder::new(),
            None,
        )
    }

    #[test]
    fn dispatch_completes_and_caches() {
        let s = state(ServerConfig::default());
        let req = Request::new(1, Query::cwsc(2, 0.8));
        let first = s.dispatch(&req);
        assert_eq!(first.status, Status::Complete);
        assert!(!first.cached);
        assert_eq!(first.attempts, 1);
        let second = s.dispatch(&req);
        assert_eq!(second.status, Status::Complete);
        assert!(second.cached);
        assert_eq!(second.answer, first.answer);
        assert_eq!(s.cache_stats().0, 1);
        assert_eq!(s.counters.complete.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn zero_tick_cap_degrades_with_verified_certificate() {
        let s = state(ServerConfig::default());
        let mut req = Request::new(2, Query::cmc(2, 0.8));
        req.max_ticks = Some(0);
        let resp = s.dispatch(&req);
        assert_eq!(resp.status, Status::Degraded);
        assert_eq!(resp.answer.as_ref().unwrap().certified, Some(true));
        assert!(resp.certificate.is_some());
        // Degraded answers are never cached.
        assert!(!s.dispatch(&req).cached);
    }

    #[test]
    fn draining_rejects_with_retry_after() {
        let s = state(ServerConfig::default());
        s.drain();
        let resp = s.dispatch(&Request::new(3, Query::cwsc(2, 0.8)));
        assert_eq!(resp.status, Status::Rejected);
        assert!(resp.retry_after_ms.is_some());
        assert_eq!(s.counters.rejected.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn cache_hits_bypass_a_draining_gate() {
        let s = state(ServerConfig::default());
        let req = Request::new(4, Query::cwsc(2, 0.8));
        assert_eq!(s.dispatch(&req).status, Status::Complete);
        s.drain();
        let resp = s.dispatch(&req);
        assert_eq!(resp.status, Status::Complete);
        assert!(resp.cached);
    }

    #[test]
    fn infeasible_query_errors_without_retry() {
        let s = state(ServerConfig::default());
        // k = 0 cannot cover anything: structural failure.
        let resp = s.dispatch(&Request::new(5, Query::cwsc(0, 0.8)));
        assert_eq!(resp.status, Status::Error);
        assert_eq!(resp.attempts, 1);
        assert!(resp.error.unwrap().contains("solve failed"));
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn injected_panic_is_isolated_and_retried_once() {
        let config = ServerConfig {
            panic_request: Some(1),
            max_backoff_ms: 1,
            ..ServerConfig::default()
        };
        let s = state(config);
        let resp = s.dispatch(&Request::new(6, Query::cwsc(2, 0.8)));
        assert_eq!(resp.status, Status::Complete, "retry recovered: {resp:?}");
        assert_eq!(resp.attempts, 2);
        assert_eq!(s.counters.panics_isolated.load(Ordering::Relaxed), 1);
        // The panicking request was seq 1; later requests are clean.
        let resp = s.dispatch(&Request::new(7, Query::cmc(2, 0.5)));
        assert_eq!(resp.attempts, 1);
    }

    #[test]
    fn windows_and_prometheus_reflect_served_solves() {
        let s = state(ServerConfig::default());
        s.dispatch(&Request::new(8, Query::cwsc(2, 0.8)));
        let mut req = Request::new(9, Query::cmc(2, 0.8));
        req.max_ticks = Some(0);
        s.dispatch(&req);
        let text = s.prometheus();
        assert!(text.contains("scwsc_window_solves"), "windowed families");
        assert!(
            text.contains("scwsc_window_degraded_rate"),
            "degraded rate exported:\n{text}"
        );
    }
}
