//! Property tests for the serving layer (DESIGN.md §17).
//!
//! The service contract under test, for *any* query mix and any
//! (possibly hopeless) budget:
//!
//! * **degrade, don't drop** — a dispatched request with an
//!   insufficient tick budget comes back `degraded` with a certificate
//!   the instance re-verified, or `complete`; never a panic, never an
//!   unstructured error, never a hang;
//! * **thread-count invariance** — serve always grants tick budgets, so
//!   every solve runs tick-deterministic and the full response stream
//!   (statuses, answers, certificates, brownout tiers) is identical
//!   through a `Threads(1)` pool and a `Threads(4)` pool.

use proptest::prelude::*;
use scwsc_core::solver::{Algorithm, CostModel, Query};
use scwsc_core::{FlightRecorder, SetSystem, SystemInstance, ThreadPool, Threads};
use scwsc_patterns::{PatternInstance, Table};
use scwsc_serve::{AdmissionConfig, Request, ServerConfig, ServerState, Status};
use std::sync::Arc;
use std::time::Duration;

/// A feasible random set system (universe set always present).
fn arb_system() -> impl Strategy<Value = SetSystem> {
    (2usize..=10, 1usize..=8).prop_flat_map(|(n, sets)| {
        let set = (
            proptest::collection::btree_set(0u32..n as u32, 1..=n),
            0u32..50,
        );
        proptest::collection::vec(set, sets).prop_map(move |sets| {
            let mut b = SetSystem::builder(n);
            for (members, cost) in sets {
                b.add_set(members, f64::from(cost));
            }
            b.add_universe_set(60.0);
            b.build().unwrap()
        })
    })
}

/// A small random table for the pattern-instance path.
fn arb_table() -> impl Strategy<Value = Table> {
    (1usize..=3, 1usize..=12).prop_flat_map(|(attrs, rows)| {
        let row = (proptest::collection::vec(0u8..3, attrs), 0u8..40);
        proptest::collection::vec(row, rows).prop_map(move |rows| {
            let names: Vec<String> = (0..attrs).map(|a| format!("a{a}")).collect();
            let refs: Vec<&str> = names.iter().map(String::as_str).collect();
            let mut b = Table::builder(&refs, "m");
            for (vals, measure) in rows {
                let svals: Vec<String> = vals.iter().map(|v| format!("v{v}")).collect();
                let srefs: Vec<&str> = svals.iter().map(String::as_str).collect();
                b.push_row(&srefs, f64::from(measure)).unwrap();
            }
            b.build()
        })
    })
}

/// A random query against a universe of `n` elements. Coverage comes
/// from a small integer grid so the same query re-derives exactly.
fn arb_query() -> impl Strategy<Value = Query> {
    (
        prop_oneof![Just(Algorithm::Cwsc), Just(Algorithm::Cmc)],
        1usize..=4,
        1u32..=9,
        prop_oneof![
            Just(CostModel::Max),
            Just(CostModel::Sum),
            Just(CostModel::Mean),
            Just(CostModel::Count)
        ],
    )
        .prop_map(|(algorithm, k, cov, cost)| Query {
            algorithm,
            k,
            coverage: f64::from(cov) / 10.0,
            b: 1.0,
            eps: 1.0,
            cost,
        })
}

/// Serving config for the properties: no wall clock (fully
/// deterministic), near-instant distress admission so hopeless budgets
/// resolve fast, cache off so every dispatch exercises the gate.
fn prop_config() -> ServerConfig {
    ServerConfig {
        default_deadline_ms: 0,
        cache_capacity: 0,
        admission: AdmissionConfig {
            max_queue_wait: Duration::from_millis(1),
            ..AdmissionConfig::default()
        },
        ..ServerConfig::default()
    }
}

fn state_with(solver: Arc<dyn scwsc_core::Solver>, threads: Threads) -> ServerState {
    ServerState::new(
        solver,
        ThreadPool::new(threads),
        prop_config(),
        FlightRecorder::new(),
        None,
    )
}

/// Strips the wall-clock-dependent fields so responses compare
/// structurally across thread counts.
fn shape(mut response: scwsc_serve::Response) -> scwsc_serve::Response {
    response.queue_ms = 0.0;
    response.solve_ms = 0.0;
    response
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any feasible query under any starvation-level tick budget comes
    /// back `complete` or certified `degraded` — never panicked, never
    /// hung, never dropped.
    #[test]
    fn insufficient_budget_degrades_never_panics(
        system in arb_system(),
        queries in proptest::collection::vec((arb_query(), 0u64..=20), 1..8),
    ) {
        let elements = system.num_elements();
        let state = state_with(
            Arc::new(SystemInstance::new(Arc::new(system))),
            Threads::serial(),
        );
        for (i, (query, ticks)) in queries.into_iter().enumerate() {
            let mut request = Request::new(i as u64, query);
            request.max_ticks = Some(ticks);
            let response = state.dispatch(&request);
            match response.status {
                Status::Complete => prop_assert!(response.answer.is_some()),
                Status::Degraded => {
                    let answer = response.answer.as_ref().expect("degraded answer");
                    prop_assert_eq!(
                        answer.certified, Some(true),
                        "certificate must re-verify: {:?}", response
                    );
                    prop_assert!(response.certificate.is_some());
                    let cert = response.certificate.as_ref().unwrap();
                    prop_assert!(cert.covered <= elements);
                }
                Status::Error => {
                    // Structural infeasibility is a legal outcome for a
                    // random query (e.g. coverage unreachable with k
                    // sets); a panic or a drop is not.
                    let message = response.error.clone().unwrap_or_default();
                    prop_assert!(
                        message.contains("solve failed"),
                        "only structural solve errors allowed, got {:?}", message
                    );
                }
                Status::Rejected => prop_assert!(
                    false, "sequential dispatch can never fill the queue"
                ),
            }
        }
    }

    /// The full response stream is invariant across thread counts:
    /// serve always grants tick budgets, so every solve runs in
    /// tick-deterministic mode and `Threads(1)` ≡ `Threads(4)` — same
    /// statuses, answers, certificates, tiers, and attempt counts.
    #[test]
    fn thread_count_invariance_through_dispatch(
        table in arb_table(),
        queries in proptest::collection::vec((arb_query(), 0u64..=200), 1..8),
    ) {
        let serial = state_with(
            Arc::new(PatternInstance::new(table.clone())),
            Threads::serial(),
        );
        let threaded = state_with(
            Arc::new(PatternInstance::new(table)),
            Threads::new(4),
        );
        for (i, (query, ticks)) in queries.into_iter().enumerate() {
            let mut request = Request::new(i as u64, query);
            request.max_ticks = Some(ticks);
            let a = shape(serial.dispatch(&request));
            let b = shape(threaded.dispatch(&request));
            prop_assert_eq!(a, b);
        }
        prop_assert_eq!(
            serial.gate_snapshot().tier,
            threaded.gate_snapshot().tier,
            "brownout tiers driven by the same deterministic samples"
        );
    }
}
