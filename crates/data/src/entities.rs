//! The paper's running example: the Table I "real-world entities" data
//! set (16 records over `Type`, `Location` with a `Cost` measure) and
//! helpers naming the Table II patterns (P1–P24).
//!
//! The introduction derives several reference solutions from this data;
//! tests and `examples/quickstart.rs` assert all of them:
//! * partial weighted set cover at ŝ=9/16 → 7 patterns, total cost 24;
//! * size-constrained (k=2, ŝ=9/16) optimum → {P6, P16}, cost 27;
//! * cheapest 2 sets ignoring coverage → {P6, P8}, covering only 3/16;
//! * coverage-only k=2 solutions can cost 120 (e.g. {P11, P15}).

use scwsc_patterns::{Pattern, Table};

/// Builds the Table I data set. Row `i` is entity `ID = i + 1`.
pub fn entities_table() -> Table {
    let mut b = Table::builder(&["Type", "Location"], "Cost");
    for (t, l, c) in [
        ("A", "West", 10.0),      // 1
        ("A", "Northeast", 32.0), // 2
        ("B", "South", 2.0),      // 3
        ("A", "North", 4.0),      // 4
        ("B", "East", 7.0),       // 5
        ("A", "Northwest", 20.0), // 6
        ("B", "West", 4.0),       // 7
        ("B", "Southwest", 24.0), // 8
        ("A", "Southwest", 4.0),  // 9
        ("B", "Northwest", 4.0),  // 10
        ("A", "North", 3.0),      // 11
        ("B", "Northeast", 3.0),  // 12
        ("B", "South", 1.0),      // 13
        ("B", "North", 20.0),     // 14
        ("A", "East", 3.0),       // 15
        ("A", "South", 96.0),     // 16
    ] {
        b.push_row(&[t, l], c).expect("static data is valid");
    }
    b.build()
}

/// The Table II pattern specifications `(type, location)` for P1..P24,
/// where `None` is `ALL`. Index `i` holds `P(i+1)`.
pub const TABLE2_SPECS: [(Option<&str>, Option<&str>); 24] = [
    (Some("A"), Some("West")),      // P1
    (Some("A"), Some("Northeast")), // P2
    (Some("A"), Some("North")),     // P3
    (Some("A"), Some("Northwest")), // P4
    (Some("A"), Some("Southwest")), // P5
    (Some("A"), Some("East")),      // P6
    (Some("A"), Some("South")),     // P7
    (Some("B"), Some("South")),     // P8
    (Some("B"), Some("East")),      // P9
    (Some("B"), Some("West")),      // P10
    (Some("B"), Some("Southwest")), // P11
    (Some("B"), Some("Northwest")), // P12
    (Some("B"), Some("Northeast")), // P13
    (Some("B"), Some("North")),     // P14
    (Some("A"), None),              // P15
    (Some("B"), None),              // P16
    (None, Some("North")),          // P17
    (None, Some("South")),          // P18
    (None, Some("East")),           // P19
    (None, Some("West")),           // P20
    (None, Some("Northeast")),      // P21
    (None, Some("Southwest")),      // P22
    (None, Some("Northwest")),      // P23
    (None, None),                   // P24
];

/// Table II's `(Cost, Benefit)` columns for P1..P24.
pub const TABLE2_COST_BENEFIT: [(f64, usize); 24] = [
    (10.0, 1),
    (32.0, 1),
    (4.0, 2),
    (20.0, 1),
    (4.0, 1),
    (3.0, 1),
    (96.0, 1),
    (2.0, 2),
    (7.0, 1),
    (4.0, 1),
    (24.0, 1),
    (4.0, 1),
    (3.0, 1),
    (20.0, 1),
    (96.0, 8),
    (24.0, 8),
    (20.0, 3),
    (96.0, 3),
    (7.0, 2),
    (10.0, 2),
    (32.0, 2),
    (24.0, 2),
    (20.0, 2),
    (96.0, 16),
];

/// Resolves Table II's pattern number (1-based, `P1..P24`) against a
/// built entities table. Returns `None` for out-of-range numbers.
pub fn table2_pattern(table: &Table, number: usize) -> Option<Pattern> {
    let (ty, loc) = *TABLE2_SPECS.get(number.checked_sub(1)?)?;
    let resolve = |attr: usize, v: Option<&str>| -> Option<Option<u32>> {
        match v {
            None => Some(None),
            Some(s) => table.dictionary(attr).lookup(s).map(Some),
        }
    };
    Some(Pattern::new(vec![resolve(0, ty)?, resolve(1, loc)?]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use scwsc_patterns::{enumerate_all, CostFn, PatternSpace};

    #[test]
    fn table1_shape() {
        let t = entities_table();
        assert_eq!(t.num_rows(), 16);
        assert_eq!(t.num_attrs(), 2);
        assert_eq!(t.measure(15), 96.0);
    }

    #[test]
    fn table2_costs_and_benefits_match_paper() {
        let t = entities_table();
        let sp = PatternSpace::new(&t, CostFn::Max);
        for (i, &(cost, benefit)) in TABLE2_COST_BENEFIT.iter().enumerate() {
            let p = table2_pattern(&t, i + 1).expect("pattern exists");
            let rows = sp.benefit(&p);
            assert_eq!(rows.len(), benefit, "P{} benefit", i + 1);
            assert_eq!(sp.cost(&rows), cost, "P{} cost", i + 1);
        }
    }

    #[test]
    fn full_cube_is_exactly_table2() {
        let t = entities_table();
        let m = enumerate_all(&t, CostFn::Max);
        assert_eq!(m.num_patterns(), 24, "Table II lists all 24 patterns");
        for i in 1..=24 {
            let p = table2_pattern(&t, i).unwrap();
            assert!(m.id_of(&p).is_some(), "P{i} missing from enumeration");
        }
    }

    #[test]
    fn out_of_range_pattern_number() {
        let t = entities_table();
        assert!(table2_pattern(&t, 0).is_none());
        assert!(table2_pattern(&t, 25).is_none());
    }

    /// Intro reference: P3 covers records 3 and 13 (ids 4, 11 zero-based
    /// would be wrong — the paper's record IDs are 1-based: records 4 and
    /// 11 have Type=A, Location=North).
    #[test]
    fn p3_covers_the_two_north_a_records() {
        let t = entities_table();
        let sp = PatternSpace::new(&t, CostFn::Max);
        let p3 = table2_pattern(&t, 3).unwrap();
        assert_eq!(sp.benefit(&p3), vec![3, 10]); // rows of IDs 4 and 11
    }
}
