//! Synthetic LBL-CONN-7-like TCP connection trace.
//!
//! The paper's experiments run on "LBL", ~700,000 TCP connection traces
//! with five pattern attributes (`protocol`, `localhost`, `remotehost`,
//! `endstate`, `flags`) and the session length as the numeric measure
//! (Section VI, <http://ita.ee.lbl.gov/html/contrib/LBL-CONN-7.html>).
//! The original 1993 trace is not redistributable here, so this module
//! generates a trace with the same *shape*: the same schema, head-heavy
//! Zipf-distributed categorical domains of realistic cardinality (a few
//! application protocols dominate; hosts follow a long tail; few end
//! states and flag combinations), correlation between protocol and end
//! state, and log-normally distributed session lengths. The experiments
//! measure algorithm behaviour (runtime scaling, patterns considered,
//! relative solution costs), which depends on exactly these shape
//! parameters — see DESIGN.md §4 for the substitution argument.

use crate::distributions::{log_normal, Zipf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scwsc_patterns::Table;
use serde::{Deserialize, Serialize};

/// Shape parameters of the synthetic trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LblConfig {
    /// Number of connection records.
    pub rows: usize,
    /// RNG seed (every run with the same config is identical).
    pub seed: u64,
    /// Active-domain size of `protocol` (nntp, smtp, telnet, ftp, …).
    pub protocols: usize,
    /// Active-domain size of `localhost`.
    pub local_hosts: usize,
    /// Active-domain size of `remotehost`.
    pub remote_hosts: usize,
    /// Active-domain size of `endstate`.
    pub end_states: usize,
    /// Active-domain size of `flags`.
    pub flags: usize,
    /// Zipf exponent for the protocol/host popularity skew.
    pub skew: f64,
    /// `μ` of the log-normal session length (the paper's synthetic
    /// re-weighting uses mean 2 in log space).
    pub length_mu: f64,
    /// Between-group `σ`: each `(protocol, endstate)` combination gets its
    /// own typical length `exp(μ + σ·Z)`. Session lengths in real traces
    /// are strongly determined by the application protocol (bulk transfer
    /// vs interactive vs lookup), and this correlation is what gives large
    /// patterns small max-weights — without it the all-`ALL` pattern
    /// dominates every cover.
    pub length_sigma: f64,
    /// Within-group `σ`: spread of individual sessions around their
    /// group's typical length.
    pub length_within_sigma: f64,
}

impl Default for LblConfig {
    /// Defaults sized like the real trace: 700k rows, 12 protocols,
    /// 1,600/2,500 hosts, 8 end states, 6 flag combinations.
    fn default() -> LblConfig {
        LblConfig {
            rows: 700_000,
            seed: 0x1b1_c077,
            protocols: 12,
            local_hosts: 1_600,
            remote_hosts: 2_500,
            end_states: 8,
            flags: 6,
            skew: 1.1,
            length_mu: 2.0,
            length_sigma: 2.0,
            length_within_sigma: 0.8,
        }
    }
}

impl LblConfig {
    /// A laptop-friendly configuration: `rows` records with domain sizes
    /// scaled down proportionally (so pattern-lattice density stays
    /// comparable to the full-size default).
    pub fn scaled(rows: usize) -> LblConfig {
        let f = (rows as f64 / 700_000.0).max(0.005);
        LblConfig {
            rows,
            local_hosts: ((1_600.0 * f) as usize).clamp(8, 1_600),
            remote_hosts: ((2_500.0 * f) as usize).clamp(8, 2_500),
            ..LblConfig::default()
        }
    }

    /// Generates the trace.
    pub fn generate(&self) -> Table {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let proto_dist = Zipf::new(self.protocols.max(1), self.skew);
        let local_dist = Zipf::new(self.local_hosts.max(1), self.skew);
        let remote_dist = Zipf::new(self.remote_hosts.max(1), self.skew);
        let state_dist = Zipf::new(self.end_states.max(1), self.skew);
        let flag_dist = Zipf::new(self.flags.max(1), self.skew);

        // Each (protocol, endstate) group gets its own typical session
        // length: bulk protocols run long, lookups run short. Individual
        // sessions scatter around the group level.
        let states = self.end_states.max(1);
        let group_mu: Vec<f64> = (0..self.protocols.max(1) * states)
            .map(|_| {
                self.length_mu + self.length_sigma * crate::distributions::standard_normal(&mut rng)
            })
            .collect();

        let mut b = Table::builder(
            &["protocol", "localhost", "remotehost", "endstate", "flags"],
            "session_length",
        );
        for _ in 0..self.rows {
            let proto = proto_dist.sample(&mut rng);
            // End state correlates with protocol: interactive protocols
            // (low ranks) mostly close cleanly; rarer ones are noisier.
            let state = if rng.gen_bool(0.7) {
                (proto + state_dist.sample(&mut rng)) % states
            } else {
                state_dist.sample(&mut rng)
            };
            let row = [
                format!("proto{proto}"),
                format!("lh{:04}", local_dist.sample(&mut rng)),
                format!("rh{:04}", remote_dist.sample(&mut rng)),
                format!("state{state}"),
                format!("flags{}", flag_dist.sample(&mut rng)),
            ];
            let refs: [&str; 5] = [&row[0], &row[1], &row[2], &row[3], &row[4]];
            let length = log_normal(
                &mut rng,
                group_mu[proto * states + state],
                self.length_within_sigma,
            );
            b.push_row(&refs, length).expect("generated rows are valid");
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> LblConfig {
        LblConfig {
            rows: 2_000,
            local_hosts: 40,
            remote_hosts: 60,
            ..LblConfig::default()
        }
    }

    #[test]
    fn schema_matches_the_paper() {
        let t = small().generate();
        assert_eq!(
            t.attr_names(),
            &[
                "protocol".to_owned(),
                "localhost".to_owned(),
                "remotehost".to_owned(),
                "endstate".to_owned(),
                "flags".to_owned()
            ]
        );
        assert_eq!(t.measure_name(), "session_length");
        assert_eq!(t.num_rows(), 2_000);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small().generate();
        let b = small().generate();
        assert_eq!(a, b);
        let c = LblConfig {
            seed: 99,
            ..small()
        }
        .generate();
        assert_ne!(a, c);
    }

    #[test]
    fn domains_are_bounded_and_skewed() {
        let t = small().generate();
        assert!(t.dictionary(0).len() <= 12);
        assert!(t.dictionary(3).len() <= 8);
        // Protocol head dominates: most common value > 3x the 6th.
        let mut counts = vec![0usize; t.dictionary(0).len()];
        for &v in t.column(0) {
            counts[v as usize] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        if counts.len() > 5 {
            assert!(counts[0] > counts[5] * 2, "{counts:?}");
        }
    }

    #[test]
    fn session_lengths_positive_and_heavy_tailed() {
        let t = small().generate();
        assert!(t.measures().iter().all(|&m| m > 0.0));
        let mean = t.measures().iter().sum::<f64>() / t.num_rows() as f64;
        let mut sorted = t.measures().to_vec();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[sorted.len() / 2];
        assert!(
            mean > 2.0 * median,
            "heavy tail: mean {mean}, median {median}"
        );
    }

    /// The correlation that makes covers interesting: some protocol's
    /// maximum session length is far below the global maximum, so large
    /// patterns with small weights exist (unlike i.i.d. measures, where
    /// every large pattern would contain the global maximum).
    #[test]
    fn lengths_correlate_with_protocol() {
        let t = small().generate();
        let global_max = t.measures().iter().cloned().fold(0.0, f64::max);
        let mut per_proto_max = vec![0.0f64; t.dictionary(0).len()];
        let mut per_proto_count = vec![0usize; t.dictionary(0).len()];
        for (row, &v) in t.column(0).iter().enumerate() {
            per_proto_max[v as usize] = per_proto_max[v as usize].max(t.measure(row as u32));
            per_proto_count[v as usize] += 1;
        }
        let cheap_big_group = per_proto_max
            .iter()
            .zip(&per_proto_count)
            .any(|(&max, &count)| count > 100 && max < global_max / 10.0);
        assert!(
            cheap_big_group,
            "expected some popular protocol with small max length: maxima {per_proto_max:?}, global {global_max}"
        );
    }

    #[test]
    fn scaled_config_shrinks_domains() {
        let c = LblConfig::scaled(7_000);
        assert_eq!(c.rows, 7_000);
        assert!(c.local_hosts < 100);
        assert!(c.remote_hosts < 100);
        assert!(c.local_hosts >= 8);
    }
}
