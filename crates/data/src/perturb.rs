//! The Section VI-B synthetic weight perturbations.
//!
//! To probe CWSC's solution quality under different weight regimes, the
//! paper builds two groups of synthetic data sets from LBL:
//!
//! 1. **δ-uniform noise** — each measure `m` is replaced by a uniform draw
//!    from `[(1−δ)·m, (1+δ)·m]`, for δ between 0 and 1;
//! 2. **log-normal re-ranking** — fresh measures are drawn from a
//!    log-normal with `μ = 2` and a chosen σ, then assigned to records *in
//!    the same rank order* as the original measures.

use crate::distributions::log_normal;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scwsc_patterns::Table;

/// Group 1: replaces each measure `m` with a uniform draw from
/// `[(1−δ)m, (1+δ)m]`.
///
/// # Panics
/// Panics if `delta` is outside `[0, 1]`.
pub fn uniform_noise(table: &Table, delta: f64, seed: u64) -> Table {
    assert!(
        (0.0..=1.0).contains(&delta),
        "delta must be in [0, 1], got {delta}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = table.clone();
    let measures = table
        .measures()
        .iter()
        .map(|&m| {
            if delta == 0.0 || m == 0.0 {
                m
            } else {
                rng.gen_range((1.0 - delta) * m..=(1.0 + delta) * m)
            }
        })
        .collect();
    out.set_measures(measures);
    out
}

/// Group 2: draws `n` fresh log-normal(μ, σ) measures and installs them in
/// the same rank order as the original measures (the largest original
/// measure gets the largest new one, and so on).
pub fn lognormal_rerank(table: &Table, mu: f64, sigma: f64, seed: u64) -> Table {
    let n = table.num_rows();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut fresh: Vec<f64> = (0..n).map(|_| log_normal(&mut rng, mu, sigma)).collect();
    fresh.sort_by(f64::total_cmp);

    // rank[i] = position of row i when rows are sorted by original measure
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| table.measure(a as u32).total_cmp(&table.measure(b as u32)));
    let mut measures = vec![0.0; n];
    for (rank, &row) in order.iter().enumerate() {
        measures[row] = fresh[rank];
    }

    let mut out = table.clone();
    out.set_measures(measures);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut b = Table::builder(&["X"], "m");
        for (v, m) in [("a", 10.0), ("b", 2.0), ("c", 30.0), ("d", 5.0)] {
            b.push_row(&[v], m).unwrap();
        }
        b.build()
    }

    #[test]
    fn zero_delta_is_identity() {
        let t = table();
        let p = uniform_noise(&t, 0.0, 1);
        assert_eq!(p.measures(), t.measures());
    }

    #[test]
    fn noise_stays_in_band() {
        let t = table();
        for seed in 0..20 {
            let p = uniform_noise(&t, 0.5, seed);
            for (orig, noisy) in t.measures().iter().zip(p.measures()) {
                assert!(*noisy >= 0.5 * orig - 1e-12 && *noisy <= 1.5 * orig + 1e-12);
            }
        }
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let t = table();
        assert_eq!(
            uniform_noise(&t, 0.3, 42).measures(),
            uniform_noise(&t, 0.3, 42).measures()
        );
        assert_ne!(
            uniform_noise(&t, 0.3, 42).measures(),
            uniform_noise(&t, 0.3, 43).measures()
        );
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn delta_validated() {
        uniform_noise(&table(), 1.5, 1);
    }

    #[test]
    fn rerank_preserves_rank_order() {
        let t = table();
        let p = lognormal_rerank(&t, 2.0, 1.5, 7);
        // original order by measure: b(2) < d(5) < a(10) < c(30)
        let m = p.measures();
        assert!(m[1] <= m[3] && m[3] <= m[0] && m[0] <= m[2], "{m:?}");
        assert!(m.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn rerank_changes_values_but_not_schema() {
        let t = table();
        let p = lognormal_rerank(&t, 2.0, 2.0, 7);
        assert_eq!(p.num_rows(), t.num_rows());
        assert_eq!(p.column(0), t.column(0));
        assert_ne!(p.measures(), t.measures());
    }
}
