//! Minimal CSV persistence for [`Table`]s.
//!
//! Format: a header row with the pattern attribute names followed by the
//! measure name; then one row per record. Values are quoted with `"` only
//! when they contain a comma, quote, or newline (RFC-4180 style). This is
//! intentionally small — enough to round-trip generated workloads and to
//! load externally prepared traces with the same schema.

use scwsc_patterns::{Table, TableError};
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Errors raised by CSV reading.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem with the CSV text.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The parsed row was rejected by the table builder.
    Table(TableError),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "I/O error: {e}"),
            CsvError::Parse { line, message } => write!(f, "line {line}: {message}"),
            CsvError::Table(e) => write!(f, "bad row: {e}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        CsvError::Io(e)
    }
}

fn quote_field(field: &str, out: &mut String) {
    if field.contains([',', '"', '\n', '\r']) {
        out.push('"');
        for ch in field.chars() {
            if ch == '"' {
                out.push('"');
            }
            out.push(ch);
        }
        out.push('"');
    } else {
        out.push_str(field);
    }
}

/// Serializes a table to CSV text.
pub fn table_to_csv(table: &Table) -> String {
    let mut out = String::new();
    for (i, name) in table.attr_names().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        quote_field(name, &mut out);
    }
    out.push(',');
    quote_field(table.measure_name(), &mut out);
    out.push('\n');
    for row in 0..table.num_rows() as u32 {
        for attr in 0..table.num_attrs() {
            quote_field(table.value_str(row, attr), &mut out);
            out.push(',');
        }
        let _ = write!(out, "{}", table.measure(row));
        out.push('\n');
    }
    out
}

/// Writes a table to a CSV file.
pub fn write_table(table: &Table, path: &Path) -> io::Result<()> {
    fs::write(path, table_to_csv(table))
}

/// Splits one CSV line into fields (handling quoted fields).
fn split_line(line: &str, line_no: usize) -> Result<Vec<String>, CsvError> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(ch) = chars.next() {
        if in_quotes {
            match ch {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => field.push(ch),
            }
        } else {
            match ch {
                '"' if field.is_empty() => in_quotes = true,
                ',' => fields.push(std::mem::take(&mut field)),
                _ => field.push(ch),
            }
        }
    }
    if in_quotes {
        return Err(CsvError::Parse {
            line: line_no,
            message: "unterminated quoted field".to_owned(),
        });
    }
    fields.push(field);
    Ok(fields)
}

/// Parses CSV text (as produced by [`table_to_csv`], or any file with the
/// same layout) back into a table. The last column is the measure.
pub fn table_from_csv(text: &str) -> Result<Table, CsvError> {
    // `str::lines` keeps a trailing carriage return on CRLF files; strip it
    // so Windows-written CSVs parse identically.
    let mut lines = text
        .lines()
        .map(|l| l.strip_suffix('\r').unwrap_or(l))
        .enumerate()
        .filter(|(_, l)| !l.is_empty());
    let (_, header) = lines.next().ok_or(CsvError::Parse {
        line: 1,
        message: "empty input".to_owned(),
    })?;
    let header = split_line(header, 1)?;
    if header.len() < 2 {
        return Err(CsvError::Parse {
            line: 1,
            message: "need at least one attribute and a measure column".to_owned(),
        });
    }
    let (measure_name, attr_names) = header.split_last().expect("len >= 2");
    let attr_refs: Vec<&str> = attr_names.iter().map(String::as_str).collect();
    let mut b = Table::builder(&attr_refs, measure_name);
    for (idx, line) in lines {
        let line_no = idx + 1;
        let fields = split_line(line, line_no)?;
        if fields.len() != header.len() {
            return Err(CsvError::Parse {
                line: line_no,
                message: format!("{} fields, expected {}", fields.len(), header.len()),
            });
        }
        let (measure, attrs) = fields.split_last().expect("len checked");
        let measure: f64 = measure.trim().parse().map_err(|e| CsvError::Parse {
            line: line_no,
            message: format!("bad measure {measure:?}: {e}"),
        })?;
        let refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
        b.push_row(&refs, measure).map_err(CsvError::Table)?;
    }
    Ok(b.build())
}

/// Reads a table from a CSV file.
pub fn read_table(path: &Path) -> Result<Table, CsvError> {
    table_from_csv(&fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entities::entities_table;

    #[test]
    fn roundtrip_entities() {
        let t = entities_table();
        let csv = table_to_csv(&t);
        let back = table_from_csv(&csv).unwrap();
        assert_eq!(back.num_rows(), t.num_rows());
        assert_eq!(back.attr_names(), t.attr_names());
        assert_eq!(back.measure_name(), t.measure_name());
        for r in 0..t.num_rows() as u32 {
            for a in 0..t.num_attrs() {
                assert_eq!(back.value_str(r, a), t.value_str(r, a));
            }
            assert_eq!(back.measure(r), t.measure(r));
        }
    }

    #[test]
    fn quoting_roundtrip() {
        let mut b = Table::builder(&["name"], "m");
        b.push_row(&["has,comma"], 1.0).unwrap();
        b.push_row(&["has\"quote"], 2.0).unwrap();
        b.push_row(&["plain"], 3.0).unwrap();
        let t = b.build();
        let csv = table_to_csv(&t);
        let back = table_from_csv(&csv).unwrap();
        assert_eq!(back.value_str(0, 0), "has,comma");
        assert_eq!(back.value_str(1, 0), "has\"quote");
        assert_eq!(back.value_str(2, 0), "plain");
    }

    #[test]
    fn header_produced() {
        let t = entities_table();
        let csv = table_to_csv(&t);
        assert!(csv.starts_with("Type,Location,Cost\n"), "{csv}");
    }

    #[test]
    fn crlf_files_parse_identically() {
        let unix = "Type,Cost\nA,1.5\nB,2\n";
        let windows = unix.replace('\n', "\r\n");
        let a = table_from_csv(unix).unwrap();
        let b = table_from_csv(&windows).unwrap();
        assert_eq!(a, b);
        assert_eq!(b.measure(1), 2.0);
        assert_eq!(b.value_str(1, 0), "B");
    }

    #[test]
    fn rejects_empty_and_short_headers() {
        assert!(matches!(table_from_csv(""), Err(CsvError::Parse { .. })));
        assert!(matches!(
            table_from_csv("only_measure\n"),
            Err(CsvError::Parse { .. })
        ));
    }

    #[test]
    fn rejects_ragged_rows() {
        let e = table_from_csv("a,b,m\nx,1.0\n").unwrap_err();
        assert!(matches!(e, CsvError::Parse { line: 2, .. }), "{e}");
    }

    #[test]
    fn rejects_bad_measure() {
        let e = table_from_csv("a,m\nx,notanumber\n").unwrap_err();
        assert!(e.to_string().contains("bad measure"), "{e}");
        let e = table_from_csv("a,m\nx,-5\n").unwrap_err();
        assert!(matches!(e, CsvError::Table(_)), "{e}");
    }

    #[test]
    fn rejects_unterminated_quote() {
        let e = table_from_csv("a,m\n\"unterminated,1\n").unwrap_err();
        assert!(e.to_string().contains("unterminated"), "{e}");
    }

    #[test]
    fn file_roundtrip() {
        let t = entities_table();
        let dir = std::env::temp_dir().join("scwsc_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("entities.csv");
        write_table(&t, &path).unwrap();
        let back = read_table(&path).unwrap();
        assert_eq!(back.num_rows(), 16);
        std::fs::remove_file(&path).ok();
    }
}
