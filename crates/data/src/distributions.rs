//! Samplers used by the synthetic workload generators.
//!
//! The approved dependency set includes `rand` but not `rand_distr`, so
//! the Zipf and log-normal samplers the LBL-like generator needs are
//! implemented here: Zipf via a precomputed CDF + binary search, normal
//! deviates via Box–Muller.

use rand::Rng;

/// Zipf(α) over ranks `0..n`: probability of rank `r` proportional to
/// `1/(r+1)^α`. Sampled by binary search on a precomputed CDF — O(log n)
/// per draw, exact for any `α ≥ 0`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler.
    ///
    /// # Panics
    /// Panics if `n == 0` or `alpha` is negative/non-finite.
    pub fn new(n: usize, alpha: f64) -> Zipf {
        assert!(n > 0, "Zipf needs a non-empty support");
        assert!(
            alpha.is_finite() && alpha >= 0.0,
            "Zipf exponent must be non-negative, got {alpha}"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += (r as f64 + 1.0).powf(-alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Support size.
    pub fn support(&self) -> usize {
        self.cdf.len()
    }

    /// Draws a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// One standard-normal deviate via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by nudging u1 away from zero.
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A log-normal draw `exp(mu + sigma · Z)`.
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    assert!(sigma >= 0.0, "sigma must be non-negative");
    (mu + sigma * standard_normal(rng)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_is_head_heavy() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[90]);
        // Rank 0 should hold roughly 1/H_100 ≈ 19% of the mass.
        let share = counts[0] as f64 / 20_000.0;
        assert!((0.12..0.28).contains(&share), "head share {share}");
    }

    #[test]
    fn zipf_alpha_zero_is_uniformish() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = vec![0usize; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            let share = c as f64 / 50_000.0;
            assert!((0.08..0.12).contains(&share), "{counts:?}");
        }
    }

    #[test]
    fn zipf_stays_in_support() {
        let z = Zipf::new(3, 2.5);
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
        assert_eq!(z.support(), 3);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zipf_rejects_empty_support() {
        Zipf::new(0, 1.0);
    }

    #[test]
    fn normal_moments_are_roughly_right() {
        let mut rng = StdRng::seed_from_u64(17);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn log_normal_is_positive_and_skewed() {
        let mut rng = StdRng::seed_from_u64(19);
        let samples: Vec<f64> = (0..10_000)
            .map(|_| log_normal(&mut rng, 2.0, 1.0))
            .collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[samples.len() / 2];
        assert!(mean > median, "log-normal mean exceeds median");
        // Median of log-normal is e^mu ≈ 7.39.
        assert!((6.5..8.3).contains(&median), "median {median}");
    }
}
