//! # scwsc-data
//!
//! Data sets for the SCWSC reproduction:
//!
//! * [`entities`] — the paper's Table I running example (16 records) with
//!   the Table II pattern inventory;
//! * [`lbl`] — a seeded generator for an LBL-CONN-7-like TCP connection
//!   trace (the paper's real workload is not redistributable; see
//!   DESIGN.md §4 for why the synthetic stand-in preserves the evaluated
//!   behaviour);
//! * [`perturb`] — the Section VI-B synthetic weight perturbations
//!   (δ-uniform noise and log-normal re-ranking);
//! * [`distributions`] — Zipf and log-normal samplers built on `rand`;
//! * [`csv`] — minimal CSV persistence for tables.
//!
//! ```
//! use scwsc_data::lbl::LblConfig;
//!
//! let table = LblConfig { rows: 500, ..LblConfig::scaled(500) }.generate();
//! assert_eq!(table.num_rows(), 500);
//! assert_eq!(table.num_attrs(), 5); // protocol..flags, like the paper
//! ```

#![warn(missing_docs)]

pub mod csv;
pub mod distributions;
pub mod entities;
pub mod lbl;
pub mod perturb;

pub use entities::{entities_table, table2_pattern};
pub use lbl::LblConfig;
pub use perturb::{lognormal_rerank, uniform_noise};
