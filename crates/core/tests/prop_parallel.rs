//! Property test for the parallel execution layer's determinism contract:
//! for randomly generated set systems, `cmc`, `cwsc`, and `pareto_sweep`
//! on a multi-worker pool produce bit-identical solutions, costs, and
//! exact-diff telemetry counters to the serial run. Only the speculation
//! accounting (`guesses_committed` / `guesses_wasted`) may differ — it is
//! gated out of the exact-diff set by design.

use proptest::prelude::*;
use scwsc_core::algorithms::{cmc, cmc_on, cwsc, cwsc_on, CmcParams};
use scwsc_core::multiweight::{pareto_sweep_on, pareto_sweep_with, MultiWeightSystem};
use scwsc_core::{MetricsRecorder, SetSystem, ThreadPool, Threads};

/// Deterministic LCG-driven random set system: `num_sets` small random
/// sets plus a universe set so every instance is solvable.
fn lcg_system(num_elements: usize, num_sets: usize, seed: u64) -> SetSystem {
    let mut state = seed;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let mut b = SetSystem::builder(num_elements);
    for _ in 0..num_sets {
        let len = 1 + next() % 6;
        let members: Vec<u32> = (0..len).map(|_| (next() % num_elements) as u32).collect();
        let cost = 1.0 + (next() % 100) as f64 / 10.0;
        b.add_set(members, cost);
    }
    b.add_universe_set(num_elements as f64 * 2.0);
    b.build().unwrap()
}

/// The exact-diff counter set: everything deterministic in
/// [`MetricsRecorder`], excluding the speculation counters and phase
/// timings (wall-clock is allowed to move).
fn assert_counters_equal(serial: &MetricsRecorder, parallel: &MetricsRecorder, ctx: &str) {
    assert_eq!(parallel.guesses, serial.guesses, "{ctx}: guesses");
    assert_eq!(
        parallel.levels_entered, serial.levels_entered,
        "{ctx}: levels_entered"
    );
    assert_eq!(
        parallel.level_allowance, serial.level_allowance,
        "{ctx}: level_allowance"
    );
    assert_eq!(parallel.selections, serial.selections, "{ctx}: selections");
    assert_eq!(
        parallel.benefits_computed, serial.benefits_computed,
        "{ctx}: benefits_computed"
    );
    assert_eq!(
        parallel.candidates_pruned, serial.candidates_pruned,
        "{ctx}: candidates_pruned"
    );
    assert_eq!(
        parallel.subtrees_pruned, serial.subtrees_pruned,
        "{ctx}: subtrees_pruned"
    );
    assert_eq!(
        parallel.heap_stale_pops, serial.heap_stale_pops,
        "{ctx}: heap_stale_pops"
    );
    assert_eq!(
        parallel.postings_scanned, serial.postings_scanned,
        "{ctx}: postings_scanned"
    );
    assert_eq!(
        parallel.marginal_benefit_hist, serial.marginal_benefit_hist,
        "{ctx}: marginal_benefit_hist"
    );
    assert_eq!(
        parallel.stale_run_hist, serial.stale_run_hist,
        "{ctx}: stale_run_hist"
    );
    // Serial runs never speculate.
    assert_eq!(serial.guesses_committed, 0, "{ctx}: serial speculation");
    assert_eq!(serial.guesses_wasted, 0, "{ctx}: serial speculation");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_determinism(
        num_elements in 20usize..120,
        num_sets in 8usize..48,
        seed in any::<u64>(),
        k in 2usize..6,
        threads in 2usize..5,
    ) {
        let sys = lcg_system(num_elements, num_sets, seed);
        let pool = ThreadPool::new(Threads::new(threads));
        let coverage = 0.8;

        // CWSC: one greedy round.
        let mut sm = MetricsRecorder::new();
        let serial = cwsc(&sys, k, coverage, &mut sm);
        let mut pm = MetricsRecorder::new();
        let parallel = cwsc_on(&sys, k, coverage, &pool, &mut pm);
        prop_assert_eq!(&parallel, &serial, "cwsc solutions");
        if let (Ok(s), Ok(p)) = (&serial, &parallel) {
            prop_assert_eq!(p.total_cost(), s.total_cost(), "cwsc cost");
        }
        assert_counters_equal(&sm, &pm, "cwsc");

        // CMC: budget doubling with speculative parallel guessing.
        let params = CmcParams::classic(k, coverage, 1.0);
        let mut sm = MetricsRecorder::new();
        let serial = cmc(&sys, &params, &mut sm);
        let mut pm = MetricsRecorder::new();
        let parallel = cmc_on(&sys, &params, &pool, &mut pm);
        prop_assert_eq!(&parallel, &serial, "cmc outcomes");
        if let (Ok(s), Ok(p)) = (&serial, &parallel) {
            prop_assert_eq!(p.final_budget, s.final_budget, "cmc budget");
            prop_assert_eq!(
                p.solution.total_cost(),
                s.solution.total_cost(),
                "cmc cost"
            );
            // Every committed speculative guess corresponds 1:1 to a
            // serial guess; wasted guesses are extra work, never counted.
            prop_assert_eq!(pm.guesses_committed, sm.guesses, "cmc committed");
        }
        assert_counters_equal(&sm, &pm, "cmc");

        // Pareto sweep: one scalarized CWSC per preference vector.
        let mw = {
            let mut mw = MultiWeightSystem::new(sys.num_elements(), 2);
            for (id, set) in sys.iter() {
                let c = sys.cost(id).value();
                mw.add_set(set.members().to_vec(), vec![c, 1.0 + c * 0.5])
                    .unwrap();
            }
            mw
        };
        let lambdas: Vec<Vec<f64>> = (0..5)
            .map(|i| {
                let w = i as f64 / 4.0;
                vec![w, 1.0 - w]
            })
            .collect();
        let mut sm = MetricsRecorder::new();
        let serial = pareto_sweep_with(&mw, k, coverage, &lambdas, &mut sm);
        let mut pm = MetricsRecorder::new();
        let parallel = pareto_sweep_on(&mw, k, coverage, &lambdas, &pool, &mut pm);
        prop_assert_eq!(&parallel, &serial, "pareto fronts");
        assert_counters_equal(&sm, &pm, "pareto_sweep");
    }
}
