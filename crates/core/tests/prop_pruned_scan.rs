//! Property tests for the sketch-pruned scan path (DESIGN.md §15): for
//! randomly generated set systems — uniform and skewed costs, with and
//! without candidate filters — the pruned scan must be observationally
//! identical to the exact scan at every level the repo gates on:
//!
//! * the same top list (same sets, same counted benefits, same order)
//!   under both canonical scan orders, round after round as coverage
//!   grows and the stale bounds loosen;
//! * the same solutions, costs, and exact-diff counters from `cwsc` /
//!   `cmc` with `SCWSC_PRUNE=0` vs `=1`;
//! * byte-identical `--audit-jsonl` decision ledgers across both the
//!   prune toggle and the thread count (`Threads(1)` vs `Threads(4)`).
//!
//! Only the advisory counters (`scan_candidates_pruned`,
//! `scan_bounds_refreshed`, `scan_sketch_inconclusive`) may move — they
//! are excluded from the exact-diff set by design.
//!
//! This file intentionally holds a single `#[test]`: the algorithm-level
//! half toggles the `SCWSC_PRUNE` process environment, which would race
//! against any sibling test running on another thread.

use proptest::prelude::*;
use scwsc_core::algorithms::scan::{
    build_masks, masked_top, masked_top_pruned, PrunedScan, ScanOrder,
};
use scwsc_core::algorithms::{cmc, cmc_on, cwsc, cwsc_on, CmcParams};
use scwsc_core::parallel::PRUNE_ENV;
use scwsc_core::telemetry::audit::DecisionLedger;
use scwsc_core::{
    BitSet, Fanout, MetricsRecorder, NoopObserver, SetId, SetSystem, ThreadLocalTelemetry,
    ThreadPool, Threads,
};

/// Deterministic LCG-driven random set system. `skewed` switches the
/// cost model from uniform-ish to a cubed draw whose heavy tail makes
/// the gain order's cross-multiplied threshold do real work.
fn lcg_system(num_elements: usize, num_sets: usize, seed: u64, skewed: bool) -> SetSystem {
    let mut state = seed;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let mut b = SetSystem::builder(num_elements);
    for _ in 0..num_sets {
        let len = 1 + next() % 8;
        let members: Vec<u32> = (0..len).map(|_| (next() % num_elements) as u32).collect();
        let cost = if skewed {
            0.5 + ((next() % 10) as f64).powi(3) / 25.0
        } else {
            1.0 + (next() % 100) as f64 / 10.0
        };
        b.add_set(members, cost);
    }
    b.add_universe_set(num_elements as f64 * 2.0);
    b.build().unwrap()
}

/// Exact counters that must not move when pruning is toggled. The
/// advisory scan counters are deliberately absent (DESIGN.md §15).
fn assert_exact_counters_equal(exact: &MetricsRecorder, pruned: &MetricsRecorder, ctx: &str) {
    assert_eq!(pruned.guesses, exact.guesses, "{ctx}: guesses");
    assert_eq!(pruned.selections, exact.selections, "{ctx}: selections");
    assert_eq!(
        pruned.benefits_computed, exact.benefits_computed,
        "{ctx}: benefits_computed"
    );
    assert_eq!(
        pruned.levels_entered, exact.levels_entered,
        "{ctx}: levels_entered"
    );
    assert_eq!(
        pruned.level_allowance, exact.level_allowance,
        "{ctx}: level_allowance"
    );
    assert_eq!(
        pruned.candidates_pruned, exact.candidates_pruned,
        "{ctx}: candidates_pruned (reasoned prunes are exact, not advisory)"
    );
    assert_eq!(
        pruned.subtrees_pruned, exact.subtrees_pruned,
        "{ctx}: subtrees_pruned"
    );
    assert_eq!(
        pruned.heap_stale_pops, exact.heap_stale_pops,
        "{ctx}: heap_stale_pops"
    );
    assert_eq!(
        pruned.postings_scanned, exact.postings_scanned,
        "{ctx}: postings_scanned"
    );
    assert_eq!(
        pruned.marginal_benefit_hist, exact.marginal_benefit_hist,
        "{ctx}: marginal_benefit_hist"
    );
}

/// Runs `cwsc` + `cmc` on `pool` under the *current* `SCWSC_PRUNE`
/// setting, collecting metrics and the serialized decision ledger.
#[allow(clippy::type_complexity)]
fn solve_both(
    sys: &SetSystem,
    k: usize,
    coverage: f64,
    pool: Option<&ThreadPool>,
) -> (String, MetricsRecorder, Vec<u8>) {
    let mut metrics = MetricsRecorder::new();
    let mut ledger = DecisionLedger::new();
    let cwsc_out = {
        let mut fanout = Fanout::new();
        fanout.attach(&mut metrics).attach(&mut ledger);
        match pool {
            Some(p) => cwsc_on(sys, k, coverage, p, &mut fanout),
            None => cwsc(sys, k, coverage, &mut fanout),
        }
    };
    let params = CmcParams::classic(k, coverage, 1.0);
    let cmc_out = {
        let mut fanout = Fanout::new();
        fanout.attach(&mut metrics).attach(&mut ledger);
        match pool {
            Some(p) => cmc_on(sys, &params, p, &mut fanout),
            None => cmc(sys, &params, &mut fanout),
        }
    };
    // The Debug rendering pins ids, costs, and coverage of both runs.
    let outcome = format!("cwsc={cwsc_out:?} cmc={cmc_out:?}");
    let mut jsonl = Vec::new();
    ledger.write_jsonl(&mut jsonl).expect("in-memory write");
    (outcome, metrics, jsonl)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn pruned_scan_is_observationally_exact(
        num_elements in 20usize..100,
        num_sets in 8usize..48,
        seed in any::<u64>(),
        skewed in any::<bool>(),
        use_filter in any::<bool>(),
        k in 2usize..6,
        threads in 2usize..5,
    ) {
        let sys = lcg_system(num_elements, num_sets, seed, skewed);
        let pool = ThreadPool::new(Threads::new(threads));

        // --- Scan level: pruned top lists equal exact top lists round
        // after round, under both orders, as the stale bounds age.
        let masks = build_masks(&pool, &sys);
        let tls = ThreadLocalTelemetry::new(pool.threads());
        let filter = |id: SetId| !use_filter || !id.is_multiple_of(3);
        let mut covered = BitSet::new(sys.num_elements());
        let mut scan = PrunedScan::with_enabled(&masks, true);
        for round in 0..6 {
            for order in [ScanOrder::Benefit, ScanOrder::Gain] {
                for cap in [1usize, 4] {
                    let exact = masked_top(
                        &pool, &tls, &sys, &masks, &covered, filter, |_| true,
                        |a, b| order.cmp(a, b), cap,
                    );
                    tls.replay(&mut NoopObserver);
                    let pruned = masked_top_pruned(
                        &pool, &tls, &sys, &masks, &mut scan, &covered, filter,
                        |_| true, 0, order, cap, &mut NoopObserver,
                    );
                    tls.replay(&mut NoopObserver);
                    prop_assert_eq!(
                        &pruned, &exact,
                        "round {} {:?} cap {}: pruned top must equal exact top",
                        round, order, cap
                    );
                }
            }
            // Bound invariant: every stale bound dominates the true count.
            for (id, mask) in masks.iter().enumerate() {
                let true_mben = mask.difference_count(&covered);
                prop_assert!(
                    scan.bound(id as SetId) >= true_mben,
                    "round {}: bound({}) = {} < true {}",
                    round, id, scan.bound(id as SetId), true_mben
                );
            }
            // Grow coverage along the exact argmax trajectory.
            let best = masked_top(
                &pool, &tls, &sys, &masks, &covered, |_| true, |_| true,
                |a, b| ScanOrder::Benefit.cmp(a, b), 1,
            );
            tls.replay(&mut NoopObserver);
            match best.first() {
                Some(c) if c.mben > 0 => covered.union_with(&masks[c.id as usize]),
                _ => break,
            }
        }

        // --- Algorithm level: SCWSC_PRUNE=0 vs =1 must agree on
        // solutions, costs, exact counters, and ledger bytes — serially
        // and on the pool — and the pruned pool run must byte-match the
        // pruned serial run (thread-count determinism).
        let coverage = 0.8;
        std::env::set_var(PRUNE_ENV, "0");
        let (exact_out, exact_metrics, exact_jsonl) = solve_both(&sys, k, coverage, None);
        std::env::set_var(PRUNE_ENV, "1");
        let (pruned_out, pruned_metrics, pruned_jsonl) = solve_both(&sys, k, coverage, None);
        let (pool_out, pool_metrics, pool_jsonl) =
            solve_both(&sys, k, coverage, Some(&pool));
        std::env::remove_var(PRUNE_ENV);

        prop_assert_eq!(&pruned_out, &exact_out, "prune toggle changed outcomes");
        assert_exact_counters_equal(&exact_metrics, &pruned_metrics, "prune toggle");
        prop_assert_eq!(
            &pruned_jsonl, &exact_jsonl,
            "prune toggle changed audit ledger bytes"
        );
        prop_assert_eq!(&pool_out, &pruned_out, "threads changed pruned outcomes");
        prop_assert_eq!(
            &pool_jsonl, &pruned_jsonl,
            "threads changed pruned audit ledger bytes"
        );
        // Pool-vs-serial exact counters: same contract prop_parallel.rs
        // pins for the unpruned path, now under pruning.
        assert_exact_counters_equal(&pruned_metrics, &pool_metrics, "pruned t1-vs-tN");
    }
}
