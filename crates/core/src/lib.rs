//! # scwsc-core
//!
//! Size-Constrained Weighted Set Cover over arbitrary set systems — a
//! from-scratch Rust implementation of the algorithms of
//! *"Size-Constrained Weighted Set Cover"* (Golab, Korn, Li, Saha,
//! Srivastava; ICDE 2015).
//!
//! Given `n` elements, weighted sets over them, a size bound `k`, and a
//! coverage fraction `ŝ`, the problem asks for at most `k` sets covering
//! at least `ŝ·n` elements at minimum total weight (Definition 1). The
//! problem simultaneously constrains *coverage*, *cost*, and *size*;
//! Section IV of the paper shows no true approximation exists, which is
//! why the two solvers trade off different corners:
//!
//! * [`algorithms::cwsc()`] (Fig. 2) returns at most `k` sets and meets the
//!   coverage requirement, with no worst-case cost guarantee;
//! * [`algorithms::cmc()`] (Fig. 1 / §V-A3) returns at most `5k` (or
//!   `(1+ε)k`) sets covering `(1−1/e)·ŝ·n` elements at cost within a
//!   logarithmic factor of optimal (Theorems 4–5).
//!
//! ```
//! use scwsc_core::{SetSystem, algorithms, Stats};
//!
//! let mut b = SetSystem::builder(6);
//! b.add_set([0, 1, 2], 3.0)
//!     .add_set([3, 4], 1.0)
//!     .add_set([5], 1.0)
//!     .add_universe_set(50.0); // Definition 1 requires a universe set
//! let system = b.build().unwrap();
//!
//! let solution = algorithms::cwsc(&system, 2, 0.8, &mut Stats::new()).unwrap();
//! assert!(solution.size() <= 2);
//! assert!(solution.covered() >= 5); // ⌈0.8 · 6⌉
//! ```
//!
//! The patterned-set specialization (data-cube patterns over relational
//! tables, Sections II and V-C) lives in the companion `scwsc-patterns`
//! crate.

#![warn(missing_docs)]

pub mod algorithms;
pub mod bitset;
pub mod cli;
pub mod cost;
pub mod cover_state;
pub mod engine;
pub mod incremental;
pub mod json;
pub mod lazy_greedy;
pub mod multiweight;
pub mod parallel;
pub mod set_system;
pub mod solution;
pub mod solver;
pub mod stats;
pub mod telemetry;

pub use bitset::{BitSet, BlockSummary, LimitedCount};
pub use cost::{Cost, CostError};
pub use cover_state::{Candidate, CoverState};
#[cfg(feature = "fault-inject")]
pub use engine::FaultPlan;
pub use engine::{
    panic_message, Certificate, Deadline, DegradeReason, Degraded, EngineError, SolveOutcome,
    TickProbe,
};
pub use json::Json;
pub use parallel::{CancelToken, Scope, ThreadPool, Threads};
pub use set_system::{coverage_target, BuildError, ElementId, SetId, SetSystem, WeightedSet};
pub use solution::{
    verify, verify_certificate, CertificateCheck, Requirements, Solution, SolveError, Verification,
};
pub use solver::{Algorithm, Answer, CostModel, Query, Solver, SystemInstance};
pub use stats::Stats;
pub use telemetry::{
    audit, parse_prometheus, render_prometheus, render_prometheus_windowed, CausalNode,
    EntryWindow, EventLog, Fanout, FlightRecorder, JsonlSink, LogHistogram, MetricsRecorder,
    NoopObserver, Observer, PhaseMetric, PhaseSpan, PruneReason, RollingHistogram, SloGauges,
    SolveSample, SolveWindows, SpanCounters, SpanNode, SpanProfiler, ThreadLocalTelemetry,
    TraceContext, TraceId, Watchdog, WatchdogMonitor, WindowedCounter, MAIN_WORKER, PHASE_EXPAND,
    PHASE_GUESS, PHASE_INIT, PHASE_SCAN, PHASE_SELECT, PHASE_TOTAL,
};
