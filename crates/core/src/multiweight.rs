//! Multi-weight size-constrained weighted set cover.
//!
//! Section VII poses "how to handle multiple weights associated with each
//! set" as an open problem. This module provides the two standard
//! treatments on top of the single-weight solvers:
//!
//! * **scalarization** — collapse each weight vector `w(s)` to
//!   `⟨λ, w(s)⟩` for a non-negative preference vector `λ` and solve the
//!   resulting single-weight instance;
//! * **Pareto sweep** — solve over a grid of preference vectors and keep
//!   the solutions whose aggregate weight vectors are mutually
//!   non-dominated, giving the decision-maker a trade-off frontier.

use crate::algorithms::cwsc::{cwsc, cwsc_within};
use crate::engine::{Certificate, Deadline, DegradeReason, Degraded, EngineError, SolveOutcome};
use crate::parallel::{ThreadPool, Threads};
use crate::set_system::{coverage_target, ElementId, SetId, SetSystem};
use crate::solution::{Solution, SolveError};
use crate::telemetry::{pack_k_target, EventLog, NoopObserver, Observer, PhaseSpan, TraceId};

/// Span name for one whole [`pareto_sweep_with`] run. Distinct from
/// [`crate::telemetry::PHASE_TOTAL`] so the sweep's wrapper span does not
/// double-count the inner solver runs' `"total"` spans in aggregations.
pub const PHASE_SWEEP: &str = "pareto_sweep";
/// Span name for building one scalarized [`SetSystem`] during a sweep.
pub const PHASE_SCALARIZE: &str = "scalarize";
/// Span name for the Pareto dominance filter at the end of a sweep.
pub const PHASE_FILTER: &str = "pareto_filter";

/// A set system whose sets carry a vector of weights (one per criterion).
#[derive(Debug, Clone)]
pub struct MultiWeightSystem {
    num_elements: usize,
    num_criteria: usize,
    sets: Vec<(Vec<ElementId>, Vec<f64>)>,
}

/// Errors raised while building or scalarizing a [`MultiWeightSystem`].
#[derive(Debug, Clone, PartialEq)]
pub enum MultiWeightError {
    /// A weight vector had the wrong number of criteria.
    WrongArity {
        /// Offending set index.
        set: usize,
        /// Number of weights supplied.
        got: usize,
        /// Number of criteria expected.
        expected: usize,
    },
    /// A weight or preference entry was negative or non-finite.
    InvalidWeight(f64),
    /// The underlying single-weight solver failed.
    Solve(SolveError),
    /// A solver worker panicked twice under the resilience engine
    /// ([`pareto_sweep_within`]); carries the panic message.
    Faulted(String),
}

impl std::fmt::Display for MultiWeightError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MultiWeightError::WrongArity { set, got, expected } => {
                write!(f, "set {set}: {got} weights, expected {expected}")
            }
            MultiWeightError::InvalidWeight(w) => write!(f, "invalid weight {w}"),
            MultiWeightError::Solve(e) => write!(f, "solve failed: {e}"),
            MultiWeightError::Faulted(msg) => write!(f, "solver fault: {msg}"),
        }
    }
}

impl std::error::Error for MultiWeightError {}

impl MultiWeightSystem {
    /// Creates an empty system over `num_elements` elements with
    /// `num_criteria` weights per set.
    pub fn new(num_elements: usize, num_criteria: usize) -> MultiWeightSystem {
        assert!(num_criteria >= 1, "at least one criterion required");
        MultiWeightSystem {
            num_elements,
            num_criteria,
            sets: Vec::new(),
        }
    }

    /// Adds a set with its weight vector.
    pub fn add_set(
        &mut self,
        members: impl IntoIterator<Item = ElementId>,
        weights: Vec<f64>,
    ) -> Result<&mut Self, MultiWeightError> {
        if weights.len() != self.num_criteria {
            return Err(MultiWeightError::WrongArity {
                set: self.sets.len(),
                got: weights.len(),
                expected: self.num_criteria,
            });
        }
        if let Some(&bad) = weights.iter().find(|w| !w.is_finite() || **w < 0.0) {
            return Err(MultiWeightError::InvalidWeight(bad));
        }
        let mut members: Vec<ElementId> = members.into_iter().collect();
        members.sort_unstable();
        members.dedup();
        self.sets.push((members, weights));
        Ok(self)
    }

    /// Number of criteria per set.
    pub fn num_criteria(&self) -> usize {
        self.num_criteria
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// Collapses weight vectors with preference `λ` into a single-weight
    /// [`SetSystem`]: `Cost(s) = Σ_c λ_c · w_c(s)`.
    pub fn scalarize(&self, lambda: &[f64]) -> Result<SetSystem, MultiWeightError> {
        if lambda.len() != self.num_criteria {
            return Err(MultiWeightError::WrongArity {
                set: usize::MAX,
                got: lambda.len(),
                expected: self.num_criteria,
            });
        }
        if let Some(&bad) = lambda.iter().find(|w| !w.is_finite() || **w < 0.0) {
            return Err(MultiWeightError::InvalidWeight(bad));
        }
        let mut b = SetSystem::builder(self.num_elements);
        for (members, weights) in &self.sets {
            let cost: f64 = weights.iter().zip(lambda).map(|(w, l)| w * l).sum();
            b.add_set(members.iter().copied(), cost);
        }
        b.build().map_err(|_| {
            // members were validated by range below; costs validated above
            MultiWeightError::InvalidWeight(f64::NAN)
        })
    }

    /// Aggregate weight vector of a chosen sub-collection.
    pub fn aggregate(&self, sets: &[SetId]) -> Vec<f64> {
        let mut total = vec![0.0; self.num_criteria];
        for &s in sets {
            for (t, w) in total.iter_mut().zip(&self.sets[s as usize].1) {
                *t += w;
            }
        }
        total
    }
}

/// One point on the multi-weight trade-off frontier.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoPoint {
    /// Preference vector that produced this solution.
    pub lambda: Vec<f64>,
    /// The solution (over the scalarized system).
    pub solution: Solution,
    /// Aggregate weight vector of the solution.
    pub weights: Vec<f64>,
}

/// Returns whether `a` dominates `b`: no worse in every criterion and
/// strictly better in at least one.
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut strictly = false;
    for (&x, &y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly = true;
        }
    }
    strictly
}

/// Solves CWSC under each preference vector and keeps the non-dominated
/// outcomes (by aggregate weight vector).
pub fn pareto_sweep(
    system: &MultiWeightSystem,
    k: usize,
    coverage_fraction: f64,
    lambdas: &[Vec<f64>],
) -> Result<Vec<ParetoPoint>, MultiWeightError> {
    pareto_sweep_with(system, k, coverage_fraction, lambdas, &mut NoopObserver)
}

/// [`pareto_sweep`] reporting its work through an [`Observer`].
///
/// The whole sweep runs inside a [`PHASE_SWEEP`] span; each preference
/// vector contributes a [`PHASE_SCALARIZE`] span and the inner solver's own
/// events (including its `"total"` span), and the final dominance filter
/// runs inside a [`PHASE_FILTER`] span.
pub fn pareto_sweep_with<O: Observer + ?Sized>(
    system: &MultiWeightSystem,
    k: usize,
    coverage_fraction: f64,
    lambdas: &[Vec<f64>],
    obs: &mut O,
) -> Result<Vec<ParetoPoint>, MultiWeightError> {
    obs.trace_started(sweep_trace_id(system, k, coverage_fraction), "pareto_sweep");
    let sweep_span = PhaseSpan::enter(obs, PHASE_SWEEP);
    let result = run_sweep(system, k, coverage_fraction, lambdas, obs);
    sweep_span.exit(obs);
    result
}

/// Deterministic trace id for a sweep entry point: same system shape,
/// `k`, and coverage target ⇒ same id, whatever the pool or deadline.
fn sweep_trace_id(system: &MultiWeightSystem, k: usize, coverage_fraction: f64) -> TraceId {
    let target = coverage_target(system.num_elements, coverage_fraction);
    TraceId::mint(
        "pareto_sweep",
        system.num_elements as u64,
        pack_k_target(k, target),
    )
}

/// The sweep body, wrapped by [`pareto_sweep_with`]'s outer span.
fn run_sweep<O: Observer + ?Sized>(
    system: &MultiWeightSystem,
    k: usize,
    coverage_fraction: f64,
    lambdas: &[Vec<f64>],
    obs: &mut O,
) -> Result<Vec<ParetoPoint>, MultiWeightError> {
    let mut points: Vec<ParetoPoint> = Vec::new();
    for lambda in lambdas {
        let scalarize_span = PhaseSpan::enter(obs, PHASE_SCALARIZE);
        let scalar = system.scalarize(lambda);
        scalarize_span.exit(obs);
        let scalar = scalar?;
        let solution = cwsc(&scalar, k, coverage_fraction, obs).map_err(MultiWeightError::Solve)?;
        let weights = system.aggregate(solution.sets());
        points.push(ParetoPoint {
            lambda: lambda.clone(),
            solution,
            weights,
        });
    }
    Ok(pareto_filter(points, obs))
}

/// The final dominance filter (also drops duplicate weight vectors),
/// inside a [`PHASE_FILTER`] span.
fn pareto_filter<O: Observer + ?Sized>(points: Vec<ParetoPoint>, obs: &mut O) -> Vec<ParetoPoint> {
    let filter_span = PhaseSpan::enter(obs, PHASE_FILTER);
    let mut frontier: Vec<ParetoPoint> = Vec::new();
    for p in points {
        if frontier
            .iter()
            .any(|q| dominates(&q.weights, &p.weights) || q.weights == p.weights)
        {
            continue;
        }
        frontier.retain(|q| !dominates(&p.weights, &q.weights));
        frontier.push(p);
    }
    filter_span.exit(obs);
    frontier
}

/// [`pareto_sweep_with`] on a thread pool: the per-λ scalarize + solve
/// tasks are independent, so they fan out one task per preference vector.
///
/// Each task records its events into a private [`EventLog`]; the logs
/// replay into `obs` in λ order, so the observer sees the exact serial
/// event stream for any thread count, and the frontier (built from
/// points in λ order) is identical to [`pareto_sweep_with`]. On error
/// the logs up to and including the first failing λ replay before the
/// error returns, matching the serial early-exit; later λs' completed
/// work is discarded unreported. A serial pool delegates outright.
pub fn pareto_sweep_on<O: Observer + ?Sized>(
    system: &MultiWeightSystem,
    k: usize,
    coverage_fraction: f64,
    lambdas: &[Vec<f64>],
    pool: &ThreadPool,
    obs: &mut O,
) -> Result<Vec<ParetoPoint>, MultiWeightError> {
    if pool.is_serial() {
        return pareto_sweep_with(system, k, coverage_fraction, lambdas, obs);
    }
    obs.trace_started(sweep_trace_id(system, k, coverage_fraction), "pareto_sweep");
    let sweep_span = PhaseSpan::enter(obs, PHASE_SWEEP);
    let result = run_sweep_parallel(system, k, coverage_fraction, lambdas, pool, obs);
    sweep_span.exit(obs);
    result
}

/// The parallel sweep body, wrapped by [`pareto_sweep_on`]'s outer span.
fn run_sweep_parallel<O: Observer + ?Sized>(
    system: &MultiWeightSystem,
    k: usize,
    coverage_fraction: f64,
    lambdas: &[Vec<f64>],
    pool: &ThreadPool,
    obs: &mut O,
) -> Result<Vec<ParetoPoint>, MultiWeightError> {
    let solved: Vec<(EventLog, Result<ParetoPoint, MultiWeightError>)> =
        pool.par_map(lambdas, |lambda| {
            let mut log = EventLog::new();
            let scalarize_span = PhaseSpan::enter(&mut log, PHASE_SCALARIZE);
            let scalar = system.scalarize(lambda);
            scalarize_span.exit(&mut log);
            let point = scalar.and_then(|scalar| {
                let solution = cwsc(&scalar, k, coverage_fraction, &mut log)
                    .map_err(MultiWeightError::Solve)?;
                let weights = system.aggregate(solution.sets());
                Ok(ParetoPoint {
                    lambda: lambda.clone(),
                    solution,
                    weights,
                })
            });
            (log, point)
        });
    let mut points: Vec<ParetoPoint> = Vec::with_capacity(solved.len());
    for (log, point) in solved {
        log.replay(obs);
        points.push(point?);
    }
    Ok(pareto_filter(points, obs))
}

/// [`pareto_sweep_on`] under a [`Deadline`]: the resilience-engine sweep
/// (DESIGN.md §12).
///
/// The deadline is shared across the whole sweep: every inner
/// [`cwsc_within`] round consumes a work tick, so a tick budget bounds
/// total sweep work, not per-λ work. On expiry the frontier built from
/// the λs completed so far returns as [`SolveOutcome::Degraded`]; the
/// in-flight λ's partial picks are dropped (a trade-off *frontier* made
/// of half-solved points would be misleading). The certificate reuses
/// its fields as sweep progress: `covered` = λs completed, `target` =
/// total λs, `sets_used` = frontier size, `total_cost` = 0.
///
/// Determinism: under a tick-addressed deadline (or a serial pool) λs run
/// sequentially in order — the inner solver's scans still parallelize —
/// so outcomes match between thread counts. Wall-clock-only deadlines on
/// a parallel pool fan λs out (one serial solve per worker, resolved in λ
/// order). A twice-panicking solver surfaces as
/// [`MultiWeightError::Faulted`].
pub fn pareto_sweep_within<O: Observer + ?Sized>(
    system: &MultiWeightSystem,
    k: usize,
    coverage_fraction: f64,
    lambdas: &[Vec<f64>],
    pool: &ThreadPool,
    deadline: &Deadline,
    obs: &mut O,
) -> Result<SolveOutcome<Vec<ParetoPoint>>, MultiWeightError> {
    obs.trace_started(sweep_trace_id(system, k, coverage_fraction), "pareto_sweep");
    let sweep_span = PhaseSpan::enter(obs, PHASE_SWEEP);
    let result = if pool.is_serial() || deadline.tick_deterministic() {
        run_sweep_within(system, k, coverage_fraction, lambdas, pool, deadline, obs)
    } else {
        run_sweep_within_parallel(system, k, coverage_fraction, lambdas, pool, deadline, obs)
    };
    sweep_span.exit(obs);
    result
}

/// Wraps the surviving points (and how many λs completed) as a sweep
/// outcome: `Complete` when every λ finished, `Degraded` with a
/// progress-shaped certificate otherwise.
fn sweep_outcome<O: Observer + ?Sized>(
    points: Vec<ParetoPoint>,
    total_lambdas: usize,
    degraded: Option<DegradeReason>,
    deadline: &Deadline,
    obs: &mut O,
) -> SolveOutcome<Vec<ParetoPoint>> {
    let completed = points.len();
    let frontier = pareto_filter(points, obs);
    match degraded {
        None => SolveOutcome::Complete(frontier),
        Some(reason) => {
            let certificate = Certificate {
                sets_used: frontier.len(),
                covered: completed,
                target: total_lambdas,
                total_cost: 0.0,
                quotas_exhausted: Vec::new(),
                ticks: deadline.ticks(),
                reason,
            };
            SolveOutcome::Degraded(Degraded {
                partial: frontier,
                certificate,
            })
        }
    }
}

/// Sequential deadline-aware sweep body: λs in order, shared deadline.
#[allow(clippy::too_many_arguments)]
fn run_sweep_within<O: Observer + ?Sized>(
    system: &MultiWeightSystem,
    k: usize,
    coverage_fraction: f64,
    lambdas: &[Vec<f64>],
    pool: &ThreadPool,
    deadline: &Deadline,
    obs: &mut O,
) -> Result<SolveOutcome<Vec<ParetoPoint>>, MultiWeightError> {
    let mut points: Vec<ParetoPoint> = Vec::new();
    let mut degraded: Option<DegradeReason> = None;
    for lambda in lambdas {
        if let Some(reason) = deadline.expired() {
            degraded = Some(reason);
            break;
        }
        let scalarize_span = PhaseSpan::enter(obs, PHASE_SCALARIZE);
        let scalar = system.scalarize(lambda);
        scalarize_span.exit(obs);
        let scalar = scalar?;
        match cwsc_within(&scalar, k, coverage_fraction, pool, deadline, obs) {
            Ok(SolveOutcome::Complete(solution)) => {
                let weights = system.aggregate(solution.sets());
                points.push(ParetoPoint {
                    lambda: lambda.clone(),
                    solution,
                    weights,
                });
            }
            Ok(SolveOutcome::Degraded(d)) => {
                degraded = Some(d.certificate.reason);
                break;
            }
            Err(EngineError::Solve(e)) => return Err(MultiWeightError::Solve(e)),
            Err(EngineError::Panicked(msg)) => return Err(MultiWeightError::Faulted(msg)),
        }
    }
    Ok(sweep_outcome(
        points,
        lambdas.len(),
        degraded,
        deadline,
        obs,
    ))
}

/// How one fanned-out λ task ended.
enum LambdaOutcome {
    Point(Box<ParetoPoint>),
    Expired(DegradeReason),
    Error(MultiWeightError),
}

/// Parallel (wall-clock-only) deadline-aware sweep body: one task per λ,
/// each solving serially under the shared deadline; logs and outcomes
/// resolve in λ order.
#[allow(clippy::too_many_arguments)]
fn run_sweep_within_parallel<O: Observer + ?Sized>(
    system: &MultiWeightSystem,
    k: usize,
    coverage_fraction: f64,
    lambdas: &[Vec<f64>],
    pool: &ThreadPool,
    deadline: &Deadline,
    obs: &mut O,
) -> Result<SolveOutcome<Vec<ParetoPoint>>, MultiWeightError> {
    let solved: Vec<(EventLog, LambdaOutcome)> = pool.par_map(lambdas, |lambda| {
        let mut log = EventLog::new();
        if let Some(reason) = deadline.expired() {
            return (log, LambdaOutcome::Expired(reason));
        }
        let scalarize_span = PhaseSpan::enter(&mut log, PHASE_SCALARIZE);
        let scalar = system.scalarize(lambda);
        scalarize_span.exit(&mut log);
        let scalar = match scalar {
            Ok(scalar) => scalar,
            Err(e) => return (log, LambdaOutcome::Error(e)),
        };
        // Each task solves serially (the pool's workers are busy with
        // sibling λs); cwsc_within supplies catch_unwind containment.
        let serial = ThreadPool::new(Threads::serial());
        let outcome = match cwsc_within(&scalar, k, coverage_fraction, &serial, deadline, &mut log)
        {
            Ok(SolveOutcome::Complete(solution)) => {
                let weights = system.aggregate(solution.sets());
                LambdaOutcome::Point(Box::new(ParetoPoint {
                    lambda: lambda.clone(),
                    solution,
                    weights,
                }))
            }
            Ok(SolveOutcome::Degraded(d)) => LambdaOutcome::Expired(d.certificate.reason),
            Err(EngineError::Solve(e)) => LambdaOutcome::Error(MultiWeightError::Solve(e)),
            Err(EngineError::Panicked(msg)) => LambdaOutcome::Error(MultiWeightError::Faulted(msg)),
        };
        (log, outcome)
    });
    let mut points: Vec<ParetoPoint> = Vec::with_capacity(solved.len());
    let mut degraded: Option<DegradeReason> = None;
    for (log, outcome) in solved {
        log.replay(obs);
        match outcome {
            LambdaOutcome::Point(point) => points.push(*point),
            LambdaOutcome::Expired(reason) => {
                degraded = Some(reason);
                break;
            }
            LambdaOutcome::Error(e) => return Err(e),
        }
    }
    Ok(sweep_outcome(
        points,
        lambdas.len(),
        degraded,
        deadline,
        obs,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two criteria pulling in opposite directions: set 0 is cheap on the
    /// first criterion, set 1 on the second; both cover the left half. Set
    /// 2 is a universe set, mid-priced on both.
    fn system() -> MultiWeightSystem {
        let mut s = MultiWeightSystem::new(4, 2);
        s.add_set([0, 1], vec![1.0, 9.0]).unwrap();
        s.add_set([0, 1], vec![9.0, 1.0]).unwrap();
        s.add_set([0, 1, 2, 3], vec![5.0, 5.0]).unwrap();
        s
    }

    #[test]
    fn arity_and_weight_validation() {
        let mut s = MultiWeightSystem::new(4, 2);
        assert!(matches!(
            s.add_set([0], vec![1.0]),
            Err(MultiWeightError::WrongArity {
                got: 1,
                expected: 2,
                ..
            })
        ));
        assert!(matches!(
            s.add_set([0], vec![1.0, -3.0]),
            Err(MultiWeightError::InvalidWeight(_))
        ));
    }

    #[test]
    fn scalarize_produces_dot_products() {
        let s = system();
        let scalar = s.scalarize(&[1.0, 0.0]).unwrap();
        assert_eq!(scalar.cost(0).value(), 1.0);
        assert_eq!(scalar.cost(1).value(), 9.0);
        assert_eq!(scalar.cost(2).value(), 5.0);
        let scalar = s.scalarize(&[0.5, 0.5]).unwrap();
        assert_eq!(scalar.cost(0).value(), 5.0);
    }

    #[test]
    fn scalarize_validates_lambda() {
        let s = system();
        assert!(s.scalarize(&[1.0]).is_err());
        assert!(s.scalarize(&[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn dominates_semantics() {
        assert!(dominates(&[1.0, 2.0], &[2.0, 2.0]));
        assert!(
            !dominates(&[1.0, 2.0], &[1.0, 2.0]),
            "equal is not dominated"
        );
        assert!(!dominates(&[1.0, 3.0], &[2.0, 2.0]), "incomparable");
        assert!(!dominates(&[2.0, 2.0], &[1.0, 2.0]));
    }

    #[test]
    fn aggregate_sums_vectors() {
        let s = system();
        assert_eq!(s.aggregate(&[0, 1]), vec![10.0, 10.0]);
        assert_eq!(s.aggregate(&[]), vec![0.0, 0.0]);
    }

    #[test]
    fn pareto_sweep_finds_both_extremes() {
        let s = system();
        let lambdas = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.5, 0.5]];
        let frontier = pareto_sweep(&s, 1, 0.5, &lambdas).unwrap();
        // λ=(1,0) picks set 0 (weights [1,9]); λ=(0,1) picks set 1 ([9,1]);
        // both are non-dominated. λ=(.5,.5) picks one of them again (cost 5
        // each beats universe's 5? tie on gain 2/5 vs 4/5 for universe --
        // universe wins on gain) giving [5,5], also non-dominated.
        assert!(frontier.len() >= 2, "{frontier:?}");
        let has = |w: &[f64]| frontier.iter().any(|p| p.weights == w);
        assert!(has(&[1.0, 9.0]));
        assert!(has(&[9.0, 1.0]));
    }

    #[test]
    fn pareto_filter_drops_dominated() {
        let s = system();
        // λ = (1,0) twice and (2,0): all pick set 0 -> duplicates collapse.
        let lambdas = vec![vec![1.0, 0.0], vec![1.0, 0.0], vec![2.0, 0.0]];
        let frontier = pareto_sweep(&s, 1, 0.5, &lambdas).unwrap();
        assert_eq!(frontier.len(), 1);
        assert_eq!(frontier[0].weights, vec![1.0, 9.0]);
    }

    #[test]
    fn sweep_propagates_solver_failure() {
        let mut s = MultiWeightSystem::new(4, 1);
        s.add_set([0], vec![1.0]).unwrap();
        let err = pareto_sweep(&s, 1, 1.0, &[vec![1.0]]).unwrap_err();
        assert!(matches!(err, MultiWeightError::Solve(_)));
    }

    #[test]
    fn sweep_with_observer_matches_plain_sweep() {
        let s = system();
        let lambdas = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.5, 0.5]];
        let plain = pareto_sweep(&s, 1, 0.5, &lambdas).unwrap();
        let mut profiler = crate::telemetry::SpanProfiler::new();
        let observed = pareto_sweep_with(&s, 1, 0.5, &lambdas, &mut profiler).unwrap();
        assert_eq!(plain, observed);
    }

    #[test]
    fn sweep_span_tree_shape() {
        let s = system();
        let lambdas = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let mut profiler = crate::telemetry::SpanProfiler::new();
        pareto_sweep_with(&s, 1, 0.5, &lambdas, &mut profiler).unwrap();
        assert_eq!(profiler.open_spans(), 0, "all spans must be closed");
        // The sweep is the run's only top-level span, so it becomes the root.
        let sweep = profiler.tree();
        assert_eq!(sweep.name, PHASE_SWEEP);
        assert_eq!(sweep.count, 1);
        assert_eq!(
            sweep.child(PHASE_SCALARIZE).map(|n| n.count),
            Some(lambdas.len() as u64)
        );
        assert_eq!(sweep.child(PHASE_FILTER).map(|n| n.count), Some(1));
        // The inner solver's "total" span nests under the sweep, once per λ.
        let total = sweep
            .child(crate::telemetry::PHASE_TOTAL)
            .expect("solver total span nests under sweep");
        assert_eq!(total.count, lambdas.len() as u64);
    }

    #[test]
    fn parallel_sweep_matches_serial_points_and_counters() {
        let s = system();
        let lambdas: Vec<Vec<f64>> = (0..8)
            .map(|i| vec![i as f64 / 7.0, 1.0 - i as f64 / 7.0])
            .collect();
        let mut serial_m = crate::telemetry::MetricsRecorder::new();
        let serial = pareto_sweep_with(&s, 1, 0.5, &lambdas, &mut serial_m).unwrap();
        let pool = ThreadPool::new(crate::parallel::Threads::new(4));
        let mut par_m = crate::telemetry::MetricsRecorder::new();
        let par = pareto_sweep_on(&s, 1, 0.5, &lambdas, &pool, &mut par_m).unwrap();
        assert_eq!(serial, par);
        assert_eq!(par_m.selections, serial_m.selections);
        assert_eq!(par_m.benefits_computed, serial_m.benefits_computed);
        assert_eq!(par_m.guesses, serial_m.guesses);
        for sp in serial_m.phases() {
            let pp = par_m.phases().iter().find(|p| p.name == sp.name).unwrap();
            assert_eq!(pp.count, sp.count, "phase {}", sp.name);
        }
    }

    #[test]
    fn parallel_sweep_propagates_error_like_serial() {
        let mut s = MultiWeightSystem::new(4, 1);
        s.add_set([0], vec![1.0]).unwrap();
        let pool = ThreadPool::new(crate::parallel::Threads::new(4));
        let mut profiler = crate::telemetry::SpanProfiler::new();
        let err =
            pareto_sweep_on(&s, 1, 1.0, &[vec![1.0], vec![2.0]], &pool, &mut profiler).unwrap_err();
        assert!(matches!(err, MultiWeightError::Solve(_)));
        assert_eq!(profiler.open_spans(), 0, "error paths must close spans");
    }

    #[test]
    fn sweep_span_closed_on_scalarize_error() {
        let s = system();
        let mut profiler = crate::telemetry::SpanProfiler::new();
        let err = pareto_sweep_with(&s, 1, 0.5, &[vec![1.0]], &mut profiler).unwrap_err();
        assert!(matches!(err, MultiWeightError::WrongArity { .. }));
        assert_eq!(profiler.open_spans(), 0, "error paths must close spans");
    }

    mod within {
        use super::*;
        use crate::engine::{Deadline, DegradeReason, SolveOutcome};
        use crate::parallel::Threads;
        use crate::telemetry::MetricsRecorder;

        fn lambdas() -> Vec<Vec<f64>> {
            (0..6)
                .map(|i| vec![i as f64 / 5.0, 1.0 - i as f64 / 5.0])
                .collect()
        }

        #[test]
        fn unbounded_deadline_matches_plain_sweep() {
            let s = system();
            let plain = pareto_sweep(&s, 1, 0.5, &lambdas()).unwrap();
            for threads in [1, 4] {
                let pool = ThreadPool::new(Threads::new(threads));
                let out = pareto_sweep_within(
                    &s,
                    1,
                    0.5,
                    &lambdas(),
                    &pool,
                    &Deadline::unbounded(),
                    &mut MetricsRecorder::new(),
                )
                .unwrap();
                assert_eq!(out.expect_complete("unbounded"), plain, "threads {threads}");
            }
        }

        #[test]
        fn tick_budget_degrades_with_progress_certificate() {
            let s = system();
            for budget in [0u64, 1, 3] {
                let run = |threads: usize| {
                    let pool = ThreadPool::new(Threads::new(threads));
                    let deadline = Deadline::unbounded().with_tick_budget(budget);
                    pareto_sweep_within(
                        &s,
                        1,
                        0.5,
                        &lambdas(),
                        &pool,
                        &deadline,
                        &mut MetricsRecorder::new(),
                    )
                    .unwrap()
                };
                let serial = run(1);
                assert_eq!(serial, run(4), "budget {budget}");
                let SolveOutcome::Degraded(d) = serial else {
                    panic!("budget {budget} cannot finish 6 lambdas");
                };
                assert_eq!(d.certificate.reason, DegradeReason::TickBudget);
                assert_eq!(d.certificate.target, 6);
                assert!(d.certificate.covered < 6);
                assert_eq!(d.certificate.sets_used, d.partial.len());
            }
        }

        #[test]
        fn solver_failure_propagates() {
            let mut s = MultiWeightSystem::new(4, 1);
            s.add_set([0], vec![1.0]).unwrap();
            let pool = ThreadPool::new(Threads::serial());
            let err = pareto_sweep_within(
                &s,
                1,
                1.0,
                &[vec![1.0]],
                &pool,
                &Deadline::unbounded(),
                &mut MetricsRecorder::new(),
            )
            .unwrap_err();
            assert!(matches!(err, MultiWeightError::Solve(_)));
        }
    }
}
