//! Shared mutable state for greedy cover algorithms.
//!
//! Both CMC (Fig. 1) and CWSC (Fig. 2) maintain, for every remaining
//! candidate set `s`, its marginal benefit `|MBen(s, S)|` — the number of
//! elements of `s` not yet covered by the partial solution `S` — and update
//! all of them after each selection (Fig. 1 lines 24–27, Fig. 2 lines
//! 12–15). [`CoverState`] implements those updates with an element→sets
//! incidence list so a selection costs `O(Σ_{e newly covered} |{s ∋ e}|)`
//! instead of a full rescan, which is observationally identical to the
//! pseudocode (same marginal benefits after every step, same drops of
//! zero-benefit sets).

use crate::bitset::BitSet;
use crate::cost::Cost;
use crate::set_system::{SetId, SetSystem};
use std::cmp::Ordering;

/// A candidate in a greedy arg-max: a set id with its *current* marginal
/// benefit and its cost. The free comparators below define the canonical
/// selection order shared by [`CoverState`]'s serial scans and the masked
/// parallel scans in `algorithms` — both must pick identical winners for
/// the `Threads(N) == Threads(1)` determinism contract to hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// Set id (ties break toward the lower id).
    pub id: SetId,
    /// Current marginal benefit `|MBen(s, S)|`.
    pub mben: usize,
    /// `Cost(s)`.
    pub cost: Cost,
}

/// Canonical benefit comparison: marginal benefit desc, cost asc, id asc.
/// Returns `Greater` when `a` should be preferred over `b`.
pub fn benefit_order(a: Candidate, b: Candidate) -> Ordering {
    a.mben
        .cmp(&b.mben)
        .then_with(|| b.cost.cmp(&a.cost))
        .then_with(|| b.id.cmp(&a.id))
}

/// Canonical gain comparison: gain desc, benefit desc, cost asc, id asc.
/// Returns `Greater` when `a` should be preferred over `b`.
///
/// Gains are compared by cross-multiplication (`m_a·c_b` vs `m_b·c_a`),
/// which is exact for integer benefits and avoids `0/0` and `x/0` pitfalls
/// of floating division.
pub fn gain_order(a: Candidate, b: Candidate) -> Ordering {
    let (ma, mb) = (a.mben as f64, b.mben as f64);
    (ma * b.cost.value())
        .total_cmp(&(mb * a.cost.value()))
        .then_with(|| benefit_order(a, b))
}

/// Inserts `cand` into `top`, kept best-first under `order` and capped at
/// `cap` entries. Because the canonical comparators are *total* orders
/// (id is the final tie-break), the resulting list is the unique sorted
/// top-`cap` prefix of whatever candidate set was pushed — independent of
/// push order, which is what makes audit runner-up lists identical across
/// serial scans and chunk-merged parallel scans.
pub fn push_top(
    top: &mut Vec<Candidate>,
    cand: Candidate,
    cap: usize,
    order: impl Fn(Candidate, Candidate) -> Ordering,
) {
    if cap == 0 {
        return;
    }
    let pos = top
        .iter()
        .position(|&b| order(cand, b) == Ordering::Greater)
        .unwrap_or(top.len());
    if pos >= cap {
        return;
    }
    top.insert(pos, cand);
    top.truncate(cap);
}

/// Mutable greedy state: covered elements plus exact marginal benefits.
pub struct CoverState<'a> {
    system: &'a SetSystem,
    covered: BitSet,
    covered_count: usize,
    mben: Vec<usize>,
    active: Vec<bool>,
    /// element id -> ids of sets containing it
    incidence: Vec<Vec<SetId>>,
}

impl<'a> CoverState<'a> {
    /// Initializes state with nothing covered; every set active with
    /// `|MBen(s, ∅)| = |Ben(s)|`.
    pub fn new(system: &'a SetSystem) -> Self {
        let n = system.num_elements();
        let mut incidence: Vec<Vec<SetId>> = vec![Vec::new(); n];
        let mut mben = Vec::with_capacity(system.num_sets());
        for (id, set) in system.iter() {
            mben.push(set.benefit());
            for &e in set.members() {
                incidence[e as usize].push(id);
            }
        }
        CoverState {
            system,
            covered: BitSet::new(n),
            covered_count: 0,
            mben,
            active: vec![true; system.num_sets()],
            incidence,
        }
    }

    /// The underlying set system.
    #[inline]
    pub fn system(&self) -> &'a SetSystem {
        self.system
    }

    /// Current `|MBen(s, S)|`.
    #[inline]
    pub fn marginal_benefit(&self, id: SetId) -> usize {
        self.mben[id as usize]
    }

    /// Current marginal gain `|MBen(s, S)| / Cost(s)`.
    ///
    /// Zero-cost sets have infinite gain when they still cover something;
    /// callers must use [`CoverState::gain_order`] for comparisons instead of comparing
    /// raw `f64`s.
    #[inline]
    pub fn marginal_gain(&self, id: SetId) -> f64 {
        let c = self.system.cost(id).value();
        if c == 0.0 {
            if self.mben[id as usize] > 0 {
                f64::INFINITY
            } else {
                0.0
            }
        } else {
            self.mben[id as usize] as f64 / c
        }
    }

    /// Whether the set is still a candidate (not selected, not dropped).
    #[inline]
    pub fn is_active(&self, id: SetId) -> bool {
        self.active[id as usize]
    }

    /// Removes a set from the candidate pool without selecting it.
    #[inline]
    pub fn deactivate(&mut self, id: SetId) {
        self.active[id as usize] = false;
    }

    /// Number of covered elements `|⋃ Ben(s)|`.
    #[inline]
    pub fn covered_count(&self) -> usize {
        self.covered_count
    }

    /// Whether a particular element is covered.
    #[inline]
    pub fn is_covered(&self, element: usize) -> bool {
        self.covered.contains(element)
    }

    /// Read-only view of the covered-element bitset.
    #[inline]
    pub fn covered(&self) -> &BitSet {
        &self.covered
    }

    /// Ids of still-active candidate sets.
    pub fn active_sets(&self) -> impl Iterator<Item = SetId> + '_ {
        self.active
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| i as SetId)
    }

    /// Selects `id` into the solution: marks its elements covered, updates
    /// every remaining set's marginal benefit, deactivates `id`, and
    /// returns how many new elements were covered.
    ///
    /// Sets whose marginal benefit drops to zero are deactivated, matching
    /// Fig. 1 lines 26–27 / Fig. 2 lines 14–15.
    pub fn select(&mut self, id: SetId) -> usize {
        debug_assert!(self.active[id as usize], "selecting an inactive set");
        self.active[id as usize] = false;
        let mut newly = 0usize;
        // Split borrows: we mutate covered/mben while reading the system.
        // `insert_hot`: member ids were validated against the universe by
        // the SetSystem builder, so the release-mode range assert in
        // `BitSet::insert` is pure overhead here (debug builds still check).
        for &e in self.system.members(id) {
            let e = e as usize;
            if self.covered.insert_hot(e) {
                newly += 1;
                for &s in &self.incidence[e] {
                    let m = &mut self.mben[s as usize];
                    *m -= 1;
                    if *m == 0 {
                        self.active[s as usize] = false;
                    }
                }
            }
        }
        self.covered_count += newly;
        newly
    }

    /// Argmax of marginal benefit over active sets satisfying `filter`,
    /// with canonical tie-breaking (higher benefit, then lower cost, then
    /// lower id). Returns `None` when no active set passes the filter or
    /// all passing sets have zero marginal benefit.
    pub fn argmax_benefit(&self, mut filter: impl FnMut(SetId) -> bool) -> Option<SetId> {
        let mut best: Option<SetId> = None;
        for id in 0..self.mben.len() as SetId {
            if !self.active[id as usize] || self.mben[id as usize] == 0 || !filter(id) {
                continue;
            }
            best = Some(match best {
                None => id,
                Some(b) => {
                    if self.benefit_order(id, b) == std::cmp::Ordering::Greater {
                        id
                    } else {
                        b
                    }
                }
            });
        }
        best
    }

    /// Argmax of marginal gain over active sets satisfying `filter`, with
    /// canonical tie-breaking (higher gain, then higher benefit, then lower
    /// cost, then lower id).
    pub fn argmax_gain(&self, mut filter: impl FnMut(SetId) -> bool) -> Option<SetId> {
        let mut best: Option<SetId> = None;
        for id in 0..self.mben.len() as SetId {
            if !self.active[id as usize] || self.mben[id as usize] == 0 || !filter(id) {
                continue;
            }
            best = Some(match best {
                None => id,
                Some(b) => {
                    if self.gain_order(id, b) == std::cmp::Ordering::Greater {
                        id
                    } else {
                        b
                    }
                }
            });
        }
        best
    }

    /// The best `cap` active candidates by marginal benefit (canonical
    /// order, best first). `top_benefit(cap, f)[0]` is exactly
    /// [`argmax_benefit`](CoverState::argmax_benefit)`(f)` — the extra
    /// entries are the audit ledger's runners-up.
    pub fn top_benefit(&self, cap: usize, mut filter: impl FnMut(SetId) -> bool) -> Vec<Candidate> {
        let mut top = Vec::with_capacity(cap);
        for id in 0..self.mben.len() as SetId {
            if !self.active[id as usize] || self.mben[id as usize] == 0 || !filter(id) {
                continue;
            }
            push_top(&mut top, self.candidate(id), cap, benefit_order);
        }
        top
    }

    /// The best `cap` active candidates by marginal gain (canonical order,
    /// best first); `top_gain(cap, f)[0]` equals
    /// [`argmax_gain`](CoverState::argmax_gain)`(f)`.
    pub fn top_gain(&self, cap: usize, mut filter: impl FnMut(SetId) -> bool) -> Vec<Candidate> {
        let mut top = Vec::with_capacity(cap);
        for id in 0..self.mben.len() as SetId {
            if !self.active[id as usize] || self.mben[id as usize] == 0 || !filter(id) {
                continue;
            }
            push_top(&mut top, self.candidate(id), cap, gain_order);
        }
        top
    }

    /// The elements `id` would newly cover if selected now — the elements
    /// the audit ledger prices when the set wins a round. Call *before*
    /// [`select`](CoverState::select); the list's length equals `select`'s
    /// return value.
    pub fn newly_elements(&self, id: SetId) -> Vec<u32> {
        // `contains_hot`: builder-validated ids, see `select`.
        self.system
            .members(id)
            .iter()
            .copied()
            .filter(|&e| !self.covered.contains_hot(e as usize))
            .collect()
    }

    /// This set as a [`Candidate`] under the current marginal benefits.
    #[inline]
    pub fn candidate(&self, id: SetId) -> Candidate {
        Candidate {
            id,
            mben: self.mben[id as usize],
            cost: self.system.cost(id),
        }
    }

    /// Canonical benefit comparison: marginal benefit desc, cost asc, id asc.
    /// Returns `Greater` when `a` should be preferred over `b`.
    pub fn benefit_order(&self, a: SetId, b: SetId) -> Ordering {
        benefit_order(self.candidate(a), self.candidate(b))
    }

    /// Canonical gain comparison: gain desc, benefit desc, cost asc, id asc.
    /// Returns `Greater` when `a` should be preferred over `b` (see the
    /// free [`gain_order`] for the cross-multiplication rationale).
    pub fn gain_order(&self, a: SetId, b: SetId) -> Ordering {
        gain_order(self.candidate(a), self.candidate(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set_system::SetSystem;

    fn system() -> SetSystem {
        let mut b = SetSystem::builder(6);
        b.add_set([0, 1, 2], 3.0) // set 0
            .add_set([2, 3], 1.0) // set 1
            .add_set([3, 4, 5], 6.0) // set 2
            .add_set([5], 0.0); // set 3: zero cost
        b.build().unwrap()
    }

    #[test]
    fn initial_state() {
        let sys = system();
        let st = CoverState::new(&sys);
        assert_eq!(st.covered_count(), 0);
        assert_eq!(st.marginal_benefit(0), 3);
        assert_eq!(st.marginal_benefit(1), 2);
        assert!(st.is_active(0));
        assert_eq!(st.active_sets().count(), 4);
    }

    #[test]
    fn select_updates_marginals() {
        let sys = system();
        let mut st = CoverState::new(&sys);
        let newly = st.select(0);
        assert_eq!(newly, 3);
        assert_eq!(st.covered_count(), 3);
        assert!(!st.is_active(0));
        assert_eq!(st.marginal_benefit(1), 1); // lost element 2
        assert_eq!(st.marginal_benefit(2), 3);
        assert!(st.is_covered(2));
        assert!(!st.is_covered(3));
    }

    #[test]
    fn zero_marginal_sets_get_dropped() {
        let sys = system();
        let mut st = CoverState::new(&sys);
        st.select(2); // covers 3,4,5 -> set 3 {5} drops to zero
        assert_eq!(st.marginal_benefit(3), 0);
        assert!(!st.is_active(3));
        assert_eq!(st.marginal_benefit(1), 1);
    }

    #[test]
    fn overlapping_selection_counts_only_new() {
        let sys = system();
        let mut st = CoverState::new(&sys);
        st.select(1); // covers 2,3
        let newly = st.select(0); // 0,1 new; 2 already covered
        assert_eq!(newly, 2);
        assert_eq!(st.covered_count(), 4);
    }

    #[test]
    fn argmax_benefit_prefers_cheaper_on_tie() {
        let mut b = SetSystem::builder(4);
        b.add_set([0, 1], 5.0).add_set([2, 3], 2.0);
        let sys = b.build().unwrap();
        let st = CoverState::new(&sys);
        assert_eq!(st.argmax_benefit(|_| true), Some(1));
    }

    #[test]
    fn argmax_benefit_prefers_lower_id_on_full_tie() {
        let mut b = SetSystem::builder(4);
        b.add_set([0, 1], 2.0).add_set([2, 3], 2.0);
        let sys = b.build().unwrap();
        let st = CoverState::new(&sys);
        assert_eq!(st.argmax_benefit(|_| true), Some(0));
    }

    #[test]
    fn argmax_respects_filter_and_activity() {
        let sys = system();
        let mut st = CoverState::new(&sys);
        assert_eq!(st.argmax_benefit(|id| id != 0), Some(2));
        st.deactivate(2);
        assert_eq!(st.argmax_benefit(|id| id != 0), Some(1));
    }

    #[test]
    fn argmax_gain_zero_cost_wins() {
        let sys = system();
        let st = CoverState::new(&sys);
        // set 3 has zero cost and nonzero benefit -> infinite gain
        assert_eq!(st.argmax_gain(|_| true), Some(3));
        assert_eq!(st.marginal_gain(3), f64::INFINITY);
    }

    #[test]
    fn argmax_gain_cross_multiplication() {
        let mut b = SetSystem::builder(10);
        // gains: 3/2 = 1.5 vs 5/4 = 1.25
        b.add_set([0, 1, 2], 2.0).add_set([3, 4, 5, 6, 7], 4.0);
        let sys = b.build().unwrap();
        let st = CoverState::new(&sys);
        assert_eq!(st.argmax_gain(|_| true), Some(0));
    }

    #[test]
    fn argmax_none_when_everything_covered() {
        let sys = system();
        let mut st = CoverState::new(&sys);
        st.select(0);
        st.select(2);
        // remaining set 1's elements {2,3} are all covered
        assert_eq!(st.argmax_benefit(|_| true), None);
        assert_eq!(st.argmax_gain(|_| true), None);
        assert_eq!(st.covered_count(), 6);
    }

    #[test]
    fn top_scans_agree_with_argmax_and_sort_canonically() {
        let sys = system();
        let mut st = CoverState::new(&sys);
        loop {
            let top_b = st.top_benefit(4, |_| true);
            assert_eq!(top_b.first().map(|c| c.id), st.argmax_benefit(|_| true));
            for w in top_b.windows(2) {
                assert_eq!(benefit_order(w[0], w[1]), Ordering::Greater);
            }
            let top_g = st.top_gain(4, |_| true);
            assert_eq!(top_g.first().map(|c| c.id), st.argmax_gain(|_| true));
            for w in top_g.windows(2) {
                assert_eq!(gain_order(w[0], w[1]), Ordering::Greater);
            }
            let Some(&win) = top_g.first() else { break };
            let newly = st.newly_elements(win.id);
            assert_eq!(newly.len(), win.mben, "recount equals fresh mben");
            assert_eq!(st.select(win.id), newly.len());
        }
        assert!(st.top_gain(4, |_| true).is_empty());
    }

    #[test]
    fn top_scans_respect_cap_and_filter() {
        let sys = system();
        let st = CoverState::new(&sys);
        assert_eq!(st.top_benefit(1, |_| true).len(), 1);
        assert_eq!(st.top_benefit(0, |_| true).len(), 0);
        let filtered = st.top_gain(4, |id| id != 3);
        assert!(filtered.iter().all(|c| c.id != 3));
    }

    /// Exhaustive permutation sweep: pushing equal-gain-ratio candidates
    /// in every possible order yields the identical top list, so the audit
    /// ledger's runner-up lists (and the margins/tie-break keys derived
    /// from them) cannot depend on candidate iteration order.
    #[test]
    fn push_top_is_permutation_invariant_on_equal_ratios() {
        fn permutations(mut items: Vec<Candidate>, k: usize, out: &mut Vec<Vec<Candidate>>) {
            if k <= 1 {
                out.push(items);
                return;
            }
            for i in 0..k {
                permutations(items.clone(), k - 1, out);
                if k.is_multiple_of(2) {
                    items.swap(i, k - 1);
                } else {
                    items.swap(0, k - 1);
                }
            }
        }
        let cand = |id: SetId, mben: usize, cost: f64| Candidate {
            id,
            mben,
            cost: Cost::new(cost).unwrap(),
        };
        // All five candidates share gain ratio 1.0; two pairs also tie on
        // benefit, exercising the cost and id tie-break levels.
        let cands = vec![
            cand(4, 2, 2.0),
            cand(1, 2, 2.0),
            cand(3, 4, 4.0),
            cand(0, 4, 4.0),
            cand(2, 1, 1.0),
        ];
        for &order in &[
            gain_order as fn(Candidate, Candidate) -> Ordering,
            benefit_order,
        ] {
            let mut reference = cands.clone();
            reference.sort_by(|&a, &b| order(b, a));
            reference.truncate(4);
            let mut perms = Vec::new();
            permutations(cands.clone(), cands.len(), &mut perms);
            assert_eq!(perms.len(), 120, "5! orderings");
            for perm in perms {
                let mut top = Vec::new();
                for c in perm {
                    push_top(&mut top, c, 4, order);
                }
                assert_eq!(top, reference, "order-independent top list");
            }
        }
    }

    #[test]
    fn push_top_merges_chunked_lists_like_one_scan() {
        // Folding per-chunk top lists through push_top reproduces the
        // single-scan list — the parallel masked_top merge contract.
        let cand = |id: SetId, mben: usize, cost: f64| Candidate {
            id,
            mben,
            cost: Cost::new(cost).unwrap(),
        };
        let all = vec![
            cand(0, 3, 1.0),
            cand(1, 3, 1.0),
            cand(2, 7, 9.0),
            cand(3, 1, 4.0),
            cand(4, 6, 2.0),
            cand(5, 3, 1.0),
        ];
        let mut whole = Vec::new();
        for &c in &all {
            push_top(&mut whole, c, 4, gain_order);
        }
        for split in 1..all.len() {
            let (lo, hi) = all.split_at(split);
            let mut a = Vec::new();
            for &c in lo {
                push_top(&mut a, c, 4, gain_order);
            }
            let mut b = Vec::new();
            for &c in hi {
                push_top(&mut b, c, 4, gain_order);
            }
            for c in b {
                push_top(&mut a, c, 4, gain_order);
            }
            assert_eq!(a, whole, "split at {split}");
        }
    }

    #[test]
    fn gain_tiebreak_prefers_bigger_benefit() {
        let mut b = SetSystem::builder(10);
        // equal gain 1.0: benefit 2/cost 2 vs benefit 4/cost 4
        b.add_set([0, 1], 2.0).add_set([2, 3, 4, 5], 4.0);
        let sys = b.build().unwrap();
        let st = CoverState::new(&sys);
        assert_eq!(st.argmax_gain(|_| true), Some(1));
    }
}
