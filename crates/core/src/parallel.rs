//! Hand-rolled scoped thread pool for deterministic parallel scans.
//!
//! The build environment has no registry access, so this module implements
//! the small slice of a work-stealing runtime the solvers actually need —
//! with `std::thread` only, no rayon:
//!
//! * [`Threads`] — thread-count configuration (env `SCWSC_THREADS`, CLI
//!   `--threads`, default = `available_parallelism`). `Threads(1)` is an
//!   *exact* serial fallback: every combinator runs the caller's closure
//!   inline on the current thread and never touches the pool.
//! * [`ThreadPool`] — `n − 1` persistent workers plus the calling thread.
//!   Work is submitted through [`Scope`]s that borrow from the caller's
//!   stack; the scope always joins before returning, which is what makes
//!   the lifetime-erasing submission sound.
//! * [`ThreadPool::par_map`] — map a slice to a `Vec` in input order.
//! * [`ThreadPool::par_chunks_reduce`] — split an index range into one
//!   contiguous chunk per thread, map each chunk, then fold the chunk
//!   results **in ascending chunk order** on the calling thread. A reduce
//!   of the form "replace only when strictly better" therefore picks the
//!   same winner as a left-to-right serial scan, for any thread count —
//!   the determinism contract the greedy arg-max selections rely on
//!   (DESIGN.md §11).
//!
//! Waiting threads *help*: while a scope has outstanding jobs, the waiter
//! pops and runs queued jobs instead of blocking. Nested scopes (a
//! speculative budget guess that itself fans out a benefit scan) therefore
//! cannot deadlock even on a single-worker pool.

use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::Duration;

/// Environment variable consulted by [`Threads::from_env`].
pub const THREADS_ENV: &str = "SCWSC_THREADS";

/// Environment variable consulted by [`prune_from_env`]: set `SCWSC_PRUNE=0`
/// to force every scan down the exact (unpruned) path. Any other value —
/// including unset — leaves the sketch-pruned scan enabled. The pruned and
/// exact paths select identical sets and emit identical exact counters by
/// construction (DESIGN.md §15); the switch exists for A/B gating in CI and
/// for perf debugging, not for correctness.
pub const PRUNE_ENV: &str = "SCWSC_PRUNE";

/// Whether the sketch-pruned scan path is enabled (default: yes; `0` or
/// `false` disables).
pub fn prune_from_env() -> bool {
    match std::env::var(PRUNE_ENV) {
        Ok(v) => {
            let v = v.trim();
            v != "0" && !v.eq_ignore_ascii_case("false")
        }
        Err(_) => true,
    }
}

/// How many OS threads a solver may use.
///
/// The value is always at least 1; `Threads::new(0)` is clamped to 1 so a
/// misconfigured environment degrades to serial instead of panicking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Threads(usize);

impl Threads {
    /// An explicit thread count (clamped to at least 1).
    pub fn new(n: usize) -> Self {
        Threads(n.max(1))
    }

    /// Exactly one thread: every parallel combinator runs inline.
    pub fn serial() -> Self {
        Threads(1)
    }

    /// One thread per available core (`std::thread::available_parallelism`),
    /// falling back to serial when the count cannot be determined.
    pub fn available() -> Self {
        Threads(
            thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// Reads `SCWSC_THREADS`; unset, empty, or unparsable values fall back
    /// to [`Threads::available`], `0` clamps to serial.
    pub fn from_env() -> Self {
        match std::env::var(THREADS_ENV) {
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(n) => Threads::new(n),
                Err(_) => Threads::available(),
            },
            Err(_) => Threads::available(),
        }
    }

    /// The configured thread count (≥ 1).
    #[inline]
    pub fn get(self) -> usize {
        self.0
    }

    /// True when the configuration requests the exact serial fallback.
    #[inline]
    pub fn is_serial(self) -> bool {
        self.0 == 1
    }
}

impl Default for Threads {
    /// Defaults to one thread per available core.
    fn default() -> Self {
        Threads::available()
    }
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Locks a mutex, recovering from poison instead of panicking.
///
/// Every mutex in this module guards either a job queue, a write-once
/// result slot, or a pending-job counter — state that stays consistent
/// even when a panicking job poisons the lock mid-update, because each
/// critical section is a single atomic-in-effect operation (push, pop,
/// slot write, counter bump). Treating poison as fatal would let one
/// panicking job cascade into secondary `PoisonError` panics in every
/// other worker and the submitting thread; recovering keeps the pool
/// usable and lets the scope re-raise (or the engine contain) only the
/// *original* panic.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    /// Signalled when a job is pushed or shutdown begins.
    work_available: Condvar,
    shutdown: AtomicBool,
}

impl PoolShared {
    fn try_pop(&self) -> Option<Job> {
        lock_unpoisoned(&self.queue).pop_front()
    }
}

/// A fixed-size pool of `threads − 1` worker threads plus the caller.
///
/// With `Threads(1)` no workers are spawned and every combinator runs the
/// closures inline, making the serial configuration bit-for-bit identical
/// to code that never heard of this module.
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    workers: Vec<thread::JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl ThreadPool {
    /// Builds a pool sized by `threads`. `Threads(1)` spawns no workers.
    pub fn new(threads: Threads) -> Self {
        let n = threads.get();
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            work_available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (1..n)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("scwsc-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ThreadPool {
            shared,
            workers,
            threads: n,
        }
    }

    /// Total executor count (workers + the calling thread).
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// True when the pool runs everything inline on the caller.
    #[inline]
    pub fn is_serial(&self) -> bool {
        self.threads == 1
    }

    /// Runs `f` with a [`Scope`] that may spawn borrowing jobs, then joins
    /// every spawned job before returning (helping to run queued jobs
    /// while waiting). Panics from jobs or from `f` itself are re-raised
    /// here, after the join — so borrowed data is never touched by a job
    /// that outlives its frame.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        let state = Arc::new(ScopeState {
            sync: Mutex::new(ScopeSync {
                pending: 0,
                panic: None,
            }),
            done: Condvar::new(),
        });
        let scope = Scope {
            pool: self,
            state: Arc::clone(&state),
            _env: std::marker::PhantomData,
        };
        // The user closure may panic after spawning; the join below must
        // still run, so catch and re-raise only once the scope is quiet.
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        self.wait_scope(&state);
        let job_panic = lock_unpoisoned(&state.sync).panic.take();
        match result {
            Ok(r) => {
                if let Some(payload) = job_panic {
                    resume_unwind(payload);
                }
                r
            }
            Err(payload) => resume_unwind(payload),
        }
    }

    /// Maps `items` to a `Vec` preserving input order.
    ///
    /// Serial pools (or trivially small inputs) run `f` inline left to
    /// right; parallel pools split the slice into one contiguous chunk per
    /// thread. Either way the output is `items.iter().map(f)` exactly.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        if self.is_serial() || items.len() <= 1 {
            return items.iter().map(f).collect();
        }
        let chunks = chunk_ranges(items.len(), self.threads);
        let slots: Vec<Mutex<Option<Vec<R>>>> = chunks.iter().map(|_| Mutex::new(None)).collect();
        self.scope(|s| {
            for (range, slot) in chunks.iter().cloned().zip(&slots) {
                let f = &f;
                s.spawn(move || {
                    let out: Vec<R> = items[range].iter().map(f).collect();
                    *lock_unpoisoned(slot) = Some(out);
                });
            }
        });
        let mut result = Vec::with_capacity(items.len());
        for slot in slots {
            let chunk = slot.into_inner().unwrap_or_else(PoisonError::into_inner);
            result.extend(chunk.expect("chunk completed"));
        }
        result
    }

    /// Splits `0..len` into one contiguous chunk per thread, maps every
    /// chunk with `map(chunk_index, range)`, and folds the `Some` results
    /// **in ascending chunk order** with `reduce` on the calling thread.
    ///
    /// The chunk index is dense (`0..chunks`), letting the mapper address
    /// per-chunk state such as a [`ThreadLocalTelemetry`](crate::telemetry::ThreadLocalTelemetry)
    /// shard without contention. The serial fallback is literally
    /// `map(0, 0..len)`: one chunk, no reduce calls. For the fold to be
    /// thread-count-invariant, `reduce` must satisfy "keep the left
    /// argument unless the right is strictly better under a total order
    /// consistent with ascending index" — the shape of every arg-max in
    /// this crate.
    pub fn par_chunks_reduce<A, M, R>(&self, len: usize, map: M, reduce: R) -> Option<A>
    where
        A: Send,
        M: Fn(usize, Range<usize>) -> Option<A> + Sync,
        R: Fn(A, A) -> A,
    {
        if len == 0 {
            return None;
        }
        if self.is_serial() || len == 1 {
            return map(0, 0..len);
        }
        let chunks = chunk_ranges(len, self.threads);
        let slots: Vec<Mutex<Option<Option<A>>>> =
            chunks.iter().map(|_| Mutex::new(None)).collect();
        self.scope(|s| {
            for (idx, (range, slot)) in chunks.iter().cloned().zip(&slots).enumerate() {
                let map = &map;
                s.spawn(move || {
                    let out = map(idx, range);
                    *lock_unpoisoned(slot) = Some(out);
                });
            }
        });
        let mut acc: Option<A> = None;
        for slot in slots {
            let slot = slot.into_inner().unwrap_or_else(PoisonError::into_inner);
            let chunk_result = slot.expect("chunk completed");
            acc = match (acc, chunk_result) {
                (Some(a), Some(b)) => Some(reduce(a, b)),
                (None, b) => b,
                (a, None) => a,
            };
        }
        acc
    }

    /// Pops-and-runs queued jobs until `state.pending == 0`.
    fn wait_scope(&self, state: &ScopeState) {
        loop {
            // Help: run queued work instead of blocking. The job may
            // belong to another (nested) scope; that is fine — every job
            // is self-contained and signals its own scope.
            if let Some(job) = self.shared.try_pop() {
                job();
                continue;
            }
            let guard = lock_unpoisoned(&state.sync);
            if guard.pending == 0 {
                return;
            }
            // Short timeout: a running job may queue new work that only
            // this thread can help with; re-poll rather than risk waiting
            // on a wakeup that races the queue check above.
            let (guard, _) = state
                .done
                .wait_timeout(guard, Duration::from_micros(200))
                .unwrap_or_else(PoisonError::into_inner);
            drop(guard);
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.work_available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut queue = lock_unpoisoned(&shared.queue);
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                queue = shared
                    .work_available
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        match job {
            Some(job) => job(),
            None => return,
        }
    }
}

struct ScopeSync {
    pending: usize,
    panic: Option<Box<dyn std::any::Any + Send + 'static>>,
}

struct ScopeState {
    sync: Mutex<ScopeSync>,
    done: Condvar,
}

/// Handle for spawning jobs that borrow from the enclosing stack frame.
///
/// Created by [`ThreadPool::scope`], which joins every spawned job before
/// returning — the invariant that makes the internal lifetime erasure
/// sound.
pub struct Scope<'pool, 'env> {
    pool: &'pool ThreadPool,
    state: Arc<ScopeState>,
    _env: std::marker::PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'_, 'env> {
    /// Queues `f` to run on the pool (or on any thread that helps while
    /// waiting). Panics inside `f` are captured and re-raised from
    /// [`ThreadPool::scope`] after all jobs join.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        lock_unpoisoned(&self.state.sync).pending += 1;
        let state = Arc::clone(&self.state);
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(f));
            let mut sync = lock_unpoisoned(&state.sync);
            if let Err(payload) = result {
                // First panic wins; later ones are dropped like rayon does.
                sync.panic.get_or_insert(payload);
            }
            sync.pending -= 1;
            if sync.pending == 0 {
                state.done.notify_all();
            }
        });
        // SAFETY: the job is queued only while the scope is alive, and
        // `ThreadPool::scope` unconditionally waits for `pending == 0`
        // before returning (even when the scope closure panics), so the
        // closure — and everything it borrows from `'env` — outlives every
        // execution of the job. Extending the lifetime to `'static` is
        // therefore never observable.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send + 'static>>(
                job,
            )
        };
        let shared = &self.pool.shared;
        lock_unpoisoned(&shared.queue).push_back(job);
        shared.work_available.notify_one();
    }

    /// The pool this scope submits to.
    #[inline]
    pub fn pool(&self) -> &ThreadPool {
        self.pool
    }
}

/// Cooperative cancellation flag shared by speculative tasks.
///
/// Cancellation is advisory: a task checks [`CancelToken::is_cancelled`]
/// at loop boundaries and abandons work early. Used by the speculative
/// budget-guess window in `algorithms::cmc_on`, where a guess is cancelled
/// only once a *smaller* budget has already succeeded — so cancelled work
/// is provably never needed for the result.
#[derive(Debug, Default)]
pub struct CancelToken(AtomicBool);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken(AtomicBool::new(false))
    }

    /// Requests cancellation; idempotent.
    #[inline]
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// True once [`CancelToken::cancel`] has been called.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Splits `0..len` into `parts` contiguous near-equal ranges (fewer when
/// `len < parts`; never an empty range).
fn chunk_ranges(len: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.max(1).min(len.max(1));
    let base = len / parts;
    let extra = len % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        if size == 0 {
            break;
        }
        ranges.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn threads_clamps_and_parses() {
        assert_eq!(Threads::new(0).get(), 1);
        assert_eq!(Threads::new(8).get(), 8);
        assert!(Threads::serial().is_serial());
        assert!(Threads::available().get() >= 1);
    }

    #[test]
    fn serial_pool_spawns_no_workers() {
        let pool = ThreadPool::new(Threads::serial());
        assert!(pool.is_serial());
        assert_eq!(pool.workers.len(), 0);
        assert_eq!(pool.par_map(&[1, 2, 3], |x| x * 2), vec![2, 4, 6]);
    }

    #[test]
    fn par_map_matches_serial_in_order() {
        let pool = ThreadPool::new(Threads::new(4));
        let items: Vec<usize> = (0..1000).collect();
        let expected: Vec<usize> = items.iter().map(|x| x * x).collect();
        assert_eq!(pool.par_map(&items, |x| x * x), expected);
    }

    #[test]
    fn par_map_empty_and_single() {
        let pool = ThreadPool::new(Threads::new(3));
        assert_eq!(pool.par_map(&[] as &[usize], |x| *x), Vec::<usize>::new());
        assert_eq!(pool.par_map(&[7usize], |x| *x + 1), vec![8]);
    }

    #[test]
    fn par_chunks_reduce_argmax_matches_serial_any_thread_count() {
        // Arg-max with "strictly greater replaces" must pick the same
        // (lowest-index on ties) winner for every thread count.
        let values = [3u64, 9, 1, 9, 9, 2, 0, 9];
        let argmax = |range: Range<usize>| -> Option<(usize, u64)> {
            range
                .map(|i| (i, values[i]))
                .fold(None, |best, cand| match best {
                    Some((_, bv)) if bv >= cand.1 => best,
                    _ => Some(cand),
                })
        };
        let reduce = |a: (usize, u64), b: (usize, u64)| if b.1 > a.1 { b } else { a };
        let serial = argmax(0..values.len());
        for n in [1usize, 2, 3, 4, 8, 16] {
            let pool = ThreadPool::new(Threads::new(n));
            let got = pool.par_chunks_reduce(values.len(), |_, r| argmax(r), reduce);
            assert_eq!(got, serial, "thread count {n}");
        }
        assert_eq!(serial, Some((1, 9)), "lowest index wins ties");
    }

    #[test]
    fn par_chunks_reduce_empty_is_none() {
        let pool = ThreadPool::new(Threads::new(4));
        let got: Option<usize> = pool.par_chunks_reduce(0, |_, _| Some(1), |a, _| a);
        assert_eq!(got, None);
    }

    #[test]
    fn par_chunks_reduce_chunk_indices_are_dense() {
        let pool = ThreadPool::new(Threads::new(4));
        let got = pool
            .par_chunks_reduce(
                100,
                |idx, range| Some(vec![(idx, range)]),
                |mut a, b| {
                    a.extend(b);
                    a
                },
            )
            .unwrap();
        assert!(got.len() <= 4);
        for (i, (idx, _)) in got.iter().enumerate() {
            assert_eq!(*idx, i, "chunk indices dense and in fold order");
        }
        let covered: usize = got.iter().map(|(_, r)| r.len()).sum();
        assert_eq!(covered, 100);
    }

    #[test]
    fn scope_joins_before_returning() {
        let pool = ThreadPool::new(Threads::new(4));
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..64 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        // A two-thread pool with jobs that themselves fan out: the outer
        // jobs must help run the inner jobs while waiting.
        let pool = ThreadPool::new(Threads::new(2));
        let counter = AtomicUsize::new(0);
        let inner_pool = &pool;
        pool.scope(|s| {
            for _ in 0..4 {
                let counter = &counter;
                s.spawn(move || {
                    inner_pool.scope(|inner| {
                        for _ in 0..8 {
                            inner.spawn(|| {
                                counter.fetch_add(1, Ordering::SeqCst);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn job_panic_propagates_after_join() {
        let pool = ThreadPool::new(Threads::new(4));
        let finished = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                for i in 0..8 {
                    let finished = &finished;
                    s.spawn(move || {
                        if i == 3 {
                            panic!("job exploded");
                        }
                        finished.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        }));
        assert!(result.is_err(), "panic must propagate to the scope caller");
        assert_eq!(
            finished.load(Ordering::SeqCst),
            7,
            "non-panicking jobs all ran to completion before the re-raise"
        );
    }

    #[test]
    fn lock_unpoisoned_recovers_poisoned_mutex() {
        let m = Mutex::new(5);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _guard = m.lock().unwrap();
            panic!("poison the lock");
        }));
        assert!(m.is_poisoned());
        assert_eq!(*lock_unpoisoned(&m), 5, "recovers the inner value");
    }

    #[test]
    fn pool_survives_repeated_job_panics() {
        // A panicking job must not cascade into secondary PoisonError
        // panics: after several panicked scopes the same pool still runs
        // ordinary work to completion.
        let pool = ThreadPool::new(Threads::new(4));
        for round in 0..3 {
            let result = catch_unwind(AssertUnwindSafe(|| {
                pool.scope(|s| {
                    for i in 0..8 {
                        s.spawn(move || {
                            if i % 2 == 0 {
                                panic!("round {round} job {i}");
                            }
                        });
                    }
                });
            }));
            assert!(result.is_err(), "original panic still re-raised");
        }
        let items: Vec<usize> = (0..100).collect();
        let expected: Vec<usize> = (1..=100).collect();
        assert_eq!(pool.par_map(&items, |x| x + 1), expected);
    }

    #[test]
    fn par_map_borrows_stack_data() {
        let pool = ThreadPool::new(Threads::new(4));
        let base = vec![10usize; 256];
        let items: Vec<usize> = (0..256).collect();
        let out = pool.par_map(&items, |&i| base[i] + i);
        assert!(out.iter().enumerate().all(|(i, &v)| v == 10 + i));
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for len in [0usize, 1, 2, 7, 64, 100] {
            for parts in [1usize, 2, 3, 8, 200] {
                let ranges = chunk_ranges(len, parts);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    assert!(!r.is_empty());
                    next = r.end;
                }
                assert_eq!(next, len);
                assert!(ranges.len() <= parts.max(1));
            }
        }
    }
}
