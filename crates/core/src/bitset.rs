//! Dense fixed-capacity bitset used to track covered elements.
//!
//! Coverage tracking is the hottest data structure in every greedy cover
//! algorithm in this crate: each selection updates the covered-element set
//! and each candidate evaluation counts how many of a set's elements are
//! still uncovered. A flat `Vec<u64>` with popcount gives both operations
//! in a handful of instructions per 64 elements.

use std::fmt;

const WORD_BITS: usize = 64;

/// A fixed-capacity set of `usize` ids in `0..len`, stored one bit per id.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    /// Number of addressable bits (ids are `0..len`).
    len: usize,
}

impl BitSet {
    /// Creates an empty bitset able to hold ids `0..len`.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0u64; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// Number of addressable bits (not the number of set bits).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitset has zero capacity.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`. Returns `true` if the bit was previously unset.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let word = &mut self.words[i / WORD_BITS];
        let mask = 1u64 << (i % WORD_BITS);
        let was_unset = *word & mask == 0;
        *word |= mask;
        was_unset
    }

    /// Clears bit `i`. Returns `true` if the bit was previously set.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let word = &mut self.words[i / WORD_BITS];
        let mask = 1u64 << (i % WORD_BITS);
        let was_set = *word & mask != 0;
        *word &= !mask;
        was_set
    }

    /// Returns whether bit `i` is set.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / WORD_BITS] & (1u64 << (i % WORD_BITS)) != 0
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Clears every bit, keeping capacity.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Sets every bit in `0..len`.
    pub fn fill(&mut self) {
        self.words.fill(!0u64);
        self.mask_tail();
    }

    /// Zeroes the bits beyond `len` in the last word so popcounts stay exact.
    fn mask_tail(&mut self) {
        let tail = self.len % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// `self |= other`.
    ///
    /// # Panics
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// `self &= other`.
    ///
    /// # Panics
    /// Panics if capacities differ.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// `self &= !other` (set difference).
    ///
    /// # Panics
    /// Panics if capacities differ.
    pub fn difference_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !*b;
        }
    }

    /// `|self ∩ other|` without materializing the intersection.
    ///
    /// # Panics
    /// Panics if capacities differ.
    pub fn intersection_count(&self, other: &BitSet) -> usize {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// `|self \ other|` without materializing the difference.
    ///
    /// The greedy hot loop previously cloned a bitset and applied
    /// [`BitSet::difference_with`] just to count the survivors; this fuses
    /// the subtraction and the popcount into one pass with no temporary
    /// allocation.
    ///
    /// # Panics
    /// Panics if capacities differ.
    pub fn difference_count(&self, other: &BitSet) -> usize {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & !b).count_ones() as usize)
            .sum()
    }

    /// Arg-max of `|self ∩ other|` over `others`: returns
    /// `(index, count)` of the candidate with the largest intersection,
    /// the **lowest index** winning ties, or `None` when `others` is
    /// empty. This is the fused form of the benefit scan's inner loop —
    /// one pass, no temporaries, same tie-breaking as the serial scan.
    ///
    /// # Panics
    /// Panics if any candidate's capacity differs from `self`'s.
    pub fn max_intersection_count<'a, I>(&self, others: I) -> Option<(usize, usize)>
    where
        I: IntoIterator<Item = &'a BitSet>,
    {
        let mut best: Option<(usize, usize)> = None;
        for (i, other) in others.into_iter().enumerate() {
            let count = self.intersection_count(other);
            match best {
                Some((_, bc)) if bc >= count => {}
                _ => best = Some((i, count)),
            }
        }
        best
    }

    /// Counts ids in `ids` whose bit is **not** set in `self`.
    ///
    /// This is the marginal-benefit primitive: with `self` = covered
    /// elements and `ids` = a set's element list, the result is
    /// `|MBen(s, S)|` from the paper.
    ///
    /// # Panics
    /// Panics if any id is out of range.
    pub fn count_unset<I>(&self, ids: I) -> usize
    where
        I: IntoIterator,
        I::Item: Into<usize>,
    {
        ids.into_iter()
            .map(Into::into)
            .filter(|&i| !self.contains(i))
            .count()
    }

    /// Iterates over set bit indices in increasing order.
    pub fn iter_ones(&self) -> Ones<'_> {
        Ones {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Returns the set bits as a sorted `Vec`.
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter_ones().collect()
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter_ones()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a bitset sized to the largest id + 1.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let ids: Vec<usize> = iter.into_iter().collect();
        let len = ids.iter().max().map_or(0, |m| m + 1);
        let mut set = BitSet::new(len);
        for i in ids {
            set.insert(i);
        }
        set
    }
}

/// Iterator over set bit indices of a [`BitSet`].
pub struct Ones<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // clear lowest set bit
        Some(self.word_idx * WORD_BITS + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_empty() {
        let b = BitSet::new(100);
        assert_eq!(b.len(), 100);
        assert_eq!(b.count_ones(), 0);
        assert!(!b.contains(0));
        assert!(!b.contains(99));
    }

    #[test]
    fn insert_remove_contains() {
        let mut b = BitSet::new(130);
        assert!(b.insert(0));
        assert!(b.insert(64));
        assert!(b.insert(129));
        assert!(!b.insert(64), "second insert reports already-set");
        assert!(b.contains(0) && b.contains(64) && b.contains(129));
        assert_eq!(b.count_ones(), 3);
        assert!(b.remove(64));
        assert!(!b.remove(64));
        assert!(!b.contains(64));
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let mut b = BitSet::new(10);
        b.insert(10);
    }

    #[test]
    fn fill_respects_len() {
        let mut b = BitSet::new(70);
        b.fill();
        assert_eq!(b.count_ones(), 70);
        b.clear();
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn fill_exact_word_boundary() {
        let mut b = BitSet::new(128);
        b.fill();
        assert_eq!(b.count_ones(), 128);
    }

    #[test]
    fn union_intersect_difference() {
        let mut a = BitSet::new(200);
        let mut b = BitSet::new(200);
        for i in [1usize, 5, 70, 150] {
            a.insert(i);
        }
        for i in [5usize, 70, 199] {
            b.insert(i);
        }
        assert_eq!(a.intersection_count(&b), 2);

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.to_vec(), vec![1, 5, 70, 150, 199]);

        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.to_vec(), vec![5, 70]);

        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.to_vec(), vec![1, 150]);
    }

    #[test]
    fn difference_count_matches_materialized_difference() {
        let mut a = BitSet::new(200);
        let mut b = BitSet::new(200);
        for i in [1usize, 5, 70, 150, 199] {
            a.insert(i);
        }
        for i in [5usize, 70, 64] {
            b.insert(i);
        }
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(a.difference_count(&b), d.count_ones());
        assert_eq!(a.difference_count(&b), 3);
        assert_eq!(b.difference_count(&a), 1);
        assert_eq!(a.difference_count(&a), 0);
    }

    #[test]
    fn max_intersection_count_prefers_lowest_index_on_ties() {
        let probe: BitSet = [1usize, 2, 3, 4, 64, 65].into_iter().collect();
        let mk = |ids: &[usize]| {
            let mut b = BitSet::new(probe.len());
            for &i in ids {
                b.insert(i);
            }
            b
        };
        let others = [
            mk(&[1, 9]),     // count 1
            mk(&[2, 3, 64]), // count 3 <- first maximum
            mk(&[1, 4, 65]), // count 3 (tie, higher index loses)
            mk(&[]),         // count 0
        ];
        assert_eq!(probe.max_intersection_count(&others), Some((1, 3)));
        assert_eq!(
            probe.max_intersection_count(std::iter::empty::<&BitSet>()),
            None
        );
        // Agrees with a serial scan over intersection_count.
        let serial = others
            .iter()
            .enumerate()
            .map(|(i, o)| (i, probe.intersection_count(o)))
            .fold(None, |best: Option<(usize, usize)>, cand| match best {
                Some((_, bc)) if bc >= cand.1 => best,
                _ => Some(cand),
            });
        assert_eq!(probe.max_intersection_count(&others), serial);
    }

    #[test]
    fn count_unset_is_marginal_benefit() {
        let mut covered = BitSet::new(10);
        covered.insert(2);
        covered.insert(4);
        let members: Vec<u32> = vec![1, 2, 3, 4, 5];
        assert_eq!(covered.count_unset(members.iter().map(|&x| x as usize)), 3);
    }

    #[test]
    fn iter_ones_order_and_boundaries() {
        let mut b = BitSet::new(300);
        let ids = [0usize, 63, 64, 127, 128, 255, 299];
        for &i in &ids {
            b.insert(i);
        }
        assert_eq!(b.to_vec(), ids.to_vec());
    }

    #[test]
    fn from_iter_sizes_to_max() {
        let b: BitSet = [3usize, 9, 1].into_iter().collect();
        assert_eq!(b.len(), 10);
        assert_eq!(b.to_vec(), vec![1, 3, 9]);
    }

    #[test]
    fn empty_capacity() {
        let b = BitSet::new(0);
        assert!(b.is_empty());
        assert_eq!(b.count_ones(), 0);
        assert_eq!(b.iter_ones().count(), 0);
    }

    #[test]
    fn debug_format_lists_members() {
        let b: BitSet = [2usize, 4].into_iter().collect();
        assert_eq!(format!("{b:?}"), "{2, 4}");
    }
}
