//! Dense fixed-capacity bitset used to track covered elements.
//!
//! Coverage tracking is the hottest data structure in every greedy cover
//! algorithm in this crate: each selection updates the covered-element set
//! and each candidate evaluation counts how many of a set's elements are
//! still uncovered. A flat `Vec<u64>` with popcount gives both operations
//! in a handful of instructions per 64 elements.

use std::fmt;

const WORD_BITS: usize = 64;

/// Words per block in the blocked popcount kernels: 8 × 64 bits = 512 bits,
/// one cache line on x86-64. Block granularity is what [`BlockSummary`]
/// summarises and what the `_limited` kernels use as their early-exit
/// checkpoint.
const BLOCK_WORDS: usize = 8;

/// Fused word-pair popcount: `Σ popcount(f(a[i], b[i]))`, 4-wide unrolled
/// with independent accumulators so the compiler can autovectorize the
/// `f` + popcount chain without `std::simd`.
#[inline]
fn count_words<F: Fn(u64, u64) -> u64>(a: &[u64], b: &[u64], f: F) -> usize {
    debug_assert_eq!(a.len(), b.len());
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    let (mut c0, mut c1, mut c2, mut c3) = (0usize, 0usize, 0usize, 0usize);
    for (wa, wb) in (&mut ca).zip(&mut cb) {
        c0 += f(wa[0], wb[0]).count_ones() as usize;
        c1 += f(wa[1], wb[1]).count_ones() as usize;
        c2 += f(wa[2], wb[2]).count_ones() as usize;
        c3 += f(wa[3], wb[3]).count_ones() as usize;
    }
    let mut rest = 0usize;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        rest += f(*x, *y).count_ones() as usize;
    }
    c0 + c1 + c2 + c3 + rest
}

/// A fixed-capacity set of `usize` ids in `0..len`, stored one bit per id.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    /// Number of addressable bits (ids are `0..len`).
    len: usize,
}

impl BitSet {
    /// Creates an empty bitset able to hold ids `0..len`.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0u64; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// Number of addressable bits (not the number of set bits).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitset has zero capacity.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`. Returns `true` if the bit was previously unset.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let word = &mut self.words[i / WORD_BITS];
        let mask = 1u64 << (i % WORD_BITS);
        let was_unset = *word & mask == 0;
        *word |= mask;
        was_unset
    }

    /// Clears bit `i`. Returns `true` if the bit was previously set.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let word = &mut self.words[i / WORD_BITS];
        let mask = 1u64 << (i % WORD_BITS);
        let was_set = *word & mask != 0;
        *word &= !mask;
        was_set
    }

    /// Returns whether bit `i` is set.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / WORD_BITS] & (1u64 << (i % WORD_BITS)) != 0
    }

    /// [`contains`](BitSet::contains) minus the release-mode range assert,
    /// for hot scan loops whose ids were validated against the universe
    /// once up front. Debug builds still panic on out-of-range ids; the
    /// public `contains`/`insert` keep their unconditional panicking
    /// contract.
    #[inline]
    pub(crate) fn contains_hot(&self, i: usize) -> bool {
        debug_assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 != 0
    }

    /// [`insert`](BitSet::insert) minus the release-mode range assert —
    /// same contract as [`contains_hot`](BitSet::contains_hot).
    #[inline]
    pub(crate) fn insert_hot(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let word = &mut self.words[i / WORD_BITS];
        let mask = 1u64 << (i % WORD_BITS);
        let was_unset = *word & mask == 0;
        *word |= mask;
        was_unset
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Clears every bit, keeping capacity.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Sets every bit in `0..len`.
    pub fn fill(&mut self) {
        self.words.fill(!0u64);
        self.mask_tail();
    }

    /// Zeroes the bits beyond `len` in the last word so popcounts stay exact.
    fn mask_tail(&mut self) {
        let tail = self.len % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// `self |= other`.
    ///
    /// # Panics
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// `self &= other`.
    ///
    /// # Panics
    /// Panics if capacities differ.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// `self &= !other` (set difference).
    ///
    /// # Panics
    /// Panics if capacities differ.
    pub fn difference_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !*b;
        }
    }

    /// `|self ∩ other|` without materializing the intersection.
    ///
    /// # Panics
    /// Panics if capacities differ.
    pub fn intersection_count(&self, other: &BitSet) -> usize {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        count_words(&self.words, &other.words, |a, b| a & b)
    }

    /// `|self \ other|` without materializing the difference.
    ///
    /// The greedy hot loop previously cloned a bitset and applied
    /// [`BitSet::difference_with`] just to count the survivors; this fuses
    /// the subtraction and the popcount into one pass with no temporary
    /// allocation.
    ///
    /// # Panics
    /// Panics if capacities differ.
    pub fn difference_count(&self, other: &BitSet) -> usize {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        count_words(&self.words, &other.words, |a, b| a & !b)
    }

    /// `|self \ other|` with an early-exit threshold: aborts block by
    /// block as soon as the running count plus `summary`'s remaining
    /// set-bit suffix proves the result is `< threshold`.
    ///
    /// `summary` must be [`BlockSummary::of`] **this** bitset (the
    /// left-hand side): since `|self \ other|` over any word range is at
    /// most `self`'s set bits in that range, the suffix is a valid upper
    /// bound on the remaining contribution. Empty `self` blocks are
    /// skipped outright and trailing empty blocks end the scan, so the
    /// full-scan case is never slower than [`difference_count`].
    ///
    /// A `threshold` of 0 disables the exit and always returns
    /// [`LimitedCount::Exact`].
    ///
    /// # Panics
    /// Panics if capacities differ.
    pub fn difference_count_limited(
        &self,
        other: &BitSet,
        summary: &BlockSummary,
        threshold: usize,
    ) -> LimitedCount {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        self.count_limited(other, summary, threshold, |a, b| a & !b)
    }

    /// `|self ∩ other|` with an early-exit threshold; the limited
    /// counterpart of [`intersection_count`](BitSet::intersection_count).
    /// `summary` must describe **this** bitset — see
    /// [`difference_count_limited`](BitSet::difference_count_limited).
    ///
    /// # Panics
    /// Panics if capacities differ.
    pub fn intersection_count_limited(
        &self,
        other: &BitSet,
        summary: &BlockSummary,
        threshold: usize,
    ) -> LimitedCount {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        self.count_limited(other, summary, threshold, |a, b| a & b)
    }

    /// Shared blocked early-exit kernel behind the `_limited` variants.
    /// `f(a, b)` must satisfy `popcount(f(a, b)) <= popcount(a)` for the
    /// suffix bound to be valid (`a & b` and `a & !b` both do).
    fn count_limited<F: Fn(u64, u64) -> u64 + Copy>(
        &self,
        other: &BitSet,
        summary: &BlockSummary,
        threshold: usize,
        f: F,
    ) -> LimitedCount {
        debug_assert_eq!(
            summary.counts.len(),
            self.words.len().div_ceil(BLOCK_WORDS),
            "summary does not describe this bitset"
        );
        let mut count = 0usize;
        let pairs = self
            .words
            .chunks(BLOCK_WORDS)
            .zip(other.words.chunks(BLOCK_WORDS));
        for (j, (wa, wb)) in pairs.enumerate() {
            if summary.block_count(j) != 0 {
                count += count_words(wa, wb, f);
            }
            let remaining = summary.after(j);
            if remaining == 0 {
                return LimitedCount::Exact(count);
            }
            if count + remaining < threshold {
                // The caller only learns "provably short", so resolve
                // zero-vs-nonzero exactly: the first surviving word ends
                // the probe.
                let from = (j + 1) * BLOCK_WORDS;
                let nonzero = count > 0
                    || self.words[from..]
                        .iter()
                        .zip(&other.words[from..])
                        .any(|(a, b)| f(*a, *b) != 0);
                return LimitedCount::Short { nonzero };
            }
        }
        LimitedCount::Exact(count)
    }

    /// Read-only view of the backing words (bit `i` lives at
    /// `words()[i / 64] >> (i % 64) & 1`). Bits beyond
    /// [`len`](BitSet::len) in the last word are always zero.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Arg-max of `|self ∩ other|` over `others`: returns
    /// `(index, count)` of the candidate with the largest intersection,
    /// the **lowest index** winning ties, or `None` when `others` is
    /// empty. This is the fused form of the benefit scan's inner loop —
    /// one pass, no temporaries, same tie-breaking as the serial scan.
    ///
    /// # Panics
    /// Panics if any candidate's capacity differs from `self`'s.
    pub fn max_intersection_count<'a, I>(&self, others: I) -> Option<(usize, usize)>
    where
        I: IntoIterator<Item = &'a BitSet>,
    {
        // One summary of the probe serves every candidate: each candidate
        // count runs limited at `best + 1`, so a candidate that provably
        // cannot exceed the champion aborts early. `Short` means
        // `count <= best`, which the exact scan would have discarded too
        // (lowest index keeps winning ties), so results are identical.
        let summary = BlockSummary::of(self);
        let mut best: Option<(usize, usize)> = None;
        for (i, other) in others.into_iter().enumerate() {
            let threshold = best.map_or(0, |(_, bc)| bc + 1);
            match self.intersection_count_limited(other, &summary, threshold) {
                LimitedCount::Exact(count) => match best {
                    Some((_, bc)) if bc >= count => {}
                    _ => best = Some((i, count)),
                },
                LimitedCount::Short { .. } => {}
            }
        }
        best
    }

    /// Counts ids in `ids` whose bit is **not** set in `self`.
    ///
    /// This is the marginal-benefit primitive: with `self` = covered
    /// elements and `ids` = a set's element list, the result is
    /// `|MBen(s, S)|` from the paper.
    ///
    /// # Panics
    /// Panics if any id is out of range.
    pub fn count_unset<I>(&self, ids: I) -> usize
    where
        I: IntoIterator,
        I::Item: Into<usize>,
    {
        ids.into_iter()
            .map(Into::into)
            .filter(|&i| !self.contains(i))
            .count()
    }

    /// Iterates over set bit indices in increasing order.
    pub fn iter_ones(&self) -> Ones<'_> {
        Ones {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Returns the set bits as a sorted `Vec`.
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter_ones().collect()
    }
}

/// Per-block set-bit summary of one [`BitSet`]: the coarse "sketch" the
/// pruned scan consults before (or instead of) an exact masked count.
///
/// `counts[j]` is the popcount of block `j` ([`BLOCK_WORDS`] words);
/// `suffix[j]` is the popcount of blocks `j..`. Both are upper bounds on
/// any masked count restricted to those blocks, which is what makes the
/// `_limited` kernels' early exit sound.
#[derive(Clone, Debug, Default)]
pub struct BlockSummary {
    counts: Vec<u32>,
    /// `suffix.len() == counts.len() + 1`; the extra trailing 0 lets the
    /// kernels ask "bits after block j" without a branch.
    suffix: Vec<u32>,
}

impl BlockSummary {
    /// Builds the summary of `set`'s current contents.
    pub fn of(set: &BitSet) -> BlockSummary {
        let mut s = BlockSummary::default();
        s.rebuild(set);
        s
    }

    /// Recomputes the summary in place (capacity may differ from the
    /// previous build).
    pub fn rebuild(&mut self, set: &BitSet) {
        let blocks = set.words.len().div_ceil(BLOCK_WORDS);
        self.counts.clear();
        self.counts.reserve(blocks);
        for block in set.words.chunks(BLOCK_WORDS) {
            self.counts.push(block.iter().map(|w| w.count_ones()).sum());
        }
        self.suffix.clear();
        self.suffix.resize(blocks + 1, 0);
        for j in (0..blocks).rev() {
            self.suffix[j] = self.suffix[j + 1] + self.counts[j];
        }
    }

    /// Total set bits of the summarized set (at build time).
    #[inline]
    pub fn total(&self) -> usize {
        self.suffix.first().copied().unwrap_or(0) as usize
    }

    /// Set bits strictly after block `j`.
    #[inline]
    fn after(&self, j: usize) -> usize {
        self.suffix[j + 1] as usize
    }

    /// Set bits inside block `j`.
    #[inline]
    fn block_count(&self, j: usize) -> usize {
        self.counts[j] as usize
    }
}

/// Outcome of a `_limited` masked count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LimitedCount {
    /// The kernel ran to completion (or hit a provably-empty suffix);
    /// this is the exact count.
    Exact(usize),
    /// The kernel aborted early: the count is provably below the
    /// threshold. `nonzero` reports — exactly — whether the full count
    /// is at least 1, so callers can distinguish "worthless now" from
    /// "exhausted" without a second pass.
    Short {
        /// Whether the aborted count would have been `>= 1`.
        nonzero: bool,
    },
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter_ones()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a bitset sized to the largest id + 1.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let ids: Vec<usize> = iter.into_iter().collect();
        let len = ids.iter().max().map_or(0, |m| m + 1);
        let mut set = BitSet::new(len);
        for i in ids {
            set.insert(i);
        }
        set
    }
}

/// Iterator over set bit indices of a [`BitSet`].
pub struct Ones<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // clear lowest set bit
        Some(self.word_idx * WORD_BITS + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_empty() {
        let b = BitSet::new(100);
        assert_eq!(b.len(), 100);
        assert_eq!(b.count_ones(), 0);
        assert!(!b.contains(0));
        assert!(!b.contains(99));
    }

    #[test]
    fn insert_remove_contains() {
        let mut b = BitSet::new(130);
        assert!(b.insert(0));
        assert!(b.insert(64));
        assert!(b.insert(129));
        assert!(!b.insert(64), "second insert reports already-set");
        assert!(b.contains(0) && b.contains(64) && b.contains(129));
        assert_eq!(b.count_ones(), 3);
        assert!(b.remove(64));
        assert!(!b.remove(64));
        assert!(!b.contains(64));
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let mut b = BitSet::new(10);
        b.insert(10);
    }

    #[test]
    fn fill_respects_len() {
        let mut b = BitSet::new(70);
        b.fill();
        assert_eq!(b.count_ones(), 70);
        b.clear();
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn fill_exact_word_boundary() {
        let mut b = BitSet::new(128);
        b.fill();
        assert_eq!(b.count_ones(), 128);
    }

    #[test]
    fn union_intersect_difference() {
        let mut a = BitSet::new(200);
        let mut b = BitSet::new(200);
        for i in [1usize, 5, 70, 150] {
            a.insert(i);
        }
        for i in [5usize, 70, 199] {
            b.insert(i);
        }
        assert_eq!(a.intersection_count(&b), 2);

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.to_vec(), vec![1, 5, 70, 150, 199]);

        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.to_vec(), vec![5, 70]);

        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.to_vec(), vec![1, 150]);
    }

    #[test]
    fn difference_count_matches_materialized_difference() {
        let mut a = BitSet::new(200);
        let mut b = BitSet::new(200);
        for i in [1usize, 5, 70, 150, 199] {
            a.insert(i);
        }
        for i in [5usize, 70, 64] {
            b.insert(i);
        }
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(a.difference_count(&b), d.count_ones());
        assert_eq!(a.difference_count(&b), 3);
        assert_eq!(b.difference_count(&a), 1);
        assert_eq!(a.difference_count(&a), 0);
    }

    #[test]
    fn max_intersection_count_prefers_lowest_index_on_ties() {
        let probe: BitSet = [1usize, 2, 3, 4, 64, 65].into_iter().collect();
        let mk = |ids: &[usize]| {
            let mut b = BitSet::new(probe.len());
            for &i in ids {
                b.insert(i);
            }
            b
        };
        let others = [
            mk(&[1, 9]),     // count 1
            mk(&[2, 3, 64]), // count 3 <- first maximum
            mk(&[1, 4, 65]), // count 3 (tie, higher index loses)
            mk(&[]),         // count 0
        ];
        assert_eq!(probe.max_intersection_count(&others), Some((1, 3)));
        assert_eq!(
            probe.max_intersection_count(std::iter::empty::<&BitSet>()),
            None
        );
        // Agrees with a serial scan over intersection_count.
        let serial = others
            .iter()
            .enumerate()
            .map(|(i, o)| (i, probe.intersection_count(o)))
            .fold(None, |best: Option<(usize, usize)>, cand| match best {
                Some((_, bc)) if bc >= cand.1 => best,
                _ => Some(cand),
            });
        assert_eq!(probe.max_intersection_count(&others), serial);
    }

    #[test]
    fn count_unset_is_marginal_benefit() {
        let mut covered = BitSet::new(10);
        covered.insert(2);
        covered.insert(4);
        let members: Vec<u32> = vec![1, 2, 3, 4, 5];
        assert_eq!(covered.count_unset(members.iter().map(|&x| x as usize)), 3);
    }

    #[test]
    fn iter_ones_order_and_boundaries() {
        let mut b = BitSet::new(300);
        let ids = [0usize, 63, 64, 127, 128, 255, 299];
        for &i in &ids {
            b.insert(i);
        }
        assert_eq!(b.to_vec(), ids.to_vec());
    }

    #[test]
    fn from_iter_sizes_to_max() {
        let b: BitSet = [3usize, 9, 1].into_iter().collect();
        assert_eq!(b.len(), 10);
        assert_eq!(b.to_vec(), vec![1, 3, 9]);
    }

    #[test]
    fn empty_capacity() {
        let b = BitSet::new(0);
        assert!(b.is_empty());
        assert_eq!(b.count_ones(), 0);
        assert_eq!(b.iter_ones().count(), 0);
    }

    #[test]
    fn debug_format_lists_members() {
        let b: BitSet = [2usize, 4].into_iter().collect();
        assert_eq!(format!("{b:?}"), "{2, 4}");
    }

    /// Deterministic pseudo-random bitset (splitmix-style) for kernel
    /// cross-checks without an RNG dependency.
    fn scrambled(len: usize, mut seed: u64, keep_one_in: u64) -> BitSet {
        let mut b = BitSet::new(len);
        for i in 0..len {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if (seed >> 33).is_multiple_of(keep_one_in) {
                b.insert(i);
            }
        }
        b
    }

    fn naive_diff(a: &BitSet, b: &BitSet) -> usize {
        a.iter_ones().filter(|&i| !b.contains(i)).count()
    }

    #[test]
    fn blocked_kernels_match_naive_counts() {
        for &len in &[1usize, 63, 64, 65, 255, 256, 512, 513, 4001] {
            for seed in 0..3u64 {
                let a = scrambled(len, seed + 1, 3);
                let b = scrambled(len, seed + 77, 2);
                assert_eq!(a.difference_count(&b), naive_diff(&a, &b));
                assert_eq!(
                    a.intersection_count(&b),
                    a.iter_ones().filter(|&i| b.contains(i)).count()
                );
            }
        }
    }

    #[test]
    fn limited_count_exact_when_threshold_not_binding() {
        let a = scrambled(4001, 5, 3);
        let b = scrambled(4001, 9, 2);
        let summary = BlockSummary::of(&a);
        let exact = a.difference_count(&b);
        // Threshold 0 disables the exit; threshold == exact is reachable.
        assert_eq!(
            a.difference_count_limited(&b, &summary, 0),
            LimitedCount::Exact(exact)
        );
        assert_eq!(
            a.difference_count_limited(&b, &summary, exact),
            LimitedCount::Exact(exact)
        );
        assert_eq!(
            a.intersection_count_limited(&b, &summary, 0),
            LimitedCount::Exact(a.intersection_count(&b))
        );
    }

    #[test]
    fn limited_count_short_is_sound_and_reports_nonzero() {
        let a = scrambled(4001, 13, 4);
        let b = scrambled(4001, 21, 2);
        let summary = BlockSummary::of(&a);
        let exact = a.difference_count(&b);
        assert!(exact > 0, "fixture must have survivors");
        match a.difference_count_limited(&b, &summary, usize::MAX) {
            LimitedCount::Short { nonzero } => assert!(nonzero),
            LimitedCount::Exact(_) => panic!("unreachable threshold must abort"),
        }
        // Every threshold must either return the exact count or a sound
        // "short" verdict (exact < threshold).
        for threshold in [1, exact / 2, exact, exact + 1, exact * 2 + 1] {
            match a.difference_count_limited(&b, &summary, threshold) {
                LimitedCount::Exact(n) => assert_eq!(n, exact),
                LimitedCount::Short { nonzero } => {
                    assert!(exact < threshold);
                    assert_eq!(nonzero, exact > 0);
                }
            }
        }
    }

    #[test]
    fn limited_count_nonzero_false_only_when_empty_difference() {
        let a = scrambled(1000, 3, 3);
        let mut b = a.clone();
        b.fill();
        let summary = BlockSummary::of(&a);
        match a.difference_count_limited(&b, &summary, usize::MAX) {
            // a \ full = empty; an unreachable threshold may abort or
            // finish at 0 depending on block layout.
            LimitedCount::Short { nonzero } => assert!(!nonzero),
            LimitedCount::Exact(n) => assert_eq!(n, 0),
        }
    }

    #[test]
    fn block_summary_totals_and_rebuild() {
        let a = scrambled(4001, 31, 3);
        let mut s = BlockSummary::of(&a);
        assert_eq!(s.total(), a.count_ones());
        let smaller = scrambled(100, 7, 2);
        s.rebuild(&smaller);
        assert_eq!(s.total(), smaller.count_ones());
    }

    #[test]
    fn max_intersection_count_matches_serial_on_random_sets() {
        let probe = scrambled(2000, 1, 3);
        let others: Vec<BitSet> = (0..40).map(|i| scrambled(2000, i + 50, 4)).collect();
        let serial = others
            .iter()
            .enumerate()
            .map(|(i, o)| (i, probe.intersection_count(o)))
            .fold(None, |best: Option<(usize, usize)>, cand| match best {
                Some((_, bc)) if bc >= cand.1 => best,
                _ => Some(cand),
            });
        assert_eq!(probe.max_intersection_count(&others), serial);
    }

    #[test]
    fn words_view_exposes_tail_invariant() {
        let mut b = BitSet::new(70);
        b.fill();
        assert_eq!(b.words().len(), 2);
        assert_eq!(b.words()[1], (1u64 << 6) - 1, "tail bits stay zero");
    }

    #[test]
    fn hot_accessors_agree_with_checked_ones() {
        let mut b = scrambled(300, 2, 3);
        for i in 0..300 {
            assert_eq!(b.contains_hot(i), b.contains(i));
        }
        b.remove(7);
        assert!(b.insert_hot(7), "hot insert reports previously-unset");
        assert!(!b.insert_hot(7), "hot insert reports already-set");
        assert!(b.contains(7));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "out of range")]
    fn hot_contains_panics_out_of_range_in_debug() {
        let b = BitSet::new(10);
        b.contains_hot(10);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "out of range")]
    fn hot_insert_panics_out_of_range_in_debug() {
        let mut b = BitSet::new(10);
        b.insert_hot(10);
    }
}
