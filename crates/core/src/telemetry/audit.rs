//! Decision audit ledger and a-posteriori quality certification.
//!
//! The rest of the telemetry stack answers *where time went*; this module
//! answers *why the solver chose what it chose* and *how good the answer
//! provably is*:
//!
//! * [`DecisionLedger`] — an [`Observer`] that records, for every greedy
//!   selection round, the winner plus its top runners-up (with the
//!   canonical tie-break key and the winning margin), the per-element
//!   **price charging** of the winner's weight across its newly covered
//!   elements, and every degrade decision. The ledger is built purely from
//!   the replayed event stream, so `Threads(N)` produces a ledger
//!   bit-identical to `Threads(1)` (same record-then-replay contract as
//!   every other observer — DESIGN.md §11/§14).
//! * [`certify`] — turns the final price vector into an instance-specific
//!   **lower bound** on the optimal cost via dual-feasible scaling
//!   (Prolubnikov's a-posteriori accuracy estimate, PAPERS.md), so a solve
//!   reports a *certified* ratio `cost/LB` next to the paper's worst-case
//!   guarantee.
//!
//! # Certificate math (DESIGN.md §14)
//!
//! When greedy picks set `S` covering `newly` fresh elements, each of them
//! is charged the uniform price `y_e = c(S)/|newly|`; the total charge per
//! round is exactly `c(S)`, so `Σ y_e` over all priced elements equals the
//! greedy cost. Let `y''_e = y_e`, except elements belonging to any
//! zero-cost set are re-priced to 0 (a zero-cost set's dual constraint
//! admits no positive slack). With
//!
//! ```text
//! α = max over sets S with c(S) > 0 of  Σ_{e ∈ S} y''_e / c(S)
//! ```
//!
//! the scaled vector `y''/α` is dual-feasible: every set's price sum is at
//! most its cost. Any solution `T` covering at least `target` elements
//! covers at least `m = target − (n − C)` of the `C` greedy-priced
//! elements (it can pick up at most `n − C` elements elsewhere), and
//!
//! ```text
//! c(T) ≥ Σ_{S ∈ T} Σ_{e ∈ S priced} y''_e/α ≥ Σ_{e covered ∧ priced} y''_e/α
//!      ≥ (sum of the m smallest scaled prices) = LB
//! ```
//!
//! so `LB ≤ optimal cost`. A size constraint `k` only shrinks the feasible
//! region, so the bound holds for the size-constrained optimum too. At full
//! coverage (`C = target = n`) this degenerates to `Σ y''_e / α`.

use super::{json_f64, Observer};
use crate::bitset::BitSet;
use crate::cover_state::{Candidate, CoverState};
use crate::set_system::{SetId, SetSystem};
use std::fmt::Write as _;
use std::io;

/// How many runners-up each selection round records next to its winner.
pub const RUNNERS_UP: usize = 3;

/// Length of the candidate lists fed to [`record_cover_round`]: the winner
/// plus [`RUNNERS_UP`] runners-up.
pub const TOP: usize = RUNNERS_UP + 1;

/// `order` value of rounds decided by marginal benefit (CMC-family).
pub const ORDER_BENEFIT: &str = "benefit";

/// `order` value of rounds decided by marginal gain = benefit/weight
/// (CWSC-family and the gain baselines).
pub const ORDER_GAIN: &str = "gain";

/// A candidate as observed at a selection round: solver-assigned id, the
/// marginal benefit at decision time, and the set's weight (cost).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuditCandidate {
    /// Set id (core solvers) or pattern id (lattice solvers).
    pub id: u64,
    /// Marginal benefit at decision time. Heap-based solvers report the
    /// stored (possibly optimistic) score for runners-up; the winner's
    /// score is always fresh.
    pub benefit: u64,
    /// The candidate's weight `c(S)`.
    pub weight: f64,
}

impl AuditCandidate {
    /// Benefit/weight ratio; zero-weight candidates with positive benefit
    /// have infinite ratio (they dominate every finite-gain candidate).
    pub fn ratio(&self) -> f64 {
        if self.weight == 0.0 {
            if self.benefit > 0 {
                f64::INFINITY
            } else {
                0.0
            }
        } else {
            self.benefit as f64 / self.weight
        }
    }
}

/// Converts a core cover-state [`Candidate`] into the audit currency.
pub fn from_cover(c: Candidate) -> AuditCandidate {
    AuditCandidate {
        id: c.id as u64,
        benefit: c.mben as u64,
        weight: c.cost.value(),
    }
}

/// Emits one `round_decided` event from a best-first candidate list (as
/// produced by `CoverState::top_benefit`/`top_gain` or
/// `scan::masked_top`) and returns the winning set id, or `None` when the
/// list is empty (no eligible candidate — the greedy loop stops).
pub fn record_cover_round<O: Observer + ?Sized>(
    obs: &mut O,
    order: &'static str,
    top: &[Candidate],
) -> Option<SetId> {
    let (win, rest) = top.split_first()?;
    let winner = from_cover(*win);
    let runners: Vec<AuditCandidate> = rest.iter().map(|&c| from_cover(c)).collect();
    obs.round_decided(order, &winner, &runners);
    Some(win.id)
}

/// Audits and performs one greedy pick on a [`CoverState`]: emits
/// `round_decided` from the best-first `top` list (as produced by
/// `top_benefit`/`top_gain` with cap [`TOP`]), charges the winner's weight
/// across its newly covered elements (`price_charged`), selects it, and
/// emits `set_selected`. Returns the winner and how many elements it newly
/// covered, or `None` when `top` is empty.
pub fn pick_cover<O: Observer + ?Sized>(
    state: &mut CoverState<'_>,
    obs: &mut O,
    order: &'static str,
    top: &[Candidate],
) -> Option<(SetId, usize)> {
    let q = record_cover_round(obs, order, top)?;
    let cost = state.system().cost(q).value();
    let elems = state.newly_elements(q);
    obs.price_charged(q as u64, &elems, cost);
    let newly = state.select(q);
    debug_assert_eq!(newly, elems.len());
    obs.set_selected(q as u64, newly as u64, cost);
    Some((q, newly))
}

/// Charges the winner of a masked-scan round: prices the elements of
/// `win` not yet in `covered` (the scan recounted against this same
/// bitset, so the list length equals `win.mben`). Call *before* unioning
/// the winner's mask into `covered`.
pub fn charge_masked<O: Observer + ?Sized>(
    obs: &mut O,
    system: &SetSystem,
    covered: &BitSet,
    win: Candidate,
) {
    let elems: Vec<u32> = system
        .members(win.id)
        .iter()
        .copied()
        .filter(|&e| !covered.contains(e as usize))
        .collect();
    debug_assert_eq!(elems.len(), win.mben);
    obs.price_charged(win.id as u64, &elems, win.cost.value());
}

/// The comparator level that actually decided a round, plus the winning
/// margin *in the primary key's native space* (always finite):
///
/// * `"benefit"` rounds: margin = `winner.benefit − runner.benefit`;
///   deeper levels (`"cost"`, `"id"`) report margin 0.
/// * `"gain"` rounds: margin = the cross-multiplied gain difference
///   `winner.benefit·runner.weight − runner.benefit·winner.weight` —
///   exactly the quantity the canonical comparator compares, so it is
///   finite even when a ratio is infinite.
/// * `"sole"`: no runner-up existed; margin 0.
fn margin_and_tie(
    order: &str,
    winner: &AuditCandidate,
    runner: Option<&AuditCandidate>,
) -> (f64, &'static str) {
    let Some(r) = runner else {
        return (0.0, "sole");
    };
    if order == ORDER_GAIN {
        let cross = winner.benefit as f64 * r.weight - r.benefit as f64 * winner.weight;
        if cross != 0.0 {
            return (cross, "gain");
        }
    }
    if winner.benefit != r.benefit {
        let margin = if order == ORDER_BENEFIT {
            winner.benefit as f64 - r.benefit as f64
        } else {
            0.0
        };
        return (margin, "benefit");
    }
    if winner.weight != r.weight {
        (0.0, "cost")
    } else {
        (0.0, "id")
    }
}

/// One recorded selection round: the decision plus the price charging that
/// followed it.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerRound {
    /// `"benefit"` or `"gain"` — which canonical order decided the round.
    pub order: &'static str,
    /// The selected candidate.
    pub winner: AuditCandidate,
    /// Up to [`RUNNERS_UP`] losing candidates, best first.
    pub runners_up: Vec<AuditCandidate>,
    /// Winning margin in the primary key's native space (see
    /// [`LedgerRound::tie_break`]); 0 when a deeper tie-break decided.
    pub margin: f64,
    /// Comparator level that decided: `"gain"`, `"benefit"`, `"cost"`,
    /// `"id"`, or `"sole"` (no runner-up).
    pub tie_break: &'static str,
    /// Elements newly covered by the winner (the priced elements).
    pub elements: Vec<u32>,
    /// Weight charged across [`LedgerRound::elements`].
    pub cost: f64,
}

impl LedgerRound {
    /// Uniform per-element price `cost/|elements|` (0 for an empty round).
    pub fn unit_price(&self) -> f64 {
        if self.elements.is_empty() {
            0.0
        } else {
            self.cost / self.elements.len() as f64
        }
    }
}

/// A degrade decision taken mid-solve (deadline/tick budget/cancellation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradeNote {
    /// Stable reason string (`DegradeReason::as_str`).
    pub reason: &'static str,
    /// Elements covered when the solver degraded.
    pub covered: u64,
    /// The coverage target it was aiming for.
    pub target: u64,
}

/// All rounds of one budget guess (single-round solvers have exactly one
/// implicit guess).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GuessLedger {
    /// The guessed budget, if the solver announced one.
    pub budget: Option<f64>,
    /// Selection rounds in decision order.
    pub rounds: Vec<LedgerRound>,
    /// Degrade decisions taken during this guess.
    pub degrades: Vec<DegradeNote>,
}

/// An [`Observer`] that assembles the audit ledger from the event stream.
///
/// Because it consumes the same replayed stream as every other observer,
/// a parallel run's ledger is bit-identical to the serial run's — the
/// determinism contract is inherited, not re-proven here.
#[derive(Debug, Clone, Default)]
pub struct DecisionLedger {
    guesses: Vec<GuessLedger>,
}

impl DecisionLedger {
    /// An empty ledger.
    pub fn new() -> DecisionLedger {
        DecisionLedger::default()
    }

    fn current(&mut self) -> &mut GuessLedger {
        if self.guesses.is_empty() {
            self.guesses.push(GuessLedger::default());
        }
        self.guesses.last_mut().expect("just ensured non-empty")
    }

    /// All guesses in announcement order.
    pub fn guesses(&self) -> &[GuessLedger] {
        &self.guesses
    }

    /// Total recorded rounds across all guesses.
    pub fn rounds_total(&self) -> usize {
        self.guesses.iter().map(|g| g.rounds.len()).sum()
    }

    /// The guess whose selections form the returned solution: greedy
    /// solvers abandon a failed guess and move to the next, so the *last*
    /// guess that actually selected something is the final one.
    pub fn final_guess(&self) -> Option<&GuessLedger> {
        self.guesses
            .iter()
            .rev()
            .find(|g| !g.rounds.is_empty())
            .or(self.guesses.last())
    }

    /// The final guess's price vector: `(element, price)` pairs in
    /// charging order — the input to [`certify`].
    pub fn prices(&self) -> Vec<(u32, f64)> {
        let Some(g) = self.final_guess() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for r in &g.rounds {
            let p = r.unit_price();
            for &e in &r.elements {
                out.push((e, p));
            }
        }
        out
    }

    /// Total charged cost of the final guess (= its solution cost).
    pub fn final_cost(&self) -> f64 {
        self.final_guess()
            .map(|g| g.rounds.iter().map(|r| r.cost).sum())
            .unwrap_or(0.0)
    }

    /// Mean winning margin over the final guess's rounds (0 when empty).
    pub fn mean_margin(&self) -> f64 {
        let Some(g) = self.final_guess() else {
            return 0.0;
        };
        if g.rounds.is_empty() {
            return 0.0;
        }
        g.rounds.iter().map(|r| r.margin).sum::<f64>() / g.rounds.len() as f64
    }

    /// Renders the per-round narrative behind `scwsc_solve --explain`.
    /// `limit` caps the rounds rendered *per guess* (`None` = all). The
    /// output contains no timestamps, so it is stable across runs and
    /// thread counts.
    pub fn render_explain(&self, limit: Option<usize>) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "decision audit: {} guess(es), {} round(s), final cost {}",
            self.guesses.len(),
            self.rounds_total(),
            self.final_cost()
        );
        for (gi, g) in self.guesses.iter().enumerate() {
            let budget = match g.budget {
                Some(b) => format!("budget {b}"),
                None => "no budget".to_owned(),
            };
            let _ = writeln!(
                s,
                "guess {} ({budget}): {} round(s)",
                gi + 1,
                g.rounds.len()
            );
            let shown = limit.unwrap_or(g.rounds.len()).min(g.rounds.len());
            for (ri, r) in g.rounds.iter().take(shown).enumerate() {
                let w = &r.winner;
                let _ = writeln!(
                    s,
                    "  round {} [{}]: pick {} (benefit {}, weight {}, ratio {}) margin {} via {}",
                    ri + 1,
                    r.order,
                    w.id,
                    w.benefit,
                    w.weight,
                    w.ratio(),
                    r.margin,
                    r.tie_break
                );
                for ru in &r.runners_up {
                    let _ = writeln!(
                        s,
                        "    runner-up {} (benefit {}, weight {}, ratio {})",
                        ru.id,
                        ru.benefit,
                        ru.weight,
                        ru.ratio()
                    );
                }
                let _ = writeln!(
                    s,
                    "    charged {} over {} element(s) (price {})",
                    r.cost,
                    r.elements.len(),
                    r.unit_price()
                );
            }
            if shown < g.rounds.len() {
                let _ = writeln!(s, "  ... {} more round(s)", g.rounds.len() - shown);
            }
            for d in &g.degrades {
                let _ = writeln!(
                    s,
                    "  degraded ({}) at {}/{} covered",
                    d.reason, d.covered, d.target
                );
            }
        }
        s
    }

    /// Dumps the ledger as line-oriented JSON: a header line, one line per
    /// round, one per degrade note. Deterministic byte-for-byte across
    /// thread counts (no wall-clock fields).
    pub fn write_jsonl<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        writeln!(
            w,
            "{{\"ledger\":\"scwsc\",\"version\":1,\"guesses\":{},\"rounds\":{}}}",
            self.guesses.len(),
            self.rounds_total()
        )?;
        for (gi, g) in self.guesses.iter().enumerate() {
            for (ri, r) in g.rounds.iter().enumerate() {
                let budget = match g.budget {
                    Some(b) => json_f64(b),
                    None => "null".to_owned(),
                };
                let mut line = format!(
                    "{{\"guess\":{},\"budget\":{budget},\"round\":{},\"order\":\"{}\",\"winner\":{}",
                    gi + 1,
                    ri + 1,
                    r.order,
                    cand_json(&r.winner)
                );
                line.push_str(",\"runners_up\":[");
                for (i, ru) in r.runners_up.iter().enumerate() {
                    if i > 0 {
                        line.push(',');
                    }
                    line.push_str(&cand_json(ru));
                }
                let _ = write!(
                    line,
                    "],\"margin\":{},\"tie_break\":\"{}\",\"cost\":{},\"price\":{},\"elements\":[",
                    json_f64(r.margin),
                    r.tie_break,
                    json_f64(r.cost),
                    json_f64(r.unit_price())
                );
                for (i, e) in r.elements.iter().enumerate() {
                    if i > 0 {
                        line.push(',');
                    }
                    let _ = write!(line, "{e}");
                }
                line.push_str("]}");
                writeln!(w, "{line}")?;
            }
            for d in &g.degrades {
                writeln!(
                    w,
                    "{{\"guess\":{},\"degraded\":\"{}\",\"covered\":{},\"target\":{}}}",
                    gi + 1,
                    d.reason,
                    d.covered,
                    d.target
                )?;
            }
        }
        Ok(())
    }
}

/// `{"id":..,"benefit":..,"weight":..}` for ledger/trace lines.
pub(crate) fn cand_json(c: &AuditCandidate) -> String {
    format!(
        "{{\"id\":{},\"benefit\":{},\"weight\":{}}}",
        c.id,
        c.benefit,
        json_f64(c.weight)
    )
}

impl Observer for DecisionLedger {
    fn guess_started(&mut self, budget: Option<f64>) {
        self.guesses.push(GuessLedger {
            budget,
            ..GuessLedger::default()
        });
    }

    fn round_decided(
        &mut self,
        order: &'static str,
        winner: &AuditCandidate,
        runners_up: &[AuditCandidate],
    ) {
        let (margin, tie_break) = margin_and_tie(order, winner, runners_up.first());
        self.current().rounds.push(LedgerRound {
            order,
            winner: *winner,
            runners_up: runners_up.to_vec(),
            margin,
            tie_break,
            elements: Vec::new(),
            cost: 0.0,
        });
    }

    fn price_charged(&mut self, set_id: u64, elements: &[u32], cost: f64) {
        if let Some(r) = self.current().rounds.last_mut() {
            debug_assert_eq!(r.winner.id, set_id, "price charged to a non-winner");
            let _ = set_id;
            r.elements.extend_from_slice(elements);
            r.cost = cost;
        }
    }

    fn degrade_decided(&mut self, reason: &'static str, covered: u64, target: u64) {
        self.current().degrades.push(DegradeNote {
            reason,
            covered,
            target,
        });
    }
}

/// An instance-specific a-posteriori quality certificate: a dual-feasible
/// lower bound on the optimal cost of covering `target` elements, derived
/// from the greedy price vector (module docs for the math).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityCertificate {
    /// Total charged greedy cost (= Σ prices).
    pub greedy_cost: f64,
    /// Certified lower bound `LB ≤ optimal cost` (0 when uninformative).
    pub lower_bound: f64,
    /// The dual scaling factor (max constraint ratio of the raw prices).
    pub alpha: f64,
    /// Number of priced (greedy-covered) elements.
    pub covered: u64,
    /// The coverage target certified against.
    pub target: u64,
}

impl QualityCertificate {
    /// Certified approximation ratio `greedy_cost / LB`: 1 for a free
    /// solution, infinite when the bound is uninformative (`LB = 0`).
    pub fn certified_ratio(&self) -> f64 {
        if self.greedy_cost <= 0.0 {
            1.0
        } else if self.lower_bound <= 0.0 {
            f64::INFINITY
        } else {
            self.greedy_cost / self.lower_bound
        }
    }
}

/// Certifies a greedy price vector against `system`: returns the scaled
/// dual lower bound on the cost of any solution covering at least
/// `target` elements (see module docs). `prices` is
/// [`DecisionLedger::prices`] — each greedy-covered element with its
/// charged price; elements priced twice keep the last price.
pub fn certify(system: &SetSystem, prices: &[(u32, f64)], target: usize) -> QualityCertificate {
    let n = system.num_elements();
    let mut price: Vec<Option<f64>> = vec![None; n];
    for &(e, p) in prices {
        price[e as usize] = Some(p);
    }
    // Elements of any zero-cost set must carry zero dual price.
    let mut in_free = vec![false; n];
    for (id, set) in system.iter() {
        if system.cost(id).value() == 0.0 {
            for &e in set.members() {
                in_free[e as usize] = true;
            }
        }
    }
    let eff = |e: usize| -> f64 {
        if in_free[e] {
            0.0
        } else {
            price[e].unwrap_or(0.0)
        }
    };
    let mut alpha: f64 = 0.0;
    for (id, set) in system.iter() {
        let c = system.cost(id).value();
        if c <= 0.0 {
            continue;
        }
        let sum: f64 = set.members().iter().map(|&e| eff(e as usize)).sum();
        alpha = alpha.max(sum / c);
    }
    let covered = price.iter().filter(|p| p.is_some()).count();
    let greedy_cost: f64 = prices.iter().map(|&(_, p)| p).sum();
    // Any target-feasible solution covers ≥ m of the priced elements.
    let m = (target + covered).saturating_sub(n);
    let lower_bound = if m == 0 || alpha <= 0.0 {
        0.0
    } else {
        let mut ys: Vec<f64> = (0..n).filter(|&e| price[e].is_some()).map(eff).collect();
        ys.sort_by(f64::total_cmp);
        ys.iter().take(m).sum::<f64>() / alpha
    };
    QualityCertificate {
        greedy_cost,
        lower_bound,
        alpha,
        covered: covered as u64,
        target: target as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Cost;

    fn cand(id: u64, benefit: u64, weight: f64) -> AuditCandidate {
        AuditCandidate {
            id,
            benefit,
            weight,
        }
    }

    #[test]
    fn ratio_handles_zero_weight() {
        assert_eq!(cand(0, 3, 2.0).ratio(), 1.5);
        assert_eq!(cand(0, 3, 0.0).ratio(), f64::INFINITY);
        assert_eq!(cand(0, 0, 0.0).ratio(), 0.0);
    }

    #[test]
    fn margin_levels() {
        // Sole candidate.
        assert_eq!(
            margin_and_tie(ORDER_GAIN, &cand(0, 3, 1.0), None),
            (0.0, "sole")
        );
        // Gain decided: 3/1 vs 4/2 → cross = 3·2 − 4·1 = 2.
        assert_eq!(
            margin_and_tie(ORDER_GAIN, &cand(0, 3, 1.0), Some(&cand(1, 4, 2.0))),
            (2.0, "gain")
        );
        // Equal gain, benefit decides (margin 0 in gain space).
        assert_eq!(
            margin_and_tie(ORDER_GAIN, &cand(1, 4, 4.0), Some(&cand(0, 2, 2.0))),
            (0.0, "benefit")
        );
        // Benefit rounds: native margin.
        assert_eq!(
            margin_and_tie(ORDER_BENEFIT, &cand(0, 5, 1.0), Some(&cand(1, 3, 1.0))),
            (2.0, "benefit")
        );
        // Benefit tie → cost; full tie → id.
        assert_eq!(
            margin_and_tie(ORDER_BENEFIT, &cand(0, 5, 1.0), Some(&cand(1, 5, 2.0))),
            (0.0, "cost")
        );
        assert_eq!(
            margin_and_tie(ORDER_BENEFIT, &cand(0, 5, 1.0), Some(&cand(1, 5, 1.0))),
            (0.0, "id")
        );
        // Infinite ratios stay finite in cross-multiplied space.
        let (m, t) = margin_and_tie(ORDER_GAIN, &cand(0, 3, 0.0), Some(&cand(1, 4, 2.0)));
        assert!(m.is_finite() && t == "gain", "{m} {t}");
    }

    #[test]
    fn ledger_buckets_rounds_by_guess_and_attaches_prices() {
        let mut l = DecisionLedger::new();
        l.guess_started(Some(2.0));
        l.round_decided(ORDER_BENEFIT, &cand(3, 5, 2.0), &[cand(1, 3, 2.0)]);
        l.price_charged(3, &[0, 1, 2, 3, 4], 2.0);
        l.guess_started(Some(4.0));
        l.round_decided(ORDER_BENEFIT, &cand(1, 3, 2.0), &[]);
        l.price_charged(1, &[5, 6], 2.0);
        l.degrade_decided("tick_budget", 7, 9);

        assert_eq!(l.guesses().len(), 2);
        assert_eq!(l.rounds_total(), 2);
        let fin = l.final_guess().unwrap();
        assert_eq!(fin.budget, Some(4.0));
        assert_eq!(fin.rounds.len(), 1);
        assert_eq!(fin.rounds[0].unit_price(), 1.0);
        assert_eq!(fin.degrades[0].reason, "tick_budget");
        assert_eq!(l.prices(), vec![(5, 1.0), (6, 1.0)]);
        assert_eq!(l.final_cost(), 2.0);
    }

    #[test]
    fn ledger_without_guess_events_uses_implicit_bucket() {
        let mut l = DecisionLedger::new();
        l.round_decided(ORDER_GAIN, &cand(0, 4, 2.0), &[cand(1, 2, 2.0)]);
        l.price_charged(0, &[0, 1, 2, 3], 2.0);
        assert_eq!(l.guesses().len(), 1);
        assert_eq!(l.guesses()[0].budget, None);
        assert_eq!(l.prices().len(), 4);
        assert_eq!(l.mean_margin(), 4.0); // cross = 4·2 − 2·2
    }

    #[test]
    fn final_guess_skips_empty_trailing_guess() {
        let mut l = DecisionLedger::new();
        l.guess_started(Some(1.0));
        l.round_decided(ORDER_BENEFIT, &cand(0, 1, 1.0), &[]);
        l.price_charged(0, &[0], 1.0);
        l.guess_started(Some(2.0));
        l.degrade_decided("wall_clock", 1, 3);
        let fin = l.final_guess().unwrap();
        assert_eq!(fin.budget, Some(1.0), "rounds win over empty trailing");
    }

    #[test]
    fn explain_and_jsonl_are_deterministic_and_respect_limit() {
        let mut l = DecisionLedger::new();
        l.guess_started(None);
        for i in 0..3 {
            l.round_decided(ORDER_GAIN, &cand(i, 4 - i, 1.0), &[cand(9, 1, 1.0)]);
            l.price_charged(i, &[i as u32], 1.0);
        }
        let full = l.render_explain(None);
        assert_eq!(full, l.render_explain(None), "stable rendering");
        assert!(full.contains("round 3"), "{full}");
        let cut = l.render_explain(Some(1));
        assert!(cut.contains("round 1") && !cut.contains("round 3"), "{cut}");
        assert!(cut.contains("... 2 more round(s)"), "{cut}");

        let mut buf = Vec::new();
        l.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "header + 3 rounds: {text}");
        assert!(lines[0].contains("\"ledger\":\"scwsc\""));
        assert!(lines[1].contains("\"winner\":{\"id\":0,\"benefit\":4,\"weight\":1.0}"));
        assert!(lines[1].contains("\"elements\":[0]"));
    }

    #[test]
    fn record_cover_round_emits_winner_and_runners() {
        let top = vec![
            Candidate {
                id: 2,
                mben: 5,
                cost: Cost::new(2.0).unwrap(),
            },
            Candidate {
                id: 0,
                mben: 3,
                cost: Cost::new(1.0).unwrap(),
            },
        ];
        let mut l = DecisionLedger::new();
        assert_eq!(record_cover_round(&mut l, ORDER_GAIN, &top), Some(2));
        assert_eq!(record_cover_round(&mut l, ORDER_GAIN, &[]), None);
        let g = &l.guesses()[0];
        assert_eq!(g.rounds.len(), 1);
        assert_eq!(g.rounds[0].winner.id, 2);
        assert_eq!(g.rounds[0].runners_up.len(), 1);
        assert_eq!(g.rounds[0].runners_up[0].id, 0);
    }

    fn certify_system() -> SetSystem {
        let mut b = SetSystem::builder(6);
        b.add_set([0, 1, 2], 3.0) // set 0
            .add_set([2, 3], 1.0) // set 1
            .add_set([3, 4, 5], 6.0) // set 2
            .add_set([0, 1, 2, 3, 4, 5], 7.0); // set 3
        b.build().unwrap()
    }

    #[test]
    fn certify_full_coverage_bounds_hold() {
        let sys = certify_system();
        // Greedy-gain trace: pick 0 (price 1 on {0,1,2}), then 1 charges 3
        // (price 1.0), then 2 covers {4,5} (price 3 each). Cost = 3+1+6=10.
        let prices = vec![
            (0u32, 1.0),
            (1, 1.0),
            (2, 1.0),
            (3, 1.0),
            (4, 3.0),
            (5, 3.0),
        ];
        let cert = certify(&sys, &prices, 6);
        assert_eq!(cert.greedy_cost, 10.0);
        assert_eq!(cert.covered, 6);
        assert!(cert.alpha >= 1.0, "selected sets witness alpha ≥ 1");
        // Optimal cover of all 6 elements: set 3 alone at cost 7.
        assert!(
            cert.lower_bound <= 7.0 + 1e-9,
            "LB {} must not exceed optimal 7",
            cert.lower_bound
        );
        assert!(cert.lower_bound > 0.0, "informative bound");
        assert!(cert.certified_ratio() >= 10.0 / 7.0 - 1e-9);
        // Full coverage degenerates to greedy_cost / alpha.
        assert!((cert.lower_bound - cert.greedy_cost / cert.alpha).abs() < 1e-9);
    }

    #[test]
    fn certify_partial_coverage_discounts_uncovered_slack() {
        let sys = certify_system();
        // Only 4 of 6 elements priced; target 5 → any solution covers at
        // least 5 − (6 − 4) = 3 priced elements.
        let prices = vec![(0u32, 1.0), (1, 1.0), (2, 1.0), (3, 1.0)];
        let cert = certify(&sys, &prices, 5);
        assert_eq!(cert.covered, 4);
        let m_smallest_sum = 3.0; // three smallest of four equal prices
        assert!((cert.lower_bound - m_smallest_sum / cert.alpha).abs() < 1e-9);
        // Infeasible-from-here target: m clamps to zero, bound collapses.
        let hopeless = certify(&sys, &prices[..1], 5);
        assert_eq!(hopeless.lower_bound, 0.0);
        assert_eq!(hopeless.certified_ratio(), f64::INFINITY);
    }

    #[test]
    fn certify_zero_cost_sets_wash_their_elements() {
        let mut b = SetSystem::builder(3);
        b.add_set([0, 1], 2.0).add_set([1, 2], 0.0);
        let sys = b.build().unwrap();
        // A benefit-greedy trace that charged element 1 despite the free set.
        let prices = vec![(0u32, 1.0), (1, 1.0), (2, 0.0)];
        let cert = certify(&sys, &prices, 3);
        // Element 1 and 2 washed to 0; alpha = 1/2 from set 0 → LB = 1/α = 2?
        // Raw effective prices: e0=1, e1=0, e2=0; set 0 ratio = 1/2.
        assert!((cert.alpha - 0.5).abs() < 1e-9);
        assert!((cert.lower_bound - 2.0).abs() < 1e-9);
        // The bound stays below the true optimum (sets 0+1 cost 2).
        assert!(cert.lower_bound <= 2.0 + 1e-9);
    }

    #[test]
    fn certify_empty_prices_and_free_solutions() {
        let sys = certify_system();
        let cert = certify(&sys, &[], 6);
        assert_eq!(cert.lower_bound, 0.0);
        assert_eq!(cert.greedy_cost, 0.0);
        assert_eq!(cert.certified_ratio(), 1.0, "free solution is perfect");
    }
}
