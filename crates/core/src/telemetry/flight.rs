//! Flight recorder: a fixed-capacity, lock-sharded ring buffer of recent
//! *enriched* events plus an incrementally maintained causal span tree —
//! the black box that gives every bad outcome a self-contained post-mortem
//! artifact (DESIGN.md §13).
//!
//! A [`FlightRecorder`] is an [`Observer`] front-end over shared state
//! (`Arc` inside), so it can be cloned: one clone rides in the solve's
//! observer stack (possibly on the engine's isolated solve thread) while
//! the caller keeps another to [`write_dump`](FlightRecorder::write_dump)
//! *after* a panic or deadline degrade — the recorded history survives the
//! unwinding because it lives behind the `Arc`, not in the poisoned stack
//! frame.
//!
//! Two kinds of state are kept:
//!
//! * **The ring** — the last `capacity` events, each stamped with a global
//!   sequence number, the recorder's monotonic clock, and its
//!   [`TraceContext`] (trace id, innermost span, parent span, worker).
//!   Rings are sharded by recording worker and each shard is its own
//!   mutex, so concurrent recorders contend only within a worker. When a
//!   shard fills, its oldest event is dropped and counted — a flight
//!   recorder by design remembers *what happened just before*, not
//!   everything.
//! * **The causal tree** — span open/close and worker-switch events are
//!   folded into a [`CausalNode`] tree as they arrive (bounded by the
//!   number of distinct span paths, not the event count), so the tree in
//!   the dump is complete even when the ring has wrapped. Worker subtrees
//!   attach under the span that was innermost on the main thread when the
//!   stream switched workers — the fork point — which is what turns PR 3's
//!   flattened shard replay back into *which thread's work caused what*.
//!
//! Span ids are assigned in arrival order. The event stream's replay order
//! is deterministic (ascending shard order; see
//! [`ThreadLocalTelemetry::replay`](super::ThreadLocalTelemetry::replay)),
//! so ids are reproducible run-to-run for a tick-deterministic solve.
//!
//! The dump format is line-oriented and *every* line is one valid JSON
//! object: a header, one line per buffered event, and a trailing
//! `{"causal_tree": …}` object — trivially greppable, trivially parseable.

use super::trace::{TraceContext, TraceId, MAIN_WORKER};
use super::{json_f64, Observer, PruneReason, PHASE_SCAN, PHASE_SCAN_PRUNE};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Ring shards; the recording worker id picks the shard, so workers
/// contend only with themselves (and with whoever holds the same id).
const SHARDS: usize = 8;

/// Default total event capacity across all shards.
const DEFAULT_CAPACITY: usize = 4096;

/// One recorded observer event (the payload half; context is alongside).
#[derive(Debug, Clone, PartialEq)]
enum EventKind {
    GuessStarted(Option<f64>),
    LevelEntered(usize, usize),
    SetSelected(u64, u64, f64),
    BenefitComputed(u64),
    CandidatePruned(PruneReason),
    SubtreePruned(PruneReason),
    PostingScanned(u64),
    HeapStalePop,
    Speculation(u64, u64),
    GuessRetried,
    TraceStarted(TraceId, &'static str),
    WorkerSwitched(u32),
    StallDetected(u64, f64),
    PhaseStarted(&'static str),
    PhaseEnded(&'static str, f64),
}

impl EventKind {
    /// Stable event name, matching [`JsonlSink`](super::JsonlSink)'s.
    fn name(&self) -> &'static str {
        match self {
            EventKind::GuessStarted(_) => "guess_started",
            EventKind::LevelEntered(..) => "level_entered",
            EventKind::SetSelected(..) => "set_selected",
            EventKind::BenefitComputed(_) => "benefit_computed",
            EventKind::CandidatePruned(_) => "candidate_pruned",
            EventKind::SubtreePruned(_) => "subtree_pruned",
            EventKind::PostingScanned(_) => "posting_scanned",
            EventKind::HeapStalePop => "heap_stale_pop",
            EventKind::Speculation(..) => "speculation",
            EventKind::GuessRetried => "guess_retried",
            EventKind::TraceStarted(..) => "trace_started",
            EventKind::WorkerSwitched(_) => "worker_switched",
            EventKind::StallDetected(..) => "stall_detected",
            EventKind::PhaseStarted(_) => "phase_started",
            EventKind::PhaseEnded(..) => "phase_ended",
        }
    }

    /// JSON fields beyond the envelope (empty or starting with a comma),
    /// same vocabulary as [`JsonlSink`](super::JsonlSink).
    fn fields(&self) -> String {
        match *self {
            EventKind::GuessStarted(budget) => {
                let b = match budget {
                    Some(v) => json_f64(v),
                    None => "null".to_owned(),
                };
                format!(",\"budget\":{b}")
            }
            EventKind::LevelEntered(level, allowance) => {
                format!(",\"level\":{level},\"allowance\":{allowance}")
            }
            EventKind::SetSelected(id, mben, cost) => format!(
                ",\"id\":{id},\"marginal_benefit\":{mben},\"cost\":{}",
                json_f64(cost)
            ),
            EventKind::BenefitComputed(count) => format!(",\"count\":{count}"),
            EventKind::CandidatePruned(reason) | EventKind::SubtreePruned(reason) => {
                format!(",\"reason\":\"{}\"", reason.as_str())
            }
            EventKind::PostingScanned(entries) => format!(",\"entries\":{entries}"),
            EventKind::HeapStalePop | EventKind::GuessRetried => String::new(),
            EventKind::Speculation(committed, wasted) => {
                format!(",\"committed\":{committed},\"wasted\":{wasted}")
            }
            EventKind::TraceStarted(id, entry) => {
                format!(",\"trace_id\":\"{id}\",\"entry\":\"{entry}\"")
            }
            EventKind::WorkerSwitched(worker) => format!(",\"worker_to\":{worker}"),
            EventKind::StallDetected(ticks, stalled_secs) => format!(
                ",\"ticks\":{ticks},\"stalled_secs\":{}",
                json_f64(stalled_secs)
            ),
            EventKind::PhaseStarted(name) => format!(",\"name\":\"{name}\""),
            EventKind::PhaseEnded(name, seconds) => {
                format!(",\"name\":\"{name}\",\"seconds\":{}", json_f64(seconds))
            }
        }
    }

    /// Whether this event counts toward a span's deterministic event tally
    /// (the basis of the Threads(1)/Threads(N) causal-tree parity check).
    /// Structural plumbing (spans, worker switches, trace minting) and
    /// parallel-/fault-only events (speculation, retries) are excluded,
    /// mirroring the exact-diff counter set.
    fn is_deterministic_work(&self) -> bool {
        matches!(
            self,
            EventKind::GuessStarted(_)
                | EventKind::LevelEntered(..)
                | EventKind::SetSelected(..)
                | EventKind::BenefitComputed(_)
                | EventKind::CandidatePruned(_)
                | EventKind::SubtreePruned(_)
                | EventKind::PostingScanned(_)
                | EventKind::HeapStalePop
        )
    }
}

/// One enriched event as stored in the ring.
#[derive(Debug, Clone)]
struct FlightEvent {
    seq: u64,
    t: f64,
    ctx: TraceContext,
    kind: EventKind,
}

impl FlightEvent {
    fn to_json(&self) -> String {
        format!(
            "{{\"seq\":{},\"t\":{},\"trace\":\"{}\",\"span\":{},\"parent\":{},\"worker\":{},\"event\":\"{}\"{}}}",
            self.seq,
            json_f64(self.t),
            self.ctx.trace_id,
            self.ctx.span_id,
            self.ctx.parent_span_id,
            self.ctx.worker_id,
            self.kind.name(),
            self.kind.fields()
        )
    }
}

/// Arena node of the incrementally built causal tree.
#[derive(Debug, Clone)]
struct Node {
    name: &'static str,
    span_id: u64,
    parent_span_id: u64,
    worker_id: u32,
    count: u64,
    events: u64,
    secs: f64,
    children: Vec<usize>,
}

/// Mutable causal-tracking state, updated on structural events only.
#[derive(Debug)]
struct CausalState {
    trace_id: TraceId,
    entry: &'static str,
    nodes: Vec<Node>,
    /// Open spans of the main thread, outermost first (arena indices).
    main_stack: Vec<usize>,
    /// Open spans of the currently replaying worker block.
    aux_stack: Vec<usize>,
    current_worker: u32,
    next_span_id: u64,
}

impl CausalState {
    fn new() -> CausalState {
        CausalState {
            trace_id: TraceId::default(),
            entry: "",
            nodes: vec![Node {
                name: "(run)",
                span_id: 0,
                parent_span_id: 0,
                worker_id: MAIN_WORKER,
                count: 0,
                events: 0,
                secs: 0.0,
                children: Vec::new(),
            }],
            main_stack: Vec::new(),
            aux_stack: Vec::new(),
            current_worker: MAIN_WORKER,
            next_span_id: 1,
        }
    }

    fn on_main(&self) -> bool {
        self.current_worker == MAIN_WORKER
    }

    /// Arena index of the innermost open span for the current worker: its
    /// own open spans first, then the main thread's (the fork point for a
    /// worker that has not opened anything yet), else the synthetic root.
    fn active_top(&self) -> usize {
        if !self.on_main() {
            if let Some(&idx) = self.aux_stack.last() {
                return idx;
            }
        }
        *self.main_stack.last().unwrap_or(&0)
    }

    /// The causal coordinates an arriving event carries.
    fn context(&self) -> TraceContext {
        let node = &self.nodes[self.active_top()];
        TraceContext {
            trace_id: self.trace_id,
            span_id: node.span_id,
            parent_span_id: node.parent_span_id,
            worker_id: self.current_worker,
        }
    }

    /// Child of `parent` named `name` (spans aggregate by name along the
    /// parent path, like [`SpanProfiler`](super::SpanProfiler)), created
    /// on first sight with a fresh arrival-ordered span id.
    fn child_idx(&mut self, parent: usize, name: &'static str) -> usize {
        if let Some(&idx) = self.nodes[parent]
            .children
            .iter()
            .find(|&&c| self.nodes[c].name == name)
        {
            return idx;
        }
        let span_id = self.next_span_id;
        self.next_span_id += 1;
        let idx = self.nodes.len();
        let parent_span_id = self.nodes[parent].span_id;
        self.nodes.push(Node {
            name,
            span_id,
            parent_span_id,
            worker_id: self.current_worker,
            count: 0,
            events: 0,
            secs: 0.0,
            children: Vec::new(),
        });
        self.nodes[parent].children.push(idx);
        idx
    }

    fn phase_started(&mut self, name: &'static str) {
        let parent = self.active_top();
        let idx = self.child_idx(parent, name);
        if self.on_main() {
            self.main_stack.push(idx);
        } else {
            self.aux_stack.push(idx);
        }
    }

    fn phase_ended(&mut self, name: &'static str, seconds: f64) {
        let stack = if self.on_main() {
            &mut self.main_stack
        } else {
            &mut self.aux_stack
        };
        // Innermost open span with this name; spans opened after it never
        // got their own end, so close them silently (profiler semantics).
        let Some(pos) = stack.iter().rposition(|&i| self.nodes[i].name == name) else {
            return;
        };
        stack.truncate(pos + 1);
        let idx = stack.pop().expect("pos is in range");
        self.nodes[idx].count += 1;
        self.nodes[idx].secs += seconds;
    }

    fn worker_switched(&mut self, worker_id: u32) {
        self.current_worker = worker_id;
        // Each worker block replays as a contiguous run with balanced
        // spans; any leftovers belong to the previous block.
        self.aux_stack.clear();
    }

    fn trace_started(&mut self, trace_id: TraceId, entry: &'static str) {
        // Latch the first mint: nested solves (a sweep's inner rounds)
        // announce their own ids, but the flight belongs to the outermost.
        if self.trace_id.is_unset() {
            self.trace_id = trace_id;
            self.entry = entry;
        }
    }

    fn assemble(&self, idx: usize) -> CausalNode {
        let n = &self.nodes[idx];
        CausalNode {
            name: n.name,
            span_id: n.span_id,
            parent_span_id: n.parent_span_id,
            worker_id: n.worker_id,
            count: n.count,
            events: n.events,
            secs: n.secs,
            children: n.children.iter().map(|&c| self.assemble(c)).collect(),
        }
    }

    /// The causal tree so far: the single top-level span when the run is
    /// that simple, otherwise the synthetic `(run)` root.
    fn tree(&self) -> CausalNode {
        let mut root = self.assemble(0);
        root.secs = root.children.iter().map(|c| c.secs).sum();
        if root.children.len() == 1 && root.events == 0 {
            root.children.pop().expect("one child")
        } else {
            root
        }
    }
}

/// One aggregated node of the reconstructed causal tree: all spans with
/// this name under the same parent path, annotated with the span id
/// assigned at first arrival, the worker that first opened it, and the
/// deterministic-work events attributed while it was innermost.
#[derive(Debug, Clone, PartialEq)]
pub struct CausalNode {
    /// Span name ([`PHASE_TOTAL`](super::PHASE_TOTAL), …); `(run)` for the
    /// synthetic root.
    pub name: &'static str,
    /// Arrival-ordered span id (0 for the synthetic root).
    pub span_id: u64,
    /// The parent span's id (0 = root).
    pub parent_span_id: u64,
    /// Worker that first opened this span ([`MAIN_WORKER`] = caller).
    pub worker_id: u32,
    /// Completed spans aggregated into this node.
    pub count: u64,
    /// Deterministic work events attributed to this node (see
    /// DESIGN.md §13 for the counted subset).
    pub events: u64,
    /// Total wall-clock seconds across completions.
    pub secs: f64,
    /// Child spans in first-seen order.
    pub children: Vec<CausalNode>,
}

impl CausalNode {
    /// Finds a direct child by name.
    pub fn child(&self, name: &str) -> Option<&CausalNode> {
        self.children.iter().find(|c| c.name == name)
    }

    /// Total deterministic-work events in this subtree.
    pub fn events_total(&self) -> u64 {
        self.events + self.children.iter().map(|c| c.events_total()).sum::<u64>()
    }

    /// The thread-count-invariant shape of this tree, for comparing a
    /// parallel run against its serial twin: per-worker
    /// [`PHASE_SCAN`] and [`PHASE_SCAN_PRUNE`] chunk spans fold into
    /// their parent (a serial run does the same work inline, without the
    /// span, and the pruned spans additionally come and go with
    /// `SCWSC_PRUNE`), worker ids and span ids are zeroed (assignment
    /// order differs when scan spans consume ids), and timings are
    /// dropped. What remains — span names, nesting, counts, and
    /// deterministic event tallies — must be identical for `Threads(1)`
    /// and `Threads(N)` by the determinism contract (DESIGN.md §11).
    pub fn normalized(&self) -> CausalNode {
        let mut events = self.events;
        let mut children = Vec::new();
        for c in &self.children {
            let n = c.normalized();
            if n.name == PHASE_SCAN || n.name == PHASE_SCAN_PRUNE {
                // Fold: the chunk's work happened inline in a serial run.
                events += n.events;
                children.extend(n.children);
            } else {
                children.push(n);
            }
        }
        CausalNode {
            name: self.name,
            span_id: 0,
            parent_span_id: 0,
            worker_id: MAIN_WORKER,
            count: self.count,
            events,
            secs: 0.0,
            children,
        }
    }

    /// One JSON object (no trailing newline) describing this subtree.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"span\":{},\"parent\":{},\"worker\":{},\"count\":{},\"events\":{},\"secs\":{},\"children\":[",
            self.name,
            self.span_id,
            self.parent_span_id,
            self.worker_id,
            self.count,
            self.events,
            json_f64(self.secs)
        );
        for (i, c) in self.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            c.write_json(out);
        }
        out.push_str("]}");
    }

    /// Indented text rendering (one line per node) for human post-mortems.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        let indent = "  ".repeat(depth);
        let _ = writeln!(
            out,
            "{indent}{} [span {} < {}] worker {}  ×{}  events={}  {:.6}s",
            self.name,
            self.span_id,
            self.parent_span_id,
            self.worker_id,
            self.count,
            self.events,
            self.secs,
        );
        for c in &self.children {
            c.render_into(out, depth + 1);
        }
    }
}

#[derive(Debug)]
struct Inner {
    shards: Vec<Mutex<VecDeque<FlightEvent>>>,
    per_shard_cap: usize,
    seq: AtomicU64,
    dropped: AtomicU64,
    start: Instant,
    state: Mutex<CausalState>,
}

/// The flight recorder: a cloneable [`Observer`] over shared ring + causal
/// state. See the module docs for the recording model and dump format.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    inner: Arc<Inner>,
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::new()
    }
}

impl FlightRecorder {
    /// A recorder with the default event capacity.
    pub fn new() -> FlightRecorder {
        FlightRecorder::with_capacity(DEFAULT_CAPACITY)
    }

    /// A recorder holding at most `capacity` recent events (rounded up to
    /// a multiple of the shard count; minimum one event per shard).
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        let per_shard_cap = capacity.div_ceil(SHARDS).max(1);
        FlightRecorder {
            inner: Arc::new(Inner {
                shards: (0..SHARDS).map(|_| Mutex::new(VecDeque::new())).collect(),
                per_shard_cap,
                seq: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                start: Instant::now(),
                state: Mutex::new(CausalState::new()),
            }),
        }
    }

    /// Maximum events the ring can hold.
    pub fn capacity(&self) -> usize {
        self.inner.per_shard_cap * SHARDS
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.lock().expect("flight shard poisoned").len())
            .sum()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// The latched trace id (the first [`Observer::trace_started`] seen;
    /// unset when no solve has announced itself yet).
    pub fn trace_id(&self) -> TraceId {
        self.state().trace_id
    }

    /// The latched entry-point name (empty until a trace starts).
    pub fn entry(&self) -> &'static str {
        self.state().entry
    }

    /// The causal span tree reconstructed so far. Complete even when the
    /// event ring has wrapped — the tree is maintained incrementally, not
    /// derived from the buffered window.
    pub fn causal_tree(&self) -> CausalNode {
        self.state().tree()
    }

    fn state(&self) -> std::sync::MutexGuard<'_, CausalState> {
        self.inner.state.lock().expect("flight state poisoned")
    }

    /// Records one event: stamp it with the current causal context and
    /// push it into the recording worker's ring shard.
    fn record(&self, ctx: TraceContext, kind: EventKind) {
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        let t = self.inner.start.elapsed().as_secs_f64();
        let shard = ctx.worker_id as usize % SHARDS;
        let mut ring = self.inner.shards[shard]
            .lock()
            .expect("flight shard poisoned");
        if ring.len() == self.inner.per_shard_cap {
            ring.pop_front();
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(FlightEvent { seq, t, ctx, kind });
    }

    /// Records a pure data event: context read, no structural update.
    fn data(&self, kind: EventKind) {
        let ctx = {
            let mut state = self.state();
            if kind.is_deterministic_work() {
                let idx = state.active_top();
                state.nodes[idx].events += 1;
            }
            state.context()
        };
        self.record(ctx, kind);
    }

    /// Writes the dump: a JSON header line, every buffered event (in
    /// global sequence order) as one JSON line, and a final
    /// `{"causal_tree": …}` line. Every line is a valid JSON object.
    pub fn write_dump<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        let (tree, trace_id, entry) = {
            let state = self.state();
            (state.tree(), state.trace_id, state.entry)
        };
        let mut events: Vec<FlightEvent> = Vec::with_capacity(self.len());
        for shard in &self.inner.shards {
            events.extend(shard.lock().expect("flight shard poisoned").iter().cloned());
        }
        events.sort_by_key(|e| e.seq);
        writeln!(
            w,
            "{{\"flight\":\"scwsc\",\"version\":1,\"trace_id\":\"{trace_id}\",\"entry\":\"{entry}\",\"buffered\":{},\"dropped\":{},\"capacity\":{}}}",
            events.len(),
            self.dropped(),
            self.capacity()
        )?;
        for e in &events {
            writeln!(w, "{}", e.to_json())?;
        }
        writeln!(w, "{{\"causal_tree\":{}}}", tree.to_json())?;
        w.flush()
    }

    /// [`write_dump`](FlightRecorder::write_dump) to a file path.
    pub fn dump_to_path(&self, path: &std::path::Path) -> io::Result<()> {
        let mut file = io::BufWriter::new(std::fs::File::create(path)?);
        self.write_dump(&mut file)
    }
}

impl Observer for FlightRecorder {
    fn guess_started(&mut self, budget: Option<f64>) {
        self.data(EventKind::GuessStarted(budget));
    }

    fn level_entered(&mut self, level: usize, allowance: usize) {
        self.data(EventKind::LevelEntered(level, allowance));
    }

    fn set_selected(&mut self, id: u64, marginal_benefit: u64, cost: f64) {
        self.data(EventKind::SetSelected(id, marginal_benefit, cost));
    }

    fn benefit_computed(&mut self, count: u64) {
        self.data(EventKind::BenefitComputed(count));
    }

    fn candidate_pruned(&mut self, reason: PruneReason) {
        self.data(EventKind::CandidatePruned(reason));
    }

    fn subtree_pruned(&mut self, reason: PruneReason) {
        self.data(EventKind::SubtreePruned(reason));
    }

    fn posting_scanned(&mut self, entries: u64) {
        self.data(EventKind::PostingScanned(entries));
    }

    fn heap_stale_pop(&mut self) {
        self.data(EventKind::HeapStalePop);
    }

    fn speculation(&mut self, committed: u64, wasted: u64) {
        self.data(EventKind::Speculation(committed, wasted));
    }

    fn guess_retried(&mut self) {
        self.data(EventKind::GuessRetried);
    }

    fn trace_started(&mut self, trace_id: TraceId, entry: &'static str) {
        let ctx = {
            let mut state = self.state();
            state.trace_started(trace_id, entry);
            state.context()
        };
        self.record(ctx, EventKind::TraceStarted(trace_id, entry));
    }

    fn worker_switched(&mut self, worker_id: u32) {
        let ctx = {
            let mut state = self.state();
            state.worker_switched(worker_id);
            state.context()
        };
        self.record(ctx, EventKind::WorkerSwitched(worker_id));
    }

    fn stall_detected(&mut self, ticks: u64, stalled_secs: f64) {
        self.data(EventKind::StallDetected(ticks, stalled_secs));
    }

    fn phase_started(&mut self, name: &'static str) {
        let ctx = {
            let mut state = self.state();
            state.phase_started(name);
            state.context()
        };
        self.record(ctx, EventKind::PhaseStarted(name));
    }

    fn phase_ended(&mut self, name: &'static str, seconds: f64) {
        let ctx = {
            let mut state = self.state();
            // Stamp the event with the span being closed, then close it.
            let ctx = state.context();
            state.phase_ended(name, seconds);
            ctx
        };
        self.record(ctx, EventKind::PhaseEnded(name, seconds));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::{PHASE_GUESS, PHASE_TOTAL};

    /// Drives a little two-worker run through a recorder: a main-thread
    /// total>guess nest with a replayed two-shard scan region inside.
    fn recorded() -> FlightRecorder {
        let mut r = FlightRecorder::new();
        r.trace_started(TraceId::mint("cmc", 100, 7), "cmc");
        r.phase_started(PHASE_TOTAL);
        r.phase_started(PHASE_GUESS);
        r.benefit_computed(10);
        // A parallel scan region replays: shard 0 → worker 1, shard 1 → 2.
        r.worker_switched(1);
        r.phase_started(PHASE_SCAN);
        r.benefit_computed(4);
        r.phase_ended(PHASE_SCAN, 0.01);
        r.worker_switched(2);
        r.phase_started(PHASE_SCAN);
        r.benefit_computed(6);
        r.phase_ended(PHASE_SCAN, 0.02);
        // A pruned-scan chunk: carries no events (the scan's advisory
        // counters are applied on the calling thread after the reduce).
        r.worker_switched(1);
        r.phase_started(PHASE_SCAN_PRUNE);
        r.phase_ended(PHASE_SCAN_PRUNE, 0.005);
        r.worker_switched(MAIN_WORKER);
        r.set_selected(3, 5, 1.0);
        r.phase_ended(PHASE_GUESS, 0.5);
        r.phase_ended(PHASE_TOTAL, 0.6);
        r
    }

    #[test]
    fn causal_tree_attaches_worker_spans_at_fork_point() {
        let r = recorded();
        let tree = r.causal_tree();
        assert_eq!(tree.name, PHASE_TOTAL);
        assert_eq!(tree.worker_id, MAIN_WORKER);
        let guess = tree.child(PHASE_GUESS).expect("guess under total");
        // Both workers' scan chunks aggregate under the guess fork point.
        let scan = guess.child(PHASE_SCAN).expect("scan under guess");
        assert_eq!(scan.count, 2, "two chunk completions");
        assert_eq!(scan.events, 2, "one benefit event per chunk");
        assert_eq!(scan.worker_id, 1, "first opener");
        assert!(scan.secs > 0.0);
        let prune = guess
            .child(PHASE_SCAN_PRUNE)
            .expect("scan_prune under guess");
        assert_eq!(prune.count, 1);
        assert_eq!(prune.events, 0, "advisories never ride the chunks");
        // Main-thread events stayed on the guess span.
        assert_eq!(guess.events, 2, "benefit_computed(10) + set_selected");
        // Span ids are arrival-ordered and parents link up.
        assert_eq!(tree.span_id, 1);
        assert_eq!(guess.parent_span_id, tree.span_id);
        assert_eq!(scan.parent_span_id, guess.span_id);
    }

    #[test]
    fn trace_id_latches_first_mint() {
        let mut r = FlightRecorder::new();
        let first = TraceId::mint("pareto_sweep", 50, 3);
        r.trace_started(first, "pareto_sweep");
        r.trace_started(TraceId::mint("cwsc", 50, 3), "cwsc"); // nested solve
        assert_eq!(r.trace_id(), first);
        assert_eq!(r.entry(), "pareto_sweep");
    }

    #[test]
    fn normalized_folds_scans_and_strips_volatile_fields() {
        let parallel = recorded().causal_tree().normalized();
        // The serial twin: same work, no scan spans, no worker switches.
        let mut serial = FlightRecorder::new();
        serial.trace_started(TraceId::mint("cmc", 100, 7), "cmc");
        serial.phase_started(PHASE_TOTAL);
        serial.phase_started(PHASE_GUESS);
        serial.benefit_computed(10);
        serial.benefit_computed(4);
        serial.benefit_computed(6);
        serial.set_selected(3, 5, 1.0);
        serial.phase_ended(PHASE_GUESS, 0.4);
        serial.phase_ended(PHASE_TOTAL, 0.45);
        let expected = serial.causal_tree().normalized();
        // Folding the per-worker scan chunks into their parent makes the
        // parallel tree *identical* to the serial one: same names, same
        // nesting, same completion counts, same event tallies, all
        // volatile coordinates (ids, workers, timings) stripped.
        assert_eq!(parallel, expected);
        assert_eq!(parallel.secs, 0.0);
        assert_eq!(parallel.worker_id, MAIN_WORKER);
        assert_eq!(parallel.span_id, 0);
        assert_eq!(parallel.events_total(), 4, "all four work events kept");
        assert!(
            parallel.child(PHASE_GUESS).unwrap().children.is_empty(),
            "no scan children survive"
        );
    }

    #[test]
    fn ring_drops_oldest_beyond_capacity() {
        let mut r = FlightRecorder::with_capacity(8); // 1 per shard
        assert_eq!(r.capacity(), 8);
        assert!(r.is_empty());
        for i in 0..5 {
            r.benefit_computed(i); // all main worker → one shard
        }
        assert_eq!(r.len(), 1, "single shard holds one event");
        assert_eq!(r.dropped(), 4);
    }

    #[test]
    fn dump_is_all_json_lines_with_header_and_tree() {
        let r = recorded();
        let mut buf = Vec::new();
        r.write_dump(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 3, "{text}");
        for line in &lines {
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "not a JSON object: {line}"
            );
        }
        assert!(lines[0].contains("\"flight\":\"scwsc\""), "{text}");
        assert!(lines[0].contains("\"entry\":\"cmc\""), "{text}");
        assert!(lines.last().unwrap().contains("\"causal_tree\":"), "{text}");
        // Events carry their causal coordinates and appear in seq order.
        let seqs: Vec<u64> = lines[1..lines.len() - 1]
            .iter()
            .map(|l| {
                let start = l.find("\"seq\":").unwrap() + 6;
                l[start..l[start..].find(',').unwrap() + start]
                    .parse()
                    .unwrap()
            })
            .collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted, "events in global sequence order");
        assert!(text.contains("\"event\":\"worker_switched\""), "{text}");
        assert!(text.contains("\"worker\":1"), "{text}");
    }

    #[test]
    fn clones_share_the_recording() {
        let mut writer = FlightRecorder::new();
        let reader = writer.clone();
        writer.trace_started(TraceId::mint("cwsc", 1, 2), "cwsc");
        writer.phase_started(PHASE_TOTAL);
        writer.benefit_computed(1);
        writer.phase_ended(PHASE_TOTAL, 0.1);
        assert_eq!(reader.trace_id(), TraceId::mint("cwsc", 1, 2));
        assert_eq!(reader.causal_tree().name, PHASE_TOTAL);
        assert_eq!(reader.len(), writer.len());
    }
}
