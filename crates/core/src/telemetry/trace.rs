//! Causal trace context: deterministic trace identifiers and the
//! `(trace_id, span_id, parent_span_id, worker_id)` coordinates that turn
//! a flat [`Observer`](super::Observer) event stream into a causal tree.
//!
//! Every solve entry point mints a [`TraceId`] — deterministically, from
//! the entry's name and its instance parameters, so the same query always
//! produces the same id (replayable post-mortems, cache-keyable traces) —
//! and announces it with [`Observer::trace_started`](super::Observer::trace_started)
//! just before opening its root span. Parallel regions announce which
//! worker recorded the following events with
//! [`Observer::worker_switched`](super::Observer::worker_switched); the
//! shard-then-replay machinery
//! ([`ThreadLocalTelemetry`](super::ThreadLocalTelemetry)) emits those
//! switches automatically, so a replayed parallel run carries enough
//! context to reconstruct *which thread's work caused what* instead of a
//! flattened serial stream.
//!
//! Span ids themselves are not carried in events: the event stream's
//! `phase_started`/`phase_ended` nesting plus the worker annotations
//! determine them, and consumers that need explicit ids (the
//! [`FlightRecorder`](super::FlightRecorder)) assign them in arrival
//! order, which is deterministic because shard replay order is.

use std::fmt;

/// The worker id of the main (calling) thread; shard `i` of a parallel
/// region records as worker `i + 1`.
pub const MAIN_WORKER: u32 = 0;

/// A deterministic 64-bit trace identifier minted at a solve entry point.
///
/// Two solves of the same entry point with the same instance parameters
/// yield the same id — the id names the *query*, not the invocation —
/// which keeps every derived artifact (flight dumps, exported metrics)
/// reproducible and diffable across runs and thread counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TraceId(pub u64);

impl TraceId {
    /// Mints the trace id for `entry` (a static entry-point name such as
    /// `"cmc"`) and two instance words (conventionally the element count
    /// and the packed size/target parameters). FNV-1a, so the id is stable
    /// across platforms and runs.
    pub fn mint(entry: &str, a: u64, b: u64) -> TraceId {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        for byte in entry.bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(PRIME);
        }
        for word in [a, b] {
            for byte in word.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(PRIME);
            }
        }
        // Reserve 0 for "no trace" so a default context is recognizable.
        TraceId(if h == 0 { 1 } else { h })
    }

    /// The raw 64-bit id (0 means "no trace minted").
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Whether this is the reserved "no trace" id.
    pub fn is_unset(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for TraceId {
    /// Sixteen lowercase hex digits, the W3C-traceparent-style rendering.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Packs a size bound and a coverage target into one word for
/// [`TraceId::mint`]'s second parameter (the conventional encoding used
/// by the set solvers: `k` in the high half, the target in the low).
pub fn pack_k_target(k: usize, target: usize) -> u64 {
    ((k as u64) << 32) ^ (target as u64 & 0xffff_ffff)
}

/// The causal coordinates attached to one enriched event: which trace it
/// belongs to, which span was innermost when it fired, that span's
/// parent, and which worker recorded it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TraceContext {
    /// The trace this event belongs to (0 = no trace minted yet).
    pub trace_id: TraceId,
    /// Innermost open span when the event fired (0 = no open span).
    pub span_id: u64,
    /// Parent of that span (0 = root).
    pub parent_span_id: u64,
    /// Recording worker ([`MAIN_WORKER`] for the calling thread).
    pub worker_id: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mint_is_deterministic_and_entry_sensitive() {
        let a = TraceId::mint("cmc", 100, 5);
        assert_eq!(a, TraceId::mint("cmc", 100, 5));
        assert_ne!(a, TraceId::mint("cwsc", 100, 5));
        assert_ne!(a, TraceId::mint("cmc", 101, 5));
        assert_ne!(a, TraceId::mint("cmc", 100, 6));
        assert!(!a.is_unset());
    }

    #[test]
    fn display_is_sixteen_hex_digits() {
        let id = TraceId::mint("opt_cmc", 7, 3);
        let text = id.to_string();
        assert_eq!(text.len(), 16);
        assert!(text.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(TraceId::default().to_string(), "0000000000000000");
        assert!(TraceId::default().is_unset());
    }

    #[test]
    fn pack_k_target_separates_halves() {
        assert_ne!(pack_k_target(1, 2), pack_k_target(2, 1));
        assert_ne!(pack_k_target(3, 0), pack_k_target(0, 3));
    }

    #[test]
    fn default_context_is_rootless() {
        let ctx = TraceContext::default();
        assert!(ctx.trace_id.is_unset());
        assert_eq!(ctx.span_id, 0);
        assert_eq!(ctx.parent_span_id, 0);
        assert_eq!(ctx.worker_id, MAIN_WORKER);
    }
}
