//! Structured solver observability: lifecycle events, aggregated metrics,
//! and JSONL trace export.
//!
//! The paper's empirical section is built on *internal* solver metrics —
//! "patterns considered" (Fig. 6), budget-guess rounds, per-phase runtime.
//! This module turns those into an explicit event stream: solvers emit
//! lifecycle events through an [`Observer`], and callers choose what to do
//! with them:
//!
//! * [`NoopObserver`] — ignore everything; every method is a default no-op
//!   the optimizer erases, so uninstrumented callers pay nothing;
//! * [`Stats`](crate::stats::Stats) — the classic three-counter struct,
//!   kept as a thin [`Observer`] adapter so existing call sites work
//!   unchanged;
//! * [`MetricsRecorder`] — counters, per-phase monotonic timings, and
//!   log-bucketed histograms (marginal-benefit distribution, heap
//!   re-heapify depth);
//! * [`JsonlSink`] — one JSON object per event to any [`io::Write`];
//! * [`Fanout`] — broadcast each event to several observers at once.
//!
//! Event vocabulary (see DESIGN.md §Observability for the full mapping to
//! the paper's figures):
//!
//! | event | emitted when |
//! |---|---|
//! | `guess_started` | a budget-guess round begins (`None` for single-round solvers) |
//! | `level_entered` | a geometric cost level of the CMC schedule is scheduled |
//! | `set_selected` | a set/pattern enters a candidate solution |
//! | `benefit_computed` | (marginal) benefits were computed for `count` candidates |
//! | `candidate_pruned` | a candidate was discarded before selection |
//! | `subtree_pruned` | a whole lattice subtree was cut (pattern solvers) |
//! | `posting_scanned` | index posting entries were scanned to expand a node |
//! | `heap_stale_pop` | the lazy-greedy heap popped a stale entry and re-scored it |
//! | `round_decided` | a selection round resolved: winner + runners-up + tie-break |
//! | `price_charged` | the winner's weight was split across its newly covered elements |
//! | `degrade_decided` | the engine degraded a solve (deadline/tick budget/cancel) |
//! | `guess_retried` | a panicked budget guess was contained and retried serially |
//! | `trace_started` | a solve entry point minted its deterministic [`TraceId`] |
//! | `worker_switched` | subsequent events were recorded by another worker (shard replay) |
//! | `stall_detected` | the liveness [`Watchdog`](watchdog::Watchdog) saw no progress within its deadline headroom |
//! | `phase_started` / `phase_ended` | a named span (e.g. [`PHASE_TOTAL`]) opened / closed |

use std::fmt::Write as _;
use std::io;
use std::time::Instant;

#[cfg(feature = "alloc-stats")]
pub mod alloc;
pub mod audit;
pub mod export;
pub mod flight;
pub mod replay;
pub mod spans;
pub mod trace;
pub mod watchdog;
pub mod window;

pub use audit::{AuditCandidate, DecisionLedger, QualityCertificate};
pub use export::{parse_prometheus, render_prometheus, render_prometheus_windowed, SloGauges};
pub use flight::{CausalNode, FlightRecorder};
pub use replay::{EventLog, ThreadLocalTelemetry};
pub use spans::{SpanCounters, SpanNode, SpanProfiler};
pub use trace::{pack_k_target, TraceContext, TraceId, MAIN_WORKER};
pub use watchdog::{Watchdog, WatchdogMonitor};
pub use window::{EntryWindow, RollingHistogram, SolveSample, SolveWindows, WindowedCounter};

/// Span name covering a solver's whole run; [`Stats`](crate::stats::Stats)
/// copies its duration into `elapsed_secs`.
pub const PHASE_TOTAL: &str = "total";

/// Span name of one budget guess inside a CMC run (child of
/// [`PHASE_TOTAL`]; one completion per `guess_started`).
pub const PHASE_GUESS: &str = "guess";

/// Span name of the initial benefit materialization of a round/guess.
pub const PHASE_INIT: &str = "init";

/// Span name of a lattice-expansion sweep (posting scans + child
/// materialization) inside the optimized pattern solvers.
pub const PHASE_EXPAND: &str = "expand";

/// Span name of a selection sweep (argmax + cover update + recount).
pub const PHASE_SELECT: &str = "select";

/// Span name of one worker's chunk of a parallel benefit scan. Emitted
/// only on parallel paths (per-worker, nested under the enclosing round
/// span); serial runs never produce it.
pub const PHASE_SCAN: &str = "scan";

/// Span name of one worker's chunk of a **pruned** benefit scan (the
/// bound/sketch-gated variant of [`PHASE_SCAN`]). One-sided by design:
/// a run with `SCWSC_PRUNE=0` (or an older baseline snapshot) never
/// produces it, which `scwsc_bench diff --attribute` labels as a "new"
/// span rather than a mover against zero.
pub const PHASE_SCAN_PRUNE: &str = "scan_prune";

/// Why a candidate (or lattice subtree) was discarded before selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PruneReason {
    /// Marginal benefit below the CWSC eligibility floor `rem/i`.
    BelowFloor,
    /// Marginal benefit dropped to zero (nothing new to cover).
    Exhausted,
    /// A cost bound proved the candidate cannot beat the incumbent.
    CostBound,
    /// A coverage bound proved the target is unreachable from here.
    CoverageBound,
}

impl PruneReason {
    /// Number of distinct reasons (array-indexing aid for aggregators).
    pub const COUNT: usize = 4;

    /// Stable snake_case name used in traces and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            PruneReason::BelowFloor => "below_floor",
            PruneReason::Exhausted => "exhausted",
            PruneReason::CostBound => "cost_bound",
            PruneReason::CoverageBound => "coverage_bound",
        }
    }

    /// Dense index in `0..COUNT`, in declaration order.
    pub fn index(self) -> usize {
        match self {
            PruneReason::BelowFloor => 0,
            PruneReason::Exhausted => 1,
            PruneReason::CostBound => 2,
            PruneReason::CoverageBound => 3,
        }
    }

    /// All reasons in [`index`](PruneReason::index) order.
    pub fn all() -> [PruneReason; PruneReason::COUNT] {
        [
            PruneReason::BelowFloor,
            PruneReason::Exhausted,
            PruneReason::CostBound,
            PruneReason::CoverageBound,
        ]
    }
}

/// Receiver of solver lifecycle events. Every method has an empty default
/// body, so observers implement only what they care about and the
/// [`NoopObserver`] path compiles away entirely.
///
/// Solvers take `&mut O where O: Observer + ?Sized`, so both concrete
/// observers (`&mut Stats`) and trait objects (`&mut dyn Observer`, as
/// inside [`Fanout`]) work.
pub trait Observer {
    /// A budget-guess round began. `budget` is the guessed `B` for CMC's
    /// outer loop, `None` for single-round solvers (CWSC, the baselines).
    fn guess_started(&mut self, budget: Option<f64>) {
        let _ = budget;
    }

    /// Level `level` of the CMC cost schedule was scheduled with a quota
    /// (`allowance`) of picks. Emitted for the full schedule of each guess.
    fn level_entered(&mut self, level: usize, allowance: usize) {
        let _ = (level, allowance);
    }

    /// A set/pattern entered a candidate solution.
    fn set_selected(&mut self, id: u64, marginal_benefit: u64, cost: f64) {
        let _ = (id, marginal_benefit, cost);
    }

    /// `count` candidates had their (marginal) benefit computed — the
    /// paper's Fig. 6 "patterns considered" unit of work.
    fn benefit_computed(&mut self, count: u64) {
        let _ = count;
    }

    /// A candidate was discarded before selection.
    fn candidate_pruned(&mut self, reason: PruneReason) {
        let _ = reason;
    }

    /// A whole lattice subtree was cut without materializing it
    /// (pattern-lattice solvers only).
    fn subtree_pruned(&mut self, reason: PruneReason) {
        let _ = reason;
    }

    /// `entries` inverted-index posting entries (parent rows) were scanned
    /// to expand a lattice node into its children.
    fn posting_scanned(&mut self, entries: u64) {
        let _ = entries;
    }

    /// The lazy-greedy heap popped a stale entry and had to re-score it.
    fn heap_stale_pop(&mut self) {}

    /// A selection round resolved: `winner` beat `runners_up` (best first,
    /// at most [`audit::RUNNERS_UP`]) under `order`
    /// ([`audit::ORDER_BENEFIT`] or [`audit::ORDER_GAIN`]). Emitted once
    /// per `set_selected`, *before* it, by every greedy solver; the
    /// [`DecisionLedger`](audit::DecisionLedger) derives margins and
    /// tie-break keys from it. The derived counter is **excluded** from
    /// the exact-diff set (audit plumbing, not algorithmic work).
    fn round_decided(
        &mut self,
        order: &'static str,
        winner: &audit::AuditCandidate,
        runners_up: &[audit::AuditCandidate],
    ) {
        let _ = (order, winner, runners_up);
    }

    /// The winning set's weight `cost` was charged uniformly across the
    /// `elements` it newly covered — the greedy price vector behind
    /// [`audit::certify`]. Emitted right after the matching
    /// [`round_decided`](Observer::round_decided).
    fn price_charged(&mut self, set_id: u64, elements: &[u32], cost: f64) {
        let _ = (set_id, elements, cost);
    }

    /// The resilience engine decided to degrade a solve (`reason` is the
    /// stable `DegradeReason::as_str` string) with `covered` of `target`
    /// elements covered. Fires only on deadline/fault paths, which a
    /// healthy run never takes — excluded from the exact-diff set.
    fn degrade_decided(&mut self, reason: &'static str, covered: u64, target: u64) {
        let _ = (reason, covered, target);
    }

    /// A speculative budget-guess window resolved: `committed` guesses had
    /// their telemetry committed (identical to what a serial run would
    /// have produced) and `wasted` were cancelled or discarded. Emitted
    /// only by parallel solvers; serial runs never fire it, so the derived
    /// counters are deliberately **excluded** from the exact-diff set.
    fn speculation(&mut self, committed: u64, wasted: u64) {
        let _ = (committed, wasted);
    }

    /// A budget guess panicked, was contained by the resilience engine,
    /// and is being retried once serially. Fires only on fault/panic
    /// paths, which a healthy serial run never takes — so the derived
    /// counter is **excluded** from the exact-diff set, like the
    /// speculation counters.
    fn guess_retried(&mut self) {}

    /// A solve entry point minted its deterministic [`TraceId`] and is
    /// about to open its root span. `entry` is the entry point's stable
    /// name (`"cmc"`, `"opt_cwsc"`, …). Nested solves (a Pareto sweep's
    /// inner rounds) emit their own `trace_started`; consumers that track
    /// one trace per run latch the first. The derived counter is
    /// **excluded** from the exact-diff set (it is new observability
    /// plumbing, not algorithmic work — see DESIGN.md §13).
    fn trace_started(&mut self, trace_id: trace::TraceId, entry: &'static str) {
        let _ = (trace_id, entry);
    }

    /// Subsequent events were recorded by `worker_id`
    /// ([`MAIN_WORKER`](trace::MAIN_WORKER) = the calling thread; shard
    /// `i` of a parallel region reports as `i + 1`). Emitted by the
    /// shard-then-replay machinery, so replayed parallel telemetry keeps
    /// its causal attribution. Excluded from the exact-diff set: a serial
    /// run never switches workers.
    fn worker_switched(&mut self, worker_id: u32) {
        let _ = worker_id;
    }

    /// `count` scan candidates were disposed of *without* a completed
    /// exact masked count: a stale upper bound, block-summary sketch, or
    /// early-exit kernel proved they could not change the round's
    /// decision (DESIGN.md §15). Pruned-scan runs only; how many fire
    /// depends on chunking, so the derived counter is **excluded** from
    /// the exact-diff set.
    fn scan_pruned(&mut self, count: u64) {
        let _ = count;
    }

    /// `count` stale scan upper bounds were replaced by fresh exact
    /// counts. Advisory like [`scan_pruned`](Observer::scan_pruned) —
    /// excluded from the exact-diff set.
    fn bound_refreshed(&mut self, count: u64) {
        let _ = count;
    }

    /// `count` bound/sketch probes were inconclusive and fell back to the
    /// full exact count. Advisory like
    /// [`scan_pruned`](Observer::scan_pruned) — excluded from the
    /// exact-diff set.
    fn sketch_inconclusive(&mut self, count: u64) {
        let _ = count;
    }

    /// The liveness [`Watchdog`](watchdog::Watchdog) observed no solve
    /// progress (no events, no engine `checkpoint()` ticks) for
    /// `stalled_secs` wall-clock seconds; `ticks` is the engine tick
    /// count at detection time. Fires only on stalled solves, which a
    /// healthy run never produces — **excluded** from the exact-diff
    /// set, like the other fault-path counters.
    fn stall_detected(&mut self, ticks: u64, stalled_secs: f64) {
        let _ = (ticks, stalled_secs);
    }

    /// A named span opened. Pair with [`phase_ended`](Observer::phase_ended).
    fn phase_started(&mut self, name: &'static str) {
        let _ = name;
    }

    /// A named span closed after `seconds` of wall-clock time. The solver
    /// measures the duration itself so observers stay stateless.
    fn phase_ended(&mut self, name: &'static str, seconds: f64) {
        let _ = (name, seconds);
    }
}

/// The do-nothing observer: all default methods, zero cost after inlining.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopObserver;

impl Observer for NoopObserver {}

/// RAII-style helper for emitting a paired
/// [`phase_started`](Observer::phase_started) /
/// [`phase_ended`](Observer::phase_ended) span. Not `Drop`-based — the
/// observer borrow cannot be held across the span — so call
/// [`exit`](PhaseSpan::exit) explicitly.
#[derive(Debug)]
pub struct PhaseSpan {
    name: &'static str,
    start: Instant,
}

impl PhaseSpan {
    /// Emits `phase_started(name)` and starts the clock.
    pub fn enter<O: Observer + ?Sized>(obs: &mut O, name: &'static str) -> PhaseSpan {
        obs.phase_started(name);
        PhaseSpan {
            name,
            start: Instant::now(),
        }
    }

    /// Emits `phase_ended(name, seconds)` and returns the measured seconds.
    pub fn exit<O: Observer + ?Sized>(self, obs: &mut O) -> f64 {
        let seconds = self.start.elapsed().as_secs_f64();
        obs.phase_ended(self.name, seconds);
        seconds
    }
}

/// A histogram with power-of-two buckets: bucket `0` holds zeros, bucket
/// `i ≥ 1` holds values in `[2^(i-1), 2^i − 1]` (so the top bucket, 64,
/// is `[2^63, u64::MAX]` — no value is unrepresentable). Hand-rolled (no
/// deps) and allocation-light: the bucket vector grows to the highest
/// observed magnitude only.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram::default()
    }

    /// Index of the bucket `value` falls into.
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Inclusive value range `[lo, hi]` of bucket `i` (bucket 0 is the
    /// point range `[0, 0]`; bucket 64 is `[2^63, u64::MAX]`).
    ///
    /// The upper bound is *inclusive*: an exclusive bound for the top
    /// bucket would be `2^64`, which `u64` cannot represent — the earlier
    /// exclusive formulation silently excluded `u64::MAX` from the bucket
    /// [`bucket_of`](LogHistogram::bucket_of) assigns it to.
    ///
    /// # Panics
    /// Panics if `i > 64` (no value maps to such a bucket).
    pub fn bucket_range(i: usize) -> (u64, u64) {
        assert!(i <= 64, "bucket {i} out of range (values map to 0..=64)");
        match i {
            0 => (0, 0),
            64 => (1u64 << 63, u64::MAX),
            _ => (1u64 << (i - 1), (1u64 << i) - 1),
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        let b = LogHistogram::bucket_of(value);
        if b >= self.buckets.len() {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Per-bucket observation counts (index = [`bucket_of`](LogHistogram::bucket_of)).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The `q`-quantile (`0.0 ≤ q ≤ 1.0`, clamped) as an upper-bound
    /// estimate: the smallest recorded-bucket upper bound below which at
    /// least `⌈q·count⌉` observations fall, capped at the exact observed
    /// [`max`](LogHistogram::max) so the estimate never exceeds a value
    /// that was actually recorded. Returns 0 for an empty histogram.
    ///
    /// The log-bucketed layout bounds the relative error at 2× (one
    /// power-of-two bucket), which is the standard trade for an
    /// allocation-light always-on histogram; p50/p90/p99 derived here are
    /// the SLO surface exported by
    /// [`render_prometheus`](crate::telemetry::render_prometheus).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based; q = 0 means "smallest".
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let (_, hi) = LogHistogram::bucket_range(i);
                return hi.min(self.max);
            }
        }
        self.max // unreachable when counts are consistent; safe fallback
    }

    /// Folds `other`'s observations into `self`, as if every value had
    /// been [`record`](LogHistogram::record)ed here directly (bucket
    /// counts add, sum saturates, max takes the larger).
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

/// Accumulated wall-clock time of one named phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseMetric {
    /// Span name as passed to [`Observer::phase_started`].
    pub name: &'static str,
    /// Total seconds across all spans with this name.
    pub seconds: f64,
    /// Number of completed spans with this name.
    pub count: u64,
}

/// An [`Observer`] that aggregates every event into counters, per-phase
/// monotonic timings, and log-bucketed histograms — the in-process
/// equivalent of the numbers behind the paper's Figures 5–9.
#[derive(Debug, Clone, Default)]
pub struct MetricsRecorder {
    /// Budget-guess rounds started.
    pub guesses: u64,
    /// Cost levels scheduled across all guesses.
    pub levels_entered: u64,
    /// Sum of level quotas across all guesses (`Σ allowance`).
    pub level_allowance: u64,
    /// Sets/patterns selected into candidate solutions.
    pub selections: u64,
    /// Benefit computations — the Fig. 6 "considered" metric.
    pub benefits_computed: u64,
    /// Candidates pruned, indexed by [`PruneReason::index`].
    pub candidates_pruned: [u64; PruneReason::COUNT],
    /// Lattice subtrees pruned, indexed by [`PruneReason::index`].
    pub subtrees_pruned: [u64; PruneReason::COUNT],
    /// Stale lazy-greedy heap pops (each one re-scored a candidate).
    pub heap_stale_pops: u64,
    /// Inverted-index posting entries scanned during lattice expansion.
    pub postings_scanned: u64,
    /// Speculative budget guesses whose telemetry was committed. Parallel
    /// runs only — excluded from the exact-diff counter set, because a
    /// serial run never speculates.
    pub guesses_committed: u64,
    /// Speculative budget guesses cancelled or discarded. Parallel runs
    /// only — excluded from the exact-diff counter set.
    pub guesses_wasted: u64,
    /// Panicked budget guesses contained and retried serially by the
    /// resilience engine. Fault paths only — excluded from the exact-diff
    /// counter set.
    pub guesses_retried: u64,
    /// Traces minted by solve entry points. Observability plumbing —
    /// excluded from the exact-diff counter set (DESIGN.md §13).
    pub traces_started: u64,
    /// Worker-context switches replayed from parallel telemetry shards.
    /// Parallel runs only — excluded from the exact-diff counter set.
    pub worker_switches: u64,
    /// Selection rounds audited (`round_decided` events). Audit plumbing —
    /// excluded from the exact-diff counter set like the trace counters.
    pub rounds_audited: u64,
    /// Scan candidates disposed of without a completed exact masked count
    /// (bound/sketch/early-exit decided). Pruned-scan runs only; varies
    /// with chunking — excluded from the exact-diff counter set.
    pub scan_candidates_pruned: u64,
    /// Stale scan upper bounds replaced by fresh exact counts. Advisory —
    /// excluded from the exact-diff counter set.
    pub scan_bounds_refreshed: u64,
    /// Bound/sketch probes that fell back to the full exact count.
    /// Advisory — excluded from the exact-diff counter set.
    pub scan_sketch_inconclusive: u64,
    /// Stalls flagged by the liveness watchdog (no progress within
    /// deadline headroom). Fault/overload paths only — excluded from the
    /// exact-diff counter set.
    pub stalls_detected: u64,
    /// Distribution of marginal benefits at selection time.
    pub marginal_benefit_hist: LogHistogram,
    /// Distribution of consecutive stale pops preceding each selection —
    /// the heap "re-heapify depth".
    pub stale_run_hist: LogHistogram,
    phases: Vec<PhaseMetric>,
    stale_run: u64,
}

impl MetricsRecorder {
    /// A fresh, zeroed recorder.
    pub fn new() -> MetricsRecorder {
        MetricsRecorder::default()
    }

    /// Completed phases in first-seen order.
    pub fn phases(&self) -> &[PhaseMetric] {
        &self.phases
    }

    /// Total seconds recorded for `name`, if any span with it completed.
    pub fn phase_seconds(&self, name: &str) -> Option<f64> {
        self.phases
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.seconds)
    }

    /// All candidates pruned, summed over reasons.
    pub fn candidates_pruned_total(&self) -> u64 {
        self.candidates_pruned.iter().sum()
    }

    /// All subtrees pruned, summed over reasons.
    pub fn subtrees_pruned_total(&self) -> u64 {
        self.subtrees_pruned.iter().sum()
    }

    /// Folds `other`'s aggregates into `self` — the shard-then-merge half
    /// of parallel telemetry: workers record into private recorders and
    /// the caller merges them back, so totals equal a single-recorder run.
    ///
    /// Phases merge by name (new names append in `other`'s order); the
    /// in-flight stale-run counter adds so a merge mid-run loses nothing.
    pub fn merge(&mut self, other: &MetricsRecorder) {
        self.guesses += other.guesses;
        self.levels_entered += other.levels_entered;
        self.level_allowance += other.level_allowance;
        self.selections += other.selections;
        self.benefits_computed += other.benefits_computed;
        for (a, b) in self
            .candidates_pruned
            .iter_mut()
            .zip(&other.candidates_pruned)
        {
            *a += b;
        }
        for (a, b) in self.subtrees_pruned.iter_mut().zip(&other.subtrees_pruned) {
            *a += b;
        }
        self.heap_stale_pops += other.heap_stale_pops;
        self.postings_scanned += other.postings_scanned;
        self.guesses_committed += other.guesses_committed;
        self.guesses_wasted += other.guesses_wasted;
        self.guesses_retried += other.guesses_retried;
        self.traces_started += other.traces_started;
        self.worker_switches += other.worker_switches;
        self.rounds_audited += other.rounds_audited;
        self.scan_candidates_pruned += other.scan_candidates_pruned;
        self.scan_bounds_refreshed += other.scan_bounds_refreshed;
        self.scan_sketch_inconclusive += other.scan_sketch_inconclusive;
        self.stalls_detected += other.stalls_detected;
        self.marginal_benefit_hist
            .merge(&other.marginal_benefit_hist);
        self.stale_run_hist.merge(&other.stale_run_hist);
        for p in &other.phases {
            match self.phases.iter_mut().find(|q| q.name == p.name) {
                Some(q) => {
                    q.seconds += p.seconds;
                    q.count += p.count;
                }
                None => self.phases.push(p.clone()),
            }
        }
        self.stale_run += other.stale_run;
    }
}

impl Observer for MetricsRecorder {
    fn guess_started(&mut self, _budget: Option<f64>) {
        self.guesses += 1;
    }

    fn level_entered(&mut self, _level: usize, allowance: usize) {
        self.levels_entered += 1;
        self.level_allowance += allowance as u64;
    }

    fn set_selected(&mut self, _id: u64, marginal_benefit: u64, _cost: f64) {
        self.selections += 1;
        self.marginal_benefit_hist.record(marginal_benefit);
        self.stale_run_hist.record(self.stale_run);
        self.stale_run = 0;
    }

    fn benefit_computed(&mut self, count: u64) {
        self.benefits_computed += count;
    }

    fn candidate_pruned(&mut self, reason: PruneReason) {
        self.candidates_pruned[reason.index()] += 1;
    }

    fn subtree_pruned(&mut self, reason: PruneReason) {
        self.subtrees_pruned[reason.index()] += 1;
    }

    fn posting_scanned(&mut self, entries: u64) {
        self.postings_scanned += entries;
    }

    fn heap_stale_pop(&mut self) {
        self.heap_stale_pops += 1;
        self.stale_run += 1;
    }

    fn speculation(&mut self, committed: u64, wasted: u64) {
        self.guesses_committed += committed;
        self.guesses_wasted += wasted;
    }

    fn guess_retried(&mut self) {
        self.guesses_retried += 1;
    }

    fn trace_started(&mut self, _trace_id: trace::TraceId, _entry: &'static str) {
        self.traces_started += 1;
    }

    fn worker_switched(&mut self, _worker_id: u32) {
        self.worker_switches += 1;
    }

    fn round_decided(
        &mut self,
        _order: &'static str,
        _winner: &audit::AuditCandidate,
        _runners_up: &[audit::AuditCandidate],
    ) {
        self.rounds_audited += 1;
    }

    fn scan_pruned(&mut self, count: u64) {
        self.scan_candidates_pruned += count;
    }

    fn bound_refreshed(&mut self, count: u64) {
        self.scan_bounds_refreshed += count;
    }

    fn sketch_inconclusive(&mut self, count: u64) {
        self.scan_sketch_inconclusive += count;
    }

    fn stall_detected(&mut self, _ticks: u64, _stalled_secs: f64) {
        self.stalls_detected += 1;
    }

    fn phase_ended(&mut self, name: &'static str, seconds: f64) {
        match self.phases.iter_mut().find(|p| p.name == name) {
            Some(p) => {
                p.seconds += seconds;
                p.count += 1;
            }
            None => self.phases.push(PhaseMetric {
                name,
                seconds,
                count: 1,
            }),
        }
    }
}

/// An [`Observer`] that serializes every event as one JSON object per line
/// to any [`io::Write`]. Each line carries `"t"`, seconds since the sink
/// was created, and `"event"`, the event name, plus the event's fields.
///
/// The encoder is hand-rolled (the workspace deliberately carries no JSON
/// serializer); non-finite floats become JSON `null`. Write errors are
/// latched rather than panicking mid-solve: the first failure silences the
/// sink and [`has_failed`](JsonlSink::has_failed) reports it.
///
/// Dropping the sink flushes the writer, so a trace file is never left
/// with buffered-but-unwritten events when the process exits on a panic
/// or degradation path; callers that want the flush error call
/// [`flush`](JsonlSink::flush) or [`into_inner`](JsonlSink::into_inner)
/// explicitly before exiting non-zero.
#[derive(Debug)]
pub struct JsonlSink<W: io::Write> {
    out: Option<W>,
    start: Instant,
    failed: bool,
    buf: String,
}

impl<W: io::Write> JsonlSink<W> {
    /// Wraps a writer; the trace clock starts now.
    pub fn new(out: W) -> JsonlSink<W> {
        JsonlSink {
            out: Some(out),
            start: Instant::now(),
            failed: false,
            buf: String::with_capacity(128),
        }
    }

    /// Whether any write has failed (later events were dropped).
    pub fn has_failed(&self) -> bool {
        self.failed
    }

    /// Flushes buffered events through to the underlying writer. Called
    /// automatically on drop (where the error can only be latched); call
    /// it explicitly before a non-zero process exit to surface the error.
    pub fn flush(&mut self) -> io::Result<()> {
        match self.out.as_mut() {
            Some(out) => out.flush().inspect_err(|_| self.failed = true),
            None => Ok(()),
        }
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(mut self) -> io::Result<W> {
        let mut out = self.out.take().expect("writer present until taken");
        out.flush()?;
        Ok(out)
    }

    /// Emits one line: `{"t":<secs>,"event":"<event>"<fields>}\n`.
    /// `fields` must be empty or start with a comma.
    fn emit(&mut self, event: &str, fields: &str) {
        if self.failed {
            return;
        }
        let t = self.start.elapsed().as_secs_f64();
        self.buf.clear();
        let _ = write!(
            self.buf,
            "{{\"t\":{},\"event\":\"{event}\"{fields}}}",
            json_f64(t)
        );
        self.buf.push('\n');
        let Some(out) = self.out.as_mut() else { return };
        if out.write_all(self.buf.as_bytes()).is_err() {
            self.failed = true;
        }
    }
}

impl<W: io::Write> Drop for JsonlSink<W> {
    /// Best-effort flush so buffered trace lines survive unwinding; the
    /// error (if any) is latched in [`has_failed`](JsonlSink::has_failed).
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

/// Formats an `f64` as a JSON value (non-finite → `null`).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let mut s = format!("{v}");
        if !s.contains(['.', 'e', 'E']) {
            s.push_str(".0");
        }
        s
    } else {
        "null".to_owned()
    }
}

impl<W: io::Write> Observer for JsonlSink<W> {
    fn guess_started(&mut self, budget: Option<f64>) {
        let b = match budget {
            Some(v) => json_f64(v),
            None => "null".to_owned(),
        };
        self.emit("guess_started", &format!(",\"budget\":{b}"));
    }

    fn level_entered(&mut self, level: usize, allowance: usize) {
        self.emit(
            "level_entered",
            &format!(",\"level\":{level},\"allowance\":{allowance}"),
        );
    }

    fn set_selected(&mut self, id: u64, marginal_benefit: u64, cost: f64) {
        self.emit(
            "set_selected",
            &format!(
                ",\"id\":{id},\"marginal_benefit\":{marginal_benefit},\"cost\":{}",
                json_f64(cost)
            ),
        );
    }

    fn benefit_computed(&mut self, count: u64) {
        self.emit("benefit_computed", &format!(",\"count\":{count}"));
    }

    fn candidate_pruned(&mut self, reason: PruneReason) {
        self.emit(
            "candidate_pruned",
            &format!(",\"reason\":\"{}\"", reason.as_str()),
        );
    }

    fn subtree_pruned(&mut self, reason: PruneReason) {
        self.emit(
            "subtree_pruned",
            &format!(",\"reason\":\"{}\"", reason.as_str()),
        );
    }

    fn posting_scanned(&mut self, entries: u64) {
        self.emit("posting_scanned", &format!(",\"entries\":{entries}"));
    }

    fn heap_stale_pop(&mut self) {
        self.emit("heap_stale_pop", "");
    }

    fn round_decided(
        &mut self,
        order: &'static str,
        winner: &audit::AuditCandidate,
        runners_up: &[audit::AuditCandidate],
    ) {
        let mut f = format!(
            ",\"order\":\"{order}\",\"winner\":{},\"runners_up\":[",
            audit::cand_json(winner)
        );
        for (i, r) in runners_up.iter().enumerate() {
            if i > 0 {
                f.push(',');
            }
            f.push_str(&audit::cand_json(r));
        }
        f.push(']');
        self.emit("round_decided", &f);
    }

    fn price_charged(&mut self, set_id: u64, elements: &[u32], cost: f64) {
        let mut f = format!(
            ",\"set\":{set_id},\"cost\":{},\"elements\":[",
            json_f64(cost)
        );
        for (i, e) in elements.iter().enumerate() {
            if i > 0 {
                f.push(',');
            }
            let _ = write!(f, "{e}");
        }
        f.push(']');
        self.emit("price_charged", &f);
    }

    fn degrade_decided(&mut self, reason: &'static str, covered: u64, target: u64) {
        self.emit(
            "degrade_decided",
            &format!(",\"reason\":\"{reason}\",\"covered\":{covered},\"target\":{target}"),
        );
    }

    fn speculation(&mut self, committed: u64, wasted: u64) {
        self.emit(
            "speculation",
            &format!(",\"committed\":{committed},\"wasted\":{wasted}"),
        );
    }

    fn guess_retried(&mut self) {
        self.emit("guess_retried", "");
    }

    fn trace_started(&mut self, trace_id: trace::TraceId, entry: &'static str) {
        self.emit(
            "trace_started",
            &format!(",\"trace_id\":\"{trace_id}\",\"entry\":\"{entry}\""),
        );
    }

    fn worker_switched(&mut self, worker_id: u32) {
        self.emit("worker_switched", &format!(",\"worker\":{worker_id}"));
    }

    fn stall_detected(&mut self, ticks: u64, stalled_secs: f64) {
        self.emit(
            "stall_detected",
            &format!(
                ",\"ticks\":{ticks},\"stalled_secs\":{}",
                json_f64(stalled_secs)
            ),
        );
    }

    fn phase_started(&mut self, name: &'static str) {
        self.emit("phase_started", &format!(",\"name\":\"{name}\""));
    }

    fn phase_ended(&mut self, name: &'static str, seconds: f64) {
        self.emit(
            "phase_ended",
            &format!(",\"name\":\"{name}\",\"seconds\":{}", json_f64(seconds)),
        );
    }
}

/// Broadcasts every event to each attached observer, in attachment order.
/// Lets one solve feed `Stats`, a [`MetricsRecorder`], and a [`JsonlSink`]
/// simultaneously.
#[derive(Default)]
pub struct Fanout<'a> {
    observers: Vec<&'a mut dyn Observer>,
}

impl<'a> Fanout<'a> {
    /// An empty fanout (all events dropped until observers attach).
    pub fn new() -> Fanout<'a> {
        Fanout {
            observers: Vec::new(),
        }
    }

    /// Attaches one more observer.
    pub fn attach(&mut self, observer: &'a mut dyn Observer) -> &mut Self {
        self.observers.push(observer);
        self
    }

    /// Number of attached observers.
    pub fn len(&self) -> usize {
        self.observers.len()
    }

    /// Whether no observer is attached.
    pub fn is_empty(&self) -> bool {
        self.observers.is_empty()
    }
}

impl Observer for Fanout<'_> {
    fn guess_started(&mut self, budget: Option<f64>) {
        for o in &mut self.observers {
            o.guess_started(budget);
        }
    }

    fn level_entered(&mut self, level: usize, allowance: usize) {
        for o in &mut self.observers {
            o.level_entered(level, allowance);
        }
    }

    fn set_selected(&mut self, id: u64, marginal_benefit: u64, cost: f64) {
        for o in &mut self.observers {
            o.set_selected(id, marginal_benefit, cost);
        }
    }

    fn benefit_computed(&mut self, count: u64) {
        for o in &mut self.observers {
            o.benefit_computed(count);
        }
    }

    fn candidate_pruned(&mut self, reason: PruneReason) {
        for o in &mut self.observers {
            o.candidate_pruned(reason);
        }
    }

    fn subtree_pruned(&mut self, reason: PruneReason) {
        for o in &mut self.observers {
            o.subtree_pruned(reason);
        }
    }

    fn posting_scanned(&mut self, entries: u64) {
        for o in &mut self.observers {
            o.posting_scanned(entries);
        }
    }

    fn heap_stale_pop(&mut self) {
        for o in &mut self.observers {
            o.heap_stale_pop();
        }
    }

    fn round_decided(
        &mut self,
        order: &'static str,
        winner: &audit::AuditCandidate,
        runners_up: &[audit::AuditCandidate],
    ) {
        for o in &mut self.observers {
            o.round_decided(order, winner, runners_up);
        }
    }

    fn price_charged(&mut self, set_id: u64, elements: &[u32], cost: f64) {
        for o in &mut self.observers {
            o.price_charged(set_id, elements, cost);
        }
    }

    fn degrade_decided(&mut self, reason: &'static str, covered: u64, target: u64) {
        for o in &mut self.observers {
            o.degrade_decided(reason, covered, target);
        }
    }

    fn speculation(&mut self, committed: u64, wasted: u64) {
        for o in &mut self.observers {
            o.speculation(committed, wasted);
        }
    }

    fn guess_retried(&mut self) {
        for o in &mut self.observers {
            o.guess_retried();
        }
    }

    fn trace_started(&mut self, trace_id: trace::TraceId, entry: &'static str) {
        for o in &mut self.observers {
            o.trace_started(trace_id, entry);
        }
    }

    fn worker_switched(&mut self, worker_id: u32) {
        for o in &mut self.observers {
            o.worker_switched(worker_id);
        }
    }

    fn scan_pruned(&mut self, count: u64) {
        for o in &mut self.observers {
            o.scan_pruned(count);
        }
    }

    fn bound_refreshed(&mut self, count: u64) {
        for o in &mut self.observers {
            o.bound_refreshed(count);
        }
    }

    fn sketch_inconclusive(&mut self, count: u64) {
        for o in &mut self.observers {
            o.sketch_inconclusive(count);
        }
    }

    fn stall_detected(&mut self, ticks: u64, stalled_secs: f64) {
        for o in &mut self.observers {
            o.stall_detected(ticks, stalled_secs);
        }
    }

    fn phase_started(&mut self, name: &'static str) {
        for o in &mut self.observers {
            o.phase_started(name);
        }
    }

    fn phase_ended(&mut self, name: &'static str, seconds: f64) {
        for o in &mut self.observers {
            o.phase_ended(name, seconds);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prune_reason_round_trip() {
        for (i, r) in PruneReason::all().into_iter().enumerate() {
            assert_eq!(r.index(), i);
            assert!(!r.as_str().is_empty());
        }
    }

    #[test]
    fn log_histogram_bucketing() {
        assert_eq!(LogHistogram::bucket_of(0), 0);
        assert_eq!(LogHistogram::bucket_of(1), 1);
        assert_eq!(LogHistogram::bucket_of(2), 2);
        assert_eq!(LogHistogram::bucket_of(3), 2);
        assert_eq!(LogHistogram::bucket_of(4), 3);
        assert_eq!(LogHistogram::bucket_of(u64::MAX), 64);
        assert_eq!(LogHistogram::bucket_range(0), (0, 0));
        assert_eq!(LogHistogram::bucket_range(2), (2, 3));
        for v in [0u64, 1, 2, 3, 7, 8, 1023, 1024] {
            let (lo, hi) = LogHistogram::bucket_range(LogHistogram::bucket_of(v));
            assert!(lo <= v && v <= hi, "{v} outside [{lo},{hi}]");
        }
    }

    /// Exhaustive boundary sweep: every power of two, its neighbours, zero,
    /// and `u64::MAX` land in a bucket whose inclusive range contains them,
    /// buckets tile the value space without gaps or overlaps, and the
    /// bucket index is monotone in the value.
    #[test]
    fn log_histogram_bucket_boundaries_exhaustive() {
        // bucket_of at every power of two and its neighbours.
        for i in 0..64u32 {
            let p = 1u64 << i;
            assert_eq!(LogHistogram::bucket_of(p), i as usize + 1, "2^{i}");
            if p > 1 {
                assert_eq!(LogHistogram::bucket_of(p - 1), i as usize, "2^{i}-1");
            }
            let (lo, hi) = LogHistogram::bucket_range(LogHistogram::bucket_of(p));
            assert!(lo <= p && p <= hi, "2^{i} outside [{lo},{hi}]");
        }
        // The extremes.
        assert_eq!(LogHistogram::bucket_of(0), 0);
        assert_eq!(LogHistogram::bucket_of(u64::MAX), 64);
        let (lo, hi) = LogHistogram::bucket_range(64);
        assert!(lo < u64::MAX && hi == u64::MAX, "top bucket holds MAX");
        assert_eq!(LogHistogram::bucket_of(u64::MAX - 1), 64);
        assert_eq!(LogHistogram::bucket_of((1u64 << 63) - 1), 63);
        // Buckets tile [0, u64::MAX] exactly: each range starts right after
        // the previous one ends and the bucket owns its whole range.
        let mut expected_lo = 0u64;
        for i in 0..=64usize {
            let (lo, hi) = LogHistogram::bucket_range(i);
            assert_eq!(lo, expected_lo, "bucket {i} leaves a gap");
            assert!(lo <= hi, "bucket {i} range inverted");
            assert_eq!(LogHistogram::bucket_of(lo), i, "bucket {i} lo");
            assert_eq!(LogHistogram::bucket_of(hi), i, "bucket {i} hi");
            expected_lo = hi.wrapping_add(1);
        }
        assert_eq!(expected_lo, 0, "last bucket ends exactly at u64::MAX");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn log_histogram_bucket_range_rejects_past_64() {
        LogHistogram::bucket_range(65);
    }

    #[test]
    fn log_histogram_records_extremes() {
        let mut h = LogHistogram::new();
        h.record(0);
        h.record(u64::MAX);
        h.record(u64::MAX); // sum saturates rather than wrapping
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[64], 2);
    }

    #[test]
    fn log_histogram_aggregates() {
        let mut h = LogHistogram::new();
        assert!(h.is_empty());
        for v in [0u64, 1, 1, 5, 9] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 16);
        assert_eq!(h.max(), 9);
        assert_eq!(h.mean(), 3.2);
        assert_eq!(h.buckets()[0], 1, "one zero");
        assert_eq!(h.buckets()[1], 2, "two ones");
        assert_eq!(h.buckets()[3], 1, "5 in [4,8)");
        assert_eq!(h.buckets()[4], 1, "9 in [8,16)");
    }

    #[test]
    fn metrics_recorder_aggregates_events() {
        let mut m = MetricsRecorder::new();
        m.guess_started(Some(4.0));
        m.level_entered(0, 2);
        m.level_entered(1, 4);
        m.benefit_computed(10);
        m.heap_stale_pop();
        m.heap_stale_pop();
        m.set_selected(3, 6, 1.5);
        m.set_selected(1, 2, 0.5);
        m.candidate_pruned(PruneReason::BelowFloor);
        m.subtree_pruned(PruneReason::Exhausted);
        m.posting_scanned(7);
        m.phase_started("total");
        m.phase_ended("total", 0.25);
        m.phase_ended("total", 0.25);

        assert_eq!(m.guesses, 1);
        assert_eq!(m.levels_entered, 2);
        assert_eq!(m.level_allowance, 6);
        assert_eq!(m.selections, 2);
        assert_eq!(m.benefits_computed, 10);
        assert_eq!(m.candidates_pruned_total(), 1);
        assert_eq!(m.subtrees_pruned_total(), 1);
        assert_eq!(m.heap_stale_pops, 2);
        assert_eq!(m.postings_scanned, 7);
        assert_eq!(m.marginal_benefit_hist.count(), 2);
        assert_eq!(m.marginal_benefit_hist.sum(), 8);
        // First selection came after 2 stale pops, second after 0.
        assert_eq!(m.stale_run_hist.count(), 2);
        assert_eq!(m.stale_run_hist.max(), 2);
        assert_eq!(m.phase_seconds("total"), Some(0.5));
        assert_eq!(m.phases()[0].count, 2);
        assert_eq!(m.phase_seconds("missing"), None);
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        let h = LogHistogram::new();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0, "q={q}");
        }
    }

    #[test]
    fn quantile_single_bucket_returns_observed_max() {
        // All observations in one bucket: every quantile is that bucket,
        // capped at the exact observed max (not the bucket's upper bound).
        let mut h = LogHistogram::new();
        for _ in 0..10 {
            h.record(5); // bucket 3 = [4, 7]
        }
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 5, "q={q}");
        }
        // A single zero: quantiles collapse to the zero bucket.
        let mut z = LogHistogram::new();
        z.record(0);
        assert_eq!(z.quantile(0.5), 0);
        assert_eq!(z.quantile(1.0), 0);
    }

    #[test]
    fn quantile_saturating_top_bucket_is_exact_at_max() {
        // u64::MAX lives in the saturating top bucket [2^63, u64::MAX];
        // the estimate must not overflow past the observed max.
        let mut h = LogHistogram::new();
        h.record(1);
        h.record(u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
        assert_eq!(h.quantile(0.5), 1);
        // Only MAX recorded: every quantile is exactly MAX.
        let mut m = LogHistogram::new();
        m.record(u64::MAX);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(m.quantile(q), u64::MAX, "q={q}");
        }
    }

    #[test]
    fn quantile_rank_selection_and_clamping() {
        // 100 observations: 50 ones, 40 eights, 10 thousand-twenty-fours.
        let mut h = LogHistogram::new();
        for _ in 0..50 {
            h.record(1);
        }
        for _ in 0..40 {
            h.record(8); // bucket 4 = [8, 15]
        }
        for _ in 0..10 {
            h.record(1024); // bucket 11 = [1024, 2047]
        }
        assert_eq!(h.quantile(0.5), 1, "rank 50 is the last 1");
        assert_eq!(h.quantile(0.9), 15, "rank 90 is the last 8's bucket hi");
        assert_eq!(h.quantile(0.99), 1024, "rank 99 capped at observed max");
        assert_eq!(h.quantile(1.0), 1024);
        // Out-of-range q clamps instead of panicking.
        assert_eq!(h.quantile(-1.0), h.quantile(0.0));
        assert_eq!(h.quantile(2.0), h.quantile(1.0));
        // Quantiles are monotone in q.
        let mut prev = 0;
        for i in 0..=100 {
            let v = h.quantile(i as f64 / 100.0);
            assert!(v >= prev, "quantile not monotone at {i}%");
            prev = v;
        }
    }

    #[test]
    fn trace_counters_stay_out_of_exact_counters() {
        let mut m = MetricsRecorder::new();
        m.trace_started(trace::TraceId::mint("cmc", 1, 2), "cmc");
        m.worker_switched(1);
        m.worker_switched(0);
        assert_eq!(m.traces_started, 1);
        assert_eq!(m.worker_switches, 2);
        // Like speculation/retry counters, trace plumbing never touches
        // the exact-diff counters.
        assert_eq!(m.guesses, 0);
        assert_eq!(m.selections, 0);
        assert_eq!(m.benefits_computed, 0);

        let mut merged = MetricsRecorder::new();
        merged.merge(&m);
        assert_eq!(merged.traces_started, 1);
        assert_eq!(merged.worker_switches, 2);
    }

    #[test]
    fn jsonl_sink_emits_trace_events() {
        let mut sink = JsonlSink::new(Vec::new());
        let id = trace::TraceId::mint("opt_cmc", 3, 4);
        sink.trace_started(id, "opt_cmc");
        sink.worker_switched(2);
        let text = String::from_utf8(sink.into_inner().unwrap()).unwrap();
        assert!(
            text.contains(&format!("\"trace_id\":\"{id}\",\"entry\":\"opt_cmc\"")),
            "{text}"
        );
        assert!(
            text.contains("\"event\":\"worker_switched\",\"worker\":2"),
            "{text}"
        );
    }

    #[test]
    fn jsonl_sink_flushes_on_drop() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        struct FlushProbe(Arc<AtomicBool>);
        impl io::Write for FlushProbe {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                self.0.store(true, Ordering::SeqCst);
                Ok(())
            }
        }

        let flushed = Arc::new(AtomicBool::new(false));
        {
            let mut sink = JsonlSink::new(FlushProbe(Arc::clone(&flushed)));
            sink.heap_stale_pop();
            assert!(!flushed.load(Ordering::SeqCst), "no premature flush");
        }
        assert!(flushed.load(Ordering::SeqCst), "drop must flush");
    }

    #[test]
    fn log_histogram_merge_equals_interleaved_records() {
        let values_a = [0u64, 1, 5, 1024, u64::MAX];
        let values_b = [2u64, 2, 9, u64::MAX];
        let mut merged = LogHistogram::new();
        for v in values_a {
            merged.record(v);
        }
        let mut other = LogHistogram::new();
        for v in values_b {
            other.record(v);
        }
        merged.merge(&other);
        let mut direct = LogHistogram::new();
        for v in values_a.into_iter().chain(values_b) {
            direct.record(v);
        }
        assert_eq!(merged, direct);
        // Merging an empty histogram is the identity.
        let before = merged.clone();
        merged.merge(&LogHistogram::new());
        assert_eq!(merged, before);
    }

    #[test]
    fn metrics_recorder_merge_equals_single_recorder() {
        // Two shards observing disjoint event streams merge to exactly
        // what one recorder seeing both streams would hold.
        let drive_a = |m: &mut MetricsRecorder| {
            m.guess_started(Some(1.0));
            m.level_entered(0, 2);
            m.benefit_computed(5);
            m.heap_stale_pop();
            m.set_selected(1, 3, 2.0);
            m.candidate_pruned(PruneReason::BelowFloor);
            m.phase_started("total");
            m.phase_ended("total", 0.5);
        };
        let drive_b = |m: &mut MetricsRecorder| {
            m.guess_started(Some(2.0));
            m.benefit_computed(7);
            m.subtree_pruned(PruneReason::Exhausted);
            m.posting_scanned(11);
            m.set_selected(2, 4, 1.0);
            m.speculation(2, 1);
            m.guess_retried();
            m.phase_ended("total", 0.25);
            m.phase_ended("scan", 0.125);
        };
        let mut a = MetricsRecorder::new();
        drive_a(&mut a);
        let mut b = MetricsRecorder::new();
        drive_b(&mut b);
        a.merge(&b);

        let mut single = MetricsRecorder::new();
        drive_a(&mut single);
        drive_b(&mut single);

        assert_eq!(a.guesses, single.guesses);
        assert_eq!(a.levels_entered, single.levels_entered);
        assert_eq!(a.level_allowance, single.level_allowance);
        assert_eq!(a.selections, single.selections);
        assert_eq!(a.benefits_computed, single.benefits_computed);
        assert_eq!(a.candidates_pruned, single.candidates_pruned);
        assert_eq!(a.subtrees_pruned, single.subtrees_pruned);
        assert_eq!(a.heap_stale_pops, single.heap_stale_pops);
        assert_eq!(a.postings_scanned, single.postings_scanned);
        assert_eq!(a.guesses_committed, single.guesses_committed);
        assert_eq!(a.guesses_wasted, single.guesses_wasted);
        assert_eq!(a.guesses_retried, single.guesses_retried);
        assert_eq!(a.marginal_benefit_hist, single.marginal_benefit_hist);
        assert_eq!(a.stale_run_hist, single.stale_run_hist);
        assert_eq!(a.phases(), single.phases());
    }

    #[test]
    fn speculation_counters_accumulate() {
        let mut m = MetricsRecorder::new();
        m.speculation(3, 1);
        m.speculation(1, 0);
        assert_eq!(m.guesses_committed, 4);
        assert_eq!(m.guesses_wasted, 1);
        // Speculation does not touch the exact-diff counters.
        assert_eq!(m.guesses, 0);
        assert_eq!(m.benefits_computed, 0);
    }

    #[test]
    fn jsonl_sink_emits_speculation_event() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.speculation(3, 2);
        let text = String::from_utf8(sink.into_inner().unwrap()).unwrap();
        assert!(text.contains("\"event\":\"speculation\""), "{text}");
        assert!(text.contains("\"committed\":3,\"wasted\":2"), "{text}");
    }

    #[test]
    fn guess_retried_counter_stays_out_of_exact_counters() {
        let mut m = MetricsRecorder::new();
        m.guess_retried();
        m.guess_retried();
        assert_eq!(m.guesses_retried, 2);
        // Like the speculation counters, retries never touch the
        // exact-diff counters.
        assert_eq!(m.guesses, 0);
        assert_eq!(m.selections, 0);
        let mut sink = JsonlSink::new(Vec::new());
        sink.guess_retried();
        let text = String::from_utf8(sink.into_inner().unwrap()).unwrap();
        assert!(text.contains("\"event\":\"guess_retried\""), "{text}");
    }

    #[test]
    fn jsonl_sink_emits_one_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.guess_started(Some(2.5));
        sink.guess_started(None);
        sink.level_entered(0, 2);
        sink.set_selected(7, 3, 1.0);
        sink.benefit_computed(12);
        sink.candidate_pruned(PruneReason::CostBound);
        sink.subtree_pruned(PruneReason::BelowFloor);
        sink.posting_scanned(40);
        sink.heap_stale_pop();
        sink.phase_started("total");
        sink.phase_ended("total", 0.125);
        assert!(!sink.has_failed());
        let bytes = sink.into_inner().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 11);
        for line in &lines {
            assert!(line.starts_with("{\"t\":"), "bad line: {line}");
            assert!(line.ends_with('}'), "bad line: {line}");
            assert!(line.contains("\"event\":\""), "bad line: {line}");
        }
        assert!(lines[0].contains("\"budget\":2.5"));
        assert!(lines[1].contains("\"budget\":null"));
        assert!(lines[3].contains("\"id\":7"));
        assert!(lines[3].contains("\"marginal_benefit\":3"));
        assert!(lines[3].contains("\"cost\":1.0"));
        assert!(lines[5].contains("\"reason\":\"cost_bound\""));
        assert!(lines[10].contains("\"seconds\":0.125"));
    }

    #[test]
    fn jsonl_sink_latches_write_errors() {
        struct Failing;
        impl io::Write for Failing {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::ErrorKind::Other.into())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonlSink::new(Failing);
        sink.heap_stale_pop();
        assert!(sink.has_failed());
        sink.heap_stale_pop(); // silently dropped, no panic
    }

    #[test]
    fn json_f64_forms() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(3.0), "3.0");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(f64::NAN), "null");
    }

    #[test]
    fn fanout_broadcasts() {
        let mut a = MetricsRecorder::new();
        let mut b = MetricsRecorder::new();
        {
            let mut fan = Fanout::new();
            fan.attach(&mut a).attach(&mut b);
            assert_eq!(fan.len(), 2);
            assert!(!fan.is_empty());
            fan.benefit_computed(4);
            fan.set_selected(0, 2, 1.0);
        }
        assert_eq!(a.benefits_computed, 4);
        assert_eq!(b.benefits_computed, 4);
        assert_eq!(a.selections, 1);
        assert_eq!(b.selections, 1);
    }

    #[test]
    fn noop_observer_accepts_everything() {
        let mut n = NoopObserver;
        n.guess_started(Some(1.0));
        n.level_entered(0, 1);
        n.set_selected(0, 0, 0.0);
        n.benefit_computed(1);
        n.candidate_pruned(PruneReason::Exhausted);
        n.subtree_pruned(PruneReason::CoverageBound);
        n.posting_scanned(1);
        n.heap_stale_pop();
        n.phase_started("x");
        n.phase_ended("x", 0.0);
    }

    #[test]
    fn phase_span_measures_nonnegative_time() {
        let mut m = MetricsRecorder::new();
        let span = PhaseSpan::enter(&mut m, PHASE_TOTAL);
        let secs = span.exit(&mut m);
        assert!(secs >= 0.0);
        assert!(m.phase_seconds(PHASE_TOTAL).is_some());
    }
}
