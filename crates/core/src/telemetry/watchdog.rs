//! Liveness watchdog: detects solves that stop making progress and
//! auto-dumps the flight recorder for the post-mortem (DESIGN.md §16).
//!
//! The degradation ladder of [`engine`](crate::engine) handles solves
//! that *finish late* — a wall or tick budget expires and the solver
//! returns a certified partial answer. What it cannot handle is a solve
//! that stops calling [`checkpoint`](crate::engine::Deadline::checkpoint)
//! altogether (a deadlocked worker, a pathological allocation storm, an
//! injected stall): no checkpoint means no expiry, and the process just
//! hangs. The [`Watchdog`] closes that gap from the outside:
//!
//! 1. **arm** — attached to the solve's [`Fanout`](super::Fanout), it
//!    arms itself on the first [`trace_started`](Observer::trace_started)
//!    and latches the trace id;
//! 2. **watch** — a background [`monitor`](Watchdog::monitor) thread
//!    polls combined progress: observer events seen (every event bumps a
//!    counter) *plus* engine ticks via a
//!    [`TickProbe`](crate::engine::TickProbe), so a solver that goes
//!    quiet on telemetry but keeps checkpointing is still live;
//! 3. **fire** — when progress stands still for the configured
//!    `stall_after`, it records one `stall_detected` event into the
//!    attached [`FlightRecorder`] and dumps it to the configured path —
//!    the post-mortem exists even if the process must be killed;
//! 4. **disarm** — the solve outcome (root
//!    [`phase_ended`](Observer::phase_ended), or an explicit
//!    [`disarm`](Watchdog::disarm)) disarms cleanly; the monitor guard
//!    joins its thread on drop.
//!
//! The watchdog is deliberately *outside* the determinism contract: it
//! observes wall-clock liveness, fires only on stalls a healthy run never
//! produces, and its counter is excluded from the exact-diff set.

use super::flight::FlightRecorder;
use super::trace::TraceId;
use super::Observer;
use crate::engine::TickProbe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Default poll cadence of the monitor thread.
const DEFAULT_POLL: Duration = Duration::from_millis(10);

/// Shared state between the observer-side handle, the monitor thread, and
/// any clones attached to other solvers.
#[derive(Debug)]
struct WatchInner {
    /// Armed between `trace_started` and the root `phase_ended`/`disarm`.
    armed: AtomicBool,
    /// Bumped on every observed event — the telemetry half of progress.
    events: AtomicU64,
    /// Engine checkpoint ticks — the quiet-progress half. Zero when no
    /// probe is attached.
    probe: Mutex<Option<TickProbe>>,
    /// Flight recorder to stamp and dump when a stall fires.
    flight: Mutex<Option<FlightRecorder>>,
    /// Where to dump the flight recording on a stall.
    dump_path: Mutex<Option<PathBuf>>,
    /// Stall threshold: no progress for this long while armed → fire.
    stall_after: Duration,
    /// Monitor poll cadence.
    poll: Duration,
    /// Stalls fired (all-time; one per arm cycle at most).
    stalls: AtomicU64,
    /// One-shot latch per arm cycle.
    fired: AtomicBool,
    /// Root-span depth so nested `total` spans don't disarm early.
    depth: AtomicU64,
    /// First latched trace id (0 = unset), for log correlation.
    trace_id: AtomicU64,
    /// Tells the monitor thread to exit.
    shutdown: AtomicBool,
}

/// A cloneable liveness watchdog. Attach one clone to the solve's
/// [`Fanout`](super::Fanout) as an [`Observer`] and keep another for
/// [`monitor`](Watchdog::monitor) / [`stalls`](Watchdog::stalls); all
/// clones share state.
#[derive(Debug, Clone)]
pub struct Watchdog {
    inner: Arc<WatchInner>,
}

impl Watchdog {
    /// A watchdog that fires after `stall_after` of zero progress while
    /// armed. Attach the flight recorder / tick probe / dump path with
    /// the `with_*` builders before arming.
    pub fn new(stall_after: Duration) -> Watchdog {
        Watchdog {
            inner: Arc::new(WatchInner {
                armed: AtomicBool::new(false),
                events: AtomicU64::new(0),
                probe: Mutex::new(None),
                flight: Mutex::new(None),
                dump_path: Mutex::new(None),
                stall_after,
                poll: DEFAULT_POLL,
                stalls: AtomicU64::new(0),
                fired: AtomicBool::new(false),
                depth: AtomicU64::new(0),
                trace_id: AtomicU64::new(0),
                shutdown: AtomicBool::new(false),
            }),
        }
    }

    /// Attach the flight recorder to stamp (`stall_detected`) and dump
    /// when a stall fires. Clones of the recorder share the same ring, so
    /// attaching the same recorder the solve writes to is the intended
    /// use: the dump carries the events leading up to the stall.
    pub fn with_flight(self, flight: FlightRecorder) -> Watchdog {
        *self.inner.flight.lock().expect("watchdog flight poisoned") = Some(flight);
        self
    }

    /// Attach an engine tick probe ([`Deadline::tick_probe`]
    /// (crate::engine::Deadline::tick_probe)) so checkpoint progress
    /// counts as liveness even when no observer events flow.
    pub fn with_probe(self, probe: TickProbe) -> Watchdog {
        *self.inner.probe.lock().expect("watchdog probe poisoned") = Some(probe);
        self
    }

    /// Where to dump the flight recording when a stall fires. Without a
    /// path the stall is still counted and stamped, just not dumped.
    pub fn with_dump_path(self, path: PathBuf) -> Watchdog {
        *self.inner.dump_path.lock().expect("watchdog path poisoned") = Some(path);
        self
    }

    /// Stalls fired so far (at most one per arm cycle).
    pub fn stalls(&self) -> u64 {
        self.inner.stalls.load(Ordering::Relaxed)
    }

    /// Whether the watchdog is currently armed (a solve is in flight).
    pub fn is_armed(&self) -> bool {
        self.inner.armed.load(Ordering::Relaxed)
    }

    /// The first latched [`TraceId`] (unset when no solve has started).
    pub fn trace_id(&self) -> TraceId {
        TraceId(self.inner.trace_id.load(Ordering::Relaxed))
    }

    /// Explicitly disarms (normally the root `phase_ended` does this).
    /// Idempotent; also re-arms the one-shot for the next solve.
    pub fn disarm(&self) {
        self.inner.armed.store(false, Ordering::Relaxed);
        self.inner.depth.store(0, Ordering::Relaxed);
        self.inner.fired.store(false, Ordering::Relaxed);
    }

    /// Combined progress stamp: observer events + engine ticks. Any
    /// change in either means the solve is alive.
    fn progress(&self) -> u64 {
        let ticks = self
            .inner
            .probe
            .lock()
            .expect("watchdog probe poisoned")
            .as_ref()
            .map_or(0, TickProbe::ticks);
        self.inner
            .events
            .load(Ordering::Relaxed)
            .wrapping_add(ticks)
    }

    /// Fires the stall (once per arm cycle): counts it, stamps a
    /// `stall_detected` event into the flight recorder, and dumps the
    /// recording to the configured path. Returns whether this call fired.
    fn fire(&self, stalled: Duration) -> bool {
        if self.inner.fired.swap(true, Ordering::Relaxed) {
            return false;
        }
        self.inner.stalls.fetch_add(1, Ordering::Relaxed);
        let flight = self
            .inner
            .flight
            .lock()
            .expect("watchdog flight poisoned")
            .clone();
        if let Some(mut flight) = flight {
            let ticks = self
                .inner
                .probe
                .lock()
                .expect("watchdog probe poisoned")
                .as_ref()
                .map_or(0, TickProbe::ticks);
            flight.stall_detected(ticks, stalled.as_secs_f64());
            let path = self
                .inner
                .dump_path
                .lock()
                .expect("watchdog path poisoned")
                .clone();
            if let Some(path) = path {
                // Best-effort: a failed dump must not take down the
                // monitor; the stall count still records the incident.
                let _ = flight.dump_to_path(&path);
            }
        }
        true
    }

    /// Spawns the monitor thread and returns its guard. The thread polls
    /// progress every `poll` interval; when an armed solve shows no
    /// progress for `stall_after`, it fires once. Dropping the guard
    /// shuts the thread down and joins it.
    pub fn monitor(&self) -> WatchdogMonitor {
        let dog = self.clone();
        self.inner.shutdown.store(false, Ordering::Relaxed);
        let handle = thread::spawn(move || {
            let mut last_progress = dog.progress();
            let mut last_change = Instant::now();
            while !dog.inner.shutdown.load(Ordering::Relaxed) {
                thread::sleep(dog.inner.poll);
                let now = dog.progress();
                if now != last_progress || !dog.is_armed() {
                    last_progress = now;
                    last_change = Instant::now();
                    continue;
                }
                let stalled = last_change.elapsed();
                if stalled >= dog.inner.stall_after {
                    dog.fire(stalled);
                    // Reset the clock so a still-stalled solve doesn't
                    // spin the loop; the one-shot latch gates re-firing.
                    last_change = Instant::now();
                }
            }
        });
        WatchdogMonitor {
            dog: self.clone(),
            handle: Some(handle),
        }
    }
}

/// Guard for a running [`Watchdog::monitor`] thread; dropping it shuts
/// the thread down and joins it.
#[derive(Debug)]
pub struct WatchdogMonitor {
    dog: Watchdog,
    handle: Option<thread::JoinHandle<()>>,
}

impl Drop for WatchdogMonitor {
    fn drop(&mut self) {
        self.dog.inner.shutdown.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Observer for Watchdog {
    fn trace_started(&mut self, trace_id: TraceId, _entry: &'static str) {
        self.inner.events.fetch_add(1, Ordering::Relaxed);
        // Arm on the first trace of a solve; nested traces just count as
        // progress.
        if !self.inner.armed.swap(true, Ordering::Relaxed) {
            self.inner.fired.store(false, Ordering::Relaxed);
        }
        let _ = self.inner.trace_id.compare_exchange(
            0,
            trace_id.0,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    fn phase_started(&mut self, name: &'static str) {
        self.inner.events.fetch_add(1, Ordering::Relaxed);
        if name_is_total(name) {
            self.inner.depth.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn phase_ended(&mut self, name: &'static str, _seconds: f64) {
        self.inner.events.fetch_add(1, Ordering::Relaxed);
        if name_is_total(name) {
            // Disarm only when the *root* total span closes. Observer
            // events for one solve arrive from one thread, so a plain
            // load/store (saturating at zero) is race-free here.
            let depth = self.inner.depth.load(Ordering::Relaxed);
            if depth <= 1 {
                self.disarm();
            } else {
                self.inner.depth.store(depth - 1, Ordering::Relaxed);
            }
        }
    }

    // Everything else is pure progress.
    fn guess_started(&mut self, _budget: Option<f64>) {
        self.inner.events.fetch_add(1, Ordering::Relaxed);
    }
    fn level_entered(&mut self, _level: usize, _allowance: usize) {
        self.inner.events.fetch_add(1, Ordering::Relaxed);
    }
    fn set_selected(&mut self, _id: u64, _marginal_benefit: u64, _cost: f64) {
        self.inner.events.fetch_add(1, Ordering::Relaxed);
    }
    fn benefit_computed(&mut self, _count: u64) {
        self.inner.events.fetch_add(1, Ordering::Relaxed);
    }
    fn candidate_pruned(&mut self, _reason: super::PruneReason) {
        self.inner.events.fetch_add(1, Ordering::Relaxed);
    }
    fn subtree_pruned(&mut self, _reason: super::PruneReason) {
        self.inner.events.fetch_add(1, Ordering::Relaxed);
    }
    fn posting_scanned(&mut self, _entries: u64) {
        self.inner.events.fetch_add(1, Ordering::Relaxed);
    }
    fn heap_stale_pop(&mut self) {
        self.inner.events.fetch_add(1, Ordering::Relaxed);
    }
    fn worker_switched(&mut self, _worker_id: u32) {
        self.inner.events.fetch_add(1, Ordering::Relaxed);
    }
    fn scan_pruned(&mut self, _count: u64) {
        self.inner.events.fetch_add(1, Ordering::Relaxed);
    }
    fn bound_refreshed(&mut self, _count: u64) {
        self.inner.events.fetch_add(1, Ordering::Relaxed);
    }
    fn sketch_inconclusive(&mut self, _count: u64) {
        self.inner.events.fetch_add(1, Ordering::Relaxed);
    }
    fn guess_retried(&mut self) {
        self.inner.events.fetch_add(1, Ordering::Relaxed);
    }
    fn degrade_decided(&mut self, _reason: &'static str, _covered: u64, _target: u64) {
        self.inner.events.fetch_add(1, Ordering::Relaxed);
    }
}

fn name_is_total(name: &str) -> bool {
    name == super::PHASE_TOTAL
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Deadline;
    use crate::telemetry::PHASE_TOTAL;

    #[test]
    fn arms_on_trace_and_disarms_on_root_total() {
        let mut dog = Watchdog::new(Duration::from_millis(50));
        assert!(!dog.is_armed());
        dog.trace_started(TraceId::mint("cmc", 1, 2), "cmc");
        assert!(dog.is_armed());
        assert!(!dog.trace_id().is_unset());
        dog.phase_started(PHASE_TOTAL);
        // A nested total span must not disarm.
        dog.phase_started(PHASE_TOTAL);
        dog.phase_ended(PHASE_TOTAL, 0.0);
        assert!(dog.is_armed(), "nested total left the root armed");
        dog.phase_ended(PHASE_TOTAL, 0.0);
        assert!(!dog.is_armed(), "root total disarms");
    }

    #[test]
    fn fires_on_stall_and_counts_once_per_arm_cycle() {
        let dog = Watchdog::new(Duration::from_millis(40));
        let monitor = dog.monitor();
        {
            let mut obs = dog.clone();
            obs.trace_started(TraceId::mint("cmc", 3, 4), "cmc");
        }
        // Armed and silent: the monitor must fire exactly once.
        let deadline = Instant::now() + Duration::from_secs(5);
        while dog.stalls() == 0 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(dog.stalls(), 1, "stall detected");
        thread::sleep(Duration::from_millis(80));
        assert_eq!(dog.stalls(), 1, "one-shot per arm cycle");
        dog.disarm();
        drop(monitor);
    }

    #[test]
    fn progress_resets_the_stall_clock() {
        let dog = Watchdog::new(Duration::from_millis(60));
        let monitor = dog.monitor();
        let mut obs = dog.clone();
        obs.trace_started(TraceId::mint("cwsc", 5, 6), "cwsc");
        // Keep feeding events faster than the stall threshold.
        for _ in 0..8 {
            thread::sleep(Duration::from_millis(15));
            obs.benefit_computed(1);
        }
        assert_eq!(dog.stalls(), 0, "live solve never fires");
        dog.disarm();
        drop(monitor);
    }

    #[test]
    fn tick_probe_progress_counts_as_liveness() {
        let dog = Watchdog::new(Duration::from_millis(60));
        let d = Deadline::unbounded();
        let dog = dog.with_probe(d.tick_probe());
        let monitor = dog.monitor();
        let mut obs = dog.clone();
        obs.trace_started(TraceId::mint("cmc", 7, 8), "cmc");
        // No observer events, but steady engine checkpoints.
        for _ in 0..8 {
            thread::sleep(Duration::from_millis(15));
            let _ = d.checkpoint();
        }
        assert_eq!(dog.stalls(), 0, "ticking solve is live");
        dog.disarm();
        drop(monitor);
    }

    #[test]
    fn stall_stamps_and_dumps_the_flight_recorder() {
        let flight = FlightRecorder::new();
        let dir = std::env::temp_dir().join(format!("scwsc-watchdog-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let dump = dir.join("stall-flight.jsonl");
        let dog = Watchdog::new(Duration::from_millis(40))
            .with_flight(flight.clone())
            .with_dump_path(dump.clone());
        let monitor = dog.monitor();
        let mut obs = dog.clone();
        obs.trace_started(TraceId::mint("cmc", 9, 10), "cmc");
        let deadline = Instant::now() + Duration::from_secs(5);
        while dog.stalls() == 0 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
        drop(monitor);
        assert_eq!(dog.stalls(), 1);
        let text = std::fs::read_to_string(&dump).expect("dump written");
        assert!(text.contains("stall_detected"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
