//! A counting global allocator for benchmark memory attribution
//! (`alloc-stats` feature, on by default).
//!
//! [`CountingAlloc`] wraps [`System`] and keeps process-wide atomic
//! tallies: allocation count, cumulative bytes allocated, live bytes, and
//! peak live bytes. Install it in a *binary* (statistics only move in
//! processes that opt in):
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: scwsc_core::telemetry::alloc::CountingAlloc =
//!     scwsc_core::telemetry::alloc::CountingAlloc;
//! ```
//!
//! A benchmark run brackets each workload with [`snapshot`] and reports
//! the [`AllocSnapshot::delta`]; [`reset_peak`] re-arms the peak tracker
//! so per-workload peaks do not inherit an earlier workload's high-water
//! mark. The counters use `Ordering::Relaxed` throughout — they are
//! statistics, not synchronization — so the cost on the allocation hot
//! path is a handful of uncontended atomic adds.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES_ALLOCATED: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_LIVE_BYTES: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed allocator that counts allocations, bytes, and peak
/// live bytes. Zero-sized; all state lives in module statics so snapshots
/// need no handle to the allocator instance.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingAlloc;

fn on_alloc(size: usize) {
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    BYTES_ALLOCATED.fetch_add(size as u64, Ordering::Relaxed);
    let live = LIVE_BYTES.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
    PEAK_LIVE_BYTES.fetch_max(live, Ordering::Relaxed);
}

fn on_dealloc(size: usize) {
    // Saturating: a binary that installs the allocator mid-life (or frees
    // memory allocated before the statics were linked) must not wrap.
    let _ = LIVE_BYTES.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |live| {
        Some(live.saturating_sub(size as u64))
    });
}

// SAFETY: delegates verbatim to `System`; the bookkeeping never touches
// the returned memory and only runs on successful (de)allocations.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            // Count a grow/shrink as one allocation of the new size plus
            // the release of the old one, mirroring alloc+dealloc.
            on_alloc(new_size);
            on_dealloc(layout.size());
        }
        new_ptr
    }
}

/// A point-in-time copy of the allocator counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Allocations (plus reallocations) performed so far.
    pub allocs: u64,
    /// Cumulative bytes requested across all allocations.
    pub bytes_allocated: u64,
    /// Bytes currently live (allocated minus deallocated).
    pub live_bytes: u64,
    /// High-water mark of `live_bytes` since process start or the last
    /// [`reset_peak`].
    pub peak_live_bytes: u64,
}

impl AllocSnapshot {
    /// Counter movement between `earlier` and `self`: allocation and byte
    /// deltas are monotone differences; `live_bytes` carries the absolute
    /// current value and `peak_live_bytes` the absolute peak (a high-water
    /// mark has no meaningful difference).
    pub fn delta(&self, earlier: &AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            allocs: self.allocs.saturating_sub(earlier.allocs),
            bytes_allocated: self.bytes_allocated.saturating_sub(earlier.bytes_allocated),
            live_bytes: self.live_bytes,
            peak_live_bytes: self.peak_live_bytes,
        }
    }
}

/// Reads the current counters. All-zero unless a binary installed
/// [`CountingAlloc`] as its `#[global_allocator]`.
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        allocs: ALLOCS.load(Ordering::Relaxed),
        bytes_allocated: BYTES_ALLOCATED.load(Ordering::Relaxed),
        live_bytes: LIVE_BYTES.load(Ordering::Relaxed),
        peak_live_bytes: PEAK_LIVE_BYTES.load(Ordering::Relaxed),
    }
}

/// Re-arms the peak tracker at the current live size, so the next
/// [`snapshot`] reports the peak of the work since this call.
pub fn reset_peak() {
    PEAK_LIVE_BYTES.store(LIVE_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Whether any allocation has been observed — i.e. whether the counting
/// allocator is actually installed in this process.
pub fn is_active() -> bool {
    ALLOCS.load(Ordering::Relaxed) > 0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One sequential test (the statics are process-global; parallel tests
    /// over them would race): exercise the GlobalAlloc impl directly —
    /// the test binary does not install it globally — and check every
    /// counter transition.
    #[test]
    fn counting_allocator_tracks_alloc_dealloc_realloc_and_peak() {
        let a = CountingAlloc;
        let layout = Layout::from_size_align(1024, 8).unwrap();
        let before = snapshot();

        // alloc moves count, bytes, live, and peak.
        let p = unsafe { a.alloc(layout) };
        assert!(!p.is_null());
        let after_alloc = snapshot();
        let d = after_alloc.delta(&before);
        assert_eq!(d.allocs, 1);
        assert_eq!(d.bytes_allocated, 1024);
        assert!(after_alloc.live_bytes >= before.live_bytes + 1024);
        assert!(after_alloc.peak_live_bytes >= after_alloc.live_bytes);

        // realloc counts the new size and releases the old.
        let p = unsafe { a.realloc(p, layout, 2048) };
        assert!(!p.is_null());
        let after_realloc = snapshot();
        let d = after_realloc.delta(&after_alloc);
        assert_eq!(d.allocs, 1);
        assert_eq!(d.bytes_allocated, 2048);
        assert!(after_realloc.live_bytes >= after_alloc.live_bytes + 1024);

        // dealloc shrinks live but leaves the cumulative counters alone.
        let layout2 = Layout::from_size_align(2048, 8).unwrap();
        unsafe { a.dealloc(p, layout2) };
        let after_dealloc = snapshot();
        assert_eq!(after_dealloc.allocs, after_realloc.allocs);
        assert_eq!(after_dealloc.bytes_allocated, after_realloc.bytes_allocated);
        assert!(after_dealloc.live_bytes <= after_realloc.live_bytes - 2048);

        // alloc_zeroed counts too, and the memory really is zeroed.
        let p = unsafe { a.alloc_zeroed(layout) };
        assert!(!p.is_null());
        assert_eq!(unsafe { *p }, 0);
        let after_zeroed = snapshot();
        assert_eq!(after_zeroed.delta(&after_dealloc).allocs, 1);
        unsafe { a.dealloc(p, layout) };

        // reset_peak re-arms at the current live size.
        reset_peak();
        let re_armed = snapshot();
        assert_eq!(re_armed.peak_live_bytes, re_armed.live_bytes);
        assert!(is_active());
    }
}
