//! SLO-grade metrics export: per-solve gauges and Prometheus text
//! exposition (DESIGN.md §13).
//!
//! [`SloGauges`] captures the serving-layer health summary of one solve —
//! how close it came to its deadline, how much of its tick budget it
//! consumed, whether it degraded, how many contained retries it needed —
//! from the [`Deadline`] and [`MetricsRecorder`] that drove the run.
//!
//! [`render_prometheus`] turns a recorder (plus optional gauges) into the
//! [Prometheus text exposition format]: `# TYPE` / `# HELP` comments, one
//! `name{label="value"} value` sample per line. The format is the lingua
//! franca of metrics scrapers, so a future solver-as-a-service layer can
//! expose `/metrics` by returning this string verbatim. [`parse_prometheus`]
//! is the matching reader — not a general Prometheus client, just enough
//! to round-trip what we render (which is how the golden test pins the
//! format).
//!
//! [Prometheus text exposition format]:
//!     https://prometheus.io/docs/instrumenting/exposition_formats/

use super::window::{EntryWindow, SolveWindows};
use super::{LogHistogram, MetricsRecorder, PruneReason};
use crate::engine::Deadline;
use std::fmt::Write as _;

/// The quantiles exported for every histogram.
const QUANTILES: [(f64, &str); 3] = [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")];

/// Per-solve SLO gauges: the numbers a serving layer would alert on.
#[derive(Debug, Clone, PartialEq)]
pub struct SloGauges {
    /// Fraction of the wall-clock budget still unspent when captured
    /// (1.0 when no wall budget was set, 0.0 when fully consumed).
    pub wall_headroom_ratio: f64,
    /// Work ticks consumed.
    pub ticks_used: u64,
    /// The deterministic tick budget, when one was set.
    pub tick_budget: Option<u64>,
    /// Whether the solve returned a degraded (partial) outcome.
    pub degraded: bool,
    /// Contained panic retries the resilience engine performed.
    pub retries: u64,
    /// Fraction of solves inside the sliding window that degraded —
    /// `Some` only for mid-run captures via
    /// [`capture_windowed`](SloGauges::capture_windowed); the classic
    /// per-solve [`capture`](SloGauges::capture) leaves it `None`.
    pub windowed_degraded_rate: Option<f64>,
}

impl SloGauges {
    /// Captures the gauges for a finished solve from its deadline, outcome
    /// classification, and aggregated metrics.
    pub fn capture(deadline: &Deadline, degraded: bool, metrics: &MetricsRecorder) -> SloGauges {
        let wall_headroom_ratio = match (deadline.wall_budget(), deadline.wall_remaining()) {
            (Some(budget), Some(remaining)) if !budget.is_zero() => {
                (remaining.as_secs_f64() / budget.as_secs_f64()).clamp(0.0, 1.0)
            }
            (Some(_), _) => 0.0, // zero budget: no headroom by definition
            _ => 1.0,
        };
        SloGauges {
            wall_headroom_ratio,
            ticks_used: deadline.ticks(),
            tick_budget: deadline.max_ticks(),
            degraded,
            retries: metrics.guesses_retried,
            windowed_degraded_rate: None,
        }
    }

    /// Mid-run capture for a long-lived process: like
    /// [`capture`](SloGauges::capture), but the degraded flag is derived
    /// from the deadline's latched expiry (no outcome value exists yet
    /// mid-run) and the windowed degraded rate is folded in from the
    /// continuous [`SolveWindows`] aggregation.
    pub fn capture_windowed(
        deadline: &Deadline,
        metrics: &MetricsRecorder,
        windows: &SolveWindows,
    ) -> SloGauges {
        let mut slo = SloGauges::capture(deadline, deadline.expired().is_some(), metrics);
        slo.windowed_degraded_rate = Some(windows.global().degraded_rate());
        slo
    }

    /// Fraction of the tick budget still unspent (1.0 when unbounded).
    pub fn tick_headroom_ratio(&self) -> f64 {
        match self.tick_budget {
            Some(budget) if budget > 0 => {
                (1.0 - self.ticks_used as f64 / budget as f64).clamp(0.0, 1.0)
            }
            Some(_) => 0.0,
            None => 1.0,
        }
    }

    /// The tighter of the wall and tick headrooms — the single "how close
    /// to the edge did this solve run" number.
    pub fn headroom_ratio(&self) -> f64 {
        self.wall_headroom_ratio.min(self.tick_headroom_ratio())
    }
}

/// Appends `# HELP` + `# TYPE` comments for one metric family.
fn family(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Formats a sample value: integers render bare, floats via `{}` (which
/// keeps them shortest-round-trip), non-finite values as `NaN`/`+Inf`.
fn sample_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_owned()
    } else {
        format!("{v}")
    }
}

/// Appends the three-quantile summary of one histogram.
fn summary(out: &mut String, name: &str, help: &str, hist: &LogHistogram) {
    family(out, name, "summary", help);
    for (q, label) in QUANTILES {
        let _ = writeln!(out, "{name}{{quantile=\"{label}\"}} {}", hist.quantile(q));
    }
    let _ = writeln!(out, "{name}_sum {}", hist.sum());
    let _ = writeln!(out, "{name}_count {}", hist.count());
}

/// Renders `metrics` (and, when given, per-solve SLO gauges) in Prometheus
/// text exposition format. Counter families end in `_total`; histograms
/// export p50/p90/p99 summaries via [`LogHistogram::quantile`]; per-phase
/// wall-clock totals carry a `phase` label, per-reason prune counters a
/// `reason` label.
pub fn render_prometheus(metrics: &MetricsRecorder, slo: Option<&SloGauges>) -> String {
    let mut out = String::new();
    let counters: [(&str, u64, &str); 14] = [
        (
            "scwsc_guesses_total",
            metrics.guesses,
            "Budget-guess rounds started.",
        ),
        (
            "scwsc_levels_entered_total",
            metrics.levels_entered,
            "Cost levels scheduled across all guesses.",
        ),
        (
            "scwsc_selections_total",
            metrics.selections,
            "Sets/patterns selected into candidate solutions.",
        ),
        (
            "scwsc_benefits_computed_total",
            metrics.benefits_computed,
            "Benefit computations (the paper's patterns-considered unit).",
        ),
        (
            "scwsc_heap_stale_pops_total",
            metrics.heap_stale_pops,
            "Stale lazy-greedy heap pops.",
        ),
        (
            "scwsc_postings_scanned_total",
            metrics.postings_scanned,
            "Inverted-index posting entries scanned.",
        ),
        (
            "scwsc_guesses_committed_total",
            metrics.guesses_committed,
            "Speculative guesses whose telemetry was committed.",
        ),
        (
            "scwsc_guesses_wasted_total",
            metrics.guesses_wasted,
            "Speculative guesses cancelled or discarded.",
        ),
        (
            "scwsc_traces_started_total",
            metrics.traces_started,
            "Traces minted by solve entry points.",
        ),
        (
            "scwsc_worker_switches_total",
            metrics.worker_switches,
            "Worker-context switches replayed from telemetry shards.",
        ),
        (
            "scwsc_scan_candidates_pruned_total",
            metrics.scan_candidates_pruned,
            "Scan candidates disposed of without a completed exact count.",
        ),
        (
            "scwsc_scan_bounds_refreshed_total",
            metrics.scan_bounds_refreshed,
            "Stale scan upper bounds replaced by fresh exact counts.",
        ),
        (
            "scwsc_scan_sketch_inconclusive_total",
            metrics.scan_sketch_inconclusive,
            "Bound/sketch probes that fell back to the full exact count.",
        ),
        (
            "scwsc_stalls_detected_total",
            metrics.stalls_detected,
            "Stalls flagged by the liveness watchdog.",
        ),
    ];
    for (name, value, help) in counters {
        family(&mut out, name, "counter", help);
        let _ = writeln!(out, "{name} {value}");
    }

    family(
        &mut out,
        "scwsc_candidates_pruned_total",
        "counter",
        "Candidates discarded before selection, by reason.",
    );
    for r in PruneReason::all() {
        let _ = writeln!(
            out,
            "scwsc_candidates_pruned_total{{reason=\"{}\"}} {}",
            r.as_str(),
            metrics.candidates_pruned[r.index()]
        );
    }
    family(
        &mut out,
        "scwsc_subtrees_pruned_total",
        "counter",
        "Lattice subtrees cut without materialization, by reason.",
    );
    for r in PruneReason::all() {
        let _ = writeln!(
            out,
            "scwsc_subtrees_pruned_total{{reason=\"{}\"}} {}",
            r.as_str(),
            metrics.subtrees_pruned[r.index()]
        );
    }

    family(
        &mut out,
        "scwsc_phase_seconds_total",
        "counter",
        "Wall-clock seconds accumulated per named phase.",
    );
    for p in metrics.phases() {
        let _ = writeln!(
            out,
            "scwsc_phase_seconds_total{{phase=\"{}\"}} {}",
            p.name,
            sample_value(p.seconds)
        );
    }
    family(
        &mut out,
        "scwsc_phase_completions_total",
        "counter",
        "Completed spans per named phase.",
    );
    for p in metrics.phases() {
        let _ = writeln!(
            out,
            "scwsc_phase_completions_total{{phase=\"{}\"}} {}",
            p.name, p.count
        );
    }

    summary(
        &mut out,
        "scwsc_marginal_benefit",
        "Marginal benefit at selection time.",
        &metrics.marginal_benefit_hist,
    );
    summary(
        &mut out,
        "scwsc_stale_run",
        "Consecutive stale heap pops preceding each selection.",
        &metrics.stale_run_hist,
    );

    if let Some(slo) = slo {
        family(
            &mut out,
            "scwsc_slo_wall_headroom_ratio",
            "gauge",
            "Fraction of the wall-clock budget unspent (1 = no wall budget).",
        );
        let _ = writeln!(
            out,
            "scwsc_slo_wall_headroom_ratio {}",
            sample_value(slo.wall_headroom_ratio)
        );
        family(
            &mut out,
            "scwsc_slo_headroom_ratio",
            "gauge",
            "Tighter of the wall and tick headroom ratios.",
        );
        let _ = writeln!(
            out,
            "scwsc_slo_headroom_ratio {}",
            sample_value(slo.headroom_ratio())
        );
        family(
            &mut out,
            "scwsc_slo_ticks_used",
            "gauge",
            "Deterministic work ticks consumed by the solve.",
        );
        let _ = writeln!(out, "scwsc_slo_ticks_used {}", slo.ticks_used);
        family(
            &mut out,
            "scwsc_slo_tick_budget",
            "gauge",
            "Deterministic tick budget (0 = unbounded).",
        );
        let _ = writeln!(
            out,
            "scwsc_slo_tick_budget {}",
            slo.tick_budget.unwrap_or(0)
        );
        family(
            &mut out,
            "scwsc_slo_degraded",
            "gauge",
            "1 when the solve returned a degraded (partial) outcome.",
        );
        let _ = writeln!(out, "scwsc_slo_degraded {}", u8::from(slo.degraded));
        family(
            &mut out,
            "scwsc_slo_retries_total",
            "counter",
            "Contained panic retries performed by the resilience engine.",
        );
        let _ = writeln!(out, "scwsc_slo_retries_total {}", slo.retries);
        if let Some(rate) = slo.windowed_degraded_rate {
            family(
                &mut out,
                "scwsc_slo_windowed_degraded_rate",
                "gauge",
                "Fraction of solves inside the sliding window that degraded.",
            );
            let _ = writeln!(
                out,
                "scwsc_slo_windowed_degraded_rate {}",
                sample_value(rate)
            );
        }
    }
    out
}

/// Appends the windowed series of one [`EntryWindow`] under the `entry`
/// label (`"all"` for the global view).
fn entry_series(out: &mut String, entry: &str, w: &EntryWindow) {
    let _ = writeln!(out, "scwsc_window_solves{{entry=\"{entry}\"}} {}", w.solves);
    let _ = writeln!(
        out,
        "scwsc_window_degraded_solves{{entry=\"{entry}\"}} {}",
        w.degraded_solves
    );
    let _ = writeln!(
        out,
        "scwsc_window_degraded_rate{{entry=\"{entry}\"}} {}",
        sample_value(w.degraded_rate())
    );
    let _ = writeln!(
        out,
        "scwsc_window_selections_per_solve{{entry=\"{entry}\"}} {}",
        sample_value(w.selections.rate_per_solve())
    );
    let _ = writeln!(
        out,
        "scwsc_window_benefits_per_solve{{entry=\"{entry}\"}} {}",
        sample_value(w.benefits.rate_per_solve())
    );
    let _ = writeln!(
        out,
        "scwsc_window_benefits_high_watermark{{entry=\"{entry}\"}} {}",
        w.benefits.high_watermark()
    );
    for (q, label) in QUANTILES {
        let _ = writeln!(
            out,
            "scwsc_window_benefits{{entry=\"{entry}\",quantile=\"{label}\"}} {}",
            w.benefits_hist.quantile(q)
        );
    }
}

/// Renders the continuous sliding-window series *in addition to* what
/// [`render_prometheus`] emits: windowed per-solve rates, degraded rates,
/// p50/p90/p99 benefit quantiles, and high-watermarks, per entry point
/// (`entry="all"` is the global window) plus the window-rollover counter.
/// A long-lived `/metrics` endpoint returns
/// `render_prometheus(..) + render_prometheus_windowed(..)` concatenated.
pub fn render_prometheus_windowed(
    metrics: &MetricsRecorder,
    slo: Option<&SloGauges>,
    windows: &SolveWindows,
) -> String {
    let mut out = render_prometheus(metrics, slo);
    family(
        &mut out,
        "scwsc_window_rollovers_total",
        "counter",
        "Solves that evicted an older solve from the sliding window.",
    );
    let _ = writeln!(out, "scwsc_window_rollovers_total {}", windows.rollovers());
    family(
        &mut out,
        "scwsc_window_width",
        "gauge",
        "Configured sliding-window width, in solves.",
    );
    let _ = writeln!(out, "scwsc_window_width {}", windows.window());
    family(
        &mut out,
        "scwsc_window_solves",
        "counter",
        "Solves finalized, per entry point (entry=\"all\" is global).",
    );
    family(
        &mut out,
        "scwsc_window_degraded_solves",
        "counter",
        "Degraded solves finalized, per entry point.",
    );
    family(
        &mut out,
        "scwsc_window_degraded_rate",
        "gauge",
        "Fraction of windowed solves that degraded, per entry point.",
    );
    family(
        &mut out,
        "scwsc_window_selections_per_solve",
        "gauge",
        "Mean selections per windowed solve, per entry point.",
    );
    family(
        &mut out,
        "scwsc_window_benefits_per_solve",
        "gauge",
        "Mean benefit computations per windowed solve, per entry point.",
    );
    family(
        &mut out,
        "scwsc_window_benefits_high_watermark",
        "gauge",
        "Largest single-solve benefit-computation count ever observed.",
    );
    family(
        &mut out,
        "scwsc_window_benefits",
        "summary",
        "Benefit computations per solve over the sliding window.",
    );
    entry_series(&mut out, "all", windows.global());
    for (entry, w) in windows.entries() {
        entry_series(&mut out, entry, w);
    }
    out
}

/// One parsed exposition sample.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Metric name (family name plus any `_sum`/`_count` suffix).
    pub name: String,
    /// Label pairs in source order (empty for unlabelled samples).
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl PromSample {
    /// Whether this sample has exactly the given labels (order-sensitive,
    /// as rendered).
    pub fn has_labels(&self, labels: &[(&str, &str)]) -> bool {
        self.labels.len() == labels.len()
            && self
                .labels
                .iter()
                .zip(labels)
                .all(|((k, v), (ek, ev))| k == ek && v == ev)
    }
}

/// Parses Prometheus text exposition into samples, skipping comments and
/// blank lines. Strict enough to round-trip [`render_prometheus`] output:
/// a malformed sample line yields `Err` with the offending line.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut samples = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (head, value_text) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("no value: {line}"))?;
        let value = match value_text {
            "NaN" => f64::NAN,
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            v => v.parse().map_err(|_| format!("bad value: {line}"))?,
        };
        let (name, labels) = match head.split_once('{') {
            None => (head.to_owned(), Vec::new()),
            Some((name, rest)) => {
                let body = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("unclosed labels: {line}"))?;
                let mut labels = Vec::new();
                for pair in body.split(',').filter(|p| !p.is_empty()) {
                    let (k, v) = pair
                        .split_once('=')
                        .ok_or_else(|| format!("bad label: {line}"))?;
                    let v = v
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .ok_or_else(|| format!("unquoted label value: {line}"))?;
                    labels.push((k.to_owned(), v.to_owned()));
                }
                (name.to_owned(), labels)
            }
        };
        samples.push(PromSample {
            name,
            labels,
            value,
        });
    }
    Ok(samples)
}

/// Finds the unique sample with `name` and exactly `labels`.
pub fn find_sample<'a>(
    samples: &'a [PromSample],
    name: &str,
    labels: &[(&str, &str)],
) -> Option<&'a PromSample> {
    samples
        .iter()
        .find(|s| s.name == name && s.has_labels(labels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::Observer;
    use std::time::Duration;

    fn recorded_metrics() -> MetricsRecorder {
        let mut m = MetricsRecorder::new();
        m.guess_started(Some(4.0));
        m.level_entered(0, 2);
        m.benefit_computed(10);
        m.heap_stale_pop();
        m.set_selected(3, 6, 1.5);
        m.set_selected(1, 2, 0.5);
        m.candidate_pruned(PruneReason::BelowFloor);
        m.subtree_pruned(PruneReason::CostBound);
        m.posting_scanned(7);
        m.phase_started("total");
        m.phase_ended("total", 0.5);
        m
    }

    #[test]
    fn render_parse_round_trip_golden() {
        let metrics = recorded_metrics();
        let slo = SloGauges {
            wall_headroom_ratio: 0.75,
            ticks_used: 40,
            tick_budget: Some(100),
            degraded: true,
            retries: 2,
            windowed_degraded_rate: None,
        };
        let text = render_prometheus(&metrics, Some(&slo));

        // Structural invariants of the exposition format.
        for line in text.lines() {
            assert!(
                line.starts_with("# HELP ")
                    || line.starts_with("# TYPE ")
                    || line.starts_with("scwsc_"),
                "unexpected line: {line}"
            );
        }
        let samples = parse_prometheus(&text).expect("own output parses");

        // Golden values: counters.
        let get = |name: &str, labels: &[(&str, &str)]| {
            find_sample(&samples, name, labels)
                .unwrap_or_else(|| panic!("missing {name} {labels:?}"))
                .value
        };
        assert_eq!(get("scwsc_guesses_total", &[]), 1.0);
        assert_eq!(get("scwsc_selections_total", &[]), 2.0);
        assert_eq!(get("scwsc_benefits_computed_total", &[]), 10.0);
        assert_eq!(get("scwsc_postings_scanned_total", &[]), 7.0);
        assert_eq!(
            get(
                "scwsc_candidates_pruned_total",
                &[("reason", "below_floor")]
            ),
            1.0
        );
        assert_eq!(
            get("scwsc_subtrees_pruned_total", &[("reason", "cost_bound")]),
            1.0
        );
        assert_eq!(get("scwsc_phase_seconds_total", &[("phase", "total")]), 0.5);
        assert_eq!(
            get("scwsc_phase_completions_total", &[("phase", "total")]),
            1.0
        );
        // Summary quantiles come from LogHistogram::quantile.
        assert_eq!(
            get("scwsc_marginal_benefit", &[("quantile", "0.5")]),
            metrics.marginal_benefit_hist.quantile(0.5) as f64
        );
        assert_eq!(get("scwsc_marginal_benefit_sum", &[]), 8.0);
        assert_eq!(get("scwsc_marginal_benefit_count", &[]), 2.0);
        // SLO gauges.
        assert_eq!(get("scwsc_slo_wall_headroom_ratio", &[]), 0.75);
        assert_eq!(get("scwsc_slo_ticks_used", &[]), 40.0);
        assert_eq!(get("scwsc_slo_tick_budget", &[]), 100.0);
        assert_eq!(get("scwsc_slo_degraded", &[]), 1.0);
        assert_eq!(get("scwsc_slo_retries_total", &[]), 2.0);
        // headroom = min(wall 0.75, tick 1 - 40/100 = 0.6).
        assert!((get("scwsc_slo_headroom_ratio", &[]) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn render_without_slo_omits_gauges() {
        let text = render_prometheus(&recorded_metrics(), None);
        assert!(!text.contains("scwsc_slo_"), "{text}");
        assert!(text.contains("scwsc_guesses_total 1"), "{text}");
        // Per-solve captures never carry the windowed rate gauge.
        let slo = SloGauges::capture(&Deadline::unbounded(), false, &recorded_metrics());
        let text = render_prometheus(&recorded_metrics(), Some(&slo));
        assert!(!text.contains("scwsc_slo_windowed_degraded_rate"), "{text}");
    }

    #[test]
    fn windowed_render_emits_per_entry_series() {
        use crate::telemetry::window::{SolveSample, SolveWindows};

        let mut windows = SolveWindows::with_window(2);
        windows.observe(
            Some("cmc"),
            SolveSample {
                selections: 3,
                benefits_computed: 10,
                degraded: false,
            },
        );
        windows.observe(
            Some("cmc"),
            SolveSample {
                selections: 5,
                benefits_computed: 30,
                degraded: true,
            },
        );
        windows.observe(
            Some("opt_cwsc"),
            SolveSample {
                selections: 1,
                benefits_computed: 4,
                degraded: false,
            },
        );
        let metrics = recorded_metrics();
        let deadline = Deadline::unbounded();
        let slo = SloGauges::capture_windowed(&deadline, &metrics, &windows);
        let text = render_prometheus_windowed(&metrics, Some(&slo), &windows);
        let samples = parse_prometheus(&text).expect("own output parses");
        let get = |name: &str, labels: &[(&str, &str)]| {
            find_sample(&samples, name, labels)
                .unwrap_or_else(|| panic!("missing {name} {labels:?}"))
                .value
        };
        // The totals block is still present alongside the windowed series.
        assert_eq!(get("scwsc_guesses_total", &[]), 1.0);
        assert_eq!(get("scwsc_stalls_detected_total", &[]), 0.0);
        // Global window: 3 solves through width 2 → 1 rollover; the
        // window holds the last 2 solves (degraded + clean → rate 0.5).
        assert_eq!(get("scwsc_window_rollovers_total", &[]), 1.0);
        assert_eq!(get("scwsc_window_width", &[]), 2.0);
        assert_eq!(get("scwsc_window_solves", &[("entry", "all")]), 3.0);
        assert_eq!(get("scwsc_window_degraded_rate", &[("entry", "all")]), 0.5);
        // Per-entry breakdown.
        assert_eq!(get("scwsc_window_solves", &[("entry", "cmc")]), 2.0);
        assert_eq!(get("scwsc_window_solves", &[("entry", "opt_cwsc")]), 1.0);
        assert_eq!(
            get("scwsc_window_benefits_high_watermark", &[("entry", "cmc")]),
            30.0
        );
        assert_eq!(
            get(
                "scwsc_window_benefits",
                &[("entry", "opt_cwsc"), ("quantile", "0.99")]
            ),
            4.0
        );
        // capture_windowed folded the global windowed rate into the SLO.
        assert_eq!(get("scwsc_slo_windowed_degraded_rate", &[]), 0.5);
    }

    #[test]
    fn slo_capture_from_deadline() {
        let d = Deadline::unbounded()
            .with_tick_budget(10)
            .with_wall_clock(Duration::from_secs(3600));
        for _ in 0..4 {
            d.checkpoint().unwrap();
        }
        let metrics = MetricsRecorder::new();
        let slo = SloGauges::capture(&d, false, &metrics);
        assert_eq!(slo.ticks_used, 4);
        assert_eq!(slo.tick_budget, Some(10));
        assert!(!slo.degraded);
        assert_eq!(slo.retries, 0);
        assert!(
            slo.wall_headroom_ratio > 0.99,
            "{}",
            slo.wall_headroom_ratio
        );
        assert!((slo.tick_headroom_ratio() - 0.6).abs() < 1e-12);
        assert!((slo.headroom_ratio() - 0.6).abs() < 1e-12);

        // Unbounded deadline: full headroom everywhere.
        let free = SloGauges::capture(&Deadline::unbounded(), false, &metrics);
        assert_eq!(free.wall_headroom_ratio, 1.0);
        assert_eq!(free.tick_headroom_ratio(), 1.0);
        assert_eq!(free.headroom_ratio(), 1.0);

        // Overspent tick budget clamps at zero, not negative.
        let d = Deadline::unbounded().with_tick_budget(2);
        for _ in 0..5 {
            let _ = d.checkpoint();
        }
        let spent = SloGauges::capture(&d, true, &metrics);
        assert_eq!(spent.tick_headroom_ratio(), 0.0);
        assert!(spent.degraded);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_prometheus("name_only").is_err());
        assert!(parse_prometheus("bad{unclosed 1").is_err());
        assert!(parse_prometheus("bad{k=v} 1").is_err(), "unquoted value");
        assert!(parse_prometheus("name notanumber").is_err());
        // Comments and blanks are fine.
        let ok = parse_prometheus("# HELP x y\n\n# TYPE x counter\nx 3\n").unwrap();
        assert_eq!(ok.len(), 1);
        assert_eq!(ok[0].name, "x");
        assert_eq!(ok[0].value, 3.0);
        // Special float values round-trip.
        let special = parse_prometheus("a NaN\nb +Inf\nc -Inf\n").unwrap();
        assert!(special[0].value.is_nan());
        assert_eq!(special[1].value, f64::INFINITY);
        assert_eq!(special[2].value, f64::NEG_INFINITY);
    }
}
